#!/usr/bin/env bash
# Bench smoke gate: run the deterministic concurrency counters and fail
# when any gated counter diverges from the committed baseline.
#
# Usage: ci/bench_gate.sh [out.json]
#   out.json  report path (default: BENCH_pr4.json in the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_pr4.json}"
cargo build --release -q -p memphis-bench --bin bench_gate
./target/release/bench_gate "$out" ci/BENCH_baseline.json
