/root/repo/target/debug/deps/backend_registry-906e16dee3b81962.d: tests/tests/backend_registry.rs

/root/repo/target/debug/deps/backend_registry-906e16dee3b81962: tests/tests/backend_registry.rs

tests/tests/backend_registry.rs:
