/root/repo/target/debug/deps/exp_fig13-338a66c9bab8498d.d: crates/bench/src/bin/exp_fig13.rs

/root/repo/target/debug/deps/exp_fig13-338a66c9bab8498d: crates/bench/src/bin/exp_fig13.rs

crates/bench/src/bin/exp_fig13.rs:
