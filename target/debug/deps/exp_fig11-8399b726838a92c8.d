/root/repo/target/debug/deps/exp_fig11-8399b726838a92c8.d: crates/bench/src/bin/exp_fig11.rs

/root/repo/target/debug/deps/exp_fig11-8399b726838a92c8: crates/bench/src/bin/exp_fig11.rs

crates/bench/src/bin/exp_fig11.rs:
