/root/repo/target/debug/deps/exp_fig2-470e23e1ffb12e0f.d: crates/bench/src/bin/exp_fig2.rs

/root/repo/target/debug/deps/exp_fig2-470e23e1ffb12e0f: crates/bench/src/bin/exp_fig2.rs

crates/bench/src/bin/exp_fig2.rs:
