/root/repo/target/debug/deps/exp_ablations-d39d1a89f727ab09.d: crates/bench/src/bin/exp_ablations.rs Cargo.toml

/root/repo/target/debug/deps/libexp_ablations-d39d1a89f727ab09.rmeta: crates/bench/src/bin/exp_ablations.rs Cargo.toml

crates/bench/src/bin/exp_ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
