/root/repo/target/debug/deps/memphis_core-5bfb660fc8e1bb6e.d: crates/core/src/lib.rs crates/core/src/backend.rs crates/core/src/cache/mod.rs crates/core/src/cache/backends.rs crates/core/src/cache/config.rs crates/core/src/cache/entry.rs crates/core/src/cache/gpu.rs crates/core/src/cache/spark.rs crates/core/src/lineage.rs crates/core/src/recompute.rs crates/core/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmemphis_core-5bfb660fc8e1bb6e.rmeta: crates/core/src/lib.rs crates/core/src/backend.rs crates/core/src/cache/mod.rs crates/core/src/cache/backends.rs crates/core/src/cache/config.rs crates/core/src/cache/entry.rs crates/core/src/cache/gpu.rs crates/core/src/cache/spark.rs crates/core/src/lineage.rs crates/core/src/recompute.rs crates/core/src/stats.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/backend.rs:
crates/core/src/cache/mod.rs:
crates/core/src/cache/backends.rs:
crates/core/src/cache/config.rs:
crates/core/src/cache/entry.rs:
crates/core/src/cache/gpu.rs:
crates/core/src/cache/spark.rs:
crates/core/src/lineage.rs:
crates/core/src/recompute.rs:
crates/core/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
