/root/repo/target/debug/deps/ops_test-437a5d4530c42a19.d: crates/engine/tests/ops_test.rs

/root/repo/target/debug/deps/ops_test-437a5d4530c42a19: crates/engine/tests/ops_test.rs

crates/engine/tests/ops_test.rs:
