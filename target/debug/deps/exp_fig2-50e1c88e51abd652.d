/root/repo/target/debug/deps/exp_fig2-50e1c88e51abd652.d: crates/bench/src/bin/exp_fig2.rs

/root/repo/target/debug/deps/exp_fig2-50e1c88e51abd652: crates/bench/src/bin/exp_fig2.rs

crates/bench/src/bin/exp_fig2.rs:
