/root/repo/target/debug/deps/memphis_gpusim-4a267f78ec8be648.d: crates/gpusim/src/lib.rs crates/gpusim/src/arena.rs crates/gpusim/src/config.rs crates/gpusim/src/device.rs crates/gpusim/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmemphis_gpusim-4a267f78ec8be648.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/arena.rs crates/gpusim/src/config.rs crates/gpusim/src/device.rs crates/gpusim/src/stats.rs Cargo.toml

crates/gpusim/src/lib.rs:
crates/gpusim/src/arena.rs:
crates/gpusim/src/config.rs:
crates/gpusim/src/device.rs:
crates/gpusim/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
