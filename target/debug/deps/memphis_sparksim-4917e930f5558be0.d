/root/repo/target/debug/deps/memphis_sparksim-4917e930f5558be0.d: crates/sparksim/src/lib.rs crates/sparksim/src/block_manager.rs crates/sparksim/src/broadcast.rs crates/sparksim/src/config.rs crates/sparksim/src/context.rs crates/sparksim/src/fault.rs crates/sparksim/src/rdd.rs crates/sparksim/src/scheduler.rs crates/sparksim/src/shuffle.rs crates/sparksim/src/stats.rs

/root/repo/target/debug/deps/memphis_sparksim-4917e930f5558be0: crates/sparksim/src/lib.rs crates/sparksim/src/block_manager.rs crates/sparksim/src/broadcast.rs crates/sparksim/src/config.rs crates/sparksim/src/context.rs crates/sparksim/src/fault.rs crates/sparksim/src/rdd.rs crates/sparksim/src/scheduler.rs crates/sparksim/src/shuffle.rs crates/sparksim/src/stats.rs

crates/sparksim/src/lib.rs:
crates/sparksim/src/block_manager.rs:
crates/sparksim/src/broadcast.rs:
crates/sparksim/src/config.rs:
crates/sparksim/src/context.rs:
crates/sparksim/src/fault.rs:
crates/sparksim/src/rdd.rs:
crates/sparksim/src/scheduler.rs:
crates/sparksim/src/shuffle.rs:
crates/sparksim/src/stats.rs:
