/root/repo/target/debug/deps/memphis_gpusim-3e20a074ecf27fef.d: crates/gpusim/src/lib.rs crates/gpusim/src/arena.rs crates/gpusim/src/config.rs crates/gpusim/src/device.rs crates/gpusim/src/stats.rs

/root/repo/target/debug/deps/memphis_gpusim-3e20a074ecf27fef: crates/gpusim/src/lib.rs crates/gpusim/src/arena.rs crates/gpusim/src/config.rs crates/gpusim/src/device.rs crates/gpusim/src/stats.rs

crates/gpusim/src/lib.rs:
crates/gpusim/src/arena.rs:
crates/gpusim/src/config.rs:
crates/gpusim/src/device.rs:
crates/gpusim/src/stats.rs:
