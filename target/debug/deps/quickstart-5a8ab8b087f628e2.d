/root/repo/target/debug/deps/quickstart-5a8ab8b087f628e2.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-5a8ab8b087f628e2: examples/quickstart.rs

examples/quickstart.rs:
