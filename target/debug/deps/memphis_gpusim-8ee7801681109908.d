/root/repo/target/debug/deps/memphis_gpusim-8ee7801681109908.d: crates/gpusim/src/lib.rs crates/gpusim/src/arena.rs crates/gpusim/src/config.rs crates/gpusim/src/device.rs crates/gpusim/src/stats.rs

/root/repo/target/debug/deps/libmemphis_gpusim-8ee7801681109908.rlib: crates/gpusim/src/lib.rs crates/gpusim/src/arena.rs crates/gpusim/src/config.rs crates/gpusim/src/device.rs crates/gpusim/src/stats.rs

/root/repo/target/debug/deps/libmemphis_gpusim-8ee7801681109908.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/arena.rs crates/gpusim/src/config.rs crates/gpusim/src/device.rs crates/gpusim/src/stats.rs

crates/gpusim/src/lib.rs:
crates/gpusim/src/arena.rs:
crates/gpusim/src/config.rs:
crates/gpusim/src/device.rs:
crates/gpusim/src/stats.rs:
