/root/repo/target/debug/deps/exp_table3-a2f1891c266b2d61.d: crates/bench/src/bin/exp_table3.rs

/root/repo/target/debug/deps/exp_table3-a2f1891c266b2d61: crates/bench/src/bin/exp_table3.rs

crates/bench/src/bin/exp_table3.rs:
