/root/repo/target/debug/deps/async_stream-3213a67fbdad3399.d: crates/gpusim/tests/async_stream.rs

/root/repo/target/debug/deps/async_stream-3213a67fbdad3399: crates/gpusim/tests/async_stream.rs

crates/gpusim/tests/async_stream.rs:
