/root/repo/target/debug/deps/exp_fig11-9ca8f6aa078dfda2.d: crates/bench/src/bin/exp_fig11.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig11-9ca8f6aa078dfda2.rmeta: crates/bench/src/bin/exp_fig11.rs Cargo.toml

crates/bench/src/bin/exp_fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
