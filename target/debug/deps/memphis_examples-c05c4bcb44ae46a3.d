/root/repo/target/debug/deps/memphis_examples-c05c4bcb44ae46a3.d: examples/lib.rs

/root/repo/target/debug/deps/libmemphis_examples-c05c4bcb44ae46a3.rlib: examples/lib.rs

/root/repo/target/debug/deps/libmemphis_examples-c05c4bcb44ae46a3.rmeta: examples/lib.rs

examples/lib.rs:
