/root/repo/target/debug/deps/memphis_integration-ac72cbcb06a27d2c.d: tests/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmemphis_integration-ac72cbcb06a27d2c.rmeta: tests/lib.rs Cargo.toml

tests/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
