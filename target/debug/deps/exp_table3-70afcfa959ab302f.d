/root/repo/target/debug/deps/exp_table3-70afcfa959ab302f.d: crates/bench/src/bin/exp_table3.rs

/root/repo/target/debug/deps/exp_table3-70afcfa959ab302f: crates/bench/src/bin/exp_table3.rs

crates/bench/src/bin/exp_table3.rs:
