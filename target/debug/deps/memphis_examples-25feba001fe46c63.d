/root/repo/target/debug/deps/memphis_examples-25feba001fe46c63.d: examples/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmemphis_examples-25feba001fe46c63.rmeta: examples/lib.rs Cargo.toml

examples/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
