/root/repo/target/debug/deps/gridsearch_lr-dae1737a6082ba5c.d: examples/gridsearch_lr.rs Cargo.toml

/root/repo/target/debug/deps/libgridsearch_lr-dae1737a6082ba5c.rmeta: examples/gridsearch_lr.rs Cargo.toml

examples/gridsearch_lr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
