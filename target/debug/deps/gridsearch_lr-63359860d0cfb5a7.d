/root/repo/target/debug/deps/gridsearch_lr-63359860d0cfb5a7.d: examples/gridsearch_lr.rs

/root/repo/target/debug/deps/gridsearch_lr-63359860d0cfb5a7: examples/gridsearch_lr.rs

examples/gridsearch_lr.rs:
