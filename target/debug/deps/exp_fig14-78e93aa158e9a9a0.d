/root/repo/target/debug/deps/exp_fig14-78e93aa158e9a9a0.d: crates/bench/src/bin/exp_fig14.rs

/root/repo/target/debug/deps/exp_fig14-78e93aa158e9a9a0: crates/bench/src/bin/exp_fig14.rs

crates/bench/src/bin/exp_fig14.rs:
