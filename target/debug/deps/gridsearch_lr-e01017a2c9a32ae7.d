/root/repo/target/debug/deps/gridsearch_lr-e01017a2c9a32ae7.d: examples/gridsearch_lr.rs

/root/repo/target/debug/deps/gridsearch_lr-e01017a2c9a32ae7: examples/gridsearch_lr.rs

examples/gridsearch_lr.rs:
