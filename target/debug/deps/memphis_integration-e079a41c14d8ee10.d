/root/repo/target/debug/deps/memphis_integration-e079a41c14d8ee10.d: tests/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmemphis_integration-e079a41c14d8ee10.rmeta: tests/lib.rs Cargo.toml

tests/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
