/root/repo/target/debug/deps/memphis_engine-106f08b40624f286.d: crates/engine/src/lib.rs crates/engine/src/compiler.rs crates/engine/src/config.rs crates/engine/src/context.rs crates/engine/src/cost.rs crates/engine/src/interp.rs crates/engine/src/ops.rs crates/engine/src/plan.rs crates/engine/src/recompute_exec.rs crates/engine/src/value.rs

/root/repo/target/debug/deps/memphis_engine-106f08b40624f286: crates/engine/src/lib.rs crates/engine/src/compiler.rs crates/engine/src/config.rs crates/engine/src/context.rs crates/engine/src/cost.rs crates/engine/src/interp.rs crates/engine/src/ops.rs crates/engine/src/plan.rs crates/engine/src/recompute_exec.rs crates/engine/src/value.rs

crates/engine/src/lib.rs:
crates/engine/src/compiler.rs:
crates/engine/src/config.rs:
crates/engine/src/context.rs:
crates/engine/src/cost.rs:
crates/engine/src/interp.rs:
crates/engine/src/ops.rs:
crates/engine/src/plan.rs:
crates/engine/src/recompute_exec.rs:
crates/engine/src/value.rs:
