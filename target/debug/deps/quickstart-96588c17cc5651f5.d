/root/repo/target/debug/deps/quickstart-96588c17cc5651f5.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-96588c17cc5651f5.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
