/root/repo/target/debug/deps/memphis_examples-9845e2f4a8fc02d2.d: examples/lib.rs

/root/repo/target/debug/deps/memphis_examples-9845e2f4a8fc02d2: examples/lib.rs

examples/lib.rs:
