/root/repo/target/debug/deps/lineage_debugging-c9fd022112a4e4ea.d: examples/lineage_debugging.rs

/root/repo/target/debug/deps/lineage_debugging-c9fd022112a4e4ea: examples/lineage_debugging.rs

examples/lineage_debugging.rs:
