/root/repo/target/debug/deps/memphis_examples-a3991bd3e8b9eabb.d: examples/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmemphis_examples-a3991bd3e8b9eabb.rmeta: examples/lib.rs Cargo.toml

examples/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
