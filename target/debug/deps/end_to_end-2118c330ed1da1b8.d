/root/repo/target/debug/deps/end_to_end-2118c330ed1da1b8.d: tests/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-2118c330ed1da1b8: tests/tests/end_to_end.rs

tests/tests/end_to_end.rs:
