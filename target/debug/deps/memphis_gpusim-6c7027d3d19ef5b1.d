/root/repo/target/debug/deps/memphis_gpusim-6c7027d3d19ef5b1.d: crates/gpusim/src/lib.rs crates/gpusim/src/arena.rs crates/gpusim/src/config.rs crates/gpusim/src/device.rs crates/gpusim/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmemphis_gpusim-6c7027d3d19ef5b1.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/arena.rs crates/gpusim/src/config.rs crates/gpusim/src/device.rs crates/gpusim/src/stats.rs Cargo.toml

crates/gpusim/src/lib.rs:
crates/gpusim/src/arena.rs:
crates/gpusim/src/config.rs:
crates/gpusim/src/device.rs:
crates/gpusim/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
