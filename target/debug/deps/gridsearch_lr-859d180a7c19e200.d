/root/repo/target/debug/deps/gridsearch_lr-859d180a7c19e200.d: examples/gridsearch_lr.rs Cargo.toml

/root/repo/target/debug/deps/libgridsearch_lr-859d180a7c19e200.rmeta: examples/gridsearch_lr.rs Cargo.toml

examples/gridsearch_lr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
