/root/repo/target/debug/deps/lineage_debugging-f37c7868055b1154.d: examples/lineage_debugging.rs Cargo.toml

/root/repo/target/debug/deps/liblineage_debugging-f37c7868055b1154.rmeta: examples/lineage_debugging.rs Cargo.toml

examples/lineage_debugging.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
