/root/repo/target/debug/deps/memphis_bench-ccb95e8af6d3a476.d: crates/bench/src/lib.rs crates/bench/src/golden.rs

/root/repo/target/debug/deps/libmemphis_bench-ccb95e8af6d3a476.rlib: crates/bench/src/lib.rs crates/bench/src/golden.rs

/root/repo/target/debug/deps/libmemphis_bench-ccb95e8af6d3a476.rmeta: crates/bench/src/lib.rs crates/bench/src/golden.rs

crates/bench/src/lib.rs:
crates/bench/src/golden.rs:
