/root/repo/target/debug/deps/exp_fig14-c136e89fe67d8c6b.d: crates/bench/src/bin/exp_fig14.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig14-c136e89fe67d8c6b.rmeta: crates/bench/src/bin/exp_fig14.rs Cargo.toml

crates/bench/src/bin/exp_fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
