/root/repo/target/debug/deps/quickstart-8426cc3312ccecf5.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-8426cc3312ccecf5.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
