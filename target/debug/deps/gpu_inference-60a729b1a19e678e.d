/root/repo/target/debug/deps/gpu_inference-60a729b1a19e678e.d: examples/gpu_inference.rs

/root/repo/target/debug/deps/gpu_inference-60a729b1a19e678e: examples/gpu_inference.rs

examples/gpu_inference.rs:
