/root/repo/target/debug/deps/exp_table3-3a682fe0586a94a2.d: crates/bench/src/bin/exp_table3.rs Cargo.toml

/root/repo/target/debug/deps/libexp_table3-3a682fe0586a94a2.rmeta: crates/bench/src/bin/exp_table3.rs Cargo.toml

crates/bench/src/bin/exp_table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
