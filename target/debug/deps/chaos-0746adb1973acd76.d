/root/repo/target/debug/deps/chaos-0746adb1973acd76.d: crates/sparksim/tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-0746adb1973acd76.rmeta: crates/sparksim/tests/chaos.rs Cargo.toml

crates/sparksim/tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
