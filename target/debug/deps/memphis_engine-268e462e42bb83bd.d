/root/repo/target/debug/deps/memphis_engine-268e462e42bb83bd.d: crates/engine/src/lib.rs crates/engine/src/compiler.rs crates/engine/src/config.rs crates/engine/src/context.rs crates/engine/src/cost.rs crates/engine/src/interp.rs crates/engine/src/ops.rs crates/engine/src/plan.rs crates/engine/src/recompute_exec.rs crates/engine/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libmemphis_engine-268e462e42bb83bd.rmeta: crates/engine/src/lib.rs crates/engine/src/compiler.rs crates/engine/src/config.rs crates/engine/src/context.rs crates/engine/src/cost.rs crates/engine/src/interp.rs crates/engine/src/ops.rs crates/engine/src/plan.rs crates/engine/src/recompute_exec.rs crates/engine/src/value.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/compiler.rs:
crates/engine/src/config.rs:
crates/engine/src/context.rs:
crates/engine/src/cost.rs:
crates/engine/src/interp.rs:
crates/engine/src/ops.rs:
crates/engine/src/plan.rs:
crates/engine/src/recompute_exec.rs:
crates/engine/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
