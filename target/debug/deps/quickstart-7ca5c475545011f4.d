/root/repo/target/debug/deps/quickstart-7ca5c475545011f4.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-7ca5c475545011f4: examples/quickstart.rs

examples/quickstart.rs:
