/root/repo/target/debug/deps/exp_fig13-417788c25a447d9f.d: crates/bench/src/bin/exp_fig13.rs

/root/repo/target/debug/deps/exp_fig13-417788c25a447d9f: crates/bench/src/bin/exp_fig13.rs

crates/bench/src/bin/exp_fig13.rs:
