/root/repo/target/debug/deps/backend_registry-7eca88046fb82759.d: tests/tests/backend_registry.rs Cargo.toml

/root/repo/target/debug/deps/libbackend_registry-7eca88046fb82759.rmeta: tests/tests/backend_registry.rs Cargo.toml

tests/tests/backend_registry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
