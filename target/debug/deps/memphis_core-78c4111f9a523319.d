/root/repo/target/debug/deps/memphis_core-78c4111f9a523319.d: crates/core/src/lib.rs crates/core/src/backend.rs crates/core/src/cache/mod.rs crates/core/src/cache/backends.rs crates/core/src/cache/config.rs crates/core/src/cache/entry.rs crates/core/src/cache/gpu.rs crates/core/src/cache/spark.rs crates/core/src/lineage.rs crates/core/src/recompute.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libmemphis_core-78c4111f9a523319.rlib: crates/core/src/lib.rs crates/core/src/backend.rs crates/core/src/cache/mod.rs crates/core/src/cache/backends.rs crates/core/src/cache/config.rs crates/core/src/cache/entry.rs crates/core/src/cache/gpu.rs crates/core/src/cache/spark.rs crates/core/src/lineage.rs crates/core/src/recompute.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libmemphis_core-78c4111f9a523319.rmeta: crates/core/src/lib.rs crates/core/src/backend.rs crates/core/src/cache/mod.rs crates/core/src/cache/backends.rs crates/core/src/cache/config.rs crates/core/src/cache/entry.rs crates/core/src/cache/gpu.rs crates/core/src/cache/spark.rs crates/core/src/lineage.rs crates/core/src/recompute.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/backend.rs:
crates/core/src/cache/mod.rs:
crates/core/src/cache/backends.rs:
crates/core/src/cache/config.rs:
crates/core/src/cache/entry.rs:
crates/core/src/cache/gpu.rs:
crates/core/src/cache/spark.rs:
crates/core/src/lineage.rs:
crates/core/src/recompute.rs:
crates/core/src/stats.rs:
