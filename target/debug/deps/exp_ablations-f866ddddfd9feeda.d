/root/repo/target/debug/deps/exp_ablations-f866ddddfd9feeda.d: crates/bench/src/bin/exp_ablations.rs

/root/repo/target/debug/deps/exp_ablations-f866ddddfd9feeda: crates/bench/src/bin/exp_ablations.rs

crates/bench/src/bin/exp_ablations.rs:
