/root/repo/target/debug/deps/exp_fig2-130d64f5164c6e8d.d: crates/bench/src/bin/exp_fig2.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig2-130d64f5164c6e8d.rmeta: crates/bench/src/bin/exp_fig2.rs Cargo.toml

crates/bench/src/bin/exp_fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
