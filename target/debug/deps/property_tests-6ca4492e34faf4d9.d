/root/repo/target/debug/deps/property_tests-6ca4492e34faf4d9.d: tests/tests/property_tests.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_tests-6ca4492e34faf4d9.rmeta: tests/tests/property_tests.rs Cargo.toml

tests/tests/property_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
