/root/repo/target/debug/deps/exp_ablations-a33c7ea817d84931.d: crates/bench/src/bin/exp_ablations.rs

/root/repo/target/debug/deps/exp_ablations-a33c7ea817d84931: crates/bench/src/bin/exp_ablations.rs

crates/bench/src/bin/exp_ablations.rs:
