/root/repo/target/debug/deps/exp_fig14-f4d10d13765d95c0.d: crates/bench/src/bin/exp_fig14.rs

/root/repo/target/debug/deps/exp_fig14-f4d10d13765d95c0: crates/bench/src/bin/exp_fig14.rs

crates/bench/src/bin/exp_fig14.rs:
