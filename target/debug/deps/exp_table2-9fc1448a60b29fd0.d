/root/repo/target/debug/deps/exp_table2-9fc1448a60b29fd0.d: crates/bench/src/bin/exp_table2.rs

/root/repo/target/debug/deps/exp_table2-9fc1448a60b29fd0: crates/bench/src/bin/exp_table2.rs

crates/bench/src/bin/exp_table2.rs:
