/root/repo/target/debug/deps/memphis_workloads-ca0f770a86fd4965.d: crates/workloads/src/lib.rs crates/workloads/src/builtins.rs crates/workloads/src/data.rs crates/workloads/src/harness.rs crates/workloads/src/pipelines/mod.rs crates/workloads/src/pipelines/clean.rs crates/workloads/src/pipelines/en2de.rs crates/workloads/src/pipelines/hband.rs crates/workloads/src/pipelines/hcv.rs crates/workloads/src/pipelines/hdrop.rs crates/workloads/src/pipelines/pnmf.rs crates/workloads/src/pipelines/tlvis.rs Cargo.toml

/root/repo/target/debug/deps/libmemphis_workloads-ca0f770a86fd4965.rmeta: crates/workloads/src/lib.rs crates/workloads/src/builtins.rs crates/workloads/src/data.rs crates/workloads/src/harness.rs crates/workloads/src/pipelines/mod.rs crates/workloads/src/pipelines/clean.rs crates/workloads/src/pipelines/en2de.rs crates/workloads/src/pipelines/hband.rs crates/workloads/src/pipelines/hcv.rs crates/workloads/src/pipelines/hdrop.rs crates/workloads/src/pipelines/pnmf.rs crates/workloads/src/pipelines/tlvis.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/builtins.rs:
crates/workloads/src/data.rs:
crates/workloads/src/harness.rs:
crates/workloads/src/pipelines/mod.rs:
crates/workloads/src/pipelines/clean.rs:
crates/workloads/src/pipelines/en2de.rs:
crates/workloads/src/pipelines/hband.rs:
crates/workloads/src/pipelines/hcv.rs:
crates/workloads/src/pipelines/hdrop.rs:
crates/workloads/src/pipelines/pnmf.rs:
crates/workloads/src/pipelines/tlvis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
