/root/repo/target/debug/deps/memphis_matrix-7973d13fbc4aa0cd.d: crates/matrix/src/lib.rs crates/matrix/src/blocked.rs crates/matrix/src/dense.rs crates/matrix/src/error.rs crates/matrix/src/io.rs crates/matrix/src/ops/mod.rs crates/matrix/src/ops/agg.rs crates/matrix/src/ops/binary.rs crates/matrix/src/ops/matmul.rs crates/matrix/src/ops/nn.rs crates/matrix/src/ops/reorg.rs crates/matrix/src/ops/solve.rs crates/matrix/src/ops/unary.rs crates/matrix/src/rand_gen.rs

/root/repo/target/debug/deps/memphis_matrix-7973d13fbc4aa0cd: crates/matrix/src/lib.rs crates/matrix/src/blocked.rs crates/matrix/src/dense.rs crates/matrix/src/error.rs crates/matrix/src/io.rs crates/matrix/src/ops/mod.rs crates/matrix/src/ops/agg.rs crates/matrix/src/ops/binary.rs crates/matrix/src/ops/matmul.rs crates/matrix/src/ops/nn.rs crates/matrix/src/ops/reorg.rs crates/matrix/src/ops/solve.rs crates/matrix/src/ops/unary.rs crates/matrix/src/rand_gen.rs

crates/matrix/src/lib.rs:
crates/matrix/src/blocked.rs:
crates/matrix/src/dense.rs:
crates/matrix/src/error.rs:
crates/matrix/src/io.rs:
crates/matrix/src/ops/mod.rs:
crates/matrix/src/ops/agg.rs:
crates/matrix/src/ops/binary.rs:
crates/matrix/src/ops/matmul.rs:
crates/matrix/src/ops/nn.rs:
crates/matrix/src/ops/reorg.rs:
crates/matrix/src/ops/solve.rs:
crates/matrix/src/ops/unary.rs:
crates/matrix/src/rand_gen.rs:
