/root/repo/target/debug/deps/chaos_end_to_end-6297ee8902a536f1.d: tests/tests/chaos_end_to_end.rs

/root/repo/target/debug/deps/chaos_end_to_end-6297ee8902a536f1: tests/tests/chaos_end_to_end.rs

tests/tests/chaos_end_to_end.rs:
