/root/repo/target/debug/deps/memphis_engine-90b3e4ab093949ab.d: crates/engine/src/lib.rs crates/engine/src/compiler.rs crates/engine/src/config.rs crates/engine/src/context.rs crates/engine/src/cost.rs crates/engine/src/interp.rs crates/engine/src/ops.rs crates/engine/src/plan.rs crates/engine/src/recompute_exec.rs crates/engine/src/value.rs

/root/repo/target/debug/deps/libmemphis_engine-90b3e4ab093949ab.rlib: crates/engine/src/lib.rs crates/engine/src/compiler.rs crates/engine/src/config.rs crates/engine/src/context.rs crates/engine/src/cost.rs crates/engine/src/interp.rs crates/engine/src/ops.rs crates/engine/src/plan.rs crates/engine/src/recompute_exec.rs crates/engine/src/value.rs

/root/repo/target/debug/deps/libmemphis_engine-90b3e4ab093949ab.rmeta: crates/engine/src/lib.rs crates/engine/src/compiler.rs crates/engine/src/config.rs crates/engine/src/context.rs crates/engine/src/cost.rs crates/engine/src/interp.rs crates/engine/src/ops.rs crates/engine/src/plan.rs crates/engine/src/recompute_exec.rs crates/engine/src/value.rs

crates/engine/src/lib.rs:
crates/engine/src/compiler.rs:
crates/engine/src/config.rs:
crates/engine/src/context.rs:
crates/engine/src/cost.rs:
crates/engine/src/interp.rs:
crates/engine/src/ops.rs:
crates/engine/src/plan.rs:
crates/engine/src/recompute_exec.rs:
crates/engine/src/value.rs:
