/root/repo/target/debug/deps/memphis_bench-4cb5ea1015d5494b.d: crates/bench/src/lib.rs crates/bench/src/golden.rs

/root/repo/target/debug/deps/memphis_bench-4cb5ea1015d5494b: crates/bench/src/lib.rs crates/bench/src/golden.rs

crates/bench/src/lib.rs:
crates/bench/src/golden.rs:
