/root/repo/target/debug/deps/lineage_debugging-fbf9e3a5dcdb1e83.d: examples/lineage_debugging.rs Cargo.toml

/root/repo/target/debug/deps/liblineage_debugging-fbf9e3a5dcdb1e83.rmeta: examples/lineage_debugging.rs Cargo.toml

examples/lineage_debugging.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
