/root/repo/target/debug/deps/chaos_end_to_end-2f063b57496d2926.d: tests/tests/chaos_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_end_to_end-2f063b57496d2926.rmeta: tests/tests/chaos_end_to_end.rs Cargo.toml

tests/tests/chaos_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
