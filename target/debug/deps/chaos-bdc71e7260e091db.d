/root/repo/target/debug/deps/chaos-bdc71e7260e091db.d: crates/sparksim/tests/chaos.rs

/root/repo/target/debug/deps/chaos-bdc71e7260e091db: crates/sparksim/tests/chaos.rs

crates/sparksim/tests/chaos.rs:
