/root/repo/target/debug/deps/cost_model-a36890cfaabd35aa.d: crates/sparksim/tests/cost_model.rs

/root/repo/target/debug/deps/cost_model-a36890cfaabd35aa: crates/sparksim/tests/cost_model.rs

crates/sparksim/tests/cost_model.rs:
