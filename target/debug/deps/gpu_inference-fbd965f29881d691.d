/root/repo/target/debug/deps/gpu_inference-fbd965f29881d691.d: examples/gpu_inference.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_inference-fbd965f29881d691.rmeta: examples/gpu_inference.rs Cargo.toml

examples/gpu_inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
