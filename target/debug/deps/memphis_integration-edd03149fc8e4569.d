/root/repo/target/debug/deps/memphis_integration-edd03149fc8e4569.d: tests/lib.rs

/root/repo/target/debug/deps/libmemphis_integration-edd03149fc8e4569.rlib: tests/lib.rs

/root/repo/target/debug/deps/libmemphis_integration-edd03149fc8e4569.rmeta: tests/lib.rs

tests/lib.rs:
