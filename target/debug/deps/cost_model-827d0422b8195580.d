/root/repo/target/debug/deps/cost_model-827d0422b8195580.d: crates/sparksim/tests/cost_model.rs Cargo.toml

/root/repo/target/debug/deps/libcost_model-827d0422b8195580.rmeta: crates/sparksim/tests/cost_model.rs Cargo.toml

crates/sparksim/tests/cost_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
