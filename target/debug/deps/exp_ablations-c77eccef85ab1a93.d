/root/repo/target/debug/deps/exp_ablations-c77eccef85ab1a93.d: crates/bench/src/bin/exp_ablations.rs Cargo.toml

/root/repo/target/debug/deps/libexp_ablations-c77eccef85ab1a93.rmeta: crates/bench/src/bin/exp_ablations.rs Cargo.toml

crates/bench/src/bin/exp_ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
