/root/repo/target/debug/deps/gpu_inference-be435cb98e5a1cfd.d: examples/gpu_inference.rs Cargo.toml

/root/repo/target/debug/deps/libgpu_inference-be435cb98e5a1cfd.rmeta: examples/gpu_inference.rs Cargo.toml

examples/gpu_inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
