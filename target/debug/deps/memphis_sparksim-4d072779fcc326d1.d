/root/repo/target/debug/deps/memphis_sparksim-4d072779fcc326d1.d: crates/sparksim/src/lib.rs crates/sparksim/src/block_manager.rs crates/sparksim/src/broadcast.rs crates/sparksim/src/config.rs crates/sparksim/src/context.rs crates/sparksim/src/fault.rs crates/sparksim/src/rdd.rs crates/sparksim/src/scheduler.rs crates/sparksim/src/shuffle.rs crates/sparksim/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmemphis_sparksim-4d072779fcc326d1.rmeta: crates/sparksim/src/lib.rs crates/sparksim/src/block_manager.rs crates/sparksim/src/broadcast.rs crates/sparksim/src/config.rs crates/sparksim/src/context.rs crates/sparksim/src/fault.rs crates/sparksim/src/rdd.rs crates/sparksim/src/scheduler.rs crates/sparksim/src/shuffle.rs crates/sparksim/src/stats.rs Cargo.toml

crates/sparksim/src/lib.rs:
crates/sparksim/src/block_manager.rs:
crates/sparksim/src/broadcast.rs:
crates/sparksim/src/config.rs:
crates/sparksim/src/context.rs:
crates/sparksim/src/fault.rs:
crates/sparksim/src/rdd.rs:
crates/sparksim/src/scheduler.rs:
crates/sparksim/src/shuffle.rs:
crates/sparksim/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
