/root/repo/target/debug/deps/exp_fig12-6384ef124f44c9fb.d: crates/bench/src/bin/exp_fig12.rs

/root/repo/target/debug/deps/exp_fig12-6384ef124f44c9fb: crates/bench/src/bin/exp_fig12.rs

crates/bench/src/bin/exp_fig12.rs:
