/root/repo/target/debug/deps/memphis_bench-6cd24fa8c2838602.d: crates/bench/src/lib.rs crates/bench/src/golden.rs Cargo.toml

/root/repo/target/debug/deps/libmemphis_bench-6cd24fa8c2838602.rmeta: crates/bench/src/lib.rs crates/bench/src/golden.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
