/root/repo/target/debug/deps/exp_fig12-366db57ea3f0ba0c.d: crates/bench/src/bin/exp_fig12.rs

/root/repo/target/debug/deps/exp_fig12-366db57ea3f0ba0c: crates/bench/src/bin/exp_fig12.rs

crates/bench/src/bin/exp_fig12.rs:
