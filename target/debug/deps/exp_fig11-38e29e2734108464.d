/root/repo/target/debug/deps/exp_fig11-38e29e2734108464.d: crates/bench/src/bin/exp_fig11.rs

/root/repo/target/debug/deps/exp_fig11-38e29e2734108464: crates/bench/src/bin/exp_fig11.rs

crates/bench/src/bin/exp_fig11.rs:
