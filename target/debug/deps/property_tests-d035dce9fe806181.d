/root/repo/target/debug/deps/property_tests-d035dce9fe806181.d: tests/tests/property_tests.rs

/root/repo/target/debug/deps/property_tests-d035dce9fe806181: tests/tests/property_tests.rs

tests/tests/property_tests.rs:
