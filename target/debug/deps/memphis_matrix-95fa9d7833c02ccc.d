/root/repo/target/debug/deps/memphis_matrix-95fa9d7833c02ccc.d: crates/matrix/src/lib.rs crates/matrix/src/blocked.rs crates/matrix/src/dense.rs crates/matrix/src/error.rs crates/matrix/src/io.rs crates/matrix/src/ops/mod.rs crates/matrix/src/ops/agg.rs crates/matrix/src/ops/binary.rs crates/matrix/src/ops/matmul.rs crates/matrix/src/ops/nn.rs crates/matrix/src/ops/reorg.rs crates/matrix/src/ops/solve.rs crates/matrix/src/ops/unary.rs crates/matrix/src/rand_gen.rs Cargo.toml

/root/repo/target/debug/deps/libmemphis_matrix-95fa9d7833c02ccc.rmeta: crates/matrix/src/lib.rs crates/matrix/src/blocked.rs crates/matrix/src/dense.rs crates/matrix/src/error.rs crates/matrix/src/io.rs crates/matrix/src/ops/mod.rs crates/matrix/src/ops/agg.rs crates/matrix/src/ops/binary.rs crates/matrix/src/ops/matmul.rs crates/matrix/src/ops/nn.rs crates/matrix/src/ops/reorg.rs crates/matrix/src/ops/solve.rs crates/matrix/src/ops/unary.rs crates/matrix/src/rand_gen.rs Cargo.toml

crates/matrix/src/lib.rs:
crates/matrix/src/blocked.rs:
crates/matrix/src/dense.rs:
crates/matrix/src/error.rs:
crates/matrix/src/io.rs:
crates/matrix/src/ops/mod.rs:
crates/matrix/src/ops/agg.rs:
crates/matrix/src/ops/binary.rs:
crates/matrix/src/ops/matmul.rs:
crates/matrix/src/ops/nn.rs:
crates/matrix/src/ops/reorg.rs:
crates/matrix/src/ops/solve.rs:
crates/matrix/src/ops/unary.rs:
crates/matrix/src/rand_gen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
