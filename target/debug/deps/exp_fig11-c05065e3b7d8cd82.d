/root/repo/target/debug/deps/exp_fig11-c05065e3b7d8cd82.d: crates/bench/src/bin/exp_fig11.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig11-c05065e3b7d8cd82.rmeta: crates/bench/src/bin/exp_fig11.rs Cargo.toml

crates/bench/src/bin/exp_fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
