/root/repo/target/debug/deps/memphis_integration-7009327420bfead9.d: tests/lib.rs

/root/repo/target/debug/deps/memphis_integration-7009327420bfead9: tests/lib.rs

tests/lib.rs:
