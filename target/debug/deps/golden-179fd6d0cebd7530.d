/root/repo/target/debug/deps/golden-179fd6d0cebd7530.d: crates/bench/tests/golden.rs Cargo.toml

/root/repo/target/debug/deps/libgolden-179fd6d0cebd7530.rmeta: crates/bench/tests/golden.rs Cargo.toml

crates/bench/tests/golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
