/root/repo/target/debug/deps/end_to_end-72ee3cb3f8270030.d: tests/tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-72ee3cb3f8270030.rmeta: tests/tests/end_to_end.rs Cargo.toml

tests/tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
