/root/repo/target/debug/deps/exp_table2-69c1455565b2bcc8.d: crates/bench/src/bin/exp_table2.rs

/root/repo/target/debug/deps/exp_table2-69c1455565b2bcc8: crates/bench/src/bin/exp_table2.rs

crates/bench/src/bin/exp_table2.rs:
