/root/repo/target/debug/deps/async_stream-f672150a57b4a571.d: crates/gpusim/tests/async_stream.rs Cargo.toml

/root/repo/target/debug/deps/libasync_stream-f672150a57b4a571.rmeta: crates/gpusim/tests/async_stream.rs Cargo.toml

crates/gpusim/tests/async_stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
