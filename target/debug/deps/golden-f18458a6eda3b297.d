/root/repo/target/debug/deps/golden-f18458a6eda3b297.d: crates/bench/tests/golden.rs

/root/repo/target/debug/deps/golden-f18458a6eda3b297: crates/bench/tests/golden.rs

crates/bench/tests/golden.rs:
