/root/repo/target/debug/deps/exp_table2-f2d1e8d9c3b6e7cc.d: crates/bench/src/bin/exp_table2.rs Cargo.toml

/root/repo/target/debug/deps/libexp_table2-f2d1e8d9c3b6e7cc.rmeta: crates/bench/src/bin/exp_table2.rs Cargo.toml

crates/bench/src/bin/exp_table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
