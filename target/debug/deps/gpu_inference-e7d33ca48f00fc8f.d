/root/repo/target/debug/deps/gpu_inference-e7d33ca48f00fc8f.d: examples/gpu_inference.rs

/root/repo/target/debug/deps/gpu_inference-e7d33ca48f00fc8f: examples/gpu_inference.rs

examples/gpu_inference.rs:
