/root/repo/target/debug/deps/lineage_debugging-223fa89e413551f6.d: examples/lineage_debugging.rs

/root/repo/target/debug/deps/lineage_debugging-223fa89e413551f6: examples/lineage_debugging.rs

examples/lineage_debugging.rs:
