/root/repo/target/debug/deps/ops_test-128a04f2e165911a.d: crates/engine/tests/ops_test.rs Cargo.toml

/root/repo/target/debug/deps/libops_test-128a04f2e165911a.rmeta: crates/engine/tests/ops_test.rs Cargo.toml

crates/engine/tests/ops_test.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
