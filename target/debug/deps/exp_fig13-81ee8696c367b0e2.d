/root/repo/target/debug/deps/exp_fig13-81ee8696c367b0e2.d: crates/bench/src/bin/exp_fig13.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig13-81ee8696c367b0e2.rmeta: crates/bench/src/bin/exp_fig13.rs Cargo.toml

crates/bench/src/bin/exp_fig13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
