/root/repo/target/release/deps/memphis_sparksim-097650e6a417047e.d: crates/sparksim/src/lib.rs crates/sparksim/src/block_manager.rs crates/sparksim/src/broadcast.rs crates/sparksim/src/config.rs crates/sparksim/src/context.rs crates/sparksim/src/fault.rs crates/sparksim/src/rdd.rs crates/sparksim/src/scheduler.rs crates/sparksim/src/shuffle.rs crates/sparksim/src/stats.rs

/root/repo/target/release/deps/libmemphis_sparksim-097650e6a417047e.rlib: crates/sparksim/src/lib.rs crates/sparksim/src/block_manager.rs crates/sparksim/src/broadcast.rs crates/sparksim/src/config.rs crates/sparksim/src/context.rs crates/sparksim/src/fault.rs crates/sparksim/src/rdd.rs crates/sparksim/src/scheduler.rs crates/sparksim/src/shuffle.rs crates/sparksim/src/stats.rs

/root/repo/target/release/deps/libmemphis_sparksim-097650e6a417047e.rmeta: crates/sparksim/src/lib.rs crates/sparksim/src/block_manager.rs crates/sparksim/src/broadcast.rs crates/sparksim/src/config.rs crates/sparksim/src/context.rs crates/sparksim/src/fault.rs crates/sparksim/src/rdd.rs crates/sparksim/src/scheduler.rs crates/sparksim/src/shuffle.rs crates/sparksim/src/stats.rs

crates/sparksim/src/lib.rs:
crates/sparksim/src/block_manager.rs:
crates/sparksim/src/broadcast.rs:
crates/sparksim/src/config.rs:
crates/sparksim/src/context.rs:
crates/sparksim/src/fault.rs:
crates/sparksim/src/rdd.rs:
crates/sparksim/src/scheduler.rs:
crates/sparksim/src/shuffle.rs:
crates/sparksim/src/stats.rs:
