/root/repo/target/release/deps/exp_fig13-a9fba360bd145442.d: crates/bench/src/bin/exp_fig13.rs

/root/repo/target/release/deps/exp_fig13-a9fba360bd145442: crates/bench/src/bin/exp_fig13.rs

crates/bench/src/bin/exp_fig13.rs:
