/root/repo/target/release/deps/exp_table2-17a7b857aa05b9a7.d: crates/bench/src/bin/exp_table2.rs

/root/repo/target/release/deps/exp_table2-17a7b857aa05b9a7: crates/bench/src/bin/exp_table2.rs

crates/bench/src/bin/exp_table2.rs:
