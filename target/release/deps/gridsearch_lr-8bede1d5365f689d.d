/root/repo/target/release/deps/gridsearch_lr-8bede1d5365f689d.d: examples/gridsearch_lr.rs

/root/repo/target/release/deps/gridsearch_lr-8bede1d5365f689d: examples/gridsearch_lr.rs

examples/gridsearch_lr.rs:
