/root/repo/target/release/deps/memphis_core-8f0fa250542f3652.d: crates/core/src/lib.rs crates/core/src/backend.rs crates/core/src/cache/mod.rs crates/core/src/cache/backends.rs crates/core/src/cache/config.rs crates/core/src/cache/entry.rs crates/core/src/cache/gpu.rs crates/core/src/cache/spark.rs crates/core/src/lineage.rs crates/core/src/recompute.rs crates/core/src/stats.rs

/root/repo/target/release/deps/libmemphis_core-8f0fa250542f3652.rlib: crates/core/src/lib.rs crates/core/src/backend.rs crates/core/src/cache/mod.rs crates/core/src/cache/backends.rs crates/core/src/cache/config.rs crates/core/src/cache/entry.rs crates/core/src/cache/gpu.rs crates/core/src/cache/spark.rs crates/core/src/lineage.rs crates/core/src/recompute.rs crates/core/src/stats.rs

/root/repo/target/release/deps/libmemphis_core-8f0fa250542f3652.rmeta: crates/core/src/lib.rs crates/core/src/backend.rs crates/core/src/cache/mod.rs crates/core/src/cache/backends.rs crates/core/src/cache/config.rs crates/core/src/cache/entry.rs crates/core/src/cache/gpu.rs crates/core/src/cache/spark.rs crates/core/src/lineage.rs crates/core/src/recompute.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/backend.rs:
crates/core/src/cache/mod.rs:
crates/core/src/cache/backends.rs:
crates/core/src/cache/config.rs:
crates/core/src/cache/entry.rs:
crates/core/src/cache/gpu.rs:
crates/core/src/cache/spark.rs:
crates/core/src/lineage.rs:
crates/core/src/recompute.rs:
crates/core/src/stats.rs:
