/root/repo/target/release/deps/exp_fig11-13c90d54fa14bf21.d: crates/bench/src/bin/exp_fig11.rs

/root/repo/target/release/deps/exp_fig11-13c90d54fa14bf21: crates/bench/src/bin/exp_fig11.rs

crates/bench/src/bin/exp_fig11.rs:
