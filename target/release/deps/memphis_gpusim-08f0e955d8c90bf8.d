/root/repo/target/release/deps/memphis_gpusim-08f0e955d8c90bf8.d: crates/gpusim/src/lib.rs crates/gpusim/src/arena.rs crates/gpusim/src/config.rs crates/gpusim/src/device.rs crates/gpusim/src/stats.rs

/root/repo/target/release/deps/libmemphis_gpusim-08f0e955d8c90bf8.rlib: crates/gpusim/src/lib.rs crates/gpusim/src/arena.rs crates/gpusim/src/config.rs crates/gpusim/src/device.rs crates/gpusim/src/stats.rs

/root/repo/target/release/deps/libmemphis_gpusim-08f0e955d8c90bf8.rmeta: crates/gpusim/src/lib.rs crates/gpusim/src/arena.rs crates/gpusim/src/config.rs crates/gpusim/src/device.rs crates/gpusim/src/stats.rs

crates/gpusim/src/lib.rs:
crates/gpusim/src/arena.rs:
crates/gpusim/src/config.rs:
crates/gpusim/src/device.rs:
crates/gpusim/src/stats.rs:
