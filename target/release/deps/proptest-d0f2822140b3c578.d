/root/repo/target/release/deps/proptest-d0f2822140b3c578.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d0f2822140b3c578.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d0f2822140b3c578.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
