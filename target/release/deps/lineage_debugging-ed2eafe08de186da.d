/root/repo/target/release/deps/lineage_debugging-ed2eafe08de186da.d: examples/lineage_debugging.rs

/root/repo/target/release/deps/lineage_debugging-ed2eafe08de186da: examples/lineage_debugging.rs

examples/lineage_debugging.rs:
