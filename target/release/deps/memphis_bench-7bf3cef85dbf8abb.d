/root/repo/target/release/deps/memphis_bench-7bf3cef85dbf8abb.d: crates/bench/src/lib.rs crates/bench/src/golden.rs

/root/repo/target/release/deps/libmemphis_bench-7bf3cef85dbf8abb.rlib: crates/bench/src/lib.rs crates/bench/src/golden.rs

/root/repo/target/release/deps/libmemphis_bench-7bf3cef85dbf8abb.rmeta: crates/bench/src/lib.rs crates/bench/src/golden.rs

crates/bench/src/lib.rs:
crates/bench/src/golden.rs:
