/root/repo/target/release/deps/memphis_workloads-8061fcd635689a4b.d: crates/workloads/src/lib.rs crates/workloads/src/builtins.rs crates/workloads/src/data.rs crates/workloads/src/harness.rs crates/workloads/src/pipelines/mod.rs crates/workloads/src/pipelines/clean.rs crates/workloads/src/pipelines/en2de.rs crates/workloads/src/pipelines/hband.rs crates/workloads/src/pipelines/hcv.rs crates/workloads/src/pipelines/hdrop.rs crates/workloads/src/pipelines/pnmf.rs crates/workloads/src/pipelines/tlvis.rs

/root/repo/target/release/deps/libmemphis_workloads-8061fcd635689a4b.rlib: crates/workloads/src/lib.rs crates/workloads/src/builtins.rs crates/workloads/src/data.rs crates/workloads/src/harness.rs crates/workloads/src/pipelines/mod.rs crates/workloads/src/pipelines/clean.rs crates/workloads/src/pipelines/en2de.rs crates/workloads/src/pipelines/hband.rs crates/workloads/src/pipelines/hcv.rs crates/workloads/src/pipelines/hdrop.rs crates/workloads/src/pipelines/pnmf.rs crates/workloads/src/pipelines/tlvis.rs

/root/repo/target/release/deps/libmemphis_workloads-8061fcd635689a4b.rmeta: crates/workloads/src/lib.rs crates/workloads/src/builtins.rs crates/workloads/src/data.rs crates/workloads/src/harness.rs crates/workloads/src/pipelines/mod.rs crates/workloads/src/pipelines/clean.rs crates/workloads/src/pipelines/en2de.rs crates/workloads/src/pipelines/hband.rs crates/workloads/src/pipelines/hcv.rs crates/workloads/src/pipelines/hdrop.rs crates/workloads/src/pipelines/pnmf.rs crates/workloads/src/pipelines/tlvis.rs

crates/workloads/src/lib.rs:
crates/workloads/src/builtins.rs:
crates/workloads/src/data.rs:
crates/workloads/src/harness.rs:
crates/workloads/src/pipelines/mod.rs:
crates/workloads/src/pipelines/clean.rs:
crates/workloads/src/pipelines/en2de.rs:
crates/workloads/src/pipelines/hband.rs:
crates/workloads/src/pipelines/hcv.rs:
crates/workloads/src/pipelines/hdrop.rs:
crates/workloads/src/pipelines/pnmf.rs:
crates/workloads/src/pipelines/tlvis.rs:
