/root/repo/target/release/deps/exp_ablations-00f182485ecf8833.d: crates/bench/src/bin/exp_ablations.rs

/root/repo/target/release/deps/exp_ablations-00f182485ecf8833: crates/bench/src/bin/exp_ablations.rs

crates/bench/src/bin/exp_ablations.rs:
