/root/repo/target/release/deps/memphis_engine-dabb5bb3da7777be.d: crates/engine/src/lib.rs crates/engine/src/compiler.rs crates/engine/src/config.rs crates/engine/src/context.rs crates/engine/src/cost.rs crates/engine/src/interp.rs crates/engine/src/ops.rs crates/engine/src/plan.rs crates/engine/src/recompute_exec.rs crates/engine/src/value.rs

/root/repo/target/release/deps/libmemphis_engine-dabb5bb3da7777be.rlib: crates/engine/src/lib.rs crates/engine/src/compiler.rs crates/engine/src/config.rs crates/engine/src/context.rs crates/engine/src/cost.rs crates/engine/src/interp.rs crates/engine/src/ops.rs crates/engine/src/plan.rs crates/engine/src/recompute_exec.rs crates/engine/src/value.rs

/root/repo/target/release/deps/libmemphis_engine-dabb5bb3da7777be.rmeta: crates/engine/src/lib.rs crates/engine/src/compiler.rs crates/engine/src/config.rs crates/engine/src/context.rs crates/engine/src/cost.rs crates/engine/src/interp.rs crates/engine/src/ops.rs crates/engine/src/plan.rs crates/engine/src/recompute_exec.rs crates/engine/src/value.rs

crates/engine/src/lib.rs:
crates/engine/src/compiler.rs:
crates/engine/src/config.rs:
crates/engine/src/context.rs:
crates/engine/src/cost.rs:
crates/engine/src/interp.rs:
crates/engine/src/ops.rs:
crates/engine/src/plan.rs:
crates/engine/src/recompute_exec.rs:
crates/engine/src/value.rs:
