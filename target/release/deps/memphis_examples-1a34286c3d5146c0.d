/root/repo/target/release/deps/memphis_examples-1a34286c3d5146c0.d: examples/lib.rs

/root/repo/target/release/deps/libmemphis_examples-1a34286c3d5146c0.rlib: examples/lib.rs

/root/repo/target/release/deps/libmemphis_examples-1a34286c3d5146c0.rmeta: examples/lib.rs

examples/lib.rs:
