/root/repo/target/release/deps/exp_fig12-b9475cee0b81c8b2.d: crates/bench/src/bin/exp_fig12.rs

/root/repo/target/release/deps/exp_fig12-b9475cee0b81c8b2: crates/bench/src/bin/exp_fig12.rs

crates/bench/src/bin/exp_fig12.rs:
