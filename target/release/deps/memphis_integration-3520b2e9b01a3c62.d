/root/repo/target/release/deps/memphis_integration-3520b2e9b01a3c62.d: tests/lib.rs

/root/repo/target/release/deps/libmemphis_integration-3520b2e9b01a3c62.rlib: tests/lib.rs

/root/repo/target/release/deps/libmemphis_integration-3520b2e9b01a3c62.rmeta: tests/lib.rs

tests/lib.rs:
