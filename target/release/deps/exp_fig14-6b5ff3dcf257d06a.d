/root/repo/target/release/deps/exp_fig14-6b5ff3dcf257d06a.d: crates/bench/src/bin/exp_fig14.rs

/root/repo/target/release/deps/exp_fig14-6b5ff3dcf257d06a: crates/bench/src/bin/exp_fig14.rs

crates/bench/src/bin/exp_fig14.rs:
