/root/repo/target/release/deps/gpu_inference-8909d75652f3165f.d: examples/gpu_inference.rs

/root/repo/target/release/deps/gpu_inference-8909d75652f3165f: examples/gpu_inference.rs

examples/gpu_inference.rs:
