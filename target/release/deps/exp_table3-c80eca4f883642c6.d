/root/repo/target/release/deps/exp_table3-c80eca4f883642c6.d: crates/bench/src/bin/exp_table3.rs

/root/repo/target/release/deps/exp_table3-c80eca4f883642c6: crates/bench/src/bin/exp_table3.rs

crates/bench/src/bin/exp_table3.rs:
