/root/repo/target/release/deps/exp_fig2-200644a5c94e4728.d: crates/bench/src/bin/exp_fig2.rs

/root/repo/target/release/deps/exp_fig2-200644a5c94e4728: crates/bench/src/bin/exp_fig2.rs

crates/bench/src/bin/exp_fig2.rs:
