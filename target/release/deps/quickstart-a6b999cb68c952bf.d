/root/repo/target/release/deps/quickstart-a6b999cb68c952bf.d: examples/quickstart.rs

/root/repo/target/release/deps/quickstart-a6b999cb68c952bf: examples/quickstart.rs

examples/quickstart.rs:
