//! Script frontend integration: the DML-like corpus, the differential
//! fuzzer, span-carrying diagnostics, and the serve-layer script
//! pipelines — chaos-seeded like `concurrency.rs` (`CHAOS_SEED` selects
//! the fuzzer seed; `ci.sh` runs 42 and 1337).
//!
//! The contract under test: scripts are *workloads as data*. A corpus
//! script must lower to the same interned lineage and bit-identical
//! sink digests as its hand-built twin (covered in
//! `memphis_workloads::script` unit tests); here we pin the cross-crate
//! surface — parse → print → parse stability all the way down to the
//! lowered program, digest stability across processes via the committed
//! gate baseline, differential agreement for generated programs, and
//! rejected programs failing with a line:col position rather than a
//! panic.

use memphis_core::{CacheConfig, CachePolicy, LineageCache};
use memphis_workloads::pipelines::{session_context, SCRIPT_SESSION_MIX};
use memphis_workloads::script::{
    corpus_source, differential_digests, digests_agree, fuzz_campaign, run_corpus, CORPUS,
};
use std::sync::Arc;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

// ----------------------------------------------------------------------
// Round-trip stability
// ----------------------------------------------------------------------

#[test]
fn corpus_round_trips_through_the_pretty_printer() {
    for (name, src) in CORPUS {
        let ast = memphis_script::parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let printed = memphis_script::print_source(&ast);
        let ast2 = memphis_script::parse(&printed)
            .unwrap_or_else(|e| panic!("{name}: reparse of printed source: {e}\n{printed}"));
        // Printing is a fixpoint: print(parse(print(x))) == print(x).
        assert_eq!(
            printed,
            memphis_script::print_source(&ast2),
            "{name}: printer is not a fixpoint"
        );
        // And the lowered programs are identical, which is what makes
        // the interned LineageIds identical at runtime.
        let c1 = memphis_script::compile(src).unwrap();
        let c2 = memphis_script::compile(&printed).unwrap();
        assert_eq!(
            memphis_script::canonical_debug(&c1.program),
            memphis_script::canonical_debug(&c2.program),
            "{name}: round-trip changed the lowered program"
        );
        assert_eq!(c1.reads, c2.reads, "{name}: read specs drifted");
        assert_eq!(c1.prints, c2.prints, "{name}: sink order drifted");
    }
}

// ----------------------------------------------------------------------
// Differential execution
// ----------------------------------------------------------------------

#[test]
fn corpus_differential_is_digest_identical_in_every_configuration() {
    for (name, src) in CORPUS {
        let c = memphis_script::compile(src).unwrap();
        let digests = differential_digests(&c, &format!("it_{name}")).unwrap();
        assert_eq!(digests.len(), 4, "{name}: expected all four configs");
        assert!(digests_agree(&digests), "{name}: {digests:?}");
    }
}

#[test]
fn chaos_seeded_fuzz_slice_finds_no_divergence() {
    let seed = chaos_seed();
    let report = fuzz_campaign(seed, 12, None);
    assert_eq!(report.programs, 12);
    assert_eq!(report.divergences, 0, "seed {seed}: {report:?}");
    assert!(report.lowered_nodes > 0);

    // Same seed, same campaign: counter-exact.
    let again = fuzz_campaign(seed, 12, None);
    assert_eq!(report.lowered_nodes, again.lowered_nodes, "seed {seed}");
}

// ----------------------------------------------------------------------
// Span-carrying diagnostics: every rejection names a source position.
// ----------------------------------------------------------------------

#[test]
fn rejected_programs_carry_line_and_column() {
    // (source, expected line, message fragment)
    let cases: &[(&str, u32, &str)] = &[
        // Lexer: an illegal character.
        ("A = rand(2, 2, 0, 1, 1);\nB = A ? 2;\n", 2, "character"),
        // Parser: unbalanced parenthesis.
        ("A = rand(2, 2, 0, 1, 1;\n", 1, "expected"),
        // Type/lowering: undefined variable.
        ("B = A + 1;\n", 1, "A"),
        // Type/lowering: shape mismatch in matrix multiply.
        (
            "A = rand(2, 3, 0, 1, 1);\nB = rand(2, 3, 0, 1, 2);\nC = A %*% B;\n",
            3,
            "",
        ),
        // Arity: rand with too few arguments.
        ("A = rand(2, 2);\n", 1, "rand"),
    ];
    for (src, line, fragment) in cases {
        let err = memphis_script::compile(src).expect_err(&format!("must reject:\n{src}"));
        assert_eq!(
            err.span.line, *line,
            "wrong line for {src:?}: {err} (expected line {line})"
        );
        assert!(err.span.col >= 1, "column must be 1-based: {err}");
        assert!(
            err.message.contains(fragment),
            "diagnostic {err:?} should mention {fragment:?} for {src:?}"
        );
        // The Display form is what users see: "line L:C: message".
        let shown = err.to_string();
        assert!(
            shown.starts_with(&format!("line {}:", line)),
            "display form must lead with the position: {shown}"
        );
    }
}

// ----------------------------------------------------------------------
// Serve-layer script pipelines
// ----------------------------------------------------------------------

#[test]
fn script_pipelines_serve_as_tenants_over_a_shared_cache() {
    let cache = Arc::new(LineageCache::new(CacheConfig::test()));
    let mut first = Vec::new();
    for kind in SCRIPT_SESSION_MIX {
        assert!(
            corpus_source(kind).is_some(),
            "{kind} must be a corpus script"
        );
        let mut ctx = session_context(&cache);
        first.push(run_corpus(&mut ctx, kind).unwrap());
    }
    // A second tenant wave over the same shared cache reuses lineage
    // across sessions without perturbing any checksum.
    for (i, kind) in SCRIPT_SESSION_MIX.iter().enumerate() {
        let mut ctx = session_context(&cache);
        let again = run_corpus(&mut ctx, kind).unwrap();
        assert_eq!(
            again.to_bits(),
            first[i].to_bits(),
            "{kind}: checksum drifted across serving sessions"
        );
    }
    let stats = cache.stats();
    assert!(
        stats.hits_local > 0,
        "cross-session script reuse must hit the shared cache: {stats:?}"
    );
}

#[test]
fn delayed_hits_policy_never_changes_script_results() {
    // CachePolicy is a cost-model switch, not a correctness switch —
    // also for scripted tenants.
    for kind in SCRIPT_SESSION_MIX {
        let mut cfg = CacheConfig::test();
        cfg.policy = CachePolicy::DelayedHits;
        let cache = Arc::new(LineageCache::new(cfg));
        let mut ctx = session_context(&cache);
        let delayed = run_corpus(&mut ctx, kind).unwrap();

        let cache = Arc::new(LineageCache::new(CacheConfig::test()));
        let mut ctx = session_context(&cache);
        let paper = run_corpus(&mut ctx, kind).unwrap();
        assert_eq!(delayed.to_bits(), paper.to_bits(), "{kind}");
    }
}
