//! Property-based tests (proptest) over the core data structures and
//! invariants: lineage equality semantics, cache consistency, the GPU
//! arena allocator, matrix kernels, and blocked-matrix roundtrips.

use memphis_core::cache::config::CacheConfig;
use memphis_core::cache::entry::CachedObject;
use memphis_core::cache::LineageCache;
use memphis_core::lineage::{deserialize, lineage_eq, serialize, LItem, LineageItem};
use memphis_gpusim::Arena;
use memphis_matrix::ops::agg::{aggregate, AggOp};
use memphis_matrix::ops::binary::{binary, BinaryOp};
use memphis_matrix::ops::matmul::{matmul, matmul_parallel, tsmm};
use memphis_matrix::ops::reorg::{rbind, slice_rows, transpose};
use memphis_matrix::rand_gen::rand_uniform;
use memphis_matrix::{io as mio, BlockedMatrix, Matrix};
use proptest::prelude::*;

// ----------------------------------------------------------------------
// Lineage invariants
// ----------------------------------------------------------------------

/// Random lineage DAG described by a recipe of (opcode idx, input picks).
fn build_dag(recipe: &[(u8, u8, u8)]) -> LItem {
    let mut nodes: Vec<LItem> = vec![LineageItem::leaf("X"), LineageItem::leaf("y")];
    for &(op, a, b) in recipe {
        let opcode = ["ba+*", "+", "tsmm", "r'"][op as usize % 4];
        let ia = nodes[a as usize % nodes.len()].clone();
        let inputs = if opcode == "tsmm" || opcode == "r'" {
            vec![ia]
        } else {
            vec![ia, nodes[b as usize % nodes.len()].clone()]
        };
        nodes.push(LineageItem::new(opcode, vec![], inputs));
    }
    nodes.last().expect("non-empty").clone()
}

proptest! {
    #[test]
    fn lineage_eq_is_reflexive_and_rebuild_stable(
        recipe in proptest::collection::vec((0u8..4, 0u8..16, 0u8..16), 1..12)
    ) {
        let a = build_dag(&recipe);
        let b = build_dag(&recipe);
        prop_assert!(lineage_eq(&a, &a));
        prop_assert!(lineage_eq(&a, &b), "same recipe must be equal");
        prop_assert_eq!(a.hash, b.hash);
        prop_assert_eq!(a.height, b.height);
    }

    #[test]
    fn lineage_serialize_roundtrip(
        recipe in proptest::collection::vec((0u8..4, 0u8..16, 0u8..16), 1..12)
    ) {
        let a = build_dag(&recipe);
        let back = deserialize(&serialize(&a)).expect("parse");
        prop_assert!(lineage_eq(&a, &back));
    }

    #[test]
    fn different_leaf_names_never_collide(name in "[a-z]{1,12}") {
        let a = LineageItem::leaf(&name);
        let b = LineageItem::leaf(&format!("{name}!"));
        prop_assert!(!lineage_eq(&a, &b));
    }

    #[test]
    fn interning_is_structural(
        recipe in proptest::collection::vec((0u8..4, 0u8..16, 0u8..16), 1..12)
    ) {
        // Same recipe → same interned identity, both at the root and
        // for every node rebuilt independently.
        let a = build_dag(&recipe);
        let b = build_dag(&recipe);
        prop_assert_eq!(a.lid, b.lid);
        prop_assert_eq!(a.lid.content_hash(), a.hash);
        // A structurally different DAG (one extra node) gets a
        // different id — never a silent collision.
        let c = LineageItem::new("+", vec![], vec![a.clone(), LineageItem::leaf("X")]);
        prop_assert_ne!(c.lid, a.lid);
    }

    #[test]
    fn concurrent_interning_agrees_across_threads(
        recipe in proptest::collection::vec((0u8..4, 0u8..16, 0u8..16), 1..8),
        nthreads in 8usize..33,
    ) {
        // 8–32 threads racing to construct the same DAG all observe one
        // LineageId, and resolving it yields a structurally equal item.
        let ids: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..nthreads)
                .map(|_| s.spawn(|| build_dag(&recipe).lid))
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panic")).collect()
        });
        let first = ids[0];
        prop_assert!(ids.iter().all(|&id| id == first), "threads must agree on the id");
        let canonical = memphis_core::resolve(first);
        prop_assert!(lineage_eq(&canonical, &build_dag(&recipe)));
    }
}

// ----------------------------------------------------------------------
// Cache invariants
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn cache_returns_exactly_what_was_put(vals in proptest::collection::vec(-1e6f64..1e6, 1..40)) {
        let cache = LineageCache::new(CacheConfig::test());
        let items: Vec<LItem> = (0..vals.len())
            .map(|i| LineageItem::new("op", vec![i.to_string()], vec![]))
            .collect();
        for (item, &v) in items.iter().zip(&vals) {
            cache.put(item, CachedObject::Scalar(v), 1.0, 16, 1);
        }
        for (item, &v) in items.iter().zip(&vals) {
            match cache.probe(item).expect("hit").object {
                CachedObject::Scalar(got) => prop_assert_eq!(got, v),
                other => prop_assert!(false, "unexpected {:?}", other),
            }
        }
    }

    #[test]
    fn local_budget_is_never_exceeded(sizes in proptest::collection::vec(1usize..64, 1..30)) {
        let mut cfg = CacheConfig::test();
        cfg.local_budget = 16 << 10;
        let cache = LineageCache::new(cfg);
        for (i, s) in sizes.iter().enumerate() {
            let m = Matrix::zeros(*s, 8); // s*64 bytes
            let item = LineageItem::new("op", vec![i.to_string()], vec![]);
            cache.put(&item, CachedObject::Matrix(std::sync::Arc::new(m)), 1.0, s * 64, 1);
            prop_assert!(cache.local_used() <= 16 << 10);
        }
    }
}

// ----------------------------------------------------------------------
// Arena allocator invariants
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn arena_accounting_is_exact(ops in proptest::collection::vec((1usize..512, any::<bool>()), 1..60)) {
        let mut arena = Arena::new(8192);
        let mut live: Vec<u64> = Vec::new();
        let mut live_bytes = 0usize;
        for (size, free_first) in ops {
            if free_first && !live.is_empty() {
                let addr = live.swap_remove(0);
                let freed = arena.free(addr).expect("live allocation");
                live_bytes -= freed;
            }
            if let Some(addr) = arena.alloc(size) {
                live.push(addr);
                live_bytes += size;
            }
            prop_assert_eq!(arena.used(), live_bytes);
            prop_assert_eq!(arena.used() + arena.free_bytes(), 8192);
            prop_assert!(arena.largest_free_range() <= arena.free_bytes());
        }
        // Free everything: the arena must coalesce back to one range.
        for addr in live {
            arena.free(addr).expect("live allocation");
        }
        prop_assert_eq!(arena.free_bytes(), 8192);
        prop_assert_eq!(arena.fragments(), 1);
    }
}

// ----------------------------------------------------------------------
// Matrix kernel invariants
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn matmul_is_associative_with_identity(rows in 1usize..20, cols in 1usize..20, seed in 0u64..1000) {
        let a = rand_uniform(rows, cols, -1.0, 1.0, seed);
        let i = Matrix::identity(cols);
        let ai = matmul(&a, &i).unwrap();
        prop_assert!(ai.approx_eq(&a, 1e-12));
    }

    #[test]
    fn parallel_matmul_matches_sequential(m in 1usize..40, k in 1usize..20, n in 1usize..30, seed in 0u64..1000) {
        let a = rand_uniform(m, k, -1.0, 1.0, seed);
        let b = rand_uniform(k, n, -1.0, 1.0, seed + 1);
        let s = matmul(&a, &b).unwrap();
        let p = matmul_parallel(&a, &b, 4).unwrap();
        prop_assert!(p.approx_eq(&s, 0.0));
    }

    #[test]
    fn tsmm_is_symmetric_psd_diagonal(rows in 1usize..40, cols in 1usize..12, seed in 0u64..1000) {
        let x = rand_uniform(rows, cols, -2.0, 2.0, seed);
        let g = tsmm(&x).unwrap();
        for i in 0..cols {
            prop_assert!(g.at(i, i) >= -1e-12, "diagonal must be >= 0");
            for j in 0..cols {
                prop_assert!((g.at(i, j) - g.at(j, i)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn transpose_involution(rows in 1usize..30, cols in 1usize..30, seed in 0u64..1000) {
        let m = rand_uniform(rows, cols, -5.0, 5.0, seed);
        prop_assert!(transpose(&transpose(&m)).approx_eq(&m, 0.0));
    }

    #[test]
    fn add_commutes_sub_cancels(rows in 1usize..20, cols in 1usize..20, seed in 0u64..1000) {
        let a = rand_uniform(rows, cols, -3.0, 3.0, seed);
        let b = rand_uniform(rows, cols, -3.0, 3.0, seed + 1);
        let ab = binary(&a, &b, BinaryOp::Add).unwrap();
        let ba = binary(&b, &a, BinaryOp::Add).unwrap();
        prop_assert!(ab.approx_eq(&ba, 0.0));
        let zero = binary(&a, &a, BinaryOp::Sub).unwrap();
        prop_assert!((aggregate(&zero, AggOp::SumSq).unwrap()).abs() < 1e-18);
    }

    #[test]
    fn slice_rbind_roundtrip(rows in 2usize..40, cols in 1usize..10, seed in 0u64..1000) {
        let m = rand_uniform(rows, cols, -1.0, 1.0, seed);
        let cut = rows / 2;
        let top = slice_rows(&m, 0, cut).unwrap();
        let bottom = slice_rows(&m, cut, rows).unwrap();
        prop_assert!(rbind(&top, &bottom).unwrap().approx_eq(&m, 0.0));
    }

    #[test]
    fn blocked_roundtrip(rows in 1usize..50, cols in 1usize..20, blen in 1usize..16, seed in 0u64..1000) {
        let m = rand_uniform(rows, cols, -1.0, 1.0, seed);
        let b = BlockedMatrix::from_dense(&m, blen).unwrap();
        prop_assert!(b.to_dense().unwrap().approx_eq(&m, 0.0));
    }

    #[test]
    fn matrix_bytes_roundtrip(rows in 0usize..20, cols in 0usize..20, seed in 0u64..1000) {
        let m = rand_uniform(rows, cols, -1e9, 1e9, seed);
        let back = mio::from_bytes(mio::to_bytes(&m)).unwrap();
        prop_assert_eq!(m, back);
    }
}
