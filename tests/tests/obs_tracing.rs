//! Integration tests for the memphis-obs tracing subsystem: the golden
//! schema-checked Chrome trace of a deterministic workload, the
//! async-prefetch overlap assertions (prefetch runs concurrent with
//! compute; the synchronous plan serializes), and the disabled-mode
//! zero-cost guarantee on the interpreter hot path.

use memphis_core::cache::config::CacheConfig;
use memphis_engine::{EngineConfig, ReuseMode};
use memphis_matrix::ops::binary::BinaryOp;
use memphis_matrix::rand_gen::rand_uniform;
use memphis_obs::{analysis, cat, export};
use memphis_sparksim::SparkConfig;
use memphis_workloads::harness::Backends;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The recorder is process-global; tests that enable/reset/drain it must
/// not interleave.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Minimal JSON well-formedness scan: balanced braces/brackets outside
/// string literals, ending balanced at depth zero.
fn json_balanced(s: &str) -> bool {
    let (mut depth, mut in_str, mut esc) = (0i64, false, false);
    for c in s.chars() {
        if in_str {
            match (esc, c) {
                (true, _) => esc = false,
                (false, '\\') => esc = true,
                (false, '"') => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    depth == 0 && !in_str
}

#[test]
fn golden_chrome_trace_schema_and_counts() {
    let _g = lock();
    memphis_obs::enable();
    memphis_obs::reset();

    // Deterministic local workload: 8 distinct ops, then the same 8
    // again — the second round hits the cache.
    let backends = Backends::local();
    let mut ctx = backends.make_ctx(
        EngineConfig::test().with_reuse(ReuseMode::Memphis),
        CacheConfig::test(),
    );
    let x = rand_uniform(16, 8, -1.0, 1.0, 7);
    ctx.read("X", x, "obs/X").unwrap();
    for _round in 0..2 {
        for i in 0..8 {
            ctx.binary_const("Y", "X", i as f64 + 1.0, BinaryOp::Mul, false)
                .unwrap();
        }
    }
    let stats = ctx.stats;
    assert_eq!(stats.instructions, 16, "2 rounds x 8 ops");
    assert_eq!(stats.reused, 8, "second round fully reused");

    let trace = memphis_obs::drain();
    memphis_obs::disable();

    // Span counts are a pure function of the script.
    let instr = trace.spans(cat::INTERP, "instr");
    let executes = trace.spans(cat::INTERP, "execute");
    let probes = trace.spans(cat::INTERP, "probe");
    let hits = trace.instants(cat::REUSE, "hit");
    let misses = trace.instants(cat::REUSE, "miss");
    assert_eq!(instr.len() as u64, stats.instructions);
    assert_eq!(executes.len() as u64, stats.instructions - stats.reused);
    assert_eq!(hits.len() as u64, stats.reused);
    assert_eq!(probes.len(), hits.len() + misses.len());
    // Cache-layer spans ride along under their own category.
    assert_eq!(
        trace.spans(cat::CACHE, "probe").len(),
        probes.len(),
        "every interpreter probe reaches the cache"
    );
    // Every execute nests inside its instruction span.
    for e in &executes {
        assert!(instr
            .iter()
            .any(|i| i.tid == e.tid && i.event.ts_ns <= e.event.ts_ns && e.end_ns() <= i.end_ns()));
    }

    // Chrome-trace export: schema envelope, metadata, span/instant
    // phases, categories, and counter track from a registry.
    let mut reg = memphis_obs::MetricsRegistry::new();
    reg.record("reuse", "hits_total", stats.reused);
    let json = export::chrome_trace(&trace, Some(&reg));
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
    assert!(json.ends_with("\n]}\n"));
    assert!(json_balanced(&json), "exported trace must be balanced JSON");
    assert!(json.contains(r#""ph":"M","pid":1,"name":"process_name","args":{"name":"memphis"}"#));
    assert!(json.contains(r#""name":"thread_name""#));
    assert!(json.contains(r#""ph":"X""#), "complete events present");
    assert!(json.contains(r#""ph":"i""#), "instant events present");
    assert!(json.contains(r#""cat":"interp""#));
    assert!(json.contains(r#""cat":"cache""#));
    // The instr span carries its opcode as the visible name suffix.
    assert!(json.contains(r#""args":{"kind":"instr"}"#));
    assert!(json.contains(r#""ph":"C""#), "counter track present");
    assert!(json.contains(r#""name":"reuse/hits_total""#));

    // The plain-text timeline renders every event plus busy totals.
    let text = export::text_timeline(&trace);
    assert!(text.contains("interp"));
    assert!(text.contains("-- per-category busy time"));
}

/// Builds a context whose Spark jobs take real (simulated) time, runs
/// the shared prefetch-vs-compute script, and returns the drained trace.
fn run_prefetch_script(async_ops: bool) -> memphis_obs::Trace {
    let mut sp = SparkConfig::local_test();
    // Make the collect job long enough to observe concurrency.
    sp.cost.task_launch = Duration::from_millis(2);
    sp.cost.job_launch = Duration::from_millis(1);
    let backends = Backends::with_spark(sp);
    let mut cfg = EngineConfig::test().with_reuse(ReuseMode::Memphis);
    cfg.spark_threshold_bytes = 1024; // 4 KB input → Spark-placed ops
    cfg.async_ops = async_ops;
    let mut ctx = backends.make_ctx(cfg, CacheConfig::test());

    let x = rand_uniform(64, 8, -1.0, 1.0, 11);
    ctx.read("X", x, "obs/prefetch/X").unwrap();
    // Spark-placed op: the result is a lazy RDD handle (no job yet).
    ctx.binary_const("XR", "X", 2.0, BinaryOp::Mul, false)
        .unwrap();
    // Async: spawns the collect job now. Sync: no-op.
    ctx.prefetch("XR").unwrap();

    // Driver-local compute for ~20 ms while the collect (if async) runs.
    let l = rand_uniform(16, 8, -1.0, 1.0, 13);
    ctx.read("L", l, "obs/prefetch/L").unwrap();
    let t0 = Instant::now();
    let mut i = 0u64;
    while t0.elapsed() < Duration::from_millis(20) {
        ctx.binary_const("Li", "L", i as f64 + 1.5, BinaryOp::Mul, false)
            .unwrap();
        i += 1;
    }

    // Materialize the distributed result (waits on the future when
    // async; runs the collect inline when sync).
    let m = ctx.get_matrix("XR").unwrap();
    assert!(m.values().iter().all(|v| v.is_finite()));
    memphis_obs::drain()
}

#[test]
fn async_prefetch_overlaps_compute_sync_does_not() {
    let _g = lock();
    memphis_obs::enable();

    // Async: the prefetch span must run concurrently with interpreter
    // compute. This fails if prefetch ever serializes behind compute.
    memphis_obs::reset();
    let trace = run_prefetch_script(true);
    let prefetch = trace.spans(cat::ASYNC, "prefetch_collect");
    assert_eq!(prefetch.len(), 1, "one async collect span");
    let compute = trace.spans(cat::INTERP, "execute");
    assert!(!compute.is_empty());
    let overlap = analysis::total_overlap_ns(&prefetch, &compute);
    assert!(
        overlap > 0,
        "async prefetch must overlap compute (prefetch busy {} ns, compute busy {} ns)",
        analysis::busy_ns(&prefetch),
        analysis::busy_ns(&compute)
    );
    // The scheduler's job span also runs concurrent with compute.
    let jobs = trace.spans(cat::SCHED, "job");
    assert!(!jobs.is_empty(), "the collect ran as a Spark job");
    assert!(analysis::total_overlap_ns(&jobs, &compute) > 0);

    // Sync: no prefetch span exists, and the collect's Spark job runs
    // strictly after the compute loop — zero overlap.
    memphis_obs::reset();
    let trace = run_prefetch_script(false);
    assert!(trace.spans(cat::ASYNC, "prefetch_collect").is_empty());
    let jobs = trace.spans(cat::SCHED, "job");
    let compute = trace.spans(cat::INTERP, "execute");
    assert!(!jobs.is_empty(), "the collect still ran as a Spark job");
    assert_eq!(
        analysis::total_overlap_ns(&jobs, &compute),
        0,
        "synchronous collect must serialize behind compute"
    );
    memphis_obs::disable();
}

#[test]
fn disabled_mode_adds_no_allocations_or_events() {
    let _g = lock();
    memphis_obs::disable();

    let threads_before = memphis_obs::thread_count();
    let recorded_before = memphis_obs::total_recorded();

    // Run the interpreter hot path on a fresh thread: with tracing off,
    // no thread buffer may be registered (no allocation) and no event
    // cursor may move.
    std::thread::spawn(|| {
        let backends = Backends::local();
        let mut ctx = backends.make_ctx(
            EngineConfig::test().with_reuse(ReuseMode::Memphis),
            CacheConfig::test(),
        );
        let x = rand_uniform(16, 8, -1.0, 1.0, 17);
        ctx.read("X", x, "obs/disabled/X").unwrap();
        for i in 0..32 {
            ctx.binary_const("Y", "X", i as f64 + 1.0, BinaryOp::Mul, false)
                .unwrap();
        }
        assert_eq!(ctx.stats.instructions, 32);
    })
    .join()
    .unwrap();

    assert_eq!(
        memphis_obs::thread_count(),
        threads_before,
        "disabled tracing must not register (allocate) thread buffers"
    );
    assert_eq!(
        memphis_obs::total_recorded(),
        recorded_before,
        "disabled tracing must not record events"
    );
}
