//! Cross-crate integration tests: full pipelines through every layer
//! (matrix kernels → simulated backends → lineage cache → engine →
//! workloads), exercising the paper's mechanisms end to end.

use memphis_core::cache::config::CacheConfig;
use memphis_core::cache::LineageCache;
use memphis_engine::{EngineConfig, ExecutionContext, ReuseMode};
use memphis_gpusim::{GpuConfig, GpuDevice};
use memphis_matrix::ops::binary::BinaryOp;
use memphis_matrix::ops::unary::UnaryOp;
use memphis_matrix::rand_gen::rand_uniform;
use memphis_sparksim::{SparkConfig, SparkContext};
use memphis_workloads::harness::Backends;
use memphis_workloads::pipelines::{clean, en2de, hband, hcv, hdrop, pnmf, tlvis};
use std::sync::Arc;

/// Full three-backend context: CPU + simulated Spark + simulated GPU.
fn full_ctx(threshold: usize, gpu_min: usize) -> (ExecutionContext, Backends) {
    let backends = Backends {
        sc: Some(SparkContext::new(SparkConfig::local_test())),
        gpu: Some(Arc::new(GpuDevice::new(GpuConfig::zero_cost(32 << 20)))),
    };
    let mut cfg = EngineConfig::test();
    cfg.spark_threshold_bytes = threshold;
    cfg.gpu_min_cells = gpu_min;
    let ctx = backends.make_ctx_sync(cfg, CacheConfig::test());
    (ctx, backends)
}

#[test]
fn hybrid_plan_crosses_all_three_backends() {
    // X large → Spark; dense matmul on collected result → GPU; final agg
    // local. One pipeline touches every backend, with reuse across a
    // repeat.
    let (mut ctx, backends) = full_ctx(1024, 64);
    let x = rand_uniform(64, 8, -1.0, 1.0, 1); // 4 KB > 1 KB → Spark
    ctx.read("X", x, "X").unwrap();
    for round in 0..2 {
        ctx.tsmm("G", "X").unwrap(); // Spark action
        ctx.matmul("GG", "G", "G").unwrap(); // 8x8=64 cells → GPU
        ctx.unary("R", "GG", UnaryOp::Relu).unwrap(); // stays on GPU
        ctx.agg(
            "s",
            "R",
            memphis_matrix::ops::agg::AggOp::Sum,
            memphis_engine::ops::AggDir::Full,
        )
        .unwrap();
        let s = ctx.get_scalar("s").unwrap();
        assert!(s.is_finite());
        if round == 1 {
            // Everything was reusable the second time.
            assert!(ctx.stats.reused >= 3, "reused={}", ctx.stats.reused);
        }
    }
    assert!(backends.sc.as_ref().unwrap().stats().jobs >= 1);
    assert!(backends.gpu.as_ref().unwrap().stats().kernels >= 2);
    let r = ctx.cache().stats();
    assert!(r.hits_local >= 1, "Spark action result reused locally");
    assert!(r.hits_gpu >= 1, "GPU pointer reused");
}

#[test]
fn eviction_pressure_preserves_correctness() {
    // A tiny 64 KB driver cache forces constant spilling; results must
    // stay correct and disk hits must occur.
    let backends = Backends::local();
    let mut cache_cfg = CacheConfig::test();
    cache_cfg.local_budget = 64 << 10;
    let mut ctx = backends.make_ctx(EngineConfig::test(), cache_cfg);
    let x = rand_uniform(64, 16, -1.0, 1.0, 2); // 8 KB each result
    ctx.read("X", x.clone(), "X").unwrap();
    let mut firsts = Vec::new();
    for round in 0..2 {
        for i in 0..24 {
            ctx.binary_const("Y", "X", i as f64 + 1.0, BinaryOp::Mul, false)
                .unwrap();
            let y = ctx.get_matrix("Y").unwrap();
            if round == 0 {
                firsts.push(y);
            } else {
                assert!(y.approx_eq(&firsts[i], 0.0), "i={i}");
            }
        }
    }
    let r = ctx.cache().stats();
    assert!(
        r.local_spills + r.local_drops > 0,
        "budget must force evictions (spill or drop): {r:?}"
    );
    assert!(r.hits_disk + r.hits_local > 0);
}

#[test]
fn gpu_memory_pressure_recycles_and_evicts_to_host() {
    // Device holds only ~3 results; the workload cycles through 8 cached
    // intermediates. Reuse falls back to host copies.
    let backends = Backends {
        sc: None,
        gpu: Some(Arc::new(GpuDevice::new(GpuConfig::zero_cost(100 << 10)))),
    };
    let mut cfg = EngineConfig::test();
    cfg.gpu_min_cells = 1;
    let mut ctx = backends.make_ctx(cfg, CacheConfig::test());
    let x = rand_uniform(64, 64, -1.0, 1.0, 3); // 32 KB on device
    ctx.read("X", x.clone(), "X").unwrap();
    for round in 0..2 {
        for i in 0..4 {
            ctx.binary_const("Xi", "X", i as f64 + 1.0, BinaryOp::Mul, false)
                .unwrap();
            ctx.tsmm("G", "Xi").unwrap(); // GPU op, 32 KB output
            let g = ctx.get_matrix("G").unwrap();
            assert!(g.values().iter().all(|v| v.is_finite()));
            ctx.remove("G");
            ctx.remove("Xi");
            let _ = round;
        }
        // X itself gets re-uploaded as needed; results must be exact.
    }
    let r = ctx.cache().stats();
    assert!(
        r.gpu_evicted_to_host + r.gpu_recycled + r.gpu_freed > 0,
        "device pressure must trigger memory management: {r:?}"
    );
}

#[test]
fn all_pipelines_run_on_full_backends() {
    // Smoke: every §6.3 pipeline completes on a three-backend context and
    // produces a finite result.
    let (mut ctx, _b) = full_ctx(64 << 10, 4096);
    assert!(hcv::run(&mut ctx, &hcv::HcvParams::small())
        .unwrap()
        .is_finite());
    assert!(pnmf::run(&mut ctx, &pnmf::PnmfParams::small())
        .unwrap()
        .is_finite());
    assert!(hband::run(&mut ctx, &hband::HbandParams::small())
        .unwrap()
        .is_finite());
    assert!(clean::run(&mut ctx, &clean::CleanParams::small())
        .unwrap()
        .is_finite());
    assert!(hdrop::run(&mut ctx, &hdrop::HdropParams::small())
        .unwrap()
        .is_finite());
    assert!(en2de::run(&mut ctx, &en2de::En2deParams::small())
        .unwrap()
        .is_finite());
    assert!(tlvis::run(&mut ctx, &tlvis::TlvisParams::small())
        .unwrap()
        .is_finite());
}

#[test]
fn async_actions_agree_with_sync() {
    // MPH with async operators produces identical results to MPH-NA.
    let run_once = |async_ops: bool| {
        let backends = Backends::with_spark(SparkConfig::local_test());
        let mut cfg = EngineConfig::test();
        cfg.spark_threshold_bytes = 512;
        cfg.async_ops = async_ops;
        let mut ctx = backends.make_ctx_sync(cfg, CacheConfig::test());
        let mut p = hcv::HcvParams::small();
        p.prefetch = async_ops;
        hcv::run(&mut ctx, &p).unwrap()
    };
    let sync = run_once(false);
    let asyn = run_once(true);
    assert!((sync - asyn).abs() < 1e-9, "{sync} vs {asyn}");
}

#[test]
fn reuse_modes_form_a_speed_hierarchy_of_work() {
    // Executed-instruction counts: Base >= HELIX >= LIMA >= MPH on a
    // reuse-heavy workload (executed = instructions - reused; function
    // reuse skips instruction submission entirely).
    let p = hband::HbandParams::small();
    let mut executed = Vec::new();
    for mode in [
        ReuseMode::None,
        ReuseMode::Helix,
        ReuseMode::Lima,
        ReuseMode::Memphis,
    ] {
        let backends = Backends::local();
        let mut ctx = backends.make_ctx(EngineConfig::test().with_reuse(mode), CacheConfig::test());
        hband::run(&mut ctx, &p).unwrap();
        executed.push(ctx.stats.instructions - ctx.stats.reused);
    }
    assert!(executed[0] >= executed[1], "{executed:?}");
    assert!(executed[1] >= executed[2], "{executed:?}");
    assert!(executed[2] >= executed[3], "{executed:?}");
}

#[test]
fn shared_cache_across_contexts() {
    // Two contexts over the same cache (concurrent sessions) share reuse.
    let cache = Arc::new(LineageCache::new(CacheConfig::test()));
    let mut a = ExecutionContext::new(EngineConfig::test(), cache.clone(), None, None);
    let mut b = ExecutionContext::new(EngineConfig::test(), cache, None, None);
    let x = rand_uniform(16, 4, 0.0, 1.0, 4);
    a.read("X", x.clone(), "shared/X").unwrap();
    a.tsmm("G", "X").unwrap();
    b.read("X", x, "shared/X").unwrap();
    b.tsmm("G", "X").unwrap();
    assert_eq!(b.stats.reused, 1, "second context reuses the first's work");
}
