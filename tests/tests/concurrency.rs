//! Concurrency stress suite for the sharded lineage cache: racing
//! prefetches collapse to one Spark job, concurrent probes of the same
//! lineage id compute exactly once, and a seeded multi-threaded
//! probe/put/evict mix preserves the coalescing and accounting
//! invariants at any thread count (run under `CHAOS_SEED` 42 and 1337
//! by `ci.sh`, parallel and single-threaded).

use memphis_core::cache::config::CacheConfig;
use memphis_core::cache::entry::CachedObject;
use memphis_core::cache::{LineageCache, Probed};
use memphis_core::lineage::{LItem, LineageItem};
use memphis_engine::{EngineConfig, ExecutionContext, ReuseMode};
use memphis_matrix::Matrix;
use memphis_sparksim::SparkConfig;
use memphis_workloads::harness::Backends;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn payload() -> Matrix {
    Matrix::zeros(16, 16)
}

// ----------------------------------------------------------------------
// Regression: racing prefetches of one lineage run one Spark job
// ----------------------------------------------------------------------

/// Before in-flight coalescing, two prefetch threads racing on the same
/// `collect` lineage both probed, both missed, and both ran the Spark
/// job (the old racing-prefetch double-compute). The in-flight marker
/// makes the loser block on the winner, so any number of sessions
/// prefetching the same RDD runs exactly one collect job.
#[test]
fn racing_prefetches_run_one_spark_job() {
    let sessions = 8;
    let b = Backends::with_spark(SparkConfig::local_test());
    let cache = {
        let mut c = memphis_core::cache::LineageCache::new(CacheConfig::test());
        c = c.with_spark(b.sc.clone().unwrap());
        Arc::new(c)
    };
    let (x, _) = memphis_workloads::data::regression(64, 8, 0.1, chaos_seed());
    let jobs_before = b.sc.as_ref().unwrap().stats().jobs;

    let start = Barrier::new(sessions);
    let checks: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..sessions)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let sc = b.sc.clone();
                let x = x.clone();
                let start = &start;
                s.spawn(move || {
                    let mut cfg = EngineConfig::test().with_reuse(ReuseMode::Memphis);
                    cfg.async_ops = true;
                    cfg.spark_threshold_bytes = 512; // X becomes an RDD
                    let mut ctx = ExecutionContext::new(cfg, cache, sc, None);
                    ctx.read("X", x, "conc/prefetch/X").unwrap();
                    start.wait();
                    ctx.prefetch("X").unwrap();
                    // Forces the future join (and the PUT of the result).
                    ctx.get_matrix("X").unwrap().get(0, 0).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let jobs = b.sc.as_ref().unwrap().stats().jobs - jobs_before;
    assert_eq!(
        jobs, 1,
        "{sessions} racing prefetches of one lineage must run exactly one collect job"
    );
    for c in &checks {
        assert_eq!(*c, checks[0], "all sessions must see the same matrix");
    }
    let s = cache.stats();
    assert_eq!(s.hits + s.misses, s.probes);
}

// ----------------------------------------------------------------------
// Regression: concurrent probes of one lineage id compute once
// ----------------------------------------------------------------------

/// The core double-compute fix: with every session probing the same item
/// simultaneously and the owner completing only once all others are
/// parked, exactly one computation runs and every other session gets a
/// coalesced hit.
#[test]
fn concurrent_probes_compute_exactly_once() {
    let sessions = 8usize;
    let cache = Arc::new(LineageCache::new(CacheConfig::test()));
    let item = LineageItem::leaf("conc/once");
    let computes = AtomicU64::new(0);
    let coalesced = AtomicU64::new(0);
    let start = Barrier::new(sessions);

    std::thread::scope(|s| {
        for _ in 0..sessions {
            let cache = Arc::clone(&cache);
            let item = item.clone();
            let computes = &computes;
            let coalesced = &coalesced;
            let start = &start;
            s.spawn(move || {
                start.wait();
                match cache.probe_or_begin(&item) {
                    Probed::Compute(g) => {
                        while cache.inflight_waiters(&item) < (sessions as u64) - 1 {
                            std::thread::yield_now();
                        }
                        computes.fetch_add(1, Ordering::Relaxed);
                        let m = payload();
                        let size = m.size_bytes();
                        cache.complete(g, CachedObject::Matrix(Arc::new(m)), 10.0, size, 1);
                    }
                    Probed::Coalesced(_) => {
                        coalesced.fetch_add(1, Ordering::Relaxed);
                    }
                    Probed::Hit(_) => panic!("no plain hit is possible before completion"),
                }
            });
        }
    });

    assert_eq!(computes.load(Ordering::Relaxed), 1);
    assert_eq!(coalesced.load(Ordering::Relaxed), sessions as u64 - 1);
    let s = cache.stats();
    assert_eq!(s.coalesced_hits, sessions as u64 - 1);
    assert_eq!(s.inflight_waits, sessions as u64 - 1);
    assert_eq!(s.inflight_begins, 1);
    assert_eq!(s.hits + s.misses, s.probes);
}

/// A dropped guard (failed computation) must wake waiters to retry, not
/// deadlock them or hand them a result.
#[test]
fn abandoned_computation_wakes_waiters_to_retry() {
    let cache = Arc::new(LineageCache::new(CacheConfig::test()));
    let item = LineageItem::leaf("conc/abandon");

    let guard = match cache.probe_or_begin(&item) {
        Probed::Compute(g) => g,
        _ => unreachable!("first probe owns the computation"),
    };
    let waiter = {
        let cache = Arc::clone(&cache);
        let item = item.clone();
        std::thread::spawn(move || match cache.probe_or_begin(&item) {
            // After the abandon, the waiter retries and becomes the
            // owner itself.
            Probed::Compute(g) => {
                let m = payload();
                let size = m.size_bytes();
                cache.complete(g, CachedObject::Matrix(Arc::new(m)), 1.0, size, 1);
                true
            }
            _ => false,
        })
    };
    while cache.inflight_waiters(&item) < 1 {
        std::thread::yield_now();
    }
    drop(guard); // abandon
    assert!(waiter.join().unwrap(), "waiter must take over ownership");
    assert!(cache.probe(&item).is_some());
    assert_eq!(cache.stats().inflight_abandoned, 1);
}

// ----------------------------------------------------------------------
// Seeded multi-threaded stress: mixed probe/put/evict under pressure
// ----------------------------------------------------------------------

/// Outcome of one stress run; the deterministic fields must not depend
/// on the thread count.
#[derive(Debug, PartialEq, Eq)]
struct StressOutcome {
    distinct_shared_computes: usize,
    concurrent_duplicates: u64,
    probes: u64,
    puts: u64,
}

/// Runs `threads` sessions over one cache: each sweeps a rotated order
/// of `shared` pinned items (compute-on-ownership) interleaved with
/// private churn puts against a budget sized to force eviction, plus
/// occasional unpins/re-pins of its least-recently-touched shared item.
fn stress(threads: usize, shared: usize, churn: usize, seed: u64) -> StressOutcome {
    let psize = payload().size_bytes();
    let mut cfg = CacheConfig::test();
    cfg.spill_to_disk = false;
    // Room for the pinned shared set plus one churn round; every thread
    // writes `churn` private entries, so the tier turns over many times
    // while always keeping more headroom than threads in flight.
    cfg.local_budget = psize * (shared + churn);
    let cache = Arc::new(LineageCache::new(cfg));

    let ledger: Mutex<(HashMap<usize, u64>, HashSet<usize>, u64)> =
        Mutex::new((HashMap::new(), HashSet::new(), 0));
    let start = Barrier::new(threads);

    std::thread::scope(|s| {
        for t in 0..threads {
            let cache = Arc::clone(&cache);
            let ledger = &ledger;
            let start = &start;
            s.spawn(move || {
                start.wait();
                for r in 0..churn {
                    // Shared sweep step: session-rotated index, order
                    // further scrambled by the seed.
                    let idx = (t + r + seed as usize) % shared;
                    let item: LItem = LineageItem::leaf(&format!("stress/shared{idx}"));
                    match cache.probe_or_begin(&item) {
                        Probed::Hit(_) | Probed::Coalesced(_) => {}
                        Probed::Compute(g) => {
                            {
                                let mut led = ledger.lock().unwrap();
                                if !led.1.insert(idx) {
                                    led.2 += 1;
                                }
                            }
                            let m = payload();
                            // Pinned completion: the shared set can never
                            // be evicted, so each id computes exactly once
                            // globally.
                            cache.complete_pinned(
                                g,
                                CachedObject::Matrix(Arc::new(m)),
                                50.0,
                                psize,
                            );
                            let mut led = ledger.lock().unwrap();
                            led.1.remove(&idx);
                            *led.0.entry(idx).or_insert(0) += 1;
                        }
                    }
                    // Private churn put: drives the local tier through
                    // its budget, forcing evictions of unpinned entries.
                    let churn_item = LineageItem::leaf(&format!("stress/churn_t{t}_r{r}"));
                    cache.put(
                        &churn_item,
                        CachedObject::Matrix(Arc::new(payload())),
                        1.0,
                        psize,
                        1,
                    );
                    let _ = cache.probe(&churn_item);
                }
            });
        }
    });

    // No deadlock (we got here), accounting within budget.
    for s in cache.backend_snapshots() {
        if s.budget != usize::MAX {
            assert!(s.used <= s.budget, "{} over budget", s.id);
        }
    }
    let stats = cache.stats();
    assert_eq!(stats.hits + stats.misses, stats.probes);
    // Pinned shared entries all survived the churn.
    for idx in 0..shared {
        assert!(
            cache
                .probe(&LineageItem::leaf(&format!("stress/shared{idx}")))
                .is_some(),
            "pinned shared{idx} must survive eviction pressure"
        );
    }

    let led = ledger.into_inner().unwrap();
    StressOutcome {
        distinct_shared_computes: led.0.len(),
        concurrent_duplicates: led.2,
        probes: stats.probes,
        puts: stats.puts,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// 8-32 threads, seeded: no concurrent duplicate computation of a
    /// shared id, every shared id computed exactly once (pinned entries
    /// defer eviction), and the deterministic counters depend only on
    /// the workload shape — not on the thread count or interleaving.
    #[test]
    fn stress_invariants_hold_at_any_thread_count(
        threads in 8usize..33,
        shared in 4usize..13,
    ) {
        let churn = 48;
        let seed = chaos_seed();
        let o = stress(threads, shared, churn, seed);
        prop_assert_eq!(o.concurrent_duplicates, 0);
        prop_assert_eq!(o.distinct_shared_computes, shared);
        // Per thread and round: one shared probe_or_begin, one churn
        // probe. Churn puts all count; shared completes count once per
        // distinct id.
        let expected_probes = (threads * churn * 2) as u64;
        prop_assert_eq!(o.probes, expected_probes);
        let expected_puts = (threads * churn + shared) as u64;
        prop_assert_eq!(o.puts, expected_puts);
    }
}

/// The same workload shape must produce identical deterministic
/// counters at different thread counts: per-thread work is fixed, so
/// the totals are pure functions of (threads, shared, churn) and any
/// interleaving-dependence would show up as a mismatch.
#[test]
fn stress_counters_invariant_across_thread_counts() {
    let seed = chaos_seed();
    let a = stress(8, 8, 32, seed);
    let b = stress(32, 8, 32, seed);
    assert_eq!(a.concurrent_duplicates, 0);
    assert_eq!(b.concurrent_duplicates, 0);
    assert_eq!(a.distinct_shared_computes, 8);
    assert_eq!(b.distinct_shared_computes, 8);
    // Probes and puts scale linearly in the thread count; normalized
    // per-thread they are identical.
    assert_eq!(a.probes / 8, b.probes / 32);
    assert_eq!((a.puts - 8) / 8, (b.puts - 8) / 32);
}

// ----------------------------------------------------------------------
// Observability: a waiter's inflight_wait span overlaps the owner
// ----------------------------------------------------------------------

/// Under a 2-session rendezvous, the waiter's `cache/inflight_wait` span
/// must exist and the waiter must register as a coalesced hit — the
/// span is what makes a stalled serving session diagnosable in traces.
#[test]
fn inflight_wait_span_recorded_for_coalesced_probe() {
    // The obs recorder is process-global; serialize with other obs
    // tests via a file lock on the recorder itself being drained.
    memphis_obs::enable();
    let _ = memphis_obs::drain();

    let cache = Arc::new(LineageCache::new(CacheConfig::test()));
    let item = LineageItem::leaf("conc/obs");
    let guard = match cache.probe_or_begin(&item) {
        Probed::Compute(g) => g,
        _ => unreachable!(),
    };
    let waiter = {
        let cache = Arc::clone(&cache);
        let item = item.clone();
        std::thread::spawn(move || matches!(cache.probe_or_begin(&item), Probed::Coalesced(_)))
    };
    while cache.inflight_waiters(&item) < 1 {
        std::thread::yield_now();
    }
    let m = payload();
    let size = m.size_bytes();
    cache.complete(guard, CachedObject::Matrix(Arc::new(m)), 1.0, size, 1);
    assert!(waiter.join().unwrap(), "second probe coalesces");

    let trace = memphis_obs::drain();
    memphis_obs::disable();
    // The recorder is process-global and sibling tests may run in
    // parallel, so assert presence, not exact counts.
    let waits = trace.spans(memphis_obs::cat::CACHE, "inflight_wait");
    assert!(!waits.is_empty(), "coalesced probe records a wait span");
    let probes = trace.spans(memphis_obs::cat::CACHE, "probe");
    assert!(probes.len() >= 2, "both probes traced");
}
