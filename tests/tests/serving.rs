//! Serving-layer integration: the scheduler's determinism contract and
//! the multi-tenant isolation acceptance property, chaos-seeded like
//! `concurrency.rs` (`CHAOS_SEED` selects the trace/fault seed; `ci.sh`
//! runs 42 and 1337).
//!
//! The contract under test: all scheduling decisions are made by the
//! dispatcher over virtual time, so every deterministic counter and
//! every per-request outcome is a pure function of (trace seed, config)
//! — the worker-thread count may only change wall clock.

use memphis_core::cache::config::CacheConfig;
use memphis_core::cache::LineageCache;
use memphis_serve::{
    open_loop, Outcome, Priority, Scheduler, ServeConfig, ServeReport, StreamSpec,
};
use memphis_sparksim::FaultPlan;
use proptest::prelude::*;
use std::sync::Arc;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// The hog tenant in [`spec`]'s stream (private items, 4x memory).
const HOG: u16 = 3;

fn spec(requests: usize) -> StreamSpec {
    StreamSpec {
        requests,
        deadline_slack: 3,
        ..StreamSpec::test()
    }
}

/// One serving run: a mixed multi-tenant open-loop trace with a
/// cache-hogging tenant under a soft quota, a local budget tight enough
/// to evict and pressurize the monitor, and a per-attempt transient
/// fault rate (the same shape as the committed bench gate).
fn run(seed: u64, requests: usize, workers: usize, fault_rate: f64) -> ServeReport {
    let mut ccfg = CacheConfig::test();
    ccfg.local_budget = 24 << 10;
    ccfg.spill_to_disk = false;
    let cache = Arc::new(LineageCache::new(ccfg));

    let mut cfg = ServeConfig::test();
    cfg.workers = workers;
    cfg.slots = 2;
    cfg.tenant_quotas.insert(HOG, 4 << 10);
    cfg.faults = FaultPlan::seeded(seed).with_task_failure_rate(fault_rate);

    Scheduler::new(cache, cfg).run(open_loop(seed, &spec(requests)))
}

fn assert_invariants(r: &ServeReport, label: &str) {
    assert_eq!(r.counters.duplicates, 0, "{label}: duplicate computes");
    assert!(r.hard_caps_respected(), "{label}: hard cap overshoot");
    assert!(
        r.counters.terminally_complete(),
        "{label}: an admitted request starved"
    );
    assert!(r.invariants_hold(), "{label}: serving invariants failed");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Worker-count invariance: for any worker-pool size, the full
    /// deterministic counter slice and the per-request outcome map are
    /// identical to the single-worker run of the same seeded scenario.
    #[test]
    fn counters_and_outcomes_invariant_under_worker_count(
        workers in 1usize..9,
        fault_tenths in 0u32..4,
    ) {
        let seed = chaos_seed();
        let fault_rate = f64::from(fault_tenths) / 10.0;
        let reference = run(seed, 48, 1, fault_rate);
        let varied = run(seed, 48, workers, fault_rate);
        prop_assert_eq!(
            reference.counters.deterministic_slice(),
            varied.counters.deterministic_slice()
        );
        prop_assert_eq!(&reference.outcomes, &varied.outcomes);
        assert_invariants(&varied, "proptest");
    }
}

/// Same scenario, same seed, run twice back to back: bit-identical
/// reports (outcomes, counters, tenant high-water marks).
#[test]
fn repeat_runs_are_bit_identical() {
    let seed = chaos_seed();
    let a = run(seed, 64, 4, 0.1);
    let b = run(seed, 64, 4, 0.1);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(
        a.tenants.iter().map(|t| t.high_water).collect::<Vec<_>>(),
        b.tenants.iter().map(|t| t.high_water).collect::<Vec<_>>()
    );
    assert_invariants(&a, "repeat");
}

/// The acceptance property from the issue: with one tenant hogging the
/// cache past its quota AND a 30% transient-fault rate, higher-priority
/// on-time requests of other tenants still complete. A shed is only
/// legal for an interactive request already past its deadline, the hog
/// pays the quota evictions, and at least 7 of 8 admitted non-hog
/// interactive requests complete.
#[test]
fn isolation_under_hog_and_faults() {
    let seed = chaos_seed();
    let requests = 96;
    let r = run(seed, requests, 4, 0.3);
    assert_invariants(&r, "isolation");
    assert!(r.counters.retries > 0, "30% faults must force retries");
    assert!(
        r.counters.quota_evictions > 0,
        "the over-quota hog must pay quota evictions"
    );

    let trace = open_loop(seed, &spec(requests));
    let mut admitted = 0u64;
    let mut completed = 0u64;
    for req in &trace {
        if req.tenant == HOG || req.priority != Priority::Interactive {
            continue;
        }
        let o = r.outcome_of(req.id).expect("every request has an outcome");
        if !o.was_admitted() {
            continue;
        }
        admitted += 1;
        match o {
            Outcome::Completed { .. } => completed += 1,
            Outcome::Shed { at } => assert!(
                at > req.deadline,
                "interactive request {} shed while still on time",
                req.id
            ),
            Outcome::Failed { .. } => {} // genuine fault exhaustion
            _ => unreachable!("admitted outcomes only"),
        }
    }
    assert!(
        admitted > 0 && completed * 8 >= admitted * 7,
        "non-hog interactive traffic must overwhelmingly complete \
         ({completed}/{admitted})"
    );
}

/// Fault-free runs never retry, never fail, and complete every admitted
/// request; the shared items coalesce or hit instead of recomputing.
#[test]
fn fault_free_run_is_clean() {
    let seed = chaos_seed();
    let r = run(seed, 48, 4, 0.0);
    assert_invariants(&r, "fault-free");
    assert_eq!(r.counters.retries, 0);
    assert_eq!(r.counters.failed, 0);
    assert!(
        r.counters.hits + r.counters.coalesced > 0,
        "shared items must reuse across requests"
    );
}

/// Warm restart across the durable tier: a serving cache spills its
/// proven shared working set, restarts, and the recovered tier serves
/// warm hits while the coalescing ledger proves exactly-once compute of
/// everything the restart lost (seeded by `CHAOS_SEED` like the rest of
/// the suite).
#[test]
fn warm_restart_recovers_shared_set_with_exactly_once_compute() {
    let seed = chaos_seed();
    let p = memphis_workloads::serve::ServeParams::test(6, seed);
    let dir = std::env::temp_dir().join(format!(
        "memphis_serving_warm_restart_{seed}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let r = memphis_workloads::serve::run_warm_restart(&p, &dir);
    let _ = std::fs::remove_dir_all(&dir);

    // The restart must actually cross the durable tier...
    assert!(r.spilled_before_restart > 0, "{r:?}");
    assert_eq!(r.entries_recovered, r.spilled_before_restart, "{r:?}");
    assert!(r.disk_warm_hits > 0, "warm hits must come from disk: {r:?}");
    // ...and the ledger must show exactly-once compute of the lost ids.
    assert_eq!(r.duplicate_shared_computes, 0, "{r:?}");
    assert!(r.max_completions_per_id <= 1, "{r:?}");
    assert_eq!(
        r.phase_b_computes + r.entries_recovered,
        p.shared_items as u64,
        "computed exactly the ids the restart lost: {r:?}"
    );
    assert_eq!(r.reuse.checksum_rejects, 0, "{r:?}");
    assert_eq!(r.reuse.hits + r.reuse.misses, r.reuse.probes, "{r:?}");
}
