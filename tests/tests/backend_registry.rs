//! Integration tests for the first-class backend layer: registering a
//! custom tier without touching the cache, concurrent probe/put over the
//! split locks, and property checks that eviction follows the eq. (1)
//! cost&size and eq. (2) GPU scoring of the shared `EvictionPolicy`.

use memphis_core::cache::config::CacheConfig;
use memphis_core::cache::entry::{CacheEntry, CachedObject};
use memphis_core::cache::LineageCache;
use memphis_core::lineage::{LineageId, LineageItem};
use memphis_core::{
    BackendId, BackendRegistry, BackendSnapshot, CacheBackend, EvictionPolicy, Materialized,
    ShardedEntryMap,
};
use memphis_matrix::Matrix;
use proptest::prelude::*;
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// ----------------------------------------------------------------------
// Custom backend registration (no cache changes required)
// ----------------------------------------------------------------------

/// A minimal external tier: unbounded, counts traffic, keeps byte
/// accounting like any registered backend.
#[derive(Default)]
struct ShadowBackend {
    used: Mutex<usize>,
    puts: AtomicU64,
    hits: AtomicU64,
}

impl CacheBackend for ShadowBackend {
    fn id(&self) -> BackendId {
        BackendId::Custom(7)
    }

    fn put(
        &self,
        _map: &ShardedEntryMap,
        _reg: &BackendRegistry,
        _key: LineageId,
        entry: &mut CacheEntry,
    ) -> bool {
        *self.used.lock().unwrap() += entry.size;
        self.puts.fetch_add(1, Ordering::Relaxed);
        true
    }

    fn materialize(
        &self,
        map: &ShardedEntryMap,
        _reg: &BackendRegistry,
        key: LineageId,
    ) -> Materialized {
        self.hits.fetch_add(1, Ordering::Relaxed);
        map.with_entry(key, |e| {
            let e = e.expect("probed entries exist");
            e.hits += 1;
            Materialized::Hit(e.object.clone().expect("cached entries have objects"))
        })
    }

    fn evict_until(
        &self,
        _map: &ShardedEntryMap,
        _reg: &BackendRegistry,
        _bytes: usize,
        _skip: Option<LineageId>,
    ) -> usize {
        0
    }

    fn used(&self) -> usize {
        *self.used.lock().unwrap()
    }

    fn budget(&self) -> usize {
        usize::MAX
    }

    fn snapshot(&self) -> BackendSnapshot {
        BackendSnapshot {
            id: self.id(),
            used: self.used(),
            budget: self.budget(),
            entries: 0,
            detail: vec![
                ("puts", self.puts.load(Ordering::Relaxed)),
                ("hits", self.hits.load(Ordering::Relaxed)),
            ],
        }
    }

    fn release(&self, entry: &CacheEntry) {
        *self.used.lock().unwrap() -= entry.size;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[test]
fn custom_backend_registers_and_serves_probes() {
    let shadow = Arc::new(ShadowBackend::default());
    let cache = LineageCache::new(CacheConfig::test()).with_backend(shadow.clone());

    let item = LineageItem::leaf("ext");
    assert!(cache.put_on(
        &item,
        CachedObject::Scalar(42.0),
        5.0,
        16,
        1,
        BackendId::Custom(7),
    ));
    let hit = cache.probe(&item).expect("custom tier serves the probe");
    assert!(matches!(hit.object, CachedObject::Scalar(v) if v == 42.0));
    assert_eq!(shadow.puts.load(Ordering::Relaxed), 1);
    assert_eq!(shadow.hits.load(Ordering::Relaxed), 1);

    // The unified report covers the external tier, with entry counts
    // filled from the probe map.
    let snaps = cache.backend_snapshots();
    let s = snaps
        .iter()
        .find(|s| s.id == BackendId::Custom(7))
        .expect("registered tier reports");
    assert_eq!(s.entries, 1);
    assert_eq!(s.used, 16);
    assert!(cache.backend_report().contains("custom#7"));

    // Clearing releases through the tier and reverses its accounting.
    cache.clear();
    assert_eq!(shadow.used(), 0);
}

// ----------------------------------------------------------------------
// Concurrent probe/put smoke test over the split locks
// ----------------------------------------------------------------------

#[test]
fn concurrent_probe_put_smoke() {
    let mut cfg = CacheConfig::test();
    cfg.local_budget = 64 << 10;
    let cache = Arc::new(LineageCache::new(cfg));
    let threads = 4;
    let rounds = 200;

    std::thread::scope(|s| {
        for t in 0..threads {
            let cache = Arc::clone(&cache);
            s.spawn(move || {
                for i in 0..rounds {
                    // Shared keys collide across threads; private keys
                    // churn the local tier through its budget.
                    let shared = LineageItem::leaf(&format!("shared{}", i % 8));
                    let private = LineageItem::leaf(&format!("t{t}_i{i}"));
                    let m = Matrix::zeros(8, 8);
                    cache.put(
                        &shared,
                        CachedObject::Matrix(Arc::new(m.clone())),
                        2.0,
                        m.size_bytes(),
                        1,
                    );
                    cache.put(&private, CachedObject::Matrix(Arc::new(m)), 1.0, 512, 1);
                    let _ = cache.probe(&shared);
                    let _ = cache.probe(&private);
                }
            });
        }
    });

    // Per-backend accounting stayed within budget and the probe map is
    // consistent with the registered tiers.
    for s in cache.backend_snapshots() {
        if s.budget != usize::MAX {
            assert!(
                s.used <= s.budget,
                "{} used {} exceeds budget {}",
                s.id,
                s.used,
                s.budget
            );
        }
    }
    assert!(cache.stats().hits > 0, "shared keys must produce hits");
}

// ----------------------------------------------------------------------
// Eviction-order and budget properties
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Streaming puts of equal-size entries with distinct costs and room
    /// for all but one: the single eviction must pick the minimum eq. (1)
    /// score, i.e. the cheapest entry.
    #[test]
    fn eviction_order_follows_eq1(costs in proptest::collection::vec(1.0f64..1000.0, 3..10)) {
        // Index-scaled epsilon keeps scores distinct even if the
        // generator repeats a value, so the victim is unambiguous.
        let costs: Vec<f64> = costs
            .iter()
            .enumerate()
            .map(|(i, c)| c + i as f64 * 1e-3)
            .collect();
        // The eviction fires while the last entry is admitted, so the
        // victim is the minimum score among the already-present entries.
        let min_idx = costs[..costs.len() - 1]
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();

        let size = Matrix::zeros(8, 8).size_bytes();
        let mut cfg = CacheConfig::test();
        cfg.spill_to_disk = false;
        cfg.local_budget = size * (costs.len() - 1);
        let cache = LineageCache::new(cfg);
        let items: Vec<_> = (0..costs.len())
            .map(|i| LineageItem::leaf(&format!("m{i}")))
            .collect();
        for (item, cost) in items.iter().zip(&costs) {
            let m = Matrix::zeros(8, 8);
            cache.put(item, CachedObject::Matrix(Arc::new(m)), *cost, size, 1);
        }
        for (i, item) in items.iter().enumerate() {
            let hit = cache.probe(item).is_some();
            if i == min_idx {
                prop_assert!(!hit, "minimum-score entry must be evicted");
            } else {
                prop_assert!(hit, "higher-score entries must survive");
            }
        }
    }

    /// After every put, every bounded tier's accounted bytes stay within
    /// its budget (spill enabled: drops flow into the disk tier).
    #[test]
    fn per_backend_used_within_budget(
        sizes in proptest::collection::vec(1usize..64, 1..30),
        budget_kb in 4usize..32,
    ) {
        let mut cfg = CacheConfig::test();
        cfg.local_budget = budget_kb << 10;
        let cache = LineageCache::new(cfg);
        for (i, rows) in sizes.iter().enumerate() {
            let m = Matrix::zeros(*rows, 8);
            let item = LineageItem::leaf(&format!("s{i}"));
            cache.put(&item, CachedObject::Matrix(Arc::new(m)), 1.0, rows * 64, 1);
            for s in cache.backend_snapshots() {
                if s.budget != usize::MAX {
                    prop_assert!(s.used <= s.budget, "{} over budget", s.id);
                }
            }
        }
    }

    /// Eq. (2) ordering: staler, shorter-lineage, cheaper pointers score
    /// lower (are recycled/freed first).
    #[test]
    fn gpu_score_monotonic_in_eq2_terms(
        last in 0u64..100,
        clock in 100u64..200,
        height in 1u32..50,
        cost in 0.0f64..100.0,
    ) {
        let max_cost = 100.0;
        let s = EvictionPolicy::gpu_score(last, clock, height, cost, max_cost);
        prop_assert!(EvictionPolicy::gpu_score(last + 1, clock, height, cost, max_cost) >= s);
        prop_assert!(EvictionPolicy::gpu_score(last, clock, height + 1, cost, max_cost) <= s);
        prop_assert!(EvictionPolicy::gpu_score(last, clock, height, cost + 1.0, max_cost) >= s);
    }
}
