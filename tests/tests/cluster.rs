//! Cluster integration: node-count invariance, bounded lossless churn,
//! remote in-flight coalescing, and hotspot flattening — chaos-seeded
//! like `concurrency.rs` (`CHAOS_SEED` selects the trace seed; `ci.sh`
//! runs 42 and 1337).
//!
//! The contract under test: sharding, membership, and replication are
//! placement concerns, never correctness concerns. The same workload
//! yields bit-identical digests on 1, 2, 4, or 8 nodes and across
//! join/leave churn; a leave never loses a proven entry no matter how
//! tight the per-epoch move budget; and concurrent cluster-wide misses
//! on one key coalesce on the HRW owner's in-flight marker instead of
//! computing twice.

use memphis_cluster::{ClusterCache, ClusterConfig, ClusterProbed, NodeId};
use memphis_core::CachedObject;
use memphis_workloads::cluster::{cluster_item, cluster_payload};
use memphis_workloads::{run_cluster, ClusterParams};
use proptest::prelude::*;
use std::sync::Arc;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn payload_bytes(o: &CachedObject) -> usize {
    match o {
        CachedObject::Matrix(m) => m.size_bytes(),
        _ => std::mem::size_of::<f64>(),
    }
}

/// Computes item `i` through the cluster probe path from a
/// deterministic origin, completing if the cluster misses.
fn prove(cluster: &ClusterCache, i: usize) {
    let origin = cluster.route_hash((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let item = cluster_item(i);
    if let ClusterProbed::Compute(g) = cluster.probe_or_begin_from(origin, &item) {
        let obj = cluster_payload(i);
        let size = payload_bytes(&obj);
        cluster.complete_from(g, obj, 50.0, size);
    }
}

/// Drains the rebalancer, asserting every epoch respects the budget.
fn drain(cluster: &ClusterCache, budget: u64) {
    let mut guard = 0;
    while cluster.pending_moves() > 0 {
        let moved = cluster.rebalance_epoch();
        assert!(
            moved <= budget,
            "epoch moved {moved} primaries, budget is {budget}"
        );
        guard += 1;
        assert!(guard < 1024, "rebalance queue never drained");
    }
}

// ----------------------------------------------------------------------
// Node-count invariance
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The same skewed trace yields a bit-identical digest on 1, 2, 4,
    /// and 8 nodes, never recomputes a cached item, and every node
    /// count's full counter snapshot is reproducible run-over-run.
    #[test]
    fn digest_is_node_count_invariant(seed in 0u64..(1u64 << 48)) {
        let base = run_cluster(&ClusterParams::test(1, seed));
        prop_assert_eq!(base.recomputes, 0);
        for nodes in [2usize, 4, 8] {
            let r = run_cluster(&ClusterParams::test(nodes, seed));
            prop_assert_eq!(r.digest, base.digest);
            prop_assert_eq!(r.recomputes, 0);
            prop_assert_eq!(r.pending_moves, 0);
            let again = run_cluster(&ClusterParams::test(nodes, seed));
            prop_assert_eq!(again.stats, r.stats);
            prop_assert_eq!(again.digest, r.digest);
        }
    }
}

/// The chaos-seeded deterministic slice: digests also survive mid-run
/// membership churn, and the gate configuration (churn + invalidations
/// + replication) exercises every counter class.
#[test]
fn churned_digest_matches_stable_digest() {
    let seed = chaos_seed();
    let stable = run_cluster(&ClusterParams::test(4, seed));
    let mut p = ClusterParams::test(4, seed);
    p.churn = true;
    let churned = run_cluster(&p);
    assert_eq!(
        churned.digest, stable.digest,
        "churn changed served results"
    );
    assert_eq!(churned.recomputes, 0, "churn alone forced a recompute");
    assert!(churned.stats.rebalance_moves > 0, "churn moved nothing");

    let gate = run_cluster(&ClusterParams::gate(seed));
    assert!(gate.stats.remote_hits > 0);
    assert!(gate.stats.replica_hits > 0);
    assert!(gate.stats.replica_invalidations > 0);
    assert!(gate.stats.transfer_bytes > 0);
    assert_eq!(gate.recomputes, 0);
}

// ----------------------------------------------------------------------
// Bounded, lossless churn
// ----------------------------------------------------------------------

/// join -> leave -> join over a deliberately tight move budget: no
/// epoch ever exceeds the budget, no proven entry is ever lost (every
/// item still hits after the dust settles — the compute counter stays
/// at the initial population), and the replica/directory metadata ends
/// every step coherent (zero orphans).
#[test]
fn churn_is_budgeted_and_lossless() {
    let items = 32usize;
    let mut cfg = ClusterConfig::test();
    cfg.seed = chaos_seed();
    cfg.rebalance_moves = 3; // tight: forces multi-epoch rehoming
    let budget = cfg.rebalance_moves as u64;
    let cluster = ClusterCache::new(cfg, &[0, 1, 2, 3]);

    for i in 0..items {
        prove(&cluster, i);
    }
    assert_eq!(cluster.stats().computes, items as u64);
    // Heat a few keys so replica placement participates in the churn.
    for _ in 0..4 {
        for i in 0..6 {
            prove(&cluster, i);
        }
    }
    cluster.rebalance_epoch();

    enum Step {
        Join(NodeId),
        Leave(NodeId),
    }
    for step in [Step::Join(4), Step::Leave(0), Step::Join(0)] {
        match step {
            Step::Join(n) => cluster.join(n),
            Step::Leave(n) => cluster.leave(n),
        }
        // Entries staged out of a leaver are servable immediately,
        // before any epoch runs (handoff path).
        for i in 0..items {
            prove(&cluster, i);
        }
        drain(&cluster, budget);
        assert_eq!(
            cluster.orphaned_replicas(),
            0,
            "metadata incoherent after a membership change"
        );
    }

    for i in 0..items {
        prove(&cluster, i);
    }
    let s = cluster.stats();
    assert_eq!(
        s.computes, items as u64,
        "a proven entry was lost to churn and recomputed"
    );
    assert_eq!(s.misses, 0);
    assert_eq!(s.pending_moves, 0);
    assert_eq!(s.node_joins, 2);
    assert_eq!(s.node_leaves, 1);
    assert!(s.rebalance_moves > 0, "churn rehomed nothing");
}

// ----------------------------------------------------------------------
// Remote in-flight coalescing
// ----------------------------------------------------------------------

/// Concurrent cluster-wide misses on one key from every origin coalesce
/// on the HRW owner's in-flight marker: exactly one computation runs,
/// every other probe joins it and observes the same object.
#[test]
fn remote_misses_coalesce_on_the_owner() {
    let cluster = Arc::new(ClusterCache::new(ClusterConfig::test(), &[0, 1, 2, 3]));
    let item = cluster_item(7001);
    let owner = cluster.owner_of_item(&item);
    let owner_cache = cluster.node_cache(owner).expect("owner is a member");

    let g = match cluster.probe_or_begin_from(owner, &item) {
        ClusterProbed::Compute(g) => g,
        _ => panic!("first probe of a cold key must claim the compute"),
    };

    let waiters = 4u64;
    let handles: Vec<_> = (0..waiters)
        .map(|t| {
            let cluster = Arc::clone(&cluster);
            let item = item.clone();
            std::thread::spawn(
                move || match cluster.probe_or_begin_from(t as NodeId, &item) {
                    ClusterProbed::Hit { hit, .. } => match &hit.object {
                        CachedObject::Matrix(m) => m.fingerprint(),
                        _ => panic!("expected the matrix payload"),
                    },
                    ClusterProbed::Compute(_) => panic!("duplicate concurrent compute"),
                },
            )
        })
        .collect();

    // Every origin must be parked on the owner's marker before the
    // result lands — that is what makes the join a join.
    while owner_cache.inflight_waiters(&item) < waiters {
        std::thread::yield_now();
    }
    let obj = cluster_payload(7001);
    let size = payload_bytes(&obj);
    let want = match &obj {
        CachedObject::Matrix(m) => m.fingerprint(),
        _ => unreachable!(),
    };
    cluster.complete_from(g, obj, 50.0, size);

    for h in handles {
        assert_eq!(h.join().expect("waiter panicked"), want);
    }
    let s = cluster.stats();
    assert_eq!(s.computes, 1, "the computation must run exactly once");
    assert_eq!(s.remote_coalesced, waiters, "every waiter must coalesce");
    assert_eq!(s.misses, 0);
}

// ----------------------------------------------------------------------
// Hotspot flattening
// ----------------------------------------------------------------------

/// With one item drawing 90% of reads and no replication, its primary
/// node serves every hot read (max share 1000 by construction);
/// replication must spread the load strictly below that — without
/// changing a single served result.
#[test]
fn replication_flattens_a_skewed_hotspot() {
    let seed = chaos_seed();
    let mut p = ClusterParams::test(4, seed);
    p.hot_items = 1;
    p.hot_frac = 0.9;
    p.requests = 400;

    p.replicas = 0;
    let norep = run_cluster(&p);
    p.replicas = 2;
    let rep = run_cluster(&p);

    assert_eq!(norep.digest, rep.digest, "replication changed results");
    assert_eq!(
        norep.hot_max_share_x1000, 1000,
        "unreplicated hot reads all land on one primary"
    );
    assert!(
        rep.hot_max_share_x1000 < norep.hot_max_share_x1000,
        "replication failed to flatten the hotspot ({} vs {})",
        rep.hot_max_share_x1000,
        norep.hot_max_share_x1000
    );
    assert!(rep.stats.replica_hits > 0);
}
