//! Disk-tier integration: spill on eviction, disk hit with
//! promote-on-hit, and injected I/O failure — asserting the counters and
//! bit-identical round-tripped contents (chaos-seeded like
//! `concurrency.rs`; run under `CHAOS_SEED` 42 and 1337 by `ci.sh`).

use memphis_core::backend::BackendId;
use memphis_core::cache::config::CacheConfig;
use memphis_core::cache::entry::CachedObject;
use memphis_core::cache::LineageCache;
use memphis_core::lineage::{LItem, LineageItem};
use memphis_matrix::rand_gen::rand_uniform;
use memphis_matrix::Matrix;
use std::path::PathBuf;
use std::sync::Arc;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn item(name: &str) -> LItem {
    LineageItem::leaf(name)
}

fn mat(m: &Matrix) -> CachedObject {
    CachedObject::Matrix(Arc::new(m.clone()))
}

/// A per-test spill directory so parallel tests never share files.
fn spill_dir(test: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "memphis_disk_tier_{test}_{}_{}",
        chaos_seed(),
        std::process::id()
    ))
}

fn cache(budget_kb: usize, spill_dir: PathBuf) -> LineageCache {
    let mut cfg = CacheConfig::test();
    cfg.local_budget = budget_kb << 10;
    cfg.spill_dir = spill_dir;
    LineageCache::new(cfg)
}

/// Spill → disk hit → promote-on-hit: the evicted matrix round-trips
/// through the disk tier bit-for-bit, the hit promotes it back to
/// memory, and every counter involved is exact.
#[test]
fn spill_then_disk_hit_promotes_bit_identical() {
    let dir = spill_dir("roundtrip");
    let _ = std::fs::remove_dir_all(&dir);
    let c = cache(12, dir.clone());
    let seed = chaos_seed();
    let m1 = rand_uniform(32, 32, -1.0, 1.0, seed); // 8 KB
    let m2 = rand_uniform(32, 32, -1.0, 1.0, seed + 1);
    let i1 = item("disk/m1");
    let i2 = item("disk/m2");

    c.put(&i1, mat(&m1), 1.0, m1.size_bytes(), 1);
    c.probe(&i1).expect("warm hit"); // proven reusable → spills, not drops
    c.put(&i2, mat(&m2), 100.0, m2.size_bytes(), 1);

    let s = c.stats();
    assert_eq!(s.local_spills, 1, "cheaper proven entry spilled");
    assert_eq!(s.local_drops, 0);
    assert_eq!(s.disk_io_errors, 0);
    let disk = c.registry().get(BackendId::Disk).unwrap();
    assert_eq!(disk.used(), m1.size_bytes(), "spill accounted to disk tier");

    // Disk hit: contents must be bit-identical (tolerance 0.0), and
    // promote-on-hit must move the bytes back to the local tier.
    let hit = c.probe(&i1).expect("disk hit");
    match hit.object {
        CachedObject::Matrix(got) => {
            assert!(got.approx_eq(&m1, 0.0), "disk round-trip must be exact")
        }
        other => panic!("unexpected {other:?}"),
    }
    let s = c.stats();
    assert_eq!(s.hits_disk, 1);
    assert_eq!(
        c.registry().get(BackendId::Disk).unwrap().used(),
        0,
        "promotion drains the disk tier"
    );

    // The promoted entry now hits in memory.
    let before = c.stats().hits_local;
    c.probe(&i1).expect("promoted hit");
    assert_eq!(c.stats().hits_local, before + 1);
    assert_eq!(c.stats().disk_io_errors, 0, "clean run: no I/O errors");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Injected spill-write failure: pointing the spill directory *under an
/// existing regular file* makes every disk write fail. The eviction must
/// fall back to a clean drop — no dangling disk entry, a counted
/// `disk_io_errors`, and the victim is a recomputable miss afterwards.
#[test]
fn spill_write_failure_drops_cleanly_and_counts() {
    let blocker = spill_dir("blocked_parent");
    let _ = std::fs::remove_dir_all(&blocker);
    let _ = std::fs::remove_file(&blocker);
    std::fs::write(&blocker, b"not a directory").unwrap();
    // `create_dir_all(blocker/spill)` now fails on every store().
    let c = cache(12, blocker.join("spill"));
    let seed = chaos_seed();
    let m1 = rand_uniform(32, 32, -1.0, 1.0, seed);
    let m2 = rand_uniform(32, 32, -1.0, 1.0, seed + 1);
    let i1 = item("disk/fail1");

    c.put(&i1, mat(&m1), 1.0, m1.size_bytes(), 1);
    c.probe(&i1).expect("warm hit"); // proven: would spill if disk worked
    c.put(&item("disk/fail2"), mat(&m2), 100.0, m2.size_bytes(), 1);

    let s = c.stats();
    assert!(s.disk_io_errors >= 1, "failed spill write must be counted");
    assert_eq!(s.local_spills, 0, "failed write is not a spill");
    assert_eq!(s.local_drops, 1, "victim dropped cleanly instead");
    assert_eq!(
        c.registry().get(BackendId::Disk).unwrap().used(),
        0,
        "no dangling disk entry may be accounted"
    );
    assert!(
        c.probe(&i1).is_none(),
        "dropped entry is a miss (recompute from lineage), not a dangling path"
    );

    // The cache stays fully usable after the failure.
    c.put(&i1, mat(&m1), 200.0, m1.size_bytes(), 1);
    match c.probe(&i1).expect("re-put hits in memory").object {
        CachedObject::Matrix(got) => assert!(got.approx_eq(&m1, 0.0)),
        other => panic!("unexpected {other:?}"),
    }
    let _ = std::fs::remove_file(&blocker);
}

/// The snapshot plumbing surfaces disk I/O errors: the counter appears
/// in the metrics dump and in the disk backend's snapshot detail, so a
/// failing disk is visible in `memphis-obs` output rather than silent.
#[test]
fn disk_io_errors_surface_in_metrics_and_snapshots() {
    use memphis_obs::IntoMetrics;

    let blocker = spill_dir("metrics_parent");
    let _ = std::fs::remove_dir_all(&blocker);
    let _ = std::fs::remove_file(&blocker);
    std::fs::write(&blocker, b"not a directory").unwrap();
    let c = cache(12, blocker.join("spill"));
    let seed = chaos_seed();
    let m1 = rand_uniform(32, 32, -1.0, 1.0, seed);
    let m2 = rand_uniform(32, 32, -1.0, 1.0, seed + 1);
    let i1 = item("disk/metrics1");
    c.put(&i1, mat(&m1), 1.0, m1.size_bytes(), 1);
    c.probe(&i1).expect("warm hit");
    c.put(&item("disk/metrics2"), mat(&m2), 100.0, m2.size_bytes(), 1);

    let snap = c.stats();
    assert!(snap.disk_io_errors >= 1);
    let metrics = snap.metrics();
    let io = metrics
        .iter()
        .find(|(k, _)| *k == "disk_io_errors")
        .expect("disk_io_errors exported to the metrics registry");
    assert_eq!(io.1, snap.disk_io_errors);

    let disk_snap = c
        .backend_snapshots()
        .into_iter()
        .find(|s| s.id == BackendId::Disk)
        .expect("disk backend snapshot");
    assert!(
        disk_snap
            .detail
            .iter()
            .any(|(k, v)| *k == "io_errors" && *v >= 1),
        "disk snapshot detail must carry io_errors: {:?}",
        disk_snap.detail
    );
    let _ = std::fs::remove_file(&blocker);
}

/// Regression: spill files are keyed by the lineage *content hash* — a
/// pure function of the lineage log — not by allocation-order ids. A
/// fresh process (new intern table, different interning order) over the
/// same directory must find the same durable entry under the same key,
/// with no rename or rewrite pass.
#[test]
fn spill_keys_are_content_hashes_stable_across_restart() {
    use memphis_core::cache::backends::DiskBackend;
    use memphis_core::cache::durable::SegmentStore;

    let dir = spill_dir("stable_keys");
    let _ = std::fs::remove_dir_all(&dir);
    let seed = chaos_seed();
    let m1 = rand_uniform(32, 32, -1.0, 1.0, seed);
    let m2 = rand_uniform(32, 32, -1.0, 1.0, seed + 1);
    let i1 = item("disk/stable_across_restart");
    let hash = i1.lid.content_hash();

    {
        let mut cfg = CacheConfig::test();
        cfg.local_budget = 12 << 10;
        cfg.persist_dir = Some(dir.clone());
        let c = LineageCache::new(cfg);
        c.put(&i1, mat(&m1), 1.0, m1.size_bytes(), 1);
        c.probe(&i1).expect("warm hit"); // proven → spills
        c.put(
            &item("disk/stable_pressure"),
            mat(&m2),
            100.0,
            m2.size_bytes(),
            1,
        );
        assert_eq!(c.stats().local_spills, 1);
        let disk = c
            .registry()
            .downcast::<DiskBackend>(BackendId::Disk)
            .unwrap();
        assert!(
            disk.segment_store().contains(hash),
            "spill must be stored under the lineage content hash"
        );
    }

    // Skew the fresh process's interning order: a restart never replays
    // allocation order, so any allocation-order key would now dangle.
    for j in 0..32 {
        let _ = item(&format!("disk/unrelated_intern_{j}"));
    }

    // First reopen: the durable entry is found under the same
    // content-hash key, with no rename or rewrite pass — recovery is
    // read-only, so a further reopen sees the identical digest.
    let digest = {
        let mut cfg = CacheConfig::test();
        cfg.local_budget = 12 << 10;
        cfg.persist_dir = Some(dir.clone());
        cfg.rehydrate_budget = Some(0);
        let c = LineageCache::new(cfg);
        assert_eq!(c.stats().entries_recovered, 1, "one durable entry");
        let disk = c
            .registry()
            .downcast::<DiskBackend>(BackendId::Disk)
            .unwrap();
        assert!(
            disk.segment_store().contains(hash),
            "recovered store holds the same content-hash key"
        );
        disk.segment_store().durable_digest()
    };

    // Second reopen: same digest, and the probe serves the original
    // bytes from disk under the re-interned lineage identity.
    let mut cfg = CacheConfig::test();
    cfg.local_budget = 12 << 10;
    cfg.persist_dir = Some(dir.clone());
    cfg.rehydrate_budget = Some(0);
    let c = LineageCache::new(cfg);
    let disk = c
        .registry()
        .downcast::<DiskBackend>(BackendId::Disk)
        .unwrap();
    assert_eq!(
        disk.segment_store().durable_digest(),
        digest,
        "recovery must not rewrite the durable state"
    );
    match c.probe(&i1).expect("recovered disk hit").object {
        CachedObject::Matrix(got) => {
            assert!(got.approx_eq(&m1, 0.0), "recovered bytes bit-identical")
        }
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(c.stats().hits_disk, 1);
    assert_eq!(c.stats().checksum_rejects, 0);
    drop(c);

    // The raw store agrees: the promoted entry's durable copy was
    // consumed by promote-on-hit; nothing else changed.
    let (store, _) = SegmentStore::open(
        dir.clone(),
        1 << 20,
        u64::MAX / 4,
        memphis_sparksim::FaultPlan::none(),
        Arc::new(memphis_core::stats::ReuseStats::default()),
    );
    assert!(!store.contains(hash), "promotion discards the disk copy");
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}
