//! Latency-aware eviction/admission integration: TTNA tracking, the
//! delayed-hits score, MURS-style admission shedding, and the policy
//! switch — chaos-seeded like `concurrency.rs` (`CHAOS_SEED` selects
//! the trace seed; `ci.sh` runs 42 and 1337).
//!
//! The contract under test: `CachePolicy` is a *cost model* switch,
//! never a correctness switch. Both policies serve bit-identical byte
//! streams on any trace; `Paper` keeps the three delayed-hits counters
//! at exactly zero; an entry with no observed coalescing pressure
//! scores exactly eq. (1) under either policy; and on the gated skewed
//! trace the delayed-hits score strictly cuts the p99 of per-arrival
//! virtual latency.

use memphis_core::cache::entry::{CacheEntry, TTNA_ALPHA};
use memphis_core::{
    CacheConfig, CachePolicy, CachedObject, EvictionPolicy, LineageCache, LineageItem,
    MemoryPressure, Probed, ReuseStats,
};
use memphis_workloads::latency::{latency_payload, LatencyParams};
use memphis_workloads::run_latency;
use proptest::prelude::*;
use std::sync::Arc;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn p99(samples: &[u64]) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((99.0 / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn payload(i: usize) -> CachedObject {
    latency_payload(0x7e57, i)
}

fn payload_bytes() -> usize {
    match payload(0) {
        CachedObject::Matrix(m) => m.size_bytes(),
        _ => unreachable!(),
    }
}

// ---------------------------------------------------------------------
// TTNA EWMA under a scripted probe sequence
// ---------------------------------------------------------------------

#[test]
fn ttna_ewma_follows_scripted_probe_gaps() {
    let item = LineageItem::leaf("latency/ttna_script");
    let mut e = CacheEntry::cached(&item, payload(0), 10.0, 1 << 10);

    // No probes yet: TTNA is unknown, not zero.
    assert_eq!(e.probe_gaps, 0);
    assert!(e.estimated_ttna().is_infinite());

    // First observed probe only seeds the reference tick — one probe
    // is zero gaps.
    e.observe_probe(100);
    assert_eq!(e.probe_gaps, 0);
    assert!(e.estimated_ttna().is_infinite());

    // Second probe: the first gap seeds the EWMA directly.
    e.observe_probe(110);
    assert_eq!(e.probe_gaps, 1);
    assert_eq!(e.estimated_ttna(), 10.0);

    // Third probe: gap 20 folds in at alpha.
    e.observe_probe(130);
    assert_eq!(e.probe_gaps, 2);
    let want = TTNA_ALPHA * 20.0 + (1.0 - TTNA_ALPHA) * 10.0;
    assert!((e.estimated_ttna() - want).abs() < 1e-12);

    // A stale clock (same tick) must not record a zero gap.
    e.observe_probe(130);
    assert_eq!(e.probe_gaps, 2);

    // A long absence drags the estimate up toward the new gap.
    e.observe_probe(1130);
    let want = TTNA_ALPHA * 1000.0 + (1.0 - TTNA_ALPHA) * want;
    assert!((e.estimated_ttna() - want).abs() < 1e-9);
}

#[test]
fn probe_path_feeds_ttna_and_waiters_into_entry_meta() {
    let mut config = CacheConfig::test();
    config.policy = CachePolicy::DelayedHits;
    let cache = LineageCache::new(config);
    let item = LineageItem::leaf("latency/meta");

    let Probed::Compute(g) = cache.probe_or_begin(&item) else {
        panic!("first probe must own the computation");
    };
    cache.complete(g, payload(1), 10.0, payload_bytes(), 1);
    cache.note_miss_waiters(&item, 7);

    // Admission seeds the probe tick, so the first post-admission hit
    // already yields a TTNA gap sample.
    assert!(cache.probe(&item).is_some());
    assert!(cache.probe(&item).is_some());
    let meta = cache.entry_reuse_meta(&item).expect("entry resident");
    assert_eq!(meta.miss_waiters, 7);
    assert!(meta.probe_gaps >= 2, "gaps = {}", meta.probe_gaps);
    assert!(meta.ttna_ewma > 0.0);
}

// ---------------------------------------------------------------------
// Zero-pressure fixed point: no waiters => exactly eq. (1)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// An entry nobody ever queued behind scores *bit-identically* to
    /// eq. (1) under the delayed-hits model, whatever its TTNA history:
    /// `DelayedHits` extends the paper's score, it never perturbs it.
    #[test]
    fn zero_waiter_entries_score_exactly_eq1(
        hits in 0u64..500,
        misses in 0u64..50,
        jobs in 0u64..20,
        cost in 0.5f64..2000.0,
        size in 1usize..(1 << 20),
        gaps in proptest::collection::vec(1u64..5000, 0..12),
    ) {
        let item = LineageItem::leaf("latency/fixed_point");
        let mut e = CacheEntry::cached(&item, payload(2), cost, size);
        e.hits = hits;
        e.misses = misses;
        e.jobs = jobs;
        let mut clock = 1u64;
        e.observe_probe(clock);
        for g in gaps {
            clock += g;
            e.observe_probe(clock);
        }
        e.miss_waiters = 0;
        prop_assert_eq!(
            EvictionPolicy::delayed_hits_score(&e).to_bits(),
            EvictionPolicy::entry_score(&e).to_bits()
        );
    }

    /// Any generated trace serves the same byte stream under both
    /// policies: eviction order may differ, results may not.
    #[test]
    fn policies_agree_on_served_bytes_for_any_trace(
        seed in 0u64..1 << 48,
        rounds in 20usize..80,
        fanout in 2usize..12,
        fanout_prob in 0.1f64..0.9,
        steady_prob in 0.2f64..0.9,
        cold_prob in 0.0f64..0.3,
        budget_slots in 6usize..20,
        stream_per_round in 0usize..5,
    ) {
        let mut p = LatencyParams::tiny(seed);
        p.rounds = rounds;
        p.warmup_rounds = rounds / 4;
        p.fanout = fanout;
        p.fanout_prob = fanout_prob;
        p.steady_prob = steady_prob;
        p.cold_prob = cold_prob;
        p.budget_slots = budget_slots;
        p.stream_per_round = stream_per_round;
        let paper = run_latency(&p, CachePolicy::Paper);
        let delayed = run_latency(&p, CachePolicy::DelayedHits);
        prop_assert_eq!(paper.digest, delayed.digest);
        prop_assert_eq!(paper.served, delayed.served);
        prop_assert_eq!(paper.latencies.len(), delayed.latencies.len());
        // Paper is the published behavior: its new counters stay zero.
        prop_assert_eq!(paper.reuse.mad_evictions, 0);
        prop_assert_eq!(paper.reuse.ttna_admission_rejects, 0);
        prop_assert_eq!(paper.reuse.delayed_hit_ticks_saved, 0);
    }
}

// ---------------------------------------------------------------------
// MURS-style admission shedding
// ---------------------------------------------------------------------

/// Fills the cache past its budget so `victim` gets drop-evicted (its
/// TTNA lands in the ghost table), then re-puts it under `pressure`.
/// Returns whether the re-put was admitted, plus the cache.
fn evict_then_readmit(policy: CachePolicy, pressure: MemoryPressure) -> (bool, LineageCache) {
    let mut config = CacheConfig::test();
    config.policy = policy;
    config.spill_to_disk = false;
    config.local_budget = 4 * payload_bytes();
    config.shards = 2;
    let cache = LineageCache::new(config);

    let victim = LineageItem::leaf("latency/shed_victim");
    // Never probed after admission: estimated TTNA is unknown
    // (infinite), which any finite expected lifetime rejects.
    assert!(cache.put(&victim, payload(100), 5.0, payload_bytes(), 1));
    for i in 0..8 {
        let filler = LineageItem::leaf(&format!("latency/shed_filler{i}"));
        let ok = cache.put(&filler, payload(i), 1000.0, payload_bytes(), 1);
        assert!(ok, "filler {i} must admit");
        // Probing builds up refs so fillers out-score the victim.
        assert!(cache.probe(&filler).is_some());
        assert!(cache.probe(&filler).is_some());
    }
    assert!(
        cache.probe(&victim).is_none(),
        "victim must have been evicted by the fillers"
    );

    cache.set_memory_pressure(pressure);
    let readmitted = cache.put(&victim, payload(100), 5.0, payload_bytes(), 1);
    (readmitted, cache)
}

#[test]
fn shed_pressure_rejects_readmission_of_distant_ttna_entries() {
    let (readmitted, cache) = evict_then_readmit(CachePolicy::DelayedHits, MemoryPressure::Shed);
    assert!(!readmitted, "Shed + ghost TTNA past lifetime must reject");
    assert_eq!(cache.stats().ttna_admission_rejects, 1);
    assert!(
        cache
            .probe(&LineageItem::leaf("latency/shed_victim"))
            .is_none(),
        "a rejected put must not leave a resident entry"
    );
    assert!(cache.stats().mad_evictions > 0);
}

#[test]
fn normal_pressure_admits_the_same_entry_and_clears_the_ghost() {
    let (readmitted, cache) = evict_then_readmit(CachePolicy::DelayedHits, MemoryPressure::Normal);
    assert!(readmitted, "no pressure: admission must proceed");
    assert_eq!(cache.stats().ttna_admission_rejects, 0);
    assert!(cache
        .probe(&LineageItem::leaf("latency/shed_victim"))
        .is_some());

    // The gate is selective, not a blanket reject: the victim is probed
    // right after readmission, so its second eviction records a *near*
    // ghost TTNA (a one-tick inter-probe gap), and even the Shed window
    // readmits an entry expected back that soon.
    let victim = LineageItem::leaf("latency/shed_victim");
    for i in 8..16 {
        let filler = LineageItem::leaf(&format!("latency/shed_filler{i}"));
        assert!(cache.put(&filler, payload(i), 1000.0, payload_bytes(), 1));
        assert!(cache.probe(&filler).is_some());
        assert!(cache.probe(&filler).is_some());
    }
    assert!(cache.probe(&victim).is_none(), "second eviction expected");
    cache.set_memory_pressure(MemoryPressure::Shed);
    assert!(
        cache.put(&victim, payload(100), 5.0, payload_bytes(), 1),
        "near-TTNA entries pass the admission gate even under Shed"
    );
    assert_eq!(cache.stats().ttna_admission_rejects, 0);
}

#[test]
fn paper_policy_never_sheds_admissions() {
    let (readmitted, cache) = evict_then_readmit(CachePolicy::Paper, MemoryPressure::Shed);
    assert!(readmitted, "Paper must ignore the admission gate entirely");
    let s = cache.stats();
    assert_eq!(s.ttna_admission_rejects, 0);
    assert_eq!(s.mad_evictions, 0);
    assert_eq!(s.delayed_hit_ticks_saved, 0);
}

#[test]
fn new_counters_flow_through_metrics_registry() {
    let stats = ReuseStats::default();
    let names: Vec<&str> = memphis_obs::IntoMetrics::metrics(&stats.snapshot())
        .into_iter()
        .map(|m| m.0)
        .collect();
    for key in [
        "ttna_admission_rejects",
        "delayed_hit_ticks_saved",
        "mad_evictions",
    ] {
        assert!(
            names.contains(&key),
            "{key} missing from metrics: {names:?}"
        );
    }
}

// ---------------------------------------------------------------------
// Gate-scale trace (CHAOS_SEED-driven, ci.sh runs 42 and 1337)
// ---------------------------------------------------------------------

#[test]
fn gate_scale_p99_drops_under_delayed_hits() {
    let params = LatencyParams::gate(chaos_seed());
    let paper = run_latency(&params, CachePolicy::Paper);
    let delayed = run_latency(&params, CachePolicy::DelayedHits);

    assert_eq!(paper.digest, delayed.digest, "policy changed served bytes");
    assert_eq!(paper.served, delayed.served);
    assert!(
        p99(&delayed.latencies) < p99(&paper.latencies),
        "p99 paper={} delayed={}",
        p99(&paper.latencies),
        p99(&delayed.latencies)
    );
    assert!(delayed.reuse.mad_evictions > 0);
    assert!(delayed.reuse.ttna_admission_rejects > 0);
    assert!(delayed.reuse.delayed_hit_ticks_saved > 0);
    assert_eq!(paper.reuse.mad_evictions, 0);
    assert_eq!(paper.reuse.ttna_admission_rejects, 0);
    assert_eq!(paper.reuse.delayed_hit_ticks_saved, 0);

    // Full determinism: repeated runs are sample- and counter-exact.
    let again = run_latency(&params, CachePolicy::DelayedHits);
    assert_eq!(again.digest, delayed.digest);
    assert_eq!(again.latencies, delayed.latencies);
    assert_eq!(again.reuse, delayed.reuse);
}

#[test]
fn delayed_hits_protects_coalesced_batches_concurrently() {
    // The miss_waiters feed also works from real concurrent coalescing:
    // many threads stack behind one in-flight compute, and the resolved
    // waiter count lands on the entry.
    let mut config = CacheConfig::test();
    config.policy = CachePolicy::DelayedHits;
    let cache = Arc::new(LineageCache::new(config));
    let item = LineageItem::leaf("latency/conc_batch");

    let threads: Vec<_> = (0..8)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let item = item.clone();
            std::thread::spawn(move || match cache.probe_or_begin(&item) {
                Probed::Compute(g) => {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    cache.complete(g, payload(3), 50.0, 1 << 10, 1);
                    0u64
                }
                // Only coalesced probes actually waited on the flight;
                // a plain hit arrived after completion.
                Probed::Coalesced(_) => 1,
                Probed::Hit(_) => 0,
            })
        })
        .collect();
    let waited: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
    let meta = cache.entry_reuse_meta(&item).expect("entry resident");
    assert_eq!(
        meta.miss_waiters, waited,
        "every coalesced waiter must be counted on the entry"
    );
}
