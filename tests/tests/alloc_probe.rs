//! Zero-allocation guarantee of the steady-state probe→hit path.
//!
//! A counting global allocator wraps the system allocator; after warming
//! the cache, a loop of `probe()` hits must perform **zero** heap
//! allocations: the key is the `Copy` interned `LineageId`, the shard
//! lookup hashes a single `u64`, the canonical item comes out of the
//! intern table as an `Arc` refcount bump, and the disabled
//! observability spans return stack-only guards.
//!
//! This file deliberately holds a SINGLE test: the default test harness
//! runs tests on threads whose own bookkeeping would pollute a global
//! allocation counter shared across tests. Even then the counter must
//! be per-thread: libtest's MAIN thread lazily allocates its channel
//! wait context while the test thread is inside the measured window
//! (a scheduling race that made a process-global count flaky), so only
//! allocations made by the thread that opted in are counted.

use memphis_core::cache::config::CacheConfig;
use memphis_core::cache::entry::CachedObject;
use memphis_core::cache::LineageCache;
use memphis_core::lineage::LineageItem;
use memphis_matrix::Matrix;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// System allocator that counts allocations, but only those made by a
/// thread that has set [`TRACKING`] — harness threads stay invisible.
struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Const-initialized and `Cell<bool>` has no destructor, so reading
    // it from the allocator hook performs no lazy registration and no
    // allocation of its own.
    static TRACKING: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.try_with(Cell::get).unwrap_or(false) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.try_with(Cell::get).unwrap_or(false) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

#[test]
fn warm_probe_hits_allocate_nothing() {
    let mut cfg = CacheConfig::test();
    cfg.local_budget = 4 << 20;
    cfg.spill_to_disk = false;
    let cache = LineageCache::new(cfg);

    // Warm: construct items once (interning them) and cache a payload
    // under each. Items are kept alive so probing needs no rebuild.
    let items: Vec<_> = (0..16)
        .map(|i| {
            LineageItem::new(
                "op",
                vec![format!("alloc_probe/{i}")],
                vec![LineageItem::leaf("src")],
            )
        })
        .collect();
    let payload = Matrix::zeros(8, 8);
    let size = payload.size_bytes();
    for it in &items {
        cache.put(
            it,
            CachedObject::Matrix(Arc::new(payload.clone())),
            10.0,
            size,
            1,
        );
    }
    // One full pass outside the measured window: first hits bump
    // last_access and let any lazy internals settle.
    for it in &items {
        assert!(cache.probe(it).is_some(), "warmup probe must hit");
    }

    TRACKING.with(|f| f.set(true));
    let before = ALLOCS.load(Ordering::Relaxed);
    let mut hits = 0u64;
    for _ in 0..64 {
        for it in &items {
            let hit = cache.probe(it).expect("warm probe must hit");
            // Consume the hit as a caller would: touch the object and
            // canonical item, then drop both (refcount traffic only).
            if let CachedObject::Matrix(m) = &hit.object {
                assert_eq!(m.size_bytes(), size);
            }
            assert_eq!(hit.canonical.opcode.as_ref(), "op");
            hits += 1;
        }
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    TRACKING.with(|f| f.set(false));

    assert_eq!(hits, 64 * 16);
    assert_eq!(
        after - before,
        0,
        "probe→hit hot path allocated {} times over {hits} hits",
        after - before
    );
}
