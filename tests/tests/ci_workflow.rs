//! Structural validation of `.github/workflows/ci.yml` (no YAML parser
//! is vendored, so this checks the structure a broken edit is most
//! likely to violate: indentation, required jobs/steps, and that every
//! script the workflow invokes exists and is executable) plus the CI
//! helper scripts themselves.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // tests/ -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..")
}

fn workflow() -> String {
    std::fs::read_to_string(repo_root().join(".github/workflows/ci.yml"))
        .expect("ci workflow exists")
}

/// Leading-space count of a line.
fn indent(line: &str) -> usize {
    line.len() - line.trim_start_matches(' ').len()
}

#[test]
fn workflow_is_structurally_valid_yaml() {
    let y = workflow();
    for (i, line) in y.lines().enumerate() {
        let n = i + 1;
        assert!(!line.contains('\t'), "ci.yml:{n}: tab in YAML");
        assert!(
            line.trim_end() == line,
            "ci.yml:{n}: trailing whitespace breaks some parsers"
        );
        if !line.trim().is_empty() {
            assert_eq!(indent(line) % 2, 0, "ci.yml:{n}: odd indentation");
        }
        // Flow-style `key: value` lines must not leave an unterminated
        // single/double quote.
        let quotes = line.matches('"').count();
        assert_eq!(quotes % 2, 0, "ci.yml:{n}: unbalanced double quote");
    }
    // Top-level skeleton.
    for key in ["name:", "on:", "jobs:"] {
        assert!(
            y.lines().any(|l| l.starts_with(key)),
            "ci.yml: missing top-level `{key}`"
        );
    }
    // Triggers: push to main and pull requests.
    assert!(y.contains("push:"), "ci.yml: missing push trigger");
    assert!(y.contains("pull_request:"), "ci.yml: missing PR trigger");
}

#[test]
fn workflow_defines_lint_and_test_jobs_with_caching() {
    let y = workflow();
    for job in ["  lint:", "  test:"] {
        assert!(
            y.lines().any(|l| l == job),
            "ci.yml: missing job `{}`",
            job.trim()
        );
    }
    // The lint job fails early and independently.
    assert!(y.contains("cargo clippy --all-targets -- -D warnings"));
    assert!(y.contains("cargo fmt --check"));
    // Both jobs cache the cargo registry and target dir, keyed on the
    // lockfile.
    assert_eq!(
        y.matches("uses: actions/cache@").count(),
        2,
        "ci.yml: both jobs must cache cargo artifacts"
    );
    assert!(y.contains("hashFiles('Cargo.lock')"));
    assert!(y.contains("~/.cargo/registry"));
    assert!(y.contains("target"));
    // The test job runs the staged pipeline without duplicating lint.
    assert!(y.contains("./ci.sh --skip-lint"));
}

#[test]
fn workflow_uploads_observability_artifacts() {
    let y = workflow();
    assert!(
        y.contains("uses: actions/upload-artifact@"),
        "ci.yml: missing artifact upload"
    );
    assert!(y.contains("exp_concurrent.trace.json"));
    assert!(y.contains("exp_concurrent.metrics.json"));
    assert!(y.contains("exp_serve.trace.json"));
    assert!(y.contains("exp_serve.metrics.json"));
    assert!(y.contains("exp_cluster.trace.json"));
    assert!(y.contains("exp_cluster.metrics.json"));
    assert!(y.contains("exp_latency.trace.json"));
    assert!(y.contains("exp_latency.metrics.json"));
    assert!(y.contains("exp_script.trace.json"));
    assert!(y.contains("exp_script.metrics.json"));
    assert!(
        y.contains("--trace") && y.contains("--json"),
        "ci.yml: exp run must request trace + metrics artifacts"
    );
}

#[test]
fn workflow_actions_are_version_pinned() {
    let y = workflow();
    for line in y.lines() {
        let Some(action) = line
            .trim()
            .strip_prefix("uses: ")
            .or_else(|| line.trim().strip_prefix("- uses: "))
        else {
            continue;
        };
        assert!(
            action.contains('@') && !action.ends_with("@main") && !action.ends_with("@master"),
            "ci.yml: action `{action}` must be pinned to a release tag"
        );
    }
}

#[test]
fn invoked_scripts_exist_and_are_executable() {
    #[cfg(unix)]
    use std::os::unix::fs::PermissionsExt;
    let root = repo_root();
    for script in ["ci.sh", "ci/bench_gate.sh"] {
        let path = root.join(script);
        let meta = std::fs::metadata(&path)
            .unwrap_or_else(|e| panic!("{script} referenced by CI is missing: {e}"));
        #[cfg(unix)]
        assert!(
            meta.permissions().mode() & 0o111 != 0,
            "{script} must be executable"
        );
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("#!"), "{script} must start with a shebang");
        assert!(
            body.contains("set -euo pipefail"),
            "{script} must fail fast"
        );
    }
    // The bench gate compares against a committed baseline that must
    // carry every gated counter.
    let baseline = std::fs::read_to_string(root.join("ci/BENCH_baseline.json")).unwrap();
    for key in [
        "hits",
        "recomputes",
        "evictions",
        "coalesced_hits",
        "duplicates",
        "serve_shed",
        "serve_coalesced",
        "serve_quota_evictions",
        "segments_recovered",
        "entries_rehydrated",
        "checksum_rejects",
        "manifest_swaps",
        "remote_hits",
        "remote_misses",
        "transfer_bytes",
        "rebalance_moves",
        "replica_hits",
        "replica_invalidations",
        "latency_served",
        "latency_p99_paper",
        "latency_p99_delayed",
        "latency_mad_evictions",
        "latency_ttna_rejects",
        "latency_delay_ticks_saved",
        "script_programs_fuzzed",
        "script_divergences",
        "script_lowered_nodes",
        "script_corpus_scripts",
        "script_corpus_digest",
    ] {
        assert!(
            baseline.contains(&format!("\"{key}\"")),
            "BENCH_baseline.json: missing gated counter `{key}`"
        );
    }
}

#[test]
fn ci_script_defines_all_stages() {
    let sh = std::fs::read_to_string(repo_root().join("ci.sh")).unwrap();
    for stage in [
        "stage_build",
        "stage_test",
        "stage_chaos",
        "stage_obs",
        "stage_concurrency",
        "stage_serve",
        "stage_cluster",
        "stage_recovery",
        "stage_latency",
        "stage_script",
        "stage_bench_gate",
        "stage_perf",
        "stage_lint",
    ] {
        assert!(
            sh.contains(&format!("{stage}()")),
            "ci.sh: missing stage function {stage}"
        );
    }
    // The perf stage writes the committed perf report and gates the
    // deterministic counter slice against the same baseline as the
    // bench gate.
    assert!(sh.contains("--bin perf_stress"));
    assert!(sh.contains("BENCH_pr6.json ci/BENCH_baseline.json"));
    // The concurrency stage runs under both chaos seeds, parallel and
    // single-threaded.
    assert!(sh.contains("--test concurrency"));
    assert!(sh.contains("42 1337"));
    assert!(sh.contains("--skip-lint"));
    // The serve stage runs the disk-tier and serving suites plus the
    // full experiment binary.
    assert!(sh.contains("--test disk_tier"));
    assert!(sh.contains("--test serving"));
    assert!(sh.contains("--bin exp_serve"));
    // The cluster stage runs the sharding/churn/replication suite under
    // both chaos seeds (plus a single-threaded pass) and the full
    // experiment binary.
    assert!(sh.contains("--test cluster"));
    assert!(sh.contains("--bin exp_cluster"));
    // The recovery stage runs the crash-recovery differential suite
    // under both chaos seeds, with one single-threaded pass.
    assert!(sh.contains("--test crash_recovery"));
    // The latency stage runs the delayed-hits suite under both chaos
    // seeds (plus a single-threaded pass) and the full experiment
    // binary.
    assert!(sh.contains("--test latency"));
    assert!(sh.contains("--bin exp_latency"));
    // The script stage runs the frontend + fuzzer suites under both
    // chaos seeds (plus a single-threaded pass) and the full experiment
    // binary.
    assert!(sh.contains("--test script"));
    assert!(sh.contains("-p memphis-script"));
    assert!(sh.contains("--bin exp_script"));
}

#[test]
fn ci_script_prints_stage_summary_on_failure() {
    // `set -e` kills the script mid-stage on the first red command; an
    // EXIT trap must still print the stage-timing summary and mark the
    // failing stage, or red runs lose their most useful output.
    let sh = std::fs::read_to_string(repo_root().join("ci.sh")).unwrap();
    assert!(
        sh.contains("trap print_summary EXIT"),
        "ci.sh: the stage summary must be installed as an EXIT trap"
    );
    let trap_fn = sh
        .split("print_summary()")
        .nth(1)
        .expect("ci.sh: print_summary function missing");
    let body: String = trap_fn.chars().take(1200).collect();
    assert!(
        body.contains("FAILED"),
        "ci.sh: the trap must mark the failing stage"
    );
    assert!(
        body.contains("local status=$?"),
        "ci.sh: the trap must capture the exit status before any command"
    );
    // The trap decides pass/fail from the recorded status, and the
    // in-flight stage is tracked so a mid-stage abort can be attributed.
    assert!(sh.contains("CURRENT_STAGE="));
    assert!(body.contains("ci: all checks passed"));
}
