//! Crash-recovery differential suite for the durable disk tier.
//!
//! Two layers of coverage, both chaos-seeded (`CHAOS_SEED` 42 and 1337,
//! driven by `ci.sh`'s `recovery` stage):
//!
//! 1. **Kill-at-every-sync sweep** — run an end-to-end workload (hcv /
//!    pnmf / hband warm-session sequences) over a persistent disk tier
//!    once uninterrupted to record its checksums and the committed-state
//!    digest at every sync point, then re-run it once per sync point
//!    with a deterministic kill injected there. Each killed run must
//!    still produce bit-identical pipeline checksums (the cache
//!    degrades, the answer does not), recovery over the surviving files
//!    must land exactly on the committed prefix (`digest[k-2]`, or the
//!    empty store for a kill at the very first sync), and replaying the
//!    workload on the recovered cache must reproduce the uninterrupted
//!    checksums.
//!
//! 2. **Torn-write / corruption proptest** — random interleavings of
//!    put / delete / compaction / crash+reopen against the raw
//!    [`SegmentStore`], with seeded torn-write and silent-corruption
//!    injection. A shadow model folds the acknowledged operations; after
//!    every reopen the recovered state must equal that fold minus the
//!    corrupted records, and no read may ever surface corrupt bytes —
//!    checksum rejection must route to recompute (a `None` read).

use memphis_core::backend::BackendId;
use memphis_core::cache::backends::DiskBackend;
use memphis_core::cache::config::CacheConfig;
use memphis_core::cache::durable::{empty_digest, DurableRecord, SegmentStore};
use memphis_core::cache::LineageCache;
use memphis_core::stats::ReuseStats;
use memphis_sparksim::FaultPlan;
use memphis_workloads::pipelines;
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// A unique scratch directory per test invocation.
fn scratch(name: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "memphis_crash_{name}_{}_{}_{}",
        chaos_seed(),
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

// ----------------------------------------------------------------------
// 1. Kill-at-every-sync sweep over end-to-end pipelines
// ----------------------------------------------------------------------

/// Per-kind local budget for the sweep: sized just below (hcv/hband) or
/// just above (pnmf) the pipeline's warm working set so the workload
/// below evicts — and therefore spills — proven entries.
fn sweep_budget(kind: &str) -> usize {
    match kind {
        // pnmf's warm working set is ~134 KB; the extra-iteration churn
        // session then overflows a 136 KB budget while every resident is
        // proven, forcing eq. (1) spills of reused entries.
        "pnmf" => 136 << 10,
        // hcv (~11 KB) and hband (~80 KB) reuse intermediates within a
        // session, so a 4 KB budget churns proven entries directly.
        _ => 4 << 10,
    }
}

/// Cache configuration for the sweep: a persistent durable tier and a
/// local budget tight enough that the workload spills proven entries.
fn sweep_config(dir: &Path, kind: &str, faults: FaultPlan) -> CacheConfig {
    let mut cfg = CacheConfig::test();
    cfg.persist_dir = Some(dir.to_path_buf());
    cfg.local_budget = sweep_budget(kind);
    // Keep the durable set untouched at recovery so the recovered digest
    // is exactly the committed prefix (rehydration would discard disk
    // copies as it promotes them).
    cfg.rehydrate_budget = Some(0);
    cfg.disk_faults = faults;
    cfg
}

/// The sweep workload for one kind: warm sessions of the same pipeline
/// (probes prove the first session's entries) plus, for pnmf, a final
/// session with one extra iteration whose fresh puts land while every
/// resident entry is proven. All sessions share one deterministic data
/// seed, so the checksums are a pure function of the kind — a disk
/// crash can only change *where* values come from, never what they are.
fn run_workload(cache: &Arc<LineageCache>, kind: &str) -> Vec<f64> {
    let mut checks = Vec::new();
    match kind {
        "hcv" => {
            for _ in 0..2 {
                let mut ctx = pipelines::session_context(cache);
                let p = pipelines::hcv::HcvParams::small();
                checks.push(pipelines::hcv::run(&mut ctx, &p).expect("hcv run"));
            }
        }
        "pnmf" => {
            for extra in [0usize, 0, 1] {
                let mut ctx = pipelines::session_context(cache);
                let mut p = pipelines::pnmf::PnmfParams::small();
                p.iterations += extra;
                checks.push(pipelines::pnmf::run(&mut ctx, &p).expect("pnmf run"));
            }
        }
        "hband" => {
            for _ in 0..2 {
                let mut ctx = pipelines::session_context(cache);
                let p = pipelines::hband::HbandParams::small();
                checks.push(pipelines::hband::run(&mut ctx, &p).expect("hband run"));
            }
        }
        other => panic!("unknown sweep kind {other}"),
    }
    checks
}

struct SweepRun {
    checks: Vec<u64>,
    syncs: u64,
    digests: Vec<u64>,
    crashed: bool,
}

/// Runs one kind's workload over a fresh cache rooted at `dir`.
fn run_pipeline(dir: &Path, kind: &str, faults: FaultPlan) -> SweepRun {
    let cache = Arc::new(LineageCache::new(sweep_config(dir, kind, faults)));
    let checks = run_workload(&cache, kind)
        .into_iter()
        .map(f64::to_bits)
        .collect();
    let disk = cache
        .registry()
        .downcast::<DiskBackend>(BackendId::Disk)
        .expect("disk tier");
    let store = disk.segment_store();
    SweepRun {
        checks,
        syncs: store.sync_points(),
        digests: store.sync_digests(),
        crashed: store.is_crashed(),
    }
}

/// The full differential sweep for one pipeline kind.
fn kill_sweep(kind: &str) {
    let seed = chaos_seed();

    // Uninterrupted baseline: pipeline checksum plus the committed-state
    // digest after every sync point.
    let base_dir = scratch(&format!("base_{kind}"));
    let _ = std::fs::remove_dir_all(&base_dir);
    let base = run_pipeline(&base_dir, kind, FaultPlan::seeded(seed));
    let _ = std::fs::remove_dir_all(&base_dir);
    assert!(!base.crashed);
    assert!(
        base.syncs >= 4,
        "{kind}: baseline must exercise the durable tier ({} syncs)",
        base.syncs
    );
    assert_eq!(base.digests.len() as u64, base.syncs);

    for k in 1..=base.syncs {
        let dir = scratch(&format!("kill_{kind}_{k}"));
        let _ = std::fs::remove_dir_all(&dir);

        // Run with a deterministic kill at sync point k. The disk tier
        // dies mid-run; the pipeline answer must not change by a bit.
        let killed = run_pipeline(
            &dir,
            kind,
            FaultPlan::seeded(seed).with_disk_kill_at_sync(k),
        );
        assert!(killed.crashed, "{kind}: sync {k} must kill the store");
        assert_eq!(
            killed.syncs, k,
            "{kind}: the store must die at exactly sync {k}"
        );
        assert_eq!(
            killed.checks, base.checks,
            "{kind}: a disk crash at sync {k} must not change any session result"
        );

        // Recover: a fresh cache over the surviving files must land
        // exactly on the committed prefix — everything synced before the
        // kill, nothing after, nothing torn.
        let cache = Arc::new(LineageCache::new(sweep_config(
            &dir,
            kind,
            FaultPlan::none(),
        )));
        let disk = cache
            .registry()
            .downcast::<DiskBackend>(BackendId::Disk)
            .expect("disk tier");
        let expected = if k >= 2 {
            base.digests[(k - 2) as usize]
        } else {
            empty_digest()
        };
        assert_eq!(
            disk.segment_store().durable_digest(),
            expected,
            "{kind}: kill at sync {k} must recover the committed prefix"
        );
        let s = cache.stats();
        assert_eq!(
            s.checksum_rejects, 0,
            "{kind}: a kill never commits a torn record (sync {k})"
        );
        assert_eq!(
            s.entries_recovered as usize,
            disk.segment_store().entry_count(),
            "{kind}: every committed record is rebuilt in the probe map"
        );

        // Replay the workload on the recovered cache: warm disk entries
        // materialize, cold ones recompute, and every session checksum
        // is again bit-identical to the uninterrupted run.
        let replay: Vec<u64> = run_workload(&cache, kind)
            .into_iter()
            .map(f64::to_bits)
            .collect();
        assert_eq!(
            replay, base.checks,
            "{kind}: replay after recovery from kill at sync {k} diverged"
        );
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, s.probes, "{kind}: probe accounting");

        drop(cache);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn hcv_survives_a_kill_at_every_sync_point() {
    kill_sweep("hcv");
}

#[test]
fn pnmf_survives_a_kill_at_every_sync_point() {
    kill_sweep("pnmf");
}

#[test]
fn hband_survives_a_kill_at_every_sync_point() {
    kill_sweep("hband");
}

// ----------------------------------------------------------------------
// 2. Torn-write / corruption proptest over the raw store
// ----------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum Op {
    Put(u8),
    Del(u8),
    Compact,
    Reopen,
}

/// Decodes one `(selector, key)` pair into an op — puts weighted
/// heaviest, an occasional compaction or crash+reopen.
fn decode_op(sel: u8, key: u8) -> Op {
    match sel {
        0..=3 => Op::Put(key),
        4..=5 => Op::Del(key),
        6 => Op::Compact,
        _ => Op::Reopen,
    }
}

fn record_for(key: u8, version: u32) -> DurableRecord {
    let payload: Vec<u8> = (0..96)
        .map(|i| (key as u32 + 31 * version + i) as u8)
        .collect();
    DurableRecord {
        content_hash: 0x1000 + key as u64,
        compute_cost: 10.0 + key as f64,
        hits: version as u64,
        height: 1,
        lineage_log: format!("proptest lineage of record {key}"),
        matrix_bytes: payload,
    }
}

fn open_store(dir: &Path, plan: &FaultPlan) -> SegmentStore {
    SegmentStore::open(
        dir.to_path_buf(),
        2 << 10, // small segments: several per run
        u64::MAX / 4,
        plan.clone(),
        Arc::new(ReuseStats::default()),
    )
    .0
}

/// Shadow of the *durable* state: the latest acknowledged record bytes
/// per hash plus whether that write was silently corrupted.
#[derive(Default)]
struct Shadow {
    live: HashMap<u64, (Vec<u8>, bool)>,
    write_seq: u64,
    crashed: bool,
}

/// Recovered state must equal the fold of acknowledged ops minus the
/// corrupted records; asserted after each reopen.
fn assert_recovered_matches(store: &SegmentStore, shadow: &Shadow) {
    let surviving: HashMap<&u64, &Vec<u8>> = shadow
        .live
        .iter()
        .filter(|(_, (_, corrupt))| !corrupt)
        .map(|(h, (bytes, _))| (h, bytes))
        .collect();
    assert_eq!(
        store.entry_count(),
        surviving.len(),
        "recovered state must be exactly the surviving fold"
    );
    for (hash, bytes) in surviving {
        let rec = store
            .read(*hash)
            .unwrap_or_else(|| panic!("surviving record {hash:#x} lost"));
        assert_eq!(
            &rec.matrix_bytes, bytes,
            "recovered payload must be bit-identical to the acknowledged write"
        );
    }
    for (hash, (_, corrupt)) in &shadow.live {
        if *corrupt {
            assert!(
                !store.contains(*hash),
                "corrupt record {hash:#x} must be rejected, never surfaced"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn torn_writes_never_surface_corrupt_entries(
        raw_ops in proptest::collection::vec((0u8..8, 0u8..8), 1..32),
        seed in 0u64..512,
        torn_sel in 0u8..5,
        corrupt_sel in 0u8..5,
    ) {
        let torn_rate = torn_sel as f64 * 0.08;
        let corrupt_rate = corrupt_sel as f64 * 0.08;
        let ops: Vec<Op> = raw_ops.iter().map(|&(s, k)| decode_op(s, k)).collect();
        let dir = scratch("proptest");
        let _ = std::fs::remove_dir_all(&dir);
        let plan = FaultPlan::seeded(seed)
            .with_disk_torn_write_rate(torn_rate)
            .with_disk_corrupt_rate(corrupt_rate);
        let mut store = open_store(&dir, &plan);
        let mut shadow = Shadow::default();
        let mut versions: HashMap<u8, u32> = HashMap::new();

        for op in &ops {
            match op {
                Op::Put(k) => {
                    let v = versions.entry(*k).or_insert(0);
                    *v += 1;
                    let rec = record_for(*k, *v);
                    let acked = store.put(&rec);
                    if shadow.crashed {
                        prop_assert!(!acked, "a crashed store must reject writes");
                        continue;
                    }
                    shadow.write_seq += 1;
                    if plan.should_tear_disk_write(shadow.write_seq) {
                        prop_assert!(!acked, "a torn write must not be acknowledged");
                        shadow.crashed = true;
                        continue;
                    }
                    prop_assert!(acked);
                    let corrupt = plan.should_corrupt_disk_record(shadow.write_seq);
                    shadow.live.insert(rec.content_hash, (rec.matrix_bytes.clone(), corrupt));
                }
                Op::Del(k) => {
                    let hash = 0x1000 + *k as u64;
                    let removed = store.remove(hash);
                    if shadow.crashed {
                        // In-memory only: the durable state keeps the
                        // record, and reopen resurrects it.
                        continue;
                    }
                    // Tombstone presence must match the committed fold.
                    let committed = shadow.live.contains_key(&hash);
                    prop_assert_eq!(removed.is_some(), committed);
                    shadow.live.remove(&hash);
                }
                Op::Compact => {
                    let swapped = store.compact_now();
                    if shadow.crashed {
                        prop_assert!(!swapped, "a crashed store must not compact");
                    } else {
                        // Compaction re-verifies: corrupted records fall
                        // out of the new generation.
                        shadow.live.retain(|_, (_, corrupt)| !*corrupt);
                    }
                }
                Op::Reopen => {
                    drop(store);
                    store = open_store(&dir, &plan);
                    // Recovery rejects (and tombstones) corrupt records.
                    shadow.live.retain(|_, (_, corrupt)| !*corrupt);
                    shadow.crashed = false;
                    shadow.write_seq = 0;
                    assert_recovered_matches(&store, &shadow);
                }
            }
        }

        // Final crash + recovery, whatever state the sequence left.
        drop(store);
        let store = open_store(&dir, &FaultPlan::none());
        shadow.live.retain(|_, (_, corrupt)| !*corrupt);
        assert_recovered_matches(&store, &shadow);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
