//! End-to-end chaos: full engine workloads on a simulated Spark cluster
//! with seeded fault injection. Checksums must be bit-identical to the
//! fault-free run — recovery is invisible to the computation — and the
//! recovery counters must be a pure function of the seed.

use memphis_core::cache::config::CacheConfig;
use memphis_engine::EngineConfig;
use memphis_sparksim::stats::StatsSnapshot;
use memphis_sparksim::{FaultPlan, SparkConfig};
use memphis_workloads::harness::Backends;
use memphis_workloads::pipelines::{hband, hcv, pnmf};

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn chaos_plan(seed: u64) -> FaultPlan {
    // Up to 30% of task attempts fail, cached partitions and shuffle
    // outputs decay at job boundaries, and executor 0 dies before the very
    // first stage (job 0, stage 0 always executes — nothing is skippable
    // in a fresh cluster's first job).
    FaultPlan::seeded(seed)
        .with_task_failure_rate(0.3)
        .with_cached_drop_rate(0.1)
        .with_shuffle_drop_rate(0.1)
        .with_executor_kill(0, 0, 0)
}

/// Runs three §6.3 workload pipelines on a Spark-backed engine context and
/// returns their checksums plus the cluster counters.
fn run_workloads(plan: FaultPlan) -> (Vec<f64>, StatsSnapshot) {
    let spark = SparkConfig {
        storage_capacity: 256 << 20,
        task_max_failures: 10,
        default_parallelism: 8,
        fault_plan: plan,
        ..SparkConfig::local_test()
    };
    let backends = Backends::with_spark(spark);
    let mut cfg = EngineConfig::test();
    cfg.spark_threshold_bytes = 512; // push matrix ops onto the cluster
    let mut ctx = backends.make_ctx_sync(cfg, CacheConfig::test());
    let sums = vec![
        hcv::run(&mut ctx, &hcv::HcvParams::small()).unwrap(),
        pnmf::run(&mut ctx, &pnmf::PnmfParams::small()).unwrap(),
        hband::run(&mut ctx, &hband::HbandParams::small()).unwrap(),
    ];
    (sums, backends.sc.as_ref().unwrap().stats())
}

#[test]
fn workload_checksums_are_bit_identical_under_chaos() {
    let (clean, clean_stats) = run_workloads(FaultPlan::none());
    assert!(clean.iter().all(|s| s.is_finite()));
    assert_eq!(clean_stats.task_failures, 0, "clean run injects nothing");

    let (chaos, stats) = run_workloads(chaos_plan(chaos_seed()));
    assert_eq!(
        clean, chaos,
        "fault recovery must be invisible to the computation"
    );
    assert!(
        stats.task_failures > 0,
        "injected failures must fire: {stats:?}"
    );
    assert!(stats.tasks_retried > 0, "failed tasks must be retried");
    assert_eq!(stats.executors_lost, 1);
    assert!(
        stats.cached_blocks_lost
            + stats.shuffle_outputs_lost
            + stats.partitions_recomputed
            + stats.stages_resubmitted
            > 0,
        "state-loss recovery must engage: {stats:?}"
    );
}

#[test]
fn same_seed_chaos_runs_are_fully_reproducible() {
    let seed = chaos_seed();
    let (sums_a, stats_a) = run_workloads(chaos_plan(seed));
    let (sums_b, stats_b) = run_workloads(chaos_plan(seed));
    assert_eq!(sums_a, sums_b, "checksums must be bit-identical");
    assert_eq!(
        stats_a.recovery_pairs(),
        stats_b.recovery_pairs(),
        "the recovery schedule is a pure function of the seed"
    );
    assert_eq!(stats_a.jobs, stats_b.jobs);
    assert_eq!(stats_a.tasks, stats_b.tasks);
    assert_eq!(stats_a.stages, stats_b.stages);

    // A different seed yields a different fault schedule (almost surely),
    // but identical results regardless.
    let (sums_c, stats_c) = run_workloads(chaos_plan(seed.wrapping_add(1)));
    assert_eq!(sums_a, sums_c, "results are seed-independent");
    assert!(stats_c.task_failures > 0);
}
