//! Support crate for the cross-crate integration tests (see `tests/tests/`).
