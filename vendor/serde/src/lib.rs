//! Offline drop-in subset of the `serde` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of serde it actually uses: a [`Serialize`] trait
//! plus `#[derive(Serialize)]`, specialized to JSON output. Instead of
//! the real crate's generic `Serializer` visitor, [`Serialize`] appends
//! the value's JSON encoding directly to a `String` — the only data
//! format this repo emits (Chrome traces and metrics reports). The
//! companion [`json`] module stands in for `serde_json::to_string`.

pub use serde_derive::Serialize;

/// A type that can append its JSON encoding to an output buffer.
///
/// Derivable for structs with named fields via `#[derive(Serialize)]`.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(itoa_buf(*self as i128).as_str());
            }
        }
    )*};
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                let mut buf = [0u8; 20];
                out.push_str(utoa(*self as u64, &mut buf));
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

fn utoa(mut v: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).unwrap()
}

fn itoa_buf(v: i128) -> String {
    // i128 covers every smaller signed width without overflow on MIN.
    let mut s = String::new();
    let mut buf = [0u8; 20];
    if v < 0 {
        s.push('-');
        s.push_str(utoa(v.unsigned_abs() as u64, &mut buf));
    } else {
        s.push_str(utoa(v as u64, &mut buf));
    }
    s
}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            // `{:?}` round-trips f64 (shortest representation) and always
            // includes a decimal point or exponent, keeping it JSON-valid.
            out.push_str(&format!("{:?}", self));
        } else {
            // JSON has no NaN/Inf; null is the conventional stand-in.
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        (*self as f64).serialize_json(out);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        json::escape_into(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        json::escape_into(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(']');
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::escape_into(k.as_ref(), out);
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}

/// Stand-in for the `serde_json` entry points this repo uses.
pub mod json {
    use super::Serialize;

    /// Serializes `value` to a compact JSON string.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        value.serialize_json(&mut out);
        out
    }

    /// Appends `s` as a JSON string literal (quoted, escaped) to `out`.
    pub fn escape_into(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(json::to_string(&42u64), "42");
        assert_eq!(json::to_string(&-7i64), "-7");
        assert_eq!(json::to_string(&i64::MIN), "-9223372036854775808");
        assert_eq!(json::to_string(&true), "true");
        assert_eq!(json::to_string(&1.5f64), "1.5");
        assert_eq!(json::to_string(&f64::NAN), "null");
        assert_eq!(json::to_string("a\"b\n"), "\"a\\\"b\\n\"");
    }

    #[test]
    fn containers() {
        assert_eq!(json::to_string(&vec![1u64, 2, 3]), "[1,2,3]");
        assert_eq!(json::to_string(&Some(1u64)), "1");
        assert_eq!(json::to_string(&(None as Option<u64>)), "null");
        assert_eq!(json::to_string(&("k", 9u64)), "[\"k\",9]");
    }
}
