//! Offline drop-in subset of the `crossbeam` API backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `crossbeam` it actually uses: an MPMC
//! [`channel`] (receiver clonable and shareable across executor
//! threads) and [`sync::WaitGroup`]. Lock-free performance
//! characteristics of the real crate are not reproduced — correctness
//! of the blocking semantics is.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    struct Shared<T> {
        queue: Mutex<ChannelState<T>>,
        available: Condvar,
    }

    struct ChannelState<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, ChannelState<T>> {
            self.queue.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.lock();
            st.senders -= 1;
            if st.senders == 0 {
                // Wake blocked receivers so they observe disconnection.
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing only if every receiver was dropped.
        /// Each send wakes one parked receiver, so a burst of messages
        /// fans out across waiting consumers (as with crossbeam) rather
        /// than draining through whichever woke first.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.lock();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.items.push_back(value);
            drop(st);
            self.shared.available.notify_one();
            Ok(())
        }
    }

    /// The receiving half of an unbounded channel. Clonable: clones
    /// compete for messages (MPMC), matching crossbeam semantics.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.lock().receivers -= 1;
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.lock();
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .available
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Attempts to receive without blocking. Returns `None` when the
        /// channel is currently empty or disconnected.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.lock().items.pop_front()
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(ChannelState {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            available: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }
}

/// Synchronization primitives.
pub mod sync {
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner {
        count: Mutex<usize>,
        cv: Condvar,
    }

    /// Enables threads to synchronize the end of a computation: every
    /// clone must be dropped before [`WaitGroup::wait`] returns.
    pub struct WaitGroup {
        inner: Arc<Inner>,
    }

    impl Default for WaitGroup {
        fn default() -> Self {
            Self::new()
        }
    }

    impl WaitGroup {
        /// Creates a group with a single member (the returned handle).
        pub fn new() -> Self {
            Self {
                inner: Arc::new(Inner {
                    count: Mutex::new(1),
                    cv: Condvar::new(),
                }),
            }
        }

        /// Drops this handle and blocks until all clones are dropped.
        pub fn wait(self) {
            let inner = self.inner.clone();
            drop(self);
            let mut count = inner.count.lock().unwrap_or_else(|e| e.into_inner());
            while *count > 0 {
                count = inner.cv.wait(count).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl Clone for WaitGroup {
        fn clone(&self) -> Self {
            *self.inner.count.lock().unwrap_or_else(|e| e.into_inner()) += 1;
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl Drop for WaitGroup {
        fn drop(&mut self) {
            let mut count = self.inner.count.lock().unwrap_or_else(|e| e.into_inner());
            *count -= 1;
            if *count == 0 {
                self.inner.cv.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;
    use super::sync::WaitGroup;

    #[test]
    fn mpmc_each_message_delivered_once() {
        let (tx, rx) = unbounded::<usize>();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn waitgroup_blocks_until_all_drop() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let wg = WaitGroup::new();
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let wg = wg.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                done.fetch_add(1, Ordering::SeqCst);
                drop(wg);
            });
        }
        wg.wait();
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }
}
