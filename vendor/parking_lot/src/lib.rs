//! Offline drop-in subset of the `parking_lot` API backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `parking_lot` it actually uses: a
//! non-poisoning [`Mutex`] whose guard derefs to the inner value, a
//! non-poisoning [`RwLock`], and a [`Condvar`] whose `wait` borrows the
//! guard mutably instead of consuming it. Semantics match `parking_lot`
//! for every call site in this repository; fairness/eventual-fairness
//! details are not modeled.

use std::fmt;
use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion primitive. Unlike `std::sync::Mutex`, lock
/// acquisition never observes poisoning: a panic while holding the lock
/// leaves the data accessible to later lockers.
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the underlying std guard in an `Option` so [`Condvar::wait`]
/// can temporarily take ownership (std's wait consumes the guard) and
/// put it back, presenting parking_lot's `&mut guard` API.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<StdMutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader-writer lock. Like [`Mutex`], acquisition never observes
/// poisoning.
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock wrapping `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdRwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A condition variable whose `wait` takes `&mut MutexGuard`.
#[derive(Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: StdCondvar::new(),
        }
    }

    /// Atomically releases the guarded lock and blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Wakes one blocked waiter. Returns whether a thread was woken
    /// (always `false` here; std does not report it and no call site
    /// inspects the result).
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        false
    }

    /// Wakes all blocked waiters. Returns the number woken (always 0;
    /// std does not report it and no call site inspects the result).
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
