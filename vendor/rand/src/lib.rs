//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `rand` it actually uses: `StdRng` seeded with
//! `seed_from_u64`, `Rng::gen` / `gen_range`, and
//! `distributions::Uniform`. The generator is SplitMix64 — the exact
//! stream differs from upstream `StdRng` (ChaCha12), but every consumer
//! in this repository relies only on determinism (same seed, same
//! sequence), never on matching upstream values.

use std::ops::{Range, RangeInclusive};

/// Low-level source of 64-bit randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Standard generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (SplitMix64; see crate docs).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zero weak state and decorrelate tiny seeds.
            Self {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Maps 64 random bits to a value of `Self`.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> f64 {
        // 53 high-quality bits -> [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

/// Types over which uniform ranges can be sampled.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)`. `lo == hi` returns `lo`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Samples uniformly from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: low > high");
                if lo == hi {
                    return lo;
                }
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is negligible for the spans used here.
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: low > high");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: low > high");
        let unit = <f64 as Standard>::from_bits(rng.next_u64());
        lo + unit * (hi - lo)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level random value generation.
pub trait Rng: RngCore {
    /// Generates a value of `T` (e.g. `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Samples uniformly from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Distribution types (`Uniform`) in the rand 0.8 module layout.
pub mod distributions {
    use super::{Rng, SampleUniform};

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Creates the distribution; `low == high` yields a constant.
        pub fn new(low: T, high: T) -> Self {
            Self { low, high }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_half_open(rng, self.low, self.high)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(17);
        let mut b = StdRng::seed_from_u64(17);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..1000usize {
            let v = rng.gen_range(0..=i);
            assert!(v <= i);
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f) || f >= f64::EPSILON);
            let x = rng.gen_range(1..=5);
            assert!((1..=5).contains(&x));
        }
    }

    #[test]
    fn uniform_distribution_bounds_and_constant() {
        let mut rng = StdRng::seed_from_u64(9);
        let d = Uniform::new(-2.0, 3.0);
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((-2.0..3.0).contains(&v));
        }
        let c = Uniform::new(4.0, 4.0);
        assert_eq!(c.sample(&mut rng), 4.0);
    }

    #[test]
    fn unit_f64_is_half_open() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
