//! Offline drop-in subset of the `bytes` API backed by `Vec<u8>`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `bytes` it actually uses: [`Bytes`] /
//! [`BytesMut`] with the little-endian [`Buf`] / [`BufMut`] accessors
//! the matrix serializer needs. Cheap clones are preserved via an
//! `Arc<[u8]>` payload; zero-copy slicing of the real crate is not
//! otherwise reproduced.

use std::sync::Arc;

/// A cheaply clonable, contiguous byte buffer with a read cursor.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self {
            data: Arc::from(&[][..]),
            pos: 0,
        }
    }

    /// Wraps a static byte slice.
    pub fn from_static(slice: &'static [u8]) -> Self {
        Self {
            data: Arc::from(slice),
            pos: 0,
        }
    }

    /// Copies `slice` into a new buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Self {
            data: Arc::from(slice),
            pos: 0,
        }
    }

    /// Remaining (unread) length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the remaining bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            data: Arc::from(v.into_boxed_slice()),
            pos: 0,
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// A growable byte buffer for serialization.
#[derive(Default, Clone, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Written length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte buffer, advancing an internal cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copies exactly `dst.len()` bytes out, advancing the cursor.
    /// Panics if insufficient bytes remain (as in the real crate).
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.remaining(),
            "copy_to_slice: not enough bytes ({} requested, {} remaining)",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// Append access to a byte buffer.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut w = BytesMut::with_capacity(64);
        w.put_slice(b"hdr!");
        w.put_u64_le(77);
        w.put_f64_le(-2.5);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 4 + 8 + 8);
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"hdr!");
        assert_eq!(r.get_u64_le(), 77);
        assert_eq!(r.get_f64_le(), -2.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn clone_shares_storage_and_cursor_is_independent() {
        let mut a = Bytes::from(vec![1, 2, 3, 4]);
        let b = a.clone();
        let mut one = [0u8; 1];
        a.copy_to_slice(&mut one);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 4);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic]
    fn overread_panics() {
        let mut b = Bytes::from_static(b"ab");
        let mut dst = [0u8; 3];
        b.copy_to_slice(&mut dst);
    }
}
