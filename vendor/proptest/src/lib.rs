//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `proptest` it actually uses: the `proptest!`
//! macro over named strategies (numeric ranges, tuples,
//! `collection::vec`, `any::<bool>()`, and simple `[a-z]{m,n}`-style
//! string patterns), `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros. Failing cases are NOT shrunk — the failure
//! message reports the generating seed instead, which is stable across
//! runs because case seeds derive from the test name and case index.

// Let the crate's own tests use `proptest::...` paths exactly as
// downstream test files do.
extern crate self as proptest;

use std::ops::Range;

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 128 }
    }
}

/// Deterministic per-case random source (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a source from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n == 0` returns 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Stable seed for (test name, case index) pairs — FNV-1a over the name.
pub fn seed_for(test_name: &str, case: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// A generator of random values for one macro argument.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Strategy produced by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// String strategies from simple regex-like patterns.
///
/// Supports the shape used in this repository: a single character class
/// (`[a-z]`, `[a-z0-9]`, or a literal set) followed by an optional
/// `{m,n}` repetition. Anything unparsable falls back to 1–8 lowercase
/// letters.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) =
            parse_simple_pattern(self).unwrap_or_else(|| (('a'..='z').collect(), 1, 8));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_simple_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            if lo > hi {
                return None;
            }
            alphabet.extend(lo..=hi);
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((alphabet, 1, 1));
    }
    let rep = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (m, n) = match rep.split_once(',') {
        Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
        None => {
            let k = rep.trim().parse().ok()?;
            (k, k)
        }
    };
    if m > n {
        return None;
    }
    Some((alphabet, m, n))
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn uniformly from `len` (half-open, like proptest's
    /// `SizeRange` for `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests. Each named argument is drawn from its
/// strategy for every case; panics (including `prop_assert!` failures)
/// fail the test and report the case seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]. Not part of the public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let __seed = $crate::seed_for(stringify!($name), __case);
                    let mut __rng = $crate::TestRng::new(__seed);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __run = || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        Ok(())
                    };
                    if let Err(msg) = __run() {
                        panic!(
                            "proptest case {} (seed {:#x}) failed: {}",
                            __case, __seed, msg
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                left,
                right
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($a),
                stringify!($b),
                left
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_parser_handles_class_and_repetition() {
        let (alpha, lo, hi) = super::parse_simple_pattern("[a-z]{1,12}").unwrap();
        assert_eq!(alpha.len(), 26);
        assert_eq!((lo, hi), (1, 12));
        let (alpha, lo, hi) = super::parse_simple_pattern("[ab]").unwrap();
        assert_eq!(alpha, vec!['a', 'b']);
        assert_eq!((lo, hi), (1, 1));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -2.0f64..2.0, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            let _: bool = b; // bool strategy produced a value

        }

        #[test]
        fn vec_lengths_respect_range(v in proptest::collection::vec((0u8..4, 0u8..16), 1..12)) {
            prop_assert!(!v.is_empty() && v.len() < 12);
            for (a, b) in v {
                prop_assert!(a < 4);
                prop_assert!(b < 16);
            }
        }

        #[test]
        fn string_pattern_generates_lowercase(name in "[a-z]{1,12}") {
            prop_assert!(!name.is_empty() && name.len() <= 12);
            prop_assert!(name.chars().all(|c| c.is_ascii_lowercase()));
        }
    }
}
