//! Offline drop-in subset of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for structs with named fields —
//! the only shape the workspace derives on (stats snapshots and report
//! rows). The token stream is parsed by hand (no `syn`/`quote` in the
//! offline environment): outer/field attributes are skipped, visibility
//! modifiers are ignored, and field boundaries are found by splitting
//! on depth-0 commas while tracking `<`/`>` angle-bracket nesting in
//! field types. Tuple structs, enums, and generic structs produce a
//! `compile_error!` pointing back here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(ts) => ts,
        Err(msg) => format!("compile_error!({:?});", msg).parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let mut iter = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the `[...]` group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }

    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {}
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
            return Err("vendored #[derive(Serialize)] supports only structs".into());
        }
        other => return Err(format!("unexpected token after attributes: {:?}", other)),
    }

    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct name, found {:?}", other)),
    };

    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err("vendored #[derive(Serialize)] does not support generics".into());
        }
        _ => {
            return Err("vendored #[derive(Serialize)] supports only named-field structs".into());
        }
    };

    let fields = parse_named_fields(body)?;

    let mut code = String::new();
    code.push_str(&format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_json(&self, out: &mut String) {{\n\
         out.push('{{');\n"
    ));
    for (i, field) in fields.iter().enumerate() {
        if i > 0 {
            code.push_str("out.push(',');\n");
        }
        code.push_str(&format!(
            "out.push_str(\"\\\"{field}\\\":\");\n\
             ::serde::Serialize::serialize_json(&self.{field}, out);\n"
        ));
    }
    code.push_str("out.push('}');\n}\n}\n");
    code.parse()
        .map_err(|e| format!("generated code failed to parse: {e:?}"))
}

/// Extracts field names from the token stream inside a struct's braces.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip field attributes and visibility.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {:?}", other)),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, found {:?}", other)),
        }
        fields.push(name);
        // Consume the field type up to the next depth-0 comma. Generic
        // arguments (`Vec<(u64, u64)>`) contain commas only inside
        // `<`/`>` pairs or delimited groups, which arrive as single
        // token trees; only angle depth needs explicit tracking.
        let mut angle_depth = 0i32;
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}
