//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `criterion` it actually uses: `Criterion`,
//! `Bencher::iter` / `iter_batched`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark is
//! timed with a short calibrated loop and the mean per-iteration time
//! is printed; the real crate's statistical analysis (outlier
//! rejection, regression detection, HTML reports) is not reproduced.

use std::time::{Duration, Instant};

/// Opaque wrapper preventing the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How much setup output to batch per timing run in
/// [`Bencher::iter_batched`]. Only a hint; the stub sizes batches
/// identically for all variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output (batches freely).
    SmallInput,
    /// Large setup output.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Times closures for one benchmark id.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` for a calibrated number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: run once to estimate, then size the loop for a
        // budget of roughly 50 ms (min 10, max 1000 iterations).
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let n = (Duration::from_millis(50).as_nanos() / once.as_nanos()).clamp(10, 1000) as u64;
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = n;
    }

    /// Times `routine` over inputs produced by `setup`; only the
    /// routine is measured.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let n = (Duration::from_millis(50).as_nanos() / once.as_nanos()).clamp(10, 200) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..n {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
        self.iters = n;
    }
}

/// Benchmark driver: registers ids and prints per-iteration timings.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one benchmark and prints its mean per-iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.total.as_nanos() as f64 / b.iters as f64
        };
        println!("bench {id:<40} {mean_ns:>12.1} ns/iter ({} iters)", b.iters);
        self
    }
}

/// Declares a benchmark group function, as in the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls >= 10);
    }

    #[test]
    fn iter_batched_measures_routine_only() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
