//! GPU inference with pointer reuse and recycling: scores a duplicate-heavy
//! image stream with a small CNN on the simulated device, comparing the
//! naive allocator (cudaMalloc/Free per output), the recycling allocator
//! (PyTorch-like), and full MEMPHIS reuse.
//!
//! Run with: `cargo run --release -p memphis-examples --bin gpu_inference`

use memphis_core::cache::config::CacheConfig;
use memphis_engine::{EngineConfig, ReuseMode};
use memphis_gpusim::GpuConfig;
use memphis_matrix::ops::nn::Conv2dParams;
use memphis_matrix::ops::unary::UnaryOp;
use memphis_workloads::data;
use memphis_workloads::harness::Backends;
use std::time::Instant;

fn main() {
    let images = data::images(128, 3, 8, 0.5, 3); // 50% duplicates
    for (label, mode, recycling) in [
        ("naive-alloc", ReuseMode::None, false),
        ("recycling  ", ReuseMode::None, true),
        ("memphis    ", ReuseMode::Memphis, true),
    ] {
        let backends = Backends::with_gpu(GpuConfig::calibrated(128 << 20));
        let mut cfg = EngineConfig::benchmark().with_reuse(mode);
        cfg.gpu_min_cells = 128;
        cfg.gpu_recycling = recycling;
        let mut ctx = backends.make_ctx(cfg, CacheConfig::benchmark());

        ctx.rand("W", 8, 27, -0.3, 0.3, 5).unwrap();
        let p = Conv2dParams {
            in_channels: 3,
            out_channels: 8,
            height: 8,
            width: 8,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let t0 = Instant::now();
        let mut total = 0.0;
        for i in 0..images.rows() {
            let img = memphis_matrix::ops::reorg::slice_rows(&images, i, i + 1).unwrap();
            // Content-fingerprint lineage so duplicate images share traces.
            let name = format!("img:{}", img.fingerprint());
            ctx.read("I", img, &name).unwrap();
            ctx.conv2d("C", "I", "W", p).unwrap();
            ctx.unary("R", "C", UnaryOp::Relu).unwrap();
            ctx.agg(
                "s",
                "R",
                memphis_matrix::ops::agg::AggOp::Mean,
                memphis_engine::ops::AggDir::Full,
            )
            .unwrap();
            total += ctx.get_scalar("s").unwrap();
            ctx.remove("C");
            ctx.remove("R");
            ctx.remove("I");
        }
        let elapsed = t0.elapsed();
        let d = backends.gpu.as_ref().unwrap().stats();
        let r = ctx.cache().stats();
        println!(
            "{label} {:.3}s  checksum={total:.4}  allocs={} kernels={} recycled={} gpu-hits={}",
            elapsed.as_secs_f64(),
            d.allocs,
            d.kernels,
            r.gpu_recycled,
            r.hits_gpu,
        );
    }
}
