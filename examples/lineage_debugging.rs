//! Lineage-based debugging (§3.2): trace a pipeline, SERIALIZE the lineage
//! of its result, ship the log elsewhere, and RECOMPUTE the exact same
//! intermediate from the log — full re-execution from lineage, the
//! reproducibility workflow the paper describes.
//!
//! Run with: `cargo run -p memphis-examples --bin lineage_debugging`

use memphis_core::cache::entry::CachedObject;
use memphis_core::lineage::serialize;
use memphis_core::recompute::recompute;
use memphis_engine::recompute_exec::MatrixExecutor;
use memphis_engine::{EngineConfig, ExecutionContext};
use memphis_matrix::ops::binary::BinaryOp;
use memphis_matrix::ops::unary::UnaryOp;
use memphis_matrix::rand_gen::rand_uniform;

fn main() {
    // Run a small pipeline with tracing enabled.
    let mut ctx = ExecutionContext::local(EngineConfig::test());
    let x = rand_uniform(64, 8, -1.0, 1.0, 9);
    ctx.read("X", x.clone(), "X.bin").unwrap();
    ctx.tsmm("G", "X").unwrap();
    ctx.binary_const("A", "G", 0.001, BinaryOp::Add, false)
        .unwrap();
    ctx.unary("S", "A", UnaryOp::Sqrt).unwrap();
    let original = ctx.get_matrix("S").unwrap();

    // SERIALIZE the lineage trace of S to a log.
    let trace = ctx.lineage_of("S").expect("traced");
    let log = serialize(&trace);
    println!("--- lineage log of S ({} nodes) ---", log.lines().count());
    print!("{log}");

    // RECOMPUTE the result in a fresh environment from the log alone,
    // given only the named input dataset.
    let mut exec = MatrixExecutor::default().with_input("X.bin", x);
    match recompute(&log, &mut exec).expect("recompute") {
        CachedObject::Matrix(m) => {
            assert!(m.approx_eq(&original, 1e-12));
            println!(
                "--- recomputed S matches the original ({}x{} matrix) ---",
                m.rows(),
                m.cols()
            );
        }
        other => panic!("unexpected {other:?}"),
    }
}
