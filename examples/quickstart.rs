//! Quickstart: build an execution context, run a few instructions through
//! the lineage-based reuse hook, and watch the second execution get
//! skipped.
//!
//! Run with: `cargo run -p memphis-examples --bin quickstart`

use memphis_engine::{EngineConfig, ExecutionContext};
use memphis_matrix::ops::binary::BinaryOp;
use memphis_matrix::rand_gen::rand_uniform;

fn main() {
    // A CPU-only context with a fresh lineage cache; Spark and GPU
    // backends attach the same way via `ExecutionContext::new`.
    let mut ctx = ExecutionContext::local(EngineConfig::test());

    // Bind an input dataset. The name uniquely identifies the data in
    // lineage traces.
    let x = rand_uniform(1000, 16, -1.0, 1.0, 42);
    ctx.read("X", x, "data/X.bin").unwrap();

    // First execution: traced, executed, and cached.
    ctx.tsmm("G1", "X").unwrap();
    println!(
        "after 1st tsmm: instructions={} reused={}",
        ctx.stats.instructions, ctx.stats.reused
    );

    // Second execution of the same computation: served from the cache.
    ctx.tsmm("G2", "X").unwrap();
    println!(
        "after 2nd tsmm: instructions={} reused={}",
        ctx.stats.instructions, ctx.stats.reused
    );
    assert_eq!(ctx.stats.reused, 1);

    // Literals participate in lineage: repeated hyper-parameters reuse.
    for reg in [0.1, 0.2, 0.1] {
        ctx.literal("reg", reg).unwrap();
        ctx.binary("A", "G1", "reg", BinaryOp::Add).unwrap();
    }
    println!(
        "after the reg loop: reused={} (reg=0.1 repeated)",
        ctx.stats.reused
    );

    let cache = ctx.cache().stats();
    println!(
        "cache: probes={} hits={} misses={} puts={}",
        cache.probes, cache.hits, cache.misses, cache.puts
    );
}
