//! Example 4.1 of the paper: grid-search hyper-parameter tuning over
//! direct-solve linear regression, with the feature matrix distributed on
//! the simulated Spark cluster. The regularization-independent `t(X)X`
//! and `t(X)y` Spark jobs run once and are reused across the entire grid
//! (Spark action reuse + local reuse), as in Figure 7.
//!
//! Run with: `cargo run --release -p memphis-examples --bin gridsearch_lr`

use memphis_core::cache::config::CacheConfig;
use memphis_engine::{EngineConfig, ReuseMode};
use memphis_matrix::ops::binary::BinaryOp;
use memphis_sparksim::SparkConfig;
use memphis_workloads::data;
use memphis_workloads::harness::Backends;
use std::time::Instant;

fn main() {
    let regs: Vec<f64> = (1..=10).map(|i| i as f64 * 0.05).collect();
    for mode in [ReuseMode::None, ReuseMode::Memphis] {
        let backends = Backends::with_spark(SparkConfig::benchmark());
        let mut cfg = EngineConfig::benchmark().with_reuse(mode);
        cfg.spark_threshold_bytes = 64 << 10; // X becomes an RDD
        cfg.blen = 256;
        let mut ctx = backends.make_ctx(cfg, CacheConfig::benchmark());

        let (x, y) = data::regression(4096, 32, 0.05, 7);
        ctx.read("X", x, "lr/X").unwrap();
        ctx.read("y", y, "lr/y").unwrap();

        let t0 = Instant::now();
        let mut best = (f64::INFINITY, 0.0);
        for &reg in &regs {
            ctx.literal("reg", reg).unwrap();
            // linRegDS: w = solve(t(X)X + reg*I, t(X)y)
            ctx.tsmm("G", "X").unwrap(); // Spark job (reused)
            ctx.xty("b", "X", "y").unwrap(); // Spark job (reused)
            ctx.binary("A", "G", "reg", BinaryOp::Add).unwrap();
            ctx.solve("w", "A", "b").unwrap();
            // Score on the training data.
            ctx.matmul("p", "X", "w").unwrap();
            ctx.binary("e", "p", "y", BinaryOp::Sub).unwrap();
            ctx.binary("e2", "e", "e", BinaryOp::Mul).unwrap();
            ctx.agg(
                "mse",
                "e2",
                memphis_matrix::ops::agg::AggOp::Mean,
                memphis_engine::ops::AggDir::Full,
            )
            .unwrap();
            let mse = ctx.get_scalar("mse").unwrap();
            if mse < best.0 {
                best = (mse, reg);
            }
        }
        let elapsed = t0.elapsed();
        let jobs = backends.sc.as_ref().unwrap().stats().jobs;
        println!(
            "{:?}: best reg={:.2} (mse {:.5}) in {:.3}s — {} Spark jobs, {} instructions reused",
            mode,
            best.1,
            best.0,
            elapsed.as_secs_f64(),
            jobs,
            ctx.stats.reused
        );
    }
}
