//! Shared helpers for the MEMPHIS examples (currently none — each example
//! is self-contained).
