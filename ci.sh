#!/usr/bin/env bash
# Repo CI gate: build, tests, lints, formatting. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q

# Chaos suite: seeded fault injection must recover deterministically
# under two fixed seeds, and the whole test suite must also pass
# single-threaded (shakes out ordering assumptions).
for seed in 42 1337; do
    CHAOS_SEED="$seed" cargo test -q -p memphis-sparksim --test chaos
    CHAOS_SEED="$seed" cargo test -q -p memphis-integration --test chaos_end_to_end
done
cargo test -q -- --test-threads=1

# Observability suite: the golden Chrome-trace schema and the
# async-prefetch overlap assertions must hold under both chaos seeds
# (the trace shape is seed-independent), and the disabled-mode
# zero-cost guarantee must hold in isolation.
for seed in 42 1337; do
    CHAOS_SEED="$seed" cargo test -q -p memphis-integration --test obs_tracing \
        -- --test-threads=1 golden_chrome_trace async_prefetch
done
cargo test -q -p memphis-integration --test obs_tracing disabled_mode

cargo clippy --all-targets -- -D warnings
cargo fmt --check

echo "ci: all checks passed"
