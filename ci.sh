#!/usr/bin/env bash
# Repo CI gate: build, tests, lints, formatting. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q

# Chaos suite: seeded fault injection must recover deterministically
# under two fixed seeds, and the whole test suite must also pass
# single-threaded (shakes out ordering assumptions).
for seed in 42 1337; do
    CHAOS_SEED="$seed" cargo test -q -p memphis-sparksim --test chaos
    CHAOS_SEED="$seed" cargo test -q -p memphis-integration --test chaos_end_to_end
done
cargo test -q -- --test-threads=1

cargo clippy --all-targets -- -D warnings
cargo fmt --check

echo "ci: all checks passed"
