#!/usr/bin/env bash
# Repo CI gate, split into named stages with per-stage wall-clock timing
# and a summary table. Run from the repo root.
#
# Usage: ./ci.sh [--skip-lint] [stage ...]
#   --skip-lint  omit the lint stage (CI runs it in a separate fast job)
#   stage ...    run only the named stages (build test chaos obs
#                concurrency serve cluster recovery latency script
#                bench_gate perf lint); default is all of them.
set -euo pipefail
cd "$(dirname "$0")"

STAGE_NAMES=()
STAGE_TIMES=()
CURRENT_STAGE=""
CURRENT_T0=0

# `set -e` aborts mid-stage on the first failing command, which used to
# skip the summary table entirely — the most useful output on a red run.
# The EXIT trap prints it unconditionally, marking the stage that died.
print_summary() {
    local status=$?
    echo
    echo "ci: stage summary"
    printf '  %-12s %8s\n' stage seconds
    local total=0
    for i in "${!STAGE_NAMES[@]}"; do
        printf '  %-12s %8s\n' "${STAGE_NAMES[$i]}" "${STAGE_TIMES[$i]}"
        total=$((total + STAGE_TIMES[$i]))
    done
    if [ "$status" -ne 0 ] && [ -n "$CURRENT_STAGE" ]; then
        local dt=$(($(date +%s) - CURRENT_T0))
        printf '  %-12s %8s  FAILED\n' "$CURRENT_STAGE" "$dt"
        total=$((total + dt))
    fi
    printf '  %-12s %8s\n' total "$total"
    if [ "$status" -eq 0 ]; then
        echo "ci: all checks passed"
    else
        echo "ci: FAILED${CURRENT_STAGE:+ in stage '$CURRENT_STAGE'} (exit $status)" >&2
    fi
}
trap print_summary EXIT

run_stage() {
    local name="$1"
    shift
    echo
    echo "=== stage: $name ==="
    CURRENT_STAGE="$name"
    CURRENT_T0=$(date +%s)
    "$@"
    local dt=$(($(date +%s) - CURRENT_T0))
    CURRENT_STAGE=""
    STAGE_NAMES+=("$name")
    STAGE_TIMES+=("$dt")
    echo "=== stage: $name done in ${dt}s ==="
}

stage_build() {
    cargo build --release
}

stage_test() {
    cargo test -q
    # The whole suite must also pass single-threaded (shakes out
    # ordering assumptions).
    cargo test -q -- --test-threads=1
}

# Chaos suite: seeded fault injection must recover deterministically
# under two fixed seeds.
stage_chaos() {
    for seed in 42 1337; do
        CHAOS_SEED="$seed" cargo test -q -p memphis-sparksim --test chaos
        CHAOS_SEED="$seed" cargo test -q -p memphis-integration --test chaos_end_to_end
    done
}

# Observability suite: the golden Chrome-trace schema and the
# async-prefetch overlap assertions must hold under both chaos seeds
# (the trace shape is seed-independent), and the disabled-mode
# zero-cost guarantee must hold in isolation.
stage_obs() {
    for seed in 42 1337; do
        CHAOS_SEED="$seed" cargo test -q -p memphis-integration --test obs_tracing \
            -- --test-threads=1 golden_chrome_trace async_prefetch
    done
    cargo test -q -p memphis-integration --test obs_tracing disabled_mode
}

# Concurrency stress suite: the sharded-cache coalescing invariants
# (no duplicate computation of a shared lineage id, no deadlock under
# eviction pressure, thread-count-invariant counters) under both chaos
# seeds, parallel and single-threaded.
stage_concurrency() {
    for seed in 42 1337; do
        CHAOS_SEED="$seed" cargo test -q -p memphis-integration --test concurrency
        CHAOS_SEED="$seed" cargo test -q -p memphis-integration --test concurrency \
            -- --test-threads=1
        CHAOS_SEED="$seed" cargo test -q -p memphis-workloads serve
    done
}

# Serving suite: the disk-tier spill/promote/fault tests and the
# serving scheduler's determinism + isolation contract under both chaos
# seeds, then the full exp_serve experiment (which re-asserts the
# contract at gate scale across worker counts and a 30% fault storm).
stage_serve() {
    for seed in 42 1337; do
        CHAOS_SEED="$seed" cargo test -q -p memphis-integration --test disk_tier
        CHAOS_SEED="$seed" cargo test -q -p memphis-integration --test serving
        CHAOS_SEED="$seed" cargo test -q -p memphis-serve
    done
    cargo run -q --release -p memphis-bench --bin exp_serve
}

# Cluster suite: node-count invariance, bounded lossless churn, remote
# coalescing, and hotspot flattening under both chaos seeds (plus one
# single-threaded pass), then the full exp_cluster experiment (which
# re-asserts digest invariance across node counts {1,2,4,8}, across
# mid-run join/leave, and the replication flattening claim).
stage_cluster() {
    for seed in 42 1337; do
        CHAOS_SEED="$seed" cargo test -q -p memphis-cluster
        CHAOS_SEED="$seed" cargo test -q -p memphis-integration --test cluster
    done
    CHAOS_SEED=42 cargo test -q -p memphis-integration --test cluster \
        -- --test-threads=1
    cargo run -q --release -p memphis-bench --bin exp_cluster
}

# Crash-recovery suite: the kill-at-every-sync differential sweep and
# the torn-write/corruption proptest over the durable disk tier, under
# both chaos seeds, plus one single-threaded pass (shakes out scratch
# directory and intern-order assumptions).
stage_recovery() {
    for seed in 42 1337; do
        CHAOS_SEED="$seed" cargo test -q -p memphis-integration --test crash_recovery
    done
    CHAOS_SEED=42 cargo test -q -p memphis-integration --test crash_recovery \
        -- --test-threads=1
}

# Latency suite: the delayed-hits eviction/admission layer — TTNA
# tracking, the zero-waiter eq. (1) fixed point, MURS admission
# shedding, and policy-independent served digests under both chaos
# seeds (plus one single-threaded pass), then the full exp_latency
# experiment (which re-asserts the p99 drop at gate scale for seeds
# 42 and 1337).
stage_latency() {
    for seed in 42 1337; do
        CHAOS_SEED="$seed" cargo test -q -p memphis-integration --test latency
    done
    CHAOS_SEED=42 cargo test -q -p memphis-integration --test latency \
        -- --test-threads=1
    cargo run -q --release -p memphis-bench --bin exp_latency
}

# Script suite: the DML frontend's round-trip and span-diagnostic
# contract, the corpus/builder-twin digest identity, and the structured
# differential fuzzer under both chaos seeds (plus one single-threaded
# pass), then the full exp_script experiment (corpus differential +
# 200 generated programs per seed, zero divergences).
stage_script() {
    for seed in 42 1337; do
        CHAOS_SEED="$seed" cargo test -q -p memphis-script
        CHAOS_SEED="$seed" cargo test -q -p memphis-workloads script
        CHAOS_SEED="$seed" cargo test -q -p memphis-integration --test script
    done
    CHAOS_SEED=42 cargo test -q -p memphis-integration --test script \
        -- --test-threads=1
    cargo run -q --release -p memphis-bench --bin exp_script
}

# Bench smoke gate: deterministic reuse/eviction/coalescing counters
# must match the committed baseline exactly.
stage_bench_gate() {
    ci/bench_gate.sh
}

# Perf stage: the gate workloads at baseline scale (exact-match counter
# gate) plus a ~10x serving/concurrency stress under virtual time,
# reporting ops/sec and p50/p99 latency into BENCH_pr6.json. Wall-clock
# keys are informational; any gated-counter divergence fails the stage.
stage_perf() {
    cargo build --release -q -p memphis-bench --bin perf_stress
    ./target/release/perf_stress BENCH_pr6.json ci/BENCH_baseline.json
}

stage_lint() {
    cargo clippy --all-targets -- -D warnings
    cargo fmt --check
}

ALL_STAGES=(build test chaos obs concurrency serve cluster recovery latency script bench_gate perf lint)
SKIP_LINT=0
REQUESTED=()
for arg in "$@"; do
    case "$arg" in
        --skip-lint) SKIP_LINT=1 ;;
        *) REQUESTED+=("$arg") ;;
    esac
done
if [ "${#REQUESTED[@]}" -eq 0 ]; then
    REQUESTED=("${ALL_STAGES[@]}")
fi

for stage in "${REQUESTED[@]}"; do
    if [ "$stage" = lint ] && [ "$SKIP_LINT" = 1 ]; then
        continue
    fi
    case "$stage" in
        build|test|chaos|obs|concurrency|serve|cluster|recovery|latency|script|bench_gate|perf|lint)
            run_stage "$stage" "stage_$stage" ;;
        *)
            echo "ci: unknown stage '$stage' (known: ${ALL_STAGES[*]})" >&2
            exit 2 ;;
    esac
done
