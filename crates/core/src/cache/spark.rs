//! Spark-side cache management helpers: reuse budget, lazy garbage
//! collection of dangling RDD/broadcast references, and asynchronous
//! materialization (paper §4.1).

use crate::stats::ReuseStats;
use memphis_sparksim::{RddRef, SparkContext};
use std::collections::HashSet;
use std::sync::Arc;

/// The Spark backend attachment of the lineage cache.
pub struct SparkBackend {
    /// Driver handle to the simulated cluster.
    pub sc: SparkContext,
    /// Bytes of storage memory the cache may use for reuse-persisted RDDs
    /// (the paper's 80% heuristic; the rest is reserved for broadcasts and
    /// compiler checkpoints).
    pub reuse_budget: usize,
    /// Run materialization `count()` jobs inline instead of on a spawned
    /// thread — deterministic mode for tests.
    pub sync_materialize: bool,
}

impl SparkBackend {
    /// Attaches a cluster, reserving `reuse_fraction` of storage memory.
    pub fn new(sc: SparkContext, reuse_fraction: f64) -> Self {
        let reuse_budget = (sc.storage_capacity() as f64 * reuse_fraction) as usize;
        Self {
            sc,
            reuse_budget,
            sync_materialize: false,
        }
    }

    /// Triggers the cheap `count()` materialization job for an RDD whose
    /// reuse kept it lazy for too long (paper: after `k` cache misses),
    /// either inline or on a background thread.
    pub fn trigger_materialize(&self, rdd: &RddRef, stats: &Arc<ReuseStats>) {
        ReuseStats::inc(&stats.rdd_materialize_jobs);
        if self.sync_materialize {
            self.sc.count(rdd);
        } else {
            let sc = self.sc.clone();
            let rdd = rdd.clone();
            std::thread::spawn(move || {
                sc.count(&rdd);
            });
        }
    }

    /// Lazy garbage collection (paper Figure 6): once `root` is
    /// materialized, walk its ancestor chain and release stale resources —
    /// shuffle files of non-cached ancestors and broadcast variables not
    /// protected by other (unmaterialized) cache entries.
    ///
    /// `cached_rdds` are RDD ids referenced by live cache entries (never
    /// cleaned here; their own GC runs when they materialize), and
    /// `protected_broadcasts` are broadcast ids still needed by
    /// unmaterialized entries.
    ///
    /// When the cluster runs with fault injection enabled, "materialized"
    /// is never permanent — an executor kill or a cached-block drop can
    /// force recomputation through any ancestor at any time — so instead
    /// of `destroy()`ing broadcasts (which would dangle under recompute,
    /// the failure of §2.2) GC downgrades to `unpersist()`: executor
    /// copies are released but the driver value stays fetchable.
    ///
    /// Returns `(shuffles_cleaned, broadcasts_released)`.
    pub fn lazy_gc(
        &self,
        root: &RddRef,
        cached_rdds: &HashSet<u64>,
        protected_broadcasts: &HashSet<u64>,
        stats: &Arc<ReuseStats>,
    ) -> (u64, u64) {
        let mut shuffles = 0;
        let mut broadcasts = 0;
        let recompute_possible = self.sc.config().fault_plan.is_active();
        let mut release = |bc: &memphis_sparksim::BroadcastRef| {
            if protected_broadcasts.contains(&bc.id().0) {
                return;
            }
            if recompute_possible {
                if bc.unpersist() {
                    broadcasts += 1;
                    ReuseStats::inc(&stats.gc_broadcasts_unpersisted);
                }
            } else if !bc.is_destroyed() {
                bc.destroy();
                broadcasts += 1;
                ReuseStats::inc(&stats.gc_broadcasts_destroyed);
            }
        };
        // The root's own broadcast (e.g. the vector of a broadcast-based
        // matmul) is releasable too: the materialized partitions no longer
        // need it.
        if let Some(bc) = root.broadcast() {
            release(&bc);
        }
        // Ancestor shuffle files may still be needed to recompute lost or
        // evicted partitions of the root: only release them when the root
        // is disk-backed (its partitions can never be dropped silently).
        let root_disk_backed = matches!(
            root.persist_level(),
            Some(memphis_sparksim::StorageLevel::MemoryAndDisk)
                | Some(memphis_sparksim::StorageLevel::Disk)
        );
        let mut visited: HashSet<u64> = HashSet::new();
        let mut stack: Vec<RddRef> = root.parents();
        while let Some(rdd) = stack.pop() {
            if !visited.insert(rdd.id().0) {
                continue;
            }
            if cached_rdds.contains(&rdd.id().0) {
                // Another cache entry owns this RDD; stop descending — its
                // own lazy GC handles its ancestors.
                continue;
            }
            if root_disk_backed && rdd.shuffle_id().is_some() {
                self.sc.cleanup_shuffle(&rdd);
                shuffles += 1;
                ReuseStats::inc(&stats.gc_rdds_released);
            }
            if let Some(bc) = rdd.broadcast() {
                release(&bc);
            }
            stack.extend(rdd.parents());
        }
        (shuffles, broadcasts)
    }

    /// Collects the broadcast ids reachable from an RDD's lineage —
    /// used to compute the protected set for unmaterialized entries.
    pub fn reachable_broadcasts(root: &RddRef) -> HashSet<u64> {
        let mut out = HashSet::new();
        let mut visited: HashSet<u64> = HashSet::new();
        let mut stack = vec![root.clone()];
        while let Some(rdd) = stack.pop() {
            if !visited.insert(rdd.id().0) {
                continue;
            }
            if let Some(bc) = rdd.broadcast() {
                out.insert(bc.id().0);
            }
            stack.extend(rdd.parents());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memphis_matrix::{BlockedMatrix, Matrix};
    use memphis_sparksim::SparkConfig;
    use std::sync::Arc as StdArc;

    fn ctx() -> SparkContext {
        SparkContext::new(SparkConfig::local_test())
    }

    #[test]
    fn budget_is_fraction_of_storage() {
        let sc = ctx();
        let b = SparkBackend::new(sc.clone(), 0.8);
        assert_eq!(
            b.reuse_budget,
            (sc.storage_capacity() as f64 * 0.8) as usize
        );
    }

    #[test]
    fn lazy_gc_cleans_shuffles_and_broadcasts() {
        let sc = ctx();
        let backend = SparkBackend::new(sc.clone(), 0.8);
        let stats = StdArc::new(ReuseStats::default());
        let m = Matrix::filled(16, 4, 1.0);
        let b = BlockedMatrix::from_dense(&m, 4).unwrap();
        let src = sc.parallelize_blocked(&b, "X");
        let bc = sc.broadcast(Matrix::filled(1, 4, 2.0));
        let mapped = sc.map_with_broadcast(
            &src,
            "withB",
            &bc,
            StdArc::new(|k, m, _| (*k, m.deep_clone())),
        );
        let shuffled = sc.reduce_by_key(
            &mapped,
            "agg",
            StdArc::new(|k, m| vec![(*k, m.deep_clone())]),
            StdArc::new(|a, _| a),
            2,
        );
        sc.count(&shuffled); // materialize shuffle files
        assert!(sc.runtime().shuffle.retained() > 0);

        let final_rdd = sc.map(&shuffled, "final", StdArc::new(|k, m| (*k, m.deep_clone())));
        // Ancestor shuffle cleanup requires a disk-backed root (otherwise
        // recomputing lost partitions would need the shuffle files).
        final_rdd.persist(memphis_sparksim::StorageLevel::MemoryAndDisk);
        let (shf, bcs) = backend.lazy_gc(&final_rdd, &HashSet::new(), &HashSet::new(), &stats);
        assert_eq!(shf, 1);
        assert_eq!(bcs, 1);
        assert!(bc.is_destroyed());
        assert_eq!(sc.runtime().shuffle.retained(), 0);
    }

    #[test]
    fn lazy_gc_respects_protected_sets() {
        let sc = ctx();
        let backend = SparkBackend::new(sc.clone(), 0.8);
        let stats = StdArc::new(ReuseStats::default());
        let m = Matrix::filled(8, 4, 1.0);
        let b = BlockedMatrix::from_dense(&m, 4).unwrap();
        let src = sc.parallelize_blocked(&b, "X");
        let bc = sc.broadcast(Matrix::filled(1, 4, 2.0));
        let mapped = sc.map_with_broadcast(
            &src,
            "withB",
            &bc,
            StdArc::new(|k, m, _| (*k, m.deep_clone())),
        );
        let final_rdd = sc.map(&mapped, "final", StdArc::new(|k, m| (*k, m.deep_clone())));

        // Protect the broadcast.
        let protected: HashSet<u64> = [bc.id().0].into_iter().collect();
        backend.lazy_gc(&final_rdd, &HashSet::new(), &protected, &stats);
        assert!(!bc.is_destroyed());

        // Protect the intermediate RDD: traversal must stop there.
        let cached: HashSet<u64> = [mapped.id().0].into_iter().collect();
        backend.lazy_gc(&final_rdd, &cached, &HashSet::new(), &stats);
        assert!(!bc.is_destroyed(), "stopped before reaching the broadcast");
    }

    #[test]
    fn lazy_gc_unpersists_instead_of_destroying_under_faults() {
        // With fault injection active, a "materialized" RDD can lose
        // cached partitions at any time; GC must keep broadcasts
        // recomputable (unpersist) rather than destroying them.
        let mut cfg = SparkConfig::local_test();
        cfg.fault_plan = memphis_sparksim::FaultPlan::seeded(7).with_executor_kill(u64::MAX, 0, 0); // active plan, never fires
        let sc = SparkContext::new(cfg);
        let backend = SparkBackend::new(sc.clone(), 0.8);
        let stats = StdArc::new(ReuseStats::default());
        let m = Matrix::filled(16, 4, 1.0);
        let b = BlockedMatrix::from_dense(&m, 4).unwrap();
        let src = sc.parallelize_blocked(&b, "X");
        let bc = sc.broadcast(Matrix::filled(1, 4, 2.0));
        let mapped = sc.map_with_broadcast(
            &src,
            "withB",
            &bc,
            StdArc::new(|k, m, _| (*k, m.deep_clone())),
        );
        sc.count(&mapped); // executors pull the chunks
        assert!(bc.delivered_executors() > 0);

        let (_, released) = backend.lazy_gc(&mapped, &HashSet::new(), &HashSet::new(), &stats);
        assert_eq!(released, 1);
        assert!(!bc.is_destroyed(), "faulty cluster must not destroy");
        assert_eq!(bc.delivered_executors(), 0, "executor copies released");
        assert_eq!(stats.snapshot().gc_broadcasts_unpersisted, 1);
        assert_eq!(stats.snapshot().gc_broadcasts_destroyed, 0);

        // Recompute through the broadcast still works.
        assert_eq!(sc.count(&mapped), 4, "one record per block");
    }

    #[test]
    fn reachable_broadcasts_traverses_dag() {
        let sc = ctx();
        let m = Matrix::filled(8, 4, 1.0);
        let b = BlockedMatrix::from_dense(&m, 4).unwrap();
        let src = sc.parallelize_blocked(&b, "X");
        let bc1 = sc.broadcast(Matrix::scalar(1.0));
        let bc2 = sc.broadcast(Matrix::scalar(2.0));
        let a = sc.map_with_broadcast(&src, "a", &bc1, StdArc::new(|k, m, _| (*k, m.deep_clone())));
        let b2 = sc.map_with_broadcast(&a, "b", &bc2, StdArc::new(|k, m, _| (*k, m.deep_clone())));
        let set = SparkBackend::reachable_broadcasts(&b2);
        assert!(set.contains(&bc1.id().0));
        assert!(set.contains(&bc2.id().0));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn sync_materialize_runs_inline() {
        let sc = ctx();
        let mut backend = SparkBackend::new(sc.clone(), 0.8);
        backend.sync_materialize = true;
        let stats = StdArc::new(ReuseStats::default());
        let m = Matrix::filled(8, 4, 1.0);
        let b = BlockedMatrix::from_dense(&m, 4).unwrap();
        let src = sc.parallelize_blocked(&b, "X");
        let mapped = sc.map(&src, "id", StdArc::new(|k, m| (*k, m.deep_clone())));
        mapped.persist(sc.default_storage_level());
        backend.trigger_materialize(&mapped, &stats);
        assert!(sc.is_fully_cached(&mapped));
        assert_eq!(stats.snapshot().rdd_materialize_jobs, 1);
    }
}
