//! The four built-in cache tiers as [`CacheBackend`] implementations:
//! driver-local memory, driver-local disk spill, Spark, and GPU.
//!
//! Each tier owns its byte accounting behind its own lock and cooperates
//! with the others through the registry: the local tier spills cold
//! matrices into the disk tier, the disk tier promotes hot matrices back
//! through the local tier, and the GPU's device-to-host eviction
//! re-admits matrices through the local tier as well.
//!
//! Tiers receive the *sharded* probe map with no shard lock held and
//! lock the shards they touch themselves (at most one at a time).
//! Victim selection scans shards sequentially, so every eviction path
//! re-validates its victim under the victim's shard lock before acting —
//! a concurrent session may have promoted, migrated, or removed the
//! entry between selection and eviction. Pinned entries are filtered out
//! of victim selection entirely.

use crate::backend::{
    BackendId, BackendRegistry, BackendSnapshot, CacheBackend, EvictionPolicy, Materialized,
};
use crate::cache::config::{CacheConfig, CachePolicy};
use crate::cache::durable::{DurableRecord, RecoveredMeta, SegmentStore};
use crate::cache::entry::{CacheEntry, CachedObject};
use crate::cache::gpu::GpuMemoryManager;
use crate::cache::sharded::ShardedEntryMap;
use crate::cache::spark::SparkBackend;
use crate::lineage::{self, LineageId};
use crate::stats::ReuseStats;
use memphis_matrix::io as mio;
use memphis_matrix::Matrix;
use memphis_sparksim::StorageLevel;
use parking_lot::Mutex;
use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;

// ----------------------------------------------------------------------
// Local (driver memory)
// ----------------------------------------------------------------------

/// Per-tenant byte accounting for the serving layer: local bytes held by
/// each tenant's entries plus the soft quotas configured for them.
#[derive(Debug, Default)]
struct TenantLedger {
    used: HashMap<u16, usize>,
    quotas: HashMap<u16, usize>,
}

/// Driver-local in-memory tier: matrices and scalars against a byte
/// budget, eq. (1) eviction with spill into the disk tier.
pub struct LocalBackend {
    budget: usize,
    spill_enabled: bool,
    policy: EvictionPolicy,
    used: Mutex<usize>,
    tenants: Mutex<TenantLedger>,
    stats: Arc<ReuseStats>,
    spill: Option<Arc<DiskBackend>>,
}

impl LocalBackend {
    /// Creates the tier; `spill` receives evicted-but-proven entries.
    pub fn new(
        config: &CacheConfig,
        stats: Arc<ReuseStats>,
        spill: Option<Arc<DiskBackend>>,
    ) -> Self {
        Self {
            budget: config.local_budget,
            spill_enabled: config.spill_to_disk,
            policy: EvictionPolicy::with_policy(config.policy),
            used: Mutex::new(0),
            tenants: Mutex::new(TenantLedger::default()),
            stats,
            spill,
        }
    }

    /// Sets a tenant's soft cache quota in bytes. Entries of tenants over
    /// their quota become preferred eviction victims.
    pub fn set_quota(&self, tenant: u16, bytes: usize) {
        self.tenants.lock().quotas.insert(tenant, bytes);
    }

    /// Local bytes currently charged to `tenant`.
    pub fn tenant_used(&self, tenant: u16) -> usize {
        self.tenants.lock().used.get(&tenant).copied().unwrap_or(0)
    }

    fn charge_tenant(&self, tenant: Option<u16>, bytes: usize) {
        if let Some(t) = tenant {
            *self.tenants.lock().used.entry(t).or_insert(0) += bytes;
        }
    }

    fn credit_tenant(&self, tenant: Option<u16>, bytes: usize) {
        if let Some(t) = tenant {
            if let Some(u) = self.tenants.lock().used.get_mut(&t) {
                *u = u.saturating_sub(bytes);
            }
        }
    }

    /// Tenants currently above their configured quota.
    fn over_quota(&self) -> HashSet<u16> {
        let ledger = self.tenants.lock();
        ledger
            .quotas
            .iter()
            .filter(|(t, q)| ledger.used.get(t).copied().unwrap_or(0) > **q)
            .map(|(t, _)| *t)
            .collect()
    }

    /// Evicts one eq. (1) victim (spill or drop). Returns bytes freed,
    /// or `None` when no victim remains.
    ///
    /// Tenant quotas fold into the score lexicographically: while any
    /// tenant is over its soft quota, the victim is the lowest-score
    /// entry *of an over-quota tenant*; only when none remain does the
    /// plain eq. (1) pass over all entries run. With no quotas configured
    /// the first pass is skipped entirely and behavior is unchanged.
    fn evict_one(&self, map: &ShardedEntryMap, skip: Option<LineageId>) -> Option<usize> {
        let over = self.over_quota();
        if !over.is_empty() {
            if let Some(freed) = self.evict_one_matching(map, skip, Some(&over)) {
                ReuseStats::inc(&self.stats.quota_evictions);
                return Some(freed);
            }
        }
        self.evict_one_matching(map, skip, None)
    }

    /// One eviction restricted (when `tenants` is set) to entries owned
    /// by the given tenants.
    fn evict_one_matching(
        &self,
        map: &ShardedEntryMap,
        skip: Option<LineageId>,
        tenants: Option<&HashSet<u16>>,
    ) -> Option<usize> {
        loop {
            let victim = map.select_victim(&self.policy, |k, e| {
                e.backend == BackendId::Local
                    && matches!(e.object, Some(CachedObject::Matrix(_)))
                    && skip.map(|s| k != s).unwrap_or(true)
                    && tenants
                        .map(|set| e.tenant.map(|t| set.contains(&t)).unwrap_or(false))
                        .unwrap_or(true)
            })?;
            let mut shard = map.lock_of(victim);
            // Re-validate under the shard lock: a concurrent session may
            // have removed, migrated, or pinned the victim since
            // selection; if so, select again.
            let Some(e) = shard.entries.get_mut(&victim) else {
                continue;
            };
            if e.backend != BackendId::Local || e.pinned {
                continue;
            }
            let Some(CachedObject::Matrix(m)) = e.object.clone() else {
                continue;
            };
            let msize = m.size_bytes();
            let tenant = e.tenant;
            if self.policy.policy == CachePolicy::DelayedHits {
                // Leave the victim's TTNA estimate behind so the
                // pressure-gated admission path can recognize it cycling
                // back, and count the eviction against the MAD score.
                map.record_ghost(victim, e.estimated_ttna());
                ReuseStats::inc(&self.stats.mad_evictions);
            }
            // Spill only entries with proven reuse (at least one hit) to
            // disk; unproven entries are dropped — avoiding disk-write
            // storms when a stream of never-reused intermediates thrashes
            // the budget (the robustness concern of §6.2).
            let spilled = self.spill_enabled
                && e.hits > 0
                && self
                    .spill
                    .as_ref()
                    .map(|d| d.store(&m, e.key, e.compute_cost, e.hits))
                    .unwrap_or(false);
            if spilled {
                e.object = Some(CachedObject::Disk(e.key.content_hash()));
                e.backend = BackendId::Disk;
                ReuseStats::inc(&self.stats.local_spills);
                memphis_obs::instant_val(memphis_obs::cat::CACHE, "spill", "bytes", msize as u64);
            } else {
                shard.entries.remove(&victim);
                ReuseStats::inc(&self.stats.local_drops);
                memphis_obs::instant_val(memphis_obs::cat::CACHE, "drop", "bytes", msize as u64);
            }
            {
                let mut used = self.used.lock();
                *used = used.saturating_sub(msize);
            }
            self.credit_tenant(tenant, msize);
            return Some(msize);
        }
    }

    /// MAKE_SPACE + reservation in one step: evicts until `size` extra
    /// bytes fit, then charges them to the accounting under the same
    /// lock acquisition that verified the headroom. A check-evict-charge
    /// sequence split across lock acquisitions would let two concurrent
    /// admissions each observe enough room and jointly overshoot the
    /// budget; the combined reserve cannot. Returns false (charging
    /// nothing) when eviction runs out of victims first.
    fn try_reserve(&self, map: &ShardedEntryMap, size: usize, skip: Option<LineageId>) -> bool {
        if size > self.budget {
            return false;
        }
        let mut evicting = false;
        loop {
            {
                let mut used = self.used.lock();
                if *used + size <= self.budget {
                    *used += size;
                    return true;
                }
            }
            if !evicting {
                evicting = true;
                memphis_obs::instant_val(
                    memphis_obs::cat::CACHE,
                    "make_space",
                    "bytes",
                    size as u64,
                );
            }
            if self.evict_one(map, skip).is_none() {
                return false;
            }
        }
    }

    /// Admits a matrix into an *existing* entry (disk promotion,
    /// device-to-host eviction): reserves space, rewrites the entry to
    /// the local tier. Returns false (releasing the reservation) when
    /// the matrix does not fit or the entry vanished meanwhile. Called
    /// with no shard lock held.
    pub fn admit_existing(&self, map: &ShardedEntryMap, key: LineageId, m: Arc<Matrix>) -> bool {
        let size = m.size_bytes();
        if !self.try_reserve(map, size, Some(key)) {
            return false;
        }
        let mut shard = map.lock_of(key);
        let Some(e) = shard.entries.get_mut(&key) else {
            drop(shard);
            let mut used = self.used.lock();
            *used = used.saturating_sub(size);
            return false;
        };
        e.object = Some(CachedObject::Matrix(m));
        e.size = size;
        e.backend = BackendId::Local;
        let tenant = e.tenant;
        drop(shard);
        self.charge_tenant(tenant, size);
        true
    }
}

impl CacheBackend for LocalBackend {
    fn id(&self) -> BackendId {
        BackendId::Local
    }

    fn put(
        &self,
        map: &ShardedEntryMap,
        _reg: &BackendRegistry,
        _key: LineageId,
        entry: &mut CacheEntry,
    ) -> bool {
        match &entry.object {
            Some(CachedObject::Matrix(m)) => {
                let size = m.size_bytes();
                // Oversized, or eviction cannot free enough (e.g. the
                // budget is filled by pinned entries): skip caching.
                if !self.try_reserve(map, size, None) {
                    return false;
                }
                entry.size = size;
                self.charge_tenant(entry.tenant, size);
                true
            }
            Some(CachedObject::Scalar(_)) => {
                entry.size = 16;
                true
            }
            _ => false,
        }
    }

    fn materialize(
        &self,
        map: &ShardedEntryMap,
        _reg: &BackendRegistry,
        key: LineageId,
    ) -> Materialized {
        let mut shard = map.lock_of(key);
        let Some(e) = shard.entries.get_mut(&key) else {
            return Materialized::Stale;
        };
        let Some(object) = e.object.clone() else {
            return Materialized::Stale;
        };
        e.hits += 1;
        let saved = if self.policy.policy == CachePolicy::DelayedHits && e.miss_waiters > 0 {
            // Every resident hit of a fan-out entry avoids re-imposing
            // the stacked delay its misses were observed to cause.
            (e.miss_waiters as f64 * e.compute_cost) as u64
        } else {
            0
        };
        drop(shard);
        if saved > 0 {
            self.stats
                .delayed_hit_ticks_saved
                .fetch_add(saved, Ordering::Relaxed);
        }
        ReuseStats::inc(&self.stats.hits_local);
        Materialized::Hit(object)
    }

    fn evict_until(
        &self,
        map: &ShardedEntryMap,
        _reg: &BackendRegistry,
        bytes: usize,
        skip: Option<LineageId>,
    ) -> usize {
        let mut freed = 0;
        while freed < bytes {
            match self.evict_one(map, skip) {
                Some(n) => freed += n,
                None => break,
            }
        }
        freed
    }

    fn used(&self) -> usize {
        *self.used.lock()
    }

    fn budget(&self) -> usize {
        self.budget
    }

    fn snapshot(&self) -> BackendSnapshot {
        let s = self.stats.snapshot();
        BackendSnapshot {
            id: self.id(),
            used: self.used(),
            budget: self.budget,
            entries: 0,
            detail: vec![
                ("hits", s.hits_local),
                ("spills", s.local_spills),
                ("drops", s.local_drops),
                ("quota_evicts", s.quota_evictions),
                ("ttna_rejects", s.ttna_admission_rejects),
                ("delay_ticks_saved", s.delayed_hit_ticks_saved),
                ("mad_evicts", s.mad_evictions),
            ],
        }
    }

    fn release(&self, entry: &CacheEntry) {
        if let Some(CachedObject::Matrix(m)) = &entry.object {
            let size = m.size_bytes();
            {
                let mut used = self.used.lock();
                *used = used.saturating_sub(size);
            }
            self.credit_tenant(entry.tenant, size);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ----------------------------------------------------------------------
// Disk (durable log-structured segment store)
// ----------------------------------------------------------------------

/// Driver-local disk tier over the crash-safe
/// [`SegmentStore`](crate::cache::durable::SegmentStore): spilled
/// matrices become CRC-checksummed records keyed by lineage
/// `content_hash` (with their serialized lineage embedded for
/// re-interning), committed through an append-only manifest, read back
/// on hit and optionally promoted to memory again. With a persistent
/// directory the tier survives restarts: construction recovers the
/// manifest and hands verified entry metadata to the cache.
pub struct DiskBackend {
    store: SegmentStore,
    promote_on_hit: bool,
    policy: EvictionPolicy,
    /// Persistent stores keep their directory on drop; classic
    /// cache-unique spill directories are removed.
    persistent: bool,
    used: Mutex<usize>,
    recovered: Mutex<Vec<RecoveredMeta>>,
    stats: Arc<ReuseStats>,
}

impl DiskBackend {
    /// Opens the tier over `config.spill_dir`, recovering any committed
    /// durable state found there. The directory is removed on drop
    /// unless `config.persist_dir` marked it persistent.
    pub fn new(config: &CacheConfig, stats: Arc<ReuseStats>) -> Self {
        let (store, recovered) = SegmentStore::open(
            config.spill_dir.clone(),
            config.segment_max_bytes,
            config.compact_min_dead_bytes,
            config.disk_faults.clone(),
            stats.clone(),
        );
        let used = recovered.iter().map(|r| r.matrix_len).sum();
        Self {
            store,
            promote_on_hit: config.promote_on_disk_hit,
            policy: EvictionPolicy::with_policy(config.policy),
            persistent: config.persist_dir.is_some(),
            used: Mutex::new(used),
            recovered: Mutex::new(recovered),
            stats,
        }
    }

    /// Verified entry metadata found by recovery, taken once by the
    /// cache to rebuild its probe map.
    pub fn take_recovered(&self) -> Vec<RecoveredMeta> {
        std::mem::take(&mut *self.recovered.lock())
    }

    /// The underlying durable store (sync-point instrumentation for the
    /// crash-recovery harness).
    pub fn segment_store(&self) -> &SegmentStore {
        &self.store
    }

    /// Commits a spilled matrix as a durable record carrying its
    /// serialized lineage, cost, and reuse standing. Returns false on
    /// I/O failure or injected crash; the caller degrades to a clean
    /// drop, never a dangling entry.
    pub fn store(&self, m: &Matrix, key: LineageId, compute_cost: f64, hits: u64) -> bool {
        let item = lineage::resolve(key);
        let rec = DurableRecord {
            content_hash: key.content_hash(),
            compute_cost,
            hits,
            height: item.height,
            lineage_log: lineage::serialize(&item),
            matrix_bytes: mio::to_bytes(m).to_vec(),
        };
        if self.store.put(&rec) {
            *self.used.lock() += m.size_bytes();
            true
        } else {
            false
        }
    }

    /// Reads a committed record's matrix without hit accounting
    /// (recovery-time rehydration).
    pub(crate) fn read_matrix_raw(&self, hash: u64) -> Option<Matrix> {
        let rec = self.store.read(hash)?;
        mio::from_bytes(rec.matrix_bytes.into()).ok()
    }

    /// Tombstones a record and reverses its byte accounting.
    pub fn discard(&self, hash: u64, size: usize) {
        self.store.remove(hash);
        let mut used = self.used.lock();
        *used = used.saturating_sub(size);
    }
}

impl CacheBackend for DiskBackend {
    fn id(&self) -> BackendId {
        BackendId::Disk
    }

    fn put(
        &self,
        _map: &ShardedEntryMap,
        _reg: &BackendRegistry,
        _key: LineageId,
        entry: &mut CacheEntry,
    ) -> bool {
        // Direct admission of an already-committed record. Reject hashes
        // the store does not hold (a dangling admission would poison
        // every later probe with a read failure).
        if let Some(CachedObject::Disk(hash)) = &entry.object {
            if !self.store.contains(*hash) {
                ReuseStats::inc(&self.stats.disk_io_errors);
                return false;
            }
            *self.used.lock() += entry.size;
            true
        } else {
            false
        }
    }

    fn materialize(
        &self,
        map: &ShardedEntryMap,
        reg: &BackendRegistry,
        key: LineageId,
    ) -> Materialized {
        let (hash, size) = {
            let shard = map.lock_of(key);
            let Some(e) = shard.entries.get(&key) else {
                return Materialized::Stale;
            };
            let Some(CachedObject::Disk(hash)) = e.object else {
                return Materialized::Stale;
            };
            (hash, e.size)
        };
        // A checksum rejection inside `read` tombstones the record and
        // returns nothing: the probe sees Stale, drops the entry cleanly,
        // and falls through to recompute — corrupt bytes never surface.
        match self
            .store
            .read(hash)
            .and_then(|rec| mio::from_bytes(rec.matrix_bytes.into()).ok())
        {
            Some(m) => {
                let m = Arc::new(m);
                map.with_entry(key, |e| {
                    if let Some(e) = e {
                        e.hits += 1;
                    }
                });
                ReuseStats::inc(&self.stats.hits_disk);
                if self.promote_on_hit {
                    let promoted = reg
                        .downcast::<LocalBackend>(BackendId::Local)
                        .map(|local| local.admit_existing(map, key, m.clone()))
                        .unwrap_or(false);
                    if promoted {
                        self.discard(hash, size);
                    }
                }
                Materialized::Hit(CachedObject::Matrix(m))
            }
            None => {
                // A concurrent probe of the same key may have promoted
                // the entry to driver memory (discarding the durable
                // copy) between our snapshot and the read. The promotion
                // is the hit; only a still-disk-backed entry is a real
                // read failure (and gets dropped for recompute).
                let promoted = {
                    let shard = map.lock_of(key);
                    shard.entries.get(&key).and_then(|e| match &e.object {
                        Some(CachedObject::Matrix(m)) => Some(m.clone()),
                        _ => None,
                    })
                };
                match promoted {
                    Some(m) => {
                        ReuseStats::inc(&self.stats.hits_disk);
                        Materialized::Hit(CachedObject::Matrix(m))
                    }
                    None => {
                        ReuseStats::inc(&self.stats.disk_io_errors);
                        Materialized::Stale
                    }
                }
            }
        }
    }

    fn evict_until(
        &self,
        map: &ShardedEntryMap,
        _reg: &BackendRegistry,
        bytes: usize,
        skip: Option<LineageId>,
    ) -> usize {
        let mut freed = 0;
        while freed < bytes {
            let victim = map.select_victim(&self.policy, |k, e| {
                e.backend == BackendId::Disk && skip.map(|s| k != s).unwrap_or(true)
            });
            let Some(k) = victim else { break };
            let removed = {
                let mut shard = map.lock_of(k);
                match shard.entries.get(&k) {
                    Some(e) if e.backend == BackendId::Disk && !e.pinned => {
                        shard.entries.remove(&k)
                    }
                    _ => None, // victim changed hands meanwhile: reselect
                }
            };
            let Some(e) = removed else { continue };
            if let Some(CachedObject::Disk(hash)) = &e.object {
                self.discard(*hash, e.size);
            }
            freed += e.size;
        }
        freed
    }

    fn used(&self) -> usize {
        *self.used.lock()
    }

    fn budget(&self) -> usize {
        usize::MAX
    }

    fn snapshot(&self) -> BackendSnapshot {
        let s = self.stats.snapshot();
        BackendSnapshot {
            id: self.id(),
            used: self.used(),
            budget: usize::MAX,
            entries: 0,
            detail: vec![
                ("hits", s.hits_disk),
                ("spilled_in", s.local_spills),
                ("io_errors", s.disk_io_errors),
                ("recovered", s.entries_recovered),
                ("rehydrated", s.entries_rehydrated),
                ("crc_rejects", s.checksum_rejects),
                ("swaps", s.manifest_swaps),
            ],
        }
    }

    fn release(&self, entry: &CacheEntry) {
        if let Some(CachedObject::Disk(hash)) = &entry.object {
            self.discard(*hash, entry.size);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl Drop for DiskBackend {
    fn drop(&mut self) {
        if !self.persistent {
            // The spill directory is cache-unique (see
            // `LineageCache::new`): safe to remove. Persistent stores
            // outlive the process by design.
            std::fs::remove_dir_all(self.store.dir()).ok();
        }
    }
}

// ----------------------------------------------------------------------
// Spark (distributed RDDs)
// ----------------------------------------------------------------------

/// Follow-up work a Spark materialization schedules for after the shard
/// lock is released (lazy GC and async `count()` both take cluster
/// locks, so they must not run under a shard lock).
enum SparkFollowUp {
    None,
    LazyGc(memphis_sparksim::RddRef),
    Trigger(memphis_sparksim::RddRef),
}

/// Spark tier: RDD handles reused even while unmaterialized, delayed
/// `persist()`, eq. (1) budget eviction via `unpersist`, asynchronous
/// `count()` materialization, and lazy GC of dangling references.
pub struct SparkTier {
    backend: SparkBackend,
    policy: EvictionPolicy,
    materialize_after_misses: u64,
    est: Mutex<usize>,
    stats: Arc<ReuseStats>,
}

impl SparkTier {
    /// Wraps an attached cluster.
    pub fn new(backend: SparkBackend, config: &CacheConfig, stats: Arc<ReuseStats>) -> Self {
        Self {
            backend,
            policy: EvictionPolicy::with_policy(config.policy),
            materialize_after_misses: config.materialize_after_misses,
            est: Mutex::new(0),
            stats,
        }
    }

    /// The wrapped Spark attachment (cluster handle + reuse budget).
    pub fn spark(&self) -> &SparkBackend {
        &self.backend
    }

    /// Evicts the lowest-score stored RDD entry (eq. 1). Returns bytes
    /// freed, or `None` when none exist.
    fn evict_worst(&self, map: &ShardedEntryMap) -> Option<usize> {
        loop {
            let victim = map.select_victim(&self.policy, |_, e| e.backend == BackendId::Spark)?;
            let e = {
                let mut shard = map.lock_of(victim);
                match shard.entries.get(&victim) {
                    Some(e) if e.backend == BackendId::Spark && !e.pinned => {
                        shard.entries.remove(&victim)
                    }
                    _ => None, // victim changed hands meanwhile: reselect
                }
            };
            let Some(e) = e else { continue };
            {
                let mut est = self.est.lock();
                *est = est.saturating_sub(e.size);
            }
            if let Some(CachedObject::Rdd { rdd, .. }) = &e.object {
                self.backend.sc.unpersist(rdd);
                self.backend.sc.cleanup_shuffle(rdd);
            }
            ReuseStats::inc(&self.stats.rdd_unpersists);
            memphis_obs::instant_val(
                memphis_obs::cat::CACHE,
                "rdd_unpersist",
                "bytes",
                e.size as u64,
            );
            return Some(e.size);
        }
    }

    /// Lazy garbage collection from a freshly materialized cached RDD.
    /// Called with no shard lock held; scans shards one at a time.
    fn run_lazy_gc(&self, map: &ShardedEntryMap, root: &memphis_sparksim::RddRef) {
        // Protected sets: RDDs referenced by any entry; broadcasts
        // reachable from unmaterialized RDD entries.
        let mut cached_rdds: HashSet<u64> = HashSet::new();
        let mut protected_bc: HashSet<u64> = HashSet::new();
        map.for_each(|_, e| {
            if let Some(CachedObject::Rdd { rdd: r, .. }) = &e.object {
                cached_rdds.insert(r.id().0);
                if !self.backend.sc.is_fully_cached(r) {
                    protected_bc.extend(SparkBackend::reachable_broadcasts(r));
                }
            }
        });
        self.backend
            .lazy_gc(root, &cached_rdds, &protected_bc, &self.stats);
    }
}

impl CacheBackend for SparkTier {
    fn id(&self) -> BackendId {
        BackendId::Spark
    }

    fn put(
        &self,
        map: &ShardedEntryMap,
        _reg: &BackendRegistry,
        _key: LineageId,
        entry: &mut CacheEntry,
    ) -> bool {
        let Some(CachedObject::Rdd { rdd, .. }) = &entry.object else {
            return false;
        };
        // Eq. (1) budget eviction before persisting a new RDD.
        while *self.est.lock() + entry.size > self.backend.reuse_budget {
            if self.evict_worst(map).is_none() {
                break;
            }
        }
        rdd.persist(StorageLevel::MemoryAndDisk);
        *self.est.lock() += entry.size;
        true
    }

    fn materialize(
        &self,
        map: &ShardedEntryMap,
        _reg: &BackendRegistry,
        key: LineageId,
    ) -> Materialized {
        let (object, follow_up) = {
            let mut shard = map.lock_of(key);
            let Some(e) = shard.entries.get_mut(&key) else {
                return Materialized::Stale;
            };
            let Some(CachedObject::Rdd { rdd, rows, cols }) = e.object.clone() else {
                return Materialized::Stale;
            };
            let follow_up = if self.backend.sc.is_fully_cached(&rdd) {
                e.hits += 1;
                let gc_pending = !e.gc_done;
                e.gc_done = true;
                if gc_pending {
                    SparkFollowUp::LazyGc(rdd.clone())
                } else {
                    SparkFollowUp::None
                }
            } else {
                // Reuse of an unmaterialized RDD: compute sharing still
                // applies, but count the miss toward async
                // materialization.
                e.misses += 1;
                let trigger = !e.materialize_triggered && e.misses >= self.materialize_after_misses;
                if trigger {
                    e.materialize_triggered = true;
                    SparkFollowUp::Trigger(rdd.clone())
                } else {
                    SparkFollowUp::None
                }
            };
            (CachedObject::Rdd { rdd, rows, cols }, follow_up)
        };
        ReuseStats::inc(&self.stats.hits_rdd);
        match follow_up {
            SparkFollowUp::LazyGc(rdd) => self.run_lazy_gc(map, &rdd),
            SparkFollowUp::Trigger(rdd) => self.backend.trigger_materialize(&rdd, &self.stats),
            SparkFollowUp::None => {}
        }
        Materialized::Hit(object)
    }

    fn evict_until(
        &self,
        map: &ShardedEntryMap,
        _reg: &BackendRegistry,
        bytes: usize,
        _skip: Option<LineageId>,
    ) -> usize {
        let mut freed = 0;
        while freed < bytes {
            match self.evict_worst(map) {
                Some(n) => freed += n,
                None => break,
            }
        }
        freed
    }

    fn used(&self) -> usize {
        *self.est.lock()
    }

    fn budget(&self) -> usize {
        self.backend.reuse_budget
    }

    fn snapshot(&self) -> BackendSnapshot {
        let s = self.stats.snapshot();
        let mut detail = vec![
            ("hits", s.hits_rdd),
            ("unpersists", s.rdd_unpersists),
            ("mat_jobs", s.rdd_materialize_jobs),
            ("gc_rdds", s.gc_rdds_released),
            ("gc_bcasts", s.gc_broadcasts_destroyed),
            ("gc_bcast_unpersists", s.gc_broadcasts_unpersisted),
        ];
        detail.extend(self.backend.sc.stats().pairs());
        BackendSnapshot {
            id: self.id(),
            used: self.used(),
            budget: self.backend.reuse_budget,
            entries: 0,
            detail,
        }
    }

    fn release(&self, entry: &CacheEntry) {
        if let Some(CachedObject::Rdd { rdd, .. }) = &entry.object {
            self.backend.sc.unpersist(rdd);
            self.backend.sc.cleanup_shuffle(rdd);
            let mut est = self.est.lock();
            *est = est.saturating_sub(entry.size);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ----------------------------------------------------------------------
// GPU (device pointers)
// ----------------------------------------------------------------------

/// GPU tier: cached device pointers managed by the unified
/// [`GpuMemoryManager`] (Live/Free lists, recycling, eq. (2) scoring).
pub struct GpuTier {
    mgr: Arc<GpuMemoryManager>,
    stats: Arc<ReuseStats>,
}

impl GpuTier {
    /// Wraps a memory manager.
    pub fn new(mgr: Arc<GpuMemoryManager>, stats: Arc<ReuseStats>) -> Self {
        Self { mgr, stats }
    }

    /// The unified GPU memory manager.
    pub fn manager(&self) -> &Arc<GpuMemoryManager> {
        &self.mgr
    }
}

impl CacheBackend for GpuTier {
    fn id(&self) -> BackendId {
        BackendId::Gpu
    }

    fn put(
        &self,
        _map: &ShardedEntryMap,
        _reg: &BackendRegistry,
        key: LineageId,
        entry: &mut CacheEntry,
    ) -> bool {
        let Some(CachedObject::Gpu { ptr, .. }) = &entry.object else {
            return false;
        };
        self.mgr.mark_cached(*ptr, key);
        entry.size = ptr.size;
        true
    }

    fn materialize(
        &self,
        map: &ShardedEntryMap,
        _reg: &BackendRegistry,
        key: LineageId,
    ) -> Materialized {
        let mut shard = map.lock_of(key);
        let Some(e) = shard.entries.get_mut(&key) else {
            return Materialized::Stale;
        };
        let Some(CachedObject::Gpu { ptr, rows, cols }) = e.object.clone() else {
            return Materialized::Stale;
        };
        if self.mgr.acquire(ptr) {
            e.hits += 1;
            drop(shard);
            ReuseStats::inc(&self.stats.hits_gpu);
            Materialized::Hit(CachedObject::Gpu { ptr, rows, cols })
        } else {
            // Pointer no longer managed — stale entry.
            Materialized::Stale
        }
    }

    fn evict_until(
        &self,
        map: &ShardedEntryMap,
        _reg: &BackendRegistry,
        bytes: usize,
        _skip: Option<LineageId>,
    ) -> usize {
        let (freed, invalidated) = self.mgr.evict_bytes(bytes);
        for k in invalidated {
            // Pointers are already freed: remove without release.
            map.remove_entry(k);
        }
        freed
    }

    fn used(&self) -> usize {
        self.mgr.device().mem_used()
    }

    fn budget(&self) -> usize {
        self.mgr.device().capacity()
    }

    fn snapshot(&self) -> BackendSnapshot {
        let s = self.stats.snapshot();
        let mut detail = vec![
            ("hits", s.hits_gpu),
            ("recycled", s.gpu_recycled),
            ("reused", s.gpu_reused),
            ("freed", s.gpu_freed),
            ("to_host", s.gpu_evicted_to_host),
        ];
        detail.extend(self.mgr.device().stats().pairs());
        BackendSnapshot {
            id: self.id(),
            used: self.used(),
            budget: self.mgr.device().capacity(),
            entries: 0,
            detail,
        }
    }

    fn release(&self, entry: &CacheEntry) {
        if let Some(CachedObject::Gpu { ptr, .. }) = &entry.object {
            self.mgr.unmark_cached(*ptr);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
