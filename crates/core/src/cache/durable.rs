//! Crash-safe log-structured store backing the durable disk tier.
//!
//! Layout inside the store directory:
//!
//! - **Segment files** `seg_<n>.log`: append-only runs of records. Each
//!   record is `MREC | content_hash | cost | hits | height | lineage_len
//!   | matrix_len | crc32 | lineage-log | matrix-binary` (all integers
//!   little-endian). The CRC covers every header field after the magic
//!   plus both payloads, so a torn or bit-flipped record is always
//!   detectable. The lineage log is the canonical
//!   [`crate::lineage::serialize`] form — recovery re-interns it with
//!   [`crate::lineage::deserialize`] and cross-checks that the re-interned
//!   `content_hash` matches the record tag.
//! - **`MANIFEST`**: append-only text commit log mapping content hash →
//!   (segment, offset, len). A record becomes durable only when its
//!   `put` line is fsynced; segment bytes without a committed manifest
//!   line are invisible to recovery. `del` lines tombstone entries.
//! - **`MANIFEST.tmp`**: compaction target. Compaction rewrites live
//!   records into fresh segments, writes the folded manifest to the tmp
//!   file, fsyncs it, and atomically renames it over `MANIFEST` — a
//!   crash at any point leaves either the old or the new manifest intact,
//!   never a mix.
//!
//! **Write/commit protocol** for one `put`: append the record to the
//! active segment → fsync segment → append the manifest line → fsync
//! manifest. Each fsync (and each compaction rename) is one numbered
//! *sync point*; the seeded [`FaultPlan`] can tear the record write,
//! silently corrupt the payload, drop an fsync (lying disk), or kill the
//! store at exactly the Nth sync point — the harness the crash-recovery
//! suite sweeps. After any injected crash the store goes dead: every
//! later operation is a no-op, modeling a dead process until the next
//! [`SegmentStore::open`] over the directory.
//!
//! **Recovery** folds the manifest (tolerating a torn tail), reads every
//! referenced record, verifies magic/CRC/identity, and returns metadata
//! only — payload bytes are dropped immediately, so startup memory stays
//! bounded no matter how large the store is (the cache rehydrates a
//! budgeted hot set afterwards and materializes the rest lazily).
//! Records failing verification are counted in `checksum_rejects` and
//! tombstoned; unreferenced segment files and a stale `MANIFEST.tmp` are
//! removed.

use crate::stats::ReuseStats;
use memphis_sparksim::FaultPlan;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Record header magic.
pub const RECORD_MAGIC: [u8; 4] = *b"MREC";
/// Fixed record header length in bytes.
pub const RECORD_HEADER_LEN: usize = 44;
/// Committed manifest file name.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// Compaction staging manifest (atomically renamed over [`MANIFEST_FILE`]).
pub const MANIFEST_TMP: &str = "MANIFEST.tmp";
const MANIFEST_HEADER: &str = "memphis-manifest v1";

// ----------------------------------------------------------------------
// CRC32 (IEEE, table-driven) — vendored-dependency-free.
// ----------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// IEEE CRC32 of `data` (the polynomial used by gzip/zlib).
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// ----------------------------------------------------------------------
// Record encoding
// ----------------------------------------------------------------------

/// One durable record, fully decoded (payload included).
#[derive(Debug, Clone, PartialEq)]
pub struct DurableRecord {
    /// Lineage identity tag ([`crate::lineage::LineageId::content_hash`]).
    pub content_hash: u64,
    /// Analytical compute cost carried through restarts for eq. (1).
    pub compute_cost: f64,
    /// Reuse hits accumulated before the spill (recovered entries keep
    /// their proven-reuse standing).
    pub hits: u64,
    /// Lineage trace height.
    pub height: u32,
    /// Canonical serialized lineage log (re-internable).
    pub lineage_log: String,
    /// Matrix binary ([`memphis_matrix::io`] format).
    pub matrix_bytes: Vec<u8>,
}

/// Recovery-time view of a verified record: metadata only, payload
/// dropped (lazy materialization keeps startup memory bounded).
#[derive(Debug, Clone)]
pub struct RecoveredMeta {
    /// Lineage identity tag.
    pub content_hash: u64,
    /// Persisted compute cost.
    pub compute_cost: f64,
    /// Persisted reuse hits.
    pub hits: u64,
    /// Persisted lineage height.
    pub height: u32,
    /// Serialized lineage log for re-interning.
    pub lineage_log: String,
    /// Matrix payload length in bytes (entry size accounting).
    pub matrix_len: usize,
}

/// Encodes a record into its on-disk byte form.
pub fn encode_record(rec: &DurableRecord) -> Vec<u8> {
    let lineage = rec.lineage_log.as_bytes();
    let mut buf = Vec::with_capacity(RECORD_HEADER_LEN + lineage.len() + rec.matrix_bytes.len());
    buf.extend_from_slice(&RECORD_MAGIC);
    buf.extend_from_slice(&rec.content_hash.to_le_bytes());
    buf.extend_from_slice(&rec.compute_cost.to_bits().to_le_bytes());
    buf.extend_from_slice(&rec.hits.to_le_bytes());
    buf.extend_from_slice(&rec.height.to_le_bytes());
    buf.extend_from_slice(&(lineage.len() as u32).to_le_bytes());
    buf.extend_from_slice(&(rec.matrix_bytes.len() as u32).to_le_bytes());
    buf.extend_from_slice(&[0u8; 4]); // CRC placeholder
    buf.extend_from_slice(lineage);
    buf.extend_from_slice(&rec.matrix_bytes);
    let crc = record_crc(&buf);
    buf[40..44].copy_from_slice(&crc.to_le_bytes());
    buf
}

/// CRC over the header fields after the magic plus both payloads (the
/// CRC field itself excluded).
fn record_crc(buf: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    let table = crc32_table();
    for &b in buf[4..40].iter().chain(&buf[RECORD_HEADER_LEN..]) {
        c = table[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Why a record failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordError {
    /// Record shorter than the fixed header or its declared payloads.
    Truncated,
    /// Magic bytes missing.
    BadMagic,
    /// CRC mismatch (torn or bit-flipped record).
    BadChecksum,
    /// Lineage payload is not valid UTF-8.
    BadLineage,
}

/// Decodes and verifies one record from its exact byte range.
pub fn decode_record(buf: &[u8]) -> Result<DurableRecord, RecordError> {
    if buf.len() < RECORD_HEADER_LEN {
        return Err(RecordError::Truncated);
    }
    if buf[0..4] != RECORD_MAGIC {
        return Err(RecordError::BadMagic);
    }
    let u64_at = |o: usize| u64::from_le_bytes(buf[o..o + 8].try_into().unwrap());
    let u32_at = |o: usize| u32::from_le_bytes(buf[o..o + 4].try_into().unwrap());
    let lineage_len = u32_at(32) as usize;
    let matrix_len = u32_at(36) as usize;
    if buf.len() != RECORD_HEADER_LEN + lineage_len + matrix_len {
        return Err(RecordError::Truncated);
    }
    if record_crc(buf) != u32_at(40) {
        return Err(RecordError::BadChecksum);
    }
    let lineage_log = std::str::from_utf8(&buf[RECORD_HEADER_LEN..RECORD_HEADER_LEN + lineage_len])
        .map_err(|_| RecordError::BadLineage)?
        .to_string();
    Ok(DurableRecord {
        content_hash: u64_at(4),
        compute_cost: f64::from_bits(u64_at(12)),
        hits: u64_at(20),
        height: u32_at(28),
        lineage_log,
        matrix_bytes: buf[RECORD_HEADER_LEN + lineage_len..].to_vec(),
    })
}

// ----------------------------------------------------------------------
// Store
// ----------------------------------------------------------------------

/// Location of one committed record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RecordLoc {
    segment: u64,
    offset: u64,
    len: u64,
}

struct Inner {
    index: HashMap<u64, RecordLoc>,
    /// Segment the next record appends to.
    active_segment: u64,
    active_len: u64,
    next_segment: u64,
    manifest_len: u64,
    live_bytes: u64,
    dead_bytes: u64,
    /// Monotone record-write sequence (torn/corrupt decisions).
    write_seq: u64,
    /// Monotone sync-point sequence (fsyncs + manifest renames).
    sync_seq: u64,
    /// Set once an injected crash fires; every later op is a no-op.
    crashed: bool,
    /// Committed-state digest after each successful sync point (the
    /// kill-sweep differential baseline).
    sync_digests: Vec<u64>,
    committed_digest: u64,
}

/// The log-structured durable store. All mutation runs under one leaf
/// mutex (acquired after any probe-map shard lock, never before).
pub struct SegmentStore {
    dir: PathBuf,
    segment_max: u64,
    compact_min_dead: u64,
    faults: FaultPlan,
    stats: Arc<ReuseStats>,
    inner: Mutex<Inner>,
}

/// Digest of an empty store (recovered state with no committed entries).
pub fn empty_digest() -> u64 {
    digest_of(&HashMap::new())
}

/// Order-independent FNV digest over the committed (hash, len) set.
fn digest_of(index: &HashMap<u64, RecordLoc>) -> u64 {
    let sorted: BTreeMap<u64, u64> = index.iter().map(|(h, l)| (*h, l.len)).collect();
    let mut d = 0xcbf2_9ce4_8422_2325u64;
    for (h, len) in sorted {
        for b in h.to_le_bytes().into_iter().chain(len.to_le_bytes()) {
            d ^= b as u64;
            d = d.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    d
}

fn segment_path(dir: &Path, seg: u64) -> PathBuf {
    dir.join(format!("seg_{seg}.log"))
}

impl SegmentStore {
    /// Opens (and recovers) the store in `dir`, returning verified entry
    /// metadata. A missing or empty directory yields an empty store.
    pub fn open(
        dir: PathBuf,
        segment_max: u64,
        compact_min_dead: u64,
        faults: FaultPlan,
        stats: Arc<ReuseStats>,
    ) -> (Self, Vec<RecoveredMeta>) {
        let (index, recovered, rejected, next_segment, manifest_len) = Self::recover(&dir, &stats);
        let live_bytes = index.values().map(|l| l.len).sum();
        let committed_digest = digest_of(&index);
        let store = Self {
            dir,
            segment_max: segment_max.max(1),
            compact_min_dead: compact_min_dead.max(1),
            faults,
            stats,
            inner: Mutex::new(Inner {
                index,
                active_segment: next_segment,
                active_len: 0,
                next_segment: next_segment + 1,
                manifest_len,
                live_bytes,
                dead_bytes: 0,
                write_seq: 0,
                sync_seq: 0,
                crashed: false,
                sync_digests: Vec::new(),
                committed_digest,
            }),
        };
        // Tombstone rejected records so later recoveries skip (and stop
        // re-counting) them. Best-effort: a failure only re-rejects.
        for hash in rejected {
            store.append_manifest_line_unsynced(&format!("del {hash}\n"));
        }
        (store, recovered)
    }

    /// Folds the manifest and verifies every referenced record.
    #[allow(clippy::type_complexity)]
    fn recover(
        dir: &Path,
        stats: &ReuseStats,
    ) -> (
        HashMap<u64, RecordLoc>,
        Vec<RecoveredMeta>,
        Vec<u64>,
        u64,
        u64,
    ) {
        // A crashed compaction may leave a staging manifest: the rename
        // never happened, so it is dead weight.
        fs::remove_file(dir.join(MANIFEST_TMP)).ok();
        let manifest = fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap_or_default();
        let mut folded: HashMap<u64, RecordLoc> = HashMap::new();
        let mut referenced_segments: HashSet<u64> = HashSet::new();
        // Fold the well-formed, newline-terminated prefix. A committed
        // append always ends in '\n'; anything after the first torn or
        // malformed line is untrusted and truncated away so later
        // appends never concatenate onto a torn tail.
        let mut committed_bytes = 0usize;
        for (i, chunk) in manifest.split_inclusive('\n').enumerate() {
            if !chunk.ends_with('\n') {
                break; // torn final append
            }
            let line = chunk.trim_end_matches('\n');
            if i == 0 {
                if line != MANIFEST_HEADER {
                    break; // foreign or torn-from-birth manifest
                }
                committed_bytes += chunk.len();
                continue;
            }
            let mut parts = line.split_whitespace();
            let parsed = match parts.next() {
                Some("put") => (|| {
                    let hash: u64 = parts.next()?.parse().ok()?;
                    let segment: u64 = parts.next()?.parse().ok()?;
                    let offset: u64 = parts.next()?.parse().ok()?;
                    let len: u64 = parts.next()?.parse().ok()?;
                    folded.insert(
                        hash,
                        RecordLoc {
                            segment,
                            offset,
                            len,
                        },
                    );
                    referenced_segments.insert(segment);
                    Some(())
                })(),
                Some("del") => (|| {
                    let hash: u64 = parts.next()?.parse().ok()?;
                    folded.remove(&hash);
                    Some(())
                })(),
                _ => None,
            };
            if parsed.is_none() {
                break;
            }
            committed_bytes += chunk.len();
        }
        if committed_bytes < manifest.len() {
            truncate_to(&dir.join(MANIFEST_FILE), committed_bytes as u64);
        }
        let manifest_len = committed_bytes as u64;

        // Verify every referenced record; drop what fails.
        let mut index: HashMap<u64, RecordLoc> = HashMap::new();
        let mut recovered: Vec<RecoveredMeta> = Vec::new();
        let mut rejected: Vec<u64> = Vec::new();
        let mut live_segments: HashSet<u64> = HashSet::new();
        let mut sorted: Vec<(u64, RecordLoc)> = folded.iter().map(|(h, l)| (*h, *l)).collect();
        sorted.sort_by_key(|(h, l)| (l.segment, l.offset, *h));
        for (hash, loc) in sorted {
            match read_record_at(dir, loc) {
                Ok(rec) if rec.content_hash == hash => {
                    live_segments.insert(loc.segment);
                    recovered.push(RecoveredMeta {
                        content_hash: rec.content_hash,
                        compute_cost: rec.compute_cost,
                        hits: rec.hits,
                        height: rec.height,
                        lineage_log: rec.lineage_log,
                        matrix_len: rec.matrix_bytes.len(),
                    });
                    index.insert(hash, loc);
                }
                _ => {
                    ReuseStats::inc(&stats.checksum_rejects);
                    rejected.push(hash);
                }
            }
        }
        for _ in &live_segments {
            ReuseStats::inc(&stats.segments_recovered);
        }

        // Sweep orphans: segments never referenced by the committed
        // manifest are unacknowledged garbage (crash leftovers, aborted
        // compactions).
        let mut max_segment = 0u64;
        if let Ok(entries) = fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(seg) = name
                    .to_str()
                    .and_then(|n| n.strip_prefix("seg_"))
                    .and_then(|n| n.strip_suffix(".log"))
                    .and_then(|n| n.parse::<u64>().ok())
                else {
                    continue;
                };
                max_segment = max_segment.max(seg);
                if !referenced_segments.contains(&seg) {
                    fs::remove_file(entry.path()).ok();
                }
            }
        }
        (index, recovered, rejected, max_segment + 1, manifest_len)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// True once an injected fault crashed the store.
    pub fn is_crashed(&self) -> bool {
        self.inner.lock().crashed
    }

    /// Committed entry count.
    pub fn entry_count(&self) -> usize {
        self.inner.lock().index.len()
    }

    /// True when `hash` is committed.
    pub fn contains(&self, hash: u64) -> bool {
        self.inner.lock().index.contains_key(&hash)
    }

    /// Committed live record bytes (headers + payloads).
    pub fn live_bytes(&self) -> u64 {
        self.inner.lock().live_bytes
    }

    /// Sync points performed so far (successful or killed).
    pub fn sync_points(&self) -> u64 {
        self.inner.lock().sync_seq
    }

    /// Committed-state digest after each successful sync point, in order.
    pub fn sync_digests(&self) -> Vec<u64> {
        self.inner.lock().sync_digests.clone()
    }

    /// Digest of the currently committed (hash, len) set.
    pub fn durable_digest(&self) -> u64 {
        self.inner.lock().committed_digest
    }

    /// Commits one record: segment append + fsync, manifest append +
    /// fsync. Returns false on I/O failure or injected crash — the
    /// caller degrades to a clean drop.
    pub fn put(&self, rec: &DurableRecord) -> bool {
        let mut inner = self.inner.lock();
        if inner.crashed {
            return false;
        }
        if fs::create_dir_all(&self.dir).is_err() {
            ReuseStats::inc(&self.stats.disk_io_errors);
            return false;
        }
        let mut bytes = encode_record(rec);
        inner.write_seq += 1;
        let write_seq = inner.write_seq;
        if self.faults.should_tear_disk_write(write_seq) {
            // Torn write: a prefix lands on disk, then the process dies.
            let prefix = bytes.len() / 2;
            let seg = segment_path(&self.dir, inner.active_segment);
            if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(seg) {
                f.write_all(&bytes[..prefix]).ok();
            }
            inner.crashed = true;
            return false;
        }
        if self.faults.should_corrupt_disk_record(write_seq) {
            // Silent corruption: acknowledged normally, caught by CRC.
            let flip = RECORD_HEADER_LEN + (write_seq as usize % rec.lineage_log.len().max(1));
            if flip < bytes.len() {
                bytes[flip] ^= 0x40;
            }
        }

        // Roll the active segment when full.
        if inner.active_len > 0 && inner.active_len + bytes.len() as u64 > self.segment_max {
            inner.active_segment = inner.next_segment;
            inner.next_segment += 1;
            inner.active_len = 0;
        }
        let loc = RecordLoc {
            segment: inner.active_segment,
            offset: inner.active_len,
            len: bytes.len() as u64,
        };
        let seg_path = segment_path(&self.dir, loc.segment);
        let pre_len = inner.active_len;
        let appended = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&seg_path)
            .and_then(|mut f| {
                f.write_all(&bytes)?;
                Ok(f)
            });
        let file = match appended {
            Ok(f) => f,
            Err(_) => {
                // The segment may hold a partial tail now; retire it so
                // later offsets stay truthful.
                ReuseStats::inc(&self.stats.disk_io_errors);
                inner.active_segment = inner.next_segment;
                inner.next_segment += 1;
                inner.active_len = 0;
                return false;
            }
        };
        if !self.sync_file(&mut inner, file, &seg_path, pre_len) {
            return false;
        }
        inner.active_len += bytes.len() as u64;

        // Commit: the manifest line is the durability point.
        let line = format!(
            "put {} {} {} {}\n",
            rec.content_hash, loc.segment, loc.offset, loc.len
        );
        if !self.append_manifest_synced(&mut inner, &line) {
            return false;
        }
        if let Some(old) = inner.index.insert(rec.content_hash, loc) {
            inner.dead_bytes += old.len;
            inner.live_bytes = inner.live_bytes.saturating_sub(old.len);
        }
        inner.live_bytes += loc.len;
        let committed = digest_of(&inner.index);
        inner.committed_digest = committed;
        // The commit digest belongs to the manifest sync that just
        // succeeded: rewrite the last recorded point.
        if let Some(last) = inner.sync_digests.last_mut() {
            *last = committed;
        }
        self.maybe_compact(&mut inner);
        true
    }

    /// Reads and verifies one committed record. A verification failure
    /// rejects the record (counted, tombstoned) and returns `None` so the
    /// caller routes to recompute — corrupt bytes never surface.
    pub fn read(&self, hash: u64) -> Option<DurableRecord> {
        let mut inner = self.inner.lock();
        let loc = *inner.index.get(&hash)?;
        match read_record_at(&self.dir, loc) {
            Ok(rec) if rec.content_hash == hash => Some(rec),
            _ => {
                ReuseStats::inc(&self.stats.checksum_rejects);
                inner.index.remove(&hash);
                inner.live_bytes = inner.live_bytes.saturating_sub(loc.len);
                inner.dead_bytes += loc.len;
                if !inner.crashed {
                    self.append_manifest_line_raw(&mut inner, &format!("del {hash}\n"));
                }
                None
            }
        }
    }

    /// Tombstones one entry (fsynced: a committed delete). Returns the
    /// freed record length, or `None` when absent.
    pub fn remove(&self, hash: u64) -> Option<u64> {
        let mut inner = self.inner.lock();
        let loc = inner.index.remove(&hash)?;
        inner.live_bytes = inner.live_bytes.saturating_sub(loc.len);
        inner.dead_bytes += loc.len;
        if !inner.crashed {
            let line = format!("del {hash}\n");
            if self.append_manifest_synced(&mut inner, &line) {
                let committed = digest_of(&inner.index);
                inner.committed_digest = committed;
                if let Some(last) = inner.sync_digests.last_mut() {
                    *last = committed;
                }
            }
            self.maybe_compact(&mut inner);
        }
        Some(loc.len)
    }

    /// Forces a compaction pass (tests); returns true when a manifest
    /// swap completed.
    pub fn compact_now(&self) -> bool {
        let mut inner = self.inner.lock();
        self.compact(&mut inner)
    }

    // ---- internals -----------------------------------------------------

    /// One sync point over an open file: injected kill/partial-fsync
    /// truncates the file back to `pre_len` and deadens the store;
    /// otherwise `sync_all` runs for real.
    fn sync_file(&self, inner: &mut Inner, file: File, path: &Path, pre_len: u64) -> bool {
        inner.sync_seq += 1;
        let seq = inner.sync_seq;
        if self.faults.should_kill_at_sync(seq) || self.faults.should_drop_fsync(seq) {
            drop(file);
            truncate_to(path, pre_len);
            inner.crashed = true;
            return false;
        }
        if file.sync_all().is_err() {
            ReuseStats::inc(&self.stats.disk_io_errors);
            return false;
        }
        let digest = inner.committed_digest;
        inner.sync_digests.push(digest);
        true
    }

    /// Appends one manifest line and fsyncs it (one sync point). Creates
    /// the manifest (with header) on first use.
    fn append_manifest_synced(&self, inner: &mut Inner, line: &str) -> bool {
        let path = self.dir.join(MANIFEST_FILE);
        let fresh = inner.manifest_len == 0 && !path.exists();
        let payload = if fresh {
            format!("{MANIFEST_HEADER}\n{line}")
        } else {
            line.to_string()
        };
        let pre_len = if fresh { 0 } else { inner.manifest_len };
        let appended = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| {
                f.write_all(payload.as_bytes())?;
                Ok(f)
            });
        let file = match appended {
            Ok(f) => f,
            Err(_) => {
                ReuseStats::inc(&self.stats.disk_io_errors);
                return false;
            }
        };
        if !self.sync_file(inner, file, &path, pre_len) {
            return false;
        }
        inner.manifest_len = pre_len + payload.len() as u64;
        true
    }

    /// Appends a manifest line without fsync (internal rejects: losing
    /// the line only re-rejects the record on the next recovery).
    fn append_manifest_line_raw(&self, inner: &mut Inner, line: &str) {
        let path = self.dir.join(MANIFEST_FILE);
        if inner.manifest_len == 0 && !path.exists() {
            return; // nothing committed yet, nothing to tombstone
        }
        if let Ok(mut f) = OpenOptions::new().append(true).open(&path) {
            if f.write_all(line.as_bytes()).is_ok() {
                inner.manifest_len += line.len() as u64;
            }
        }
    }

    fn append_manifest_line_unsynced(&self, line: &str) {
        let mut inner = self.inner.lock();
        if inner.crashed {
            return;
        }
        self.append_manifest_line_raw(&mut inner, line);
    }

    fn maybe_compact(&self, inner: &mut Inner) {
        if inner.dead_bytes >= self.compact_min_dead
            && inner.dead_bytes * 2 >= inner.dead_bytes + inner.live_bytes
        {
            self.compact(inner);
        }
    }

    /// Rewrites live records into fresh segments and atomically swaps the
    /// manifest. Crash-safe: until the rename lands, recovery sees the
    /// old manifest and old segments untouched.
    fn compact(&self, inner: &mut Inner) -> bool {
        if inner.crashed {
            return false;
        }
        // Re-verify every live record while copying; rejects fall out of
        // the compacted generation.
        let mut entries: Vec<(u64, RecordLoc)> =
            inner.index.iter().map(|(h, l)| (*h, *l)).collect();
        entries.sort_by_key(|(h, l)| (l.segment, l.offset, *h));
        let mut live: Vec<(u64, Vec<u8>)> = Vec::with_capacity(entries.len());
        for (hash, loc) in entries {
            match read_record_bytes(&self.dir, loc) {
                Some(bytes)
                    if decode_record(&bytes)
                        .map(|r| r.content_hash == hash)
                        .unwrap_or(false) =>
                {
                    live.push((hash, bytes));
                }
                _ => {
                    ReuseStats::inc(&self.stats.checksum_rejects);
                    inner.index.remove(&hash);
                    inner.live_bytes = inner.live_bytes.saturating_sub(loc.len);
                }
            }
        }
        let old_segments: HashSet<u64> = inner.index.values().map(|l| l.segment).collect();

        // New generation: pack live records into in-memory segment
        // images first so the segment ids can be claimed in one step —
        // an aborted compaction must never leave a fresh id pointing at
        // a file with stale content.
        let mut packed: Vec<Vec<u8>> = Vec::new();
        let mut placements: Vec<(u64, usize, u64, u64)> = Vec::new(); // hash, seg idx, off, len
        let mut seg_buf: Vec<u8> = Vec::new();
        for (hash, bytes) in &live {
            if !seg_buf.is_empty() && (seg_buf.len() + bytes.len()) as u64 > self.segment_max {
                packed.push(std::mem::take(&mut seg_buf));
            }
            placements.push((
                *hash,
                packed.len(),
                seg_buf.len() as u64,
                bytes.len() as u64,
            ));
            seg_buf.extend_from_slice(bytes);
        }
        if !seg_buf.is_empty() {
            packed.push(seg_buf);
        }
        let first_seg = inner.next_segment;
        inner.next_segment += packed.len() as u64;
        let written_segments: Vec<u64> = (0..packed.len() as u64).map(|i| first_seg + i).collect();
        let mut new_index: HashMap<u64, RecordLoc> = HashMap::new();
        for (hash, seg_idx, offset, len) in placements {
            new_index.insert(
                hash,
                RecordLoc {
                    segment: first_seg + seg_idx as u64,
                    offset,
                    len,
                },
            );
        }
        for (i, image) in packed.iter().enumerate() {
            let path = segment_path(&self.dir, first_seg + i as u64);
            let written = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&path)
                .and_then(|mut f| {
                    f.write_all(image)?;
                    Ok(f)
                });
            let file = match written {
                Ok(f) => f,
                Err(_) => {
                    ReuseStats::inc(&self.stats.disk_io_errors);
                    return false;
                }
            };
            // Each new-generation segment fsync is a numbered sync point;
            // a kill here leaves only unreferenced files behind.
            if !self.sync_file(inner, file, &path, 0) {
                return false;
            }
        }

        // Staged manifest, fsynced, then atomically renamed.
        let mut manifest = format!("{MANIFEST_HEADER}\n");
        let mut lines: Vec<(u64, RecordLoc)> = new_index.iter().map(|(h, l)| (*h, *l)).collect();
        lines.sort_by_key(|(h, l)| (l.segment, l.offset, *h));
        for (hash, loc) in &lines {
            manifest.push_str(&format!(
                "put {} {} {} {}\n",
                hash, loc.segment, loc.offset, loc.len
            ));
        }
        let tmp = self.dir.join(MANIFEST_TMP);
        let staged = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)
            .and_then(|mut f| {
                f.write_all(manifest.as_bytes())?;
                Ok(f)
            });
        let file = match staged {
            Ok(f) => f,
            Err(_) => {
                ReuseStats::inc(&self.stats.disk_io_errors);
                return false;
            }
        };
        if !self.sync_file(inner, file, &tmp, 0) {
            return false;
        }

        // The rename barrier is its own sync point: a kill *here* is the
        // crash-before-rename case — the staged manifest is complete on
        // disk but never becomes `MANIFEST`, and recovery discards it.
        inner.sync_seq += 1;
        let seq = inner.sync_seq;
        if self.faults.should_kill_at_sync(seq) || self.faults.should_drop_fsync(seq) {
            inner.crashed = true;
            return false;
        }
        if fs::rename(&tmp, self.dir.join(MANIFEST_FILE)).is_err() {
            ReuseStats::inc(&self.stats.disk_io_errors);
            fs::remove_file(&tmp).ok();
            return false;
        }
        // Make the rename itself durable (directory entry).
        if let Ok(d) = File::open(&self.dir) {
            d.sync_all().ok();
        }

        // Committed: swap in-memory state and drop the old generation.
        for seg in old_segments {
            if !written_segments.contains(&seg) {
                fs::remove_file(segment_path(&self.dir, seg)).ok();
            }
        }
        inner.live_bytes = new_index.values().map(|l| l.len).sum();
        inner.dead_bytes = 0;
        inner.index = new_index;
        inner.manifest_len = manifest.len() as u64;
        inner.active_segment = inner.next_segment;
        inner.next_segment += 1;
        inner.active_len = 0;
        inner.committed_digest = digest_of(&inner.index);
        inner.sync_digests.push(inner.committed_digest);
        ReuseStats::inc(&self.stats.manifest_swaps);
        true
    }
}

fn truncate_to(path: &Path, len: u64) {
    if let Ok(f) = OpenOptions::new().write(true).open(path) {
        f.set_len(len).ok();
    }
}

fn read_record_bytes(dir: &Path, loc: RecordLoc) -> Option<Vec<u8>> {
    let mut f = File::open(segment_path(dir, loc.segment)).ok()?;
    f.seek(SeekFrom::Start(loc.offset)).ok()?;
    let mut buf = vec![0u8; loc.len as usize];
    f.read_exact(&mut buf).ok()?;
    Some(buf)
}

fn read_record_at(dir: &Path, loc: RecordLoc) -> Result<DurableRecord, RecordError> {
    let Some(buf) = read_record_bytes(dir, loc) else {
        return Err(RecordError::Truncated);
    };
    decode_record(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "memphis_durable_{tag}_{}_{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn rec(hash: u64, payload: &[u8]) -> DurableRecord {
        DurableRecord {
            content_hash: hash,
            compute_cost: 42.5,
            hits: 3,
            height: 2,
            lineage_log: format!("(0) leaf [x{hash}] ()"),
            matrix_bytes: payload.to_vec(),
        }
    }

    fn open_plain(dir: &Path) -> (SegmentStore, Vec<RecoveredMeta>) {
        SegmentStore::open(
            dir.to_path_buf(),
            1 << 16,
            1 << 30, // never auto-compact in unit tests
            FaultPlan::none(),
            Arc::new(ReuseStats::default()),
        )
    }

    #[test]
    fn record_roundtrip_bit_identical() {
        let r = rec(0xdead_beef, &[1, 2, 3, 4, 5]);
        let bytes = encode_record(&r);
        let back = decode_record(&bytes).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn decode_rejects_flips_truncation_and_bad_magic() {
        let bytes = encode_record(&rec(7, b"payload"));
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0x10;
            assert!(
                decode_record(&b).is_err(),
                "flip at byte {i} must not decode cleanly"
            );
        }
        assert_eq!(
            decode_record(&bytes[..bytes.len() - 1]),
            Err(RecordError::Truncated)
        );
        let mut b = bytes.clone();
        b[0] = b'X';
        assert_eq!(decode_record(&b), Err(RecordError::BadMagic));
    }

    #[test]
    fn put_read_remove_and_recover() {
        let dir = tmp_dir("prr");
        {
            let (store, recovered) = open_plain(&dir);
            assert!(recovered.is_empty());
            assert!(store.put(&rec(1, b"one")));
            assert!(store.put(&rec(2, b"two")));
            assert_eq!(store.read(1).unwrap().matrix_bytes, b"one");
            assert!(store.remove(2).is_some());
            assert!(!store.contains(2));
        }
        let (store, recovered) = open_plain(&dir);
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].content_hash, 1);
        assert_eq!(store.read(1).unwrap().matrix_bytes, b"one");
        assert!(store.read(2).is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_rejects_corrupted_record_and_keeps_rest() {
        let dir = tmp_dir("corrupt");
        let stats = Arc::new(ReuseStats::default());
        {
            let (store, _) = open_plain(&dir);
            assert!(store.put(&rec(1, b"aaaa")));
            assert!(store.put(&rec(2, b"bbbb")));
        }
        // Flip one byte inside the first record's payload on disk.
        let seg = segment_path(&dir, 1);
        let mut bytes = fs::read(&seg).unwrap();
        let flip = RECORD_HEADER_LEN + 2;
        bytes[flip] ^= 0xff;
        fs::write(&seg, bytes).unwrap();
        let (store, recovered) = SegmentStore::open(
            dir.clone(),
            1 << 16,
            1 << 30,
            FaultPlan::none(),
            stats.clone(),
        );
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].content_hash, 2);
        assert_eq!(stats.snapshot().checksum_rejects, 1);
        assert!(store.read(2).is_some());
        assert!(store.read(1).is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_manifest_tail_is_ignored() {
        let dir = tmp_dir("torn_tail");
        {
            let (store, _) = open_plain(&dir);
            assert!(store.put(&rec(1, b"one")));
        }
        // Simulate a torn final append: half a `put` line.
        let mut manifest = fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap();
        manifest.push_str("put 99 7 0 1");
        fs::write(dir.join(MANIFEST_FILE), manifest).unwrap();
        let (_, recovered) = open_plain(&dir);
        assert_eq!(recovered.len(), 1, "torn tail line must be dropped");
        assert_eq!(recovered[0].content_hash, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_swaps_manifest_and_drops_old_segments() {
        let dir = tmp_dir("compact");
        let stats = Arc::new(ReuseStats::default());
        let (store, _) = SegmentStore::open(
            dir.clone(),
            1 << 12,
            1 << 30,
            FaultPlan::none(),
            stats.clone(),
        );
        for i in 0..8u64 {
            assert!(store.put(&rec(i, &vec![i as u8; 600])));
        }
        for i in 0..6u64 {
            assert!(store.remove(i).is_some());
        }
        assert!(store.compact_now());
        assert_eq!(stats.snapshot().manifest_swaps, 1);
        assert_eq!(store.entry_count(), 2);
        assert!(!dir.join(MANIFEST_TMP).exists());
        // Still readable live, and recoverable.
        assert_eq!(store.read(7).unwrap().matrix_bytes, vec![7u8; 600]);
        drop(store);
        let (store, recovered) = open_plain(&dir);
        assert_eq!(recovered.len(), 2);
        assert_eq!(store.read(6).unwrap().matrix_bytes, vec![6u8; 600]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_at_each_sync_point_recovers_the_committed_prefix() {
        // Baseline: record the committed digest after every sync point.
        let base = tmp_dir("kill_base");
        let total_syncs;
        let digests;
        {
            let (store, _) = open_plain(&base);
            for i in 0..5u64 {
                assert!(store.put(&rec(i, &[i as u8; 64])));
            }
            store.remove(1);
            total_syncs = store.sync_points();
            digests = store.sync_digests();
        }
        assert_eq!(digests.len() as u64, total_syncs);
        for k in 1..=total_syncs {
            let dir = tmp_dir(&format!("kill_{k}"));
            let stats = Arc::new(ReuseStats::default());
            let plan = FaultPlan::seeded(42).with_disk_kill_at_sync(k);
            {
                let (store, _) =
                    SegmentStore::open(dir.clone(), 1 << 16, 1 << 30, plan, stats.clone());
                for i in 0..5u64 {
                    store.put(&rec(i, &[i as u8; 64]));
                }
                store.remove(1);
                assert!(store.is_crashed(), "kill point {k} must fire");
            }
            let (store, _) = open_plain(&dir);
            let expected = if k >= 2 {
                digests[(k - 2) as usize]
            } else {
                empty_digest()
            };
            assert_eq!(
                store.durable_digest(),
                expected,
                "kill at sync {k}: recovered state must equal the committed prefix"
            );
            assert_eq!(
                stats.snapshot().checksum_rejects,
                0,
                "a sync-boundary kill leaves no corrupt committed record"
            );
            fs::remove_dir_all(&dir).ok();
        }
        fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn crash_before_rename_keeps_old_manifest() {
        let dir = tmp_dir("prerename");
        let stats = Arc::new(ReuseStats::default());
        // First learn at which sync point the rename barrier sits.
        let rename_sync;
        {
            let (store, _) = SegmentStore::open(
                dir.clone(),
                1 << 16,
                1 << 30,
                FaultPlan::none(),
                stats.clone(),
            );
            for i in 0..4u64 {
                assert!(store.put(&rec(i, &[i as u8; 64])));
            }
            store.remove(0);
            store.remove(1);
            let before = store.sync_points();
            assert!(store.compact_now());
            // Compaction = new-segment fsyncs + tmp fsync + rename; the
            // rename is the last sync point of the pass.
            rename_sync = store.sync_points();
            assert!(rename_sync > before);
        }
        fs::remove_dir_all(&dir).ok();

        let stats = Arc::new(ReuseStats::default());
        let plan = FaultPlan::seeded(7).with_disk_kill_at_sync(rename_sync);
        let digest_before;
        {
            let (store, _) = SegmentStore::open(dir.clone(), 1 << 16, 1 << 30, plan, stats.clone());
            for i in 0..4u64 {
                assert!(store.put(&rec(i, &[i as u8; 64])));
            }
            store.remove(0);
            store.remove(1);
            digest_before = store.durable_digest();
            assert!(!store.compact_now(), "killed before the rename");
            assert!(store.is_crashed());
            assert!(
                dir.join(MANIFEST_TMP).exists(),
                "staged manifest left behind by the crash"
            );
        }
        let (store, recovered) = open_plain(&dir);
        assert!(!dir.join(MANIFEST_TMP).exists(), "recovery sweeps the tmp");
        assert_eq!(recovered.len(), 2);
        assert_eq!(
            store.durable_digest(),
            digest_before,
            "old manifest generation must win after a pre-rename crash"
        );
        assert_eq!(stats.snapshot().manifest_swaps, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_never_surfaces_and_recovery_drops_it() {
        let dir = tmp_dir("torn");
        let stats = Arc::new(ReuseStats::default());
        // Tear every write.
        let plan = FaultPlan::seeded(1).with_disk_torn_write_rate(1.0);
        {
            let (store, _) = SegmentStore::open(dir.clone(), 1 << 16, 1 << 30, plan, stats.clone());
            assert!(!store.put(&rec(9, b"to-be-torn")));
            assert!(store.is_crashed());
            assert!(!store.contains(9));
        }
        let (store, recovered) = open_plain(&dir);
        assert!(recovered.is_empty());
        assert_eq!(store.durable_digest(), empty_digest());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn digest_is_order_independent_and_content_sensitive() {
        let mut a = HashMap::new();
        a.insert(
            1u64,
            RecordLoc {
                segment: 1,
                offset: 0,
                len: 10,
            },
        );
        a.insert(
            2u64,
            RecordLoc {
                segment: 9,
                offset: 5,
                len: 20,
            },
        );
        let mut b = HashMap::new();
        b.insert(
            2u64,
            RecordLoc {
                segment: 3, // different location, same (hash, len)
                offset: 0,
                len: 20,
            },
        );
        b.insert(
            1u64,
            RecordLoc {
                segment: 1,
                offset: 0,
                len: 10,
            },
        );
        assert_eq!(digest_of(&a), digest_of(&b), "locations don't matter");
        b.get_mut(&1).unwrap().len = 11;
        assert_ne!(digest_of(&a), digest_of(&b));
    }
}
