//! Cache entries: backend-local cached objects with reuse metadata.

use crate::backend::{BackendId, EvictionPolicy};
use crate::lineage::{LItem, LineageId};
use memphis_gpusim::GpuPtr;
use memphis_matrix::Matrix;
use memphis_sparksim::RddRef;
use std::sync::Arc;

/// A backend-local cached object — the wrapper of paper §3.3 around
/// backend-specific pointers.
#[derive(Debug, Clone)]
pub enum CachedObject {
    /// In-memory matrix on the driver (shared, not deep-copied, between
    /// the cache and probe hits).
    Matrix(Arc<Matrix>),
    /// Scalar on the driver.
    Scalar(f64),
    /// Handle to a (possibly unmaterialized) distributed RDD, with its
    /// logical shape (the data characteristics metadata of §3.3).
    Rdd {
        /// Distributed handle.
        rdd: RddRef,
        /// Logical rows.
        rows: usize,
        /// Logical columns.
        cols: usize,
    },
    /// Device pointer managed by the GPU memory manager, with its shape.
    Gpu {
        /// Device pointer.
        ptr: GpuPtr,
        /// Logical rows.
        rows: usize,
        /// Logical columns.
        cols: usize,
    },
    /// Disk-evicted binary in the durable segment store, keyed by the
    /// lineage `content_hash` — stable across restarts (allocation-order
    /// ids are not), so recovered entries match without a rename pass.
    Disk(u64),
}

impl CachedObject {
    /// The tier owning this object.
    pub fn backend(&self) -> BackendId {
        match self {
            CachedObject::Matrix(_) => BackendId::Local,
            CachedObject::Scalar(_) => BackendId::Local,
            CachedObject::Rdd { .. } => BackendId::Spark,
            CachedObject::Gpu { .. } => BackendId::Gpu,
            CachedObject::Disk(_) => BackendId::Disk,
        }
    }
}

/// Admission status of an entry (delayed caching, paper §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryStatus {
    /// Placeholder created by PUT; the object is stored once the operator
    /// has repeated `needed` times (`TO-BE-CACHED`).
    ToBeCached {
        /// Placeholder probes observed so far.
        seen: u32,
        /// Delay factor n: store on the n-th execution.
        needed: u32,
    },
    /// Object stored (`CACHED`).
    Cached,
}

/// One lineage-cache entry.
#[derive(Debug)]
pub struct CacheEntry {
    /// Interned lineage identity of the cached intermediate (the
    /// canonical trace is recoverable via [`crate::lineage::resolve`]).
    pub key: LineageId,
    /// The cached object; `None` while the entry is a placeholder.
    pub object: Option<CachedObject>,
    /// The tier owning the object (admission/eviction dispatch through
    /// the registry). Placeholders default to the local tier.
    pub backend: BackendId,
    /// Admission status.
    pub status: EntryStatus,
    /// Analytical compute cost `c(o)` supplied by the compiler.
    pub compute_cost: f64,
    /// Estimated worst-case size `s(o)` in bytes.
    pub size: usize,
    /// Reuse hits `r_h`.
    pub hits: u64,
    /// Reuses while unmaterialized `r_m` (Spark lazy evaluation).
    pub misses: u64,
    /// Jobs that consumed this entry `r_j`.
    pub jobs: u64,
    /// Logical clock of the last access (for recency scoring).
    pub last_access: u64,
    /// Height of the lineage trace `h(o)`.
    pub height: u32,
    /// True for multi-level (function/basic-block) entries.
    pub is_function: bool,
    /// Set once an asynchronous materialization job was triggered.
    pub materialize_triggered: bool,
    /// Set once lazy GC cleaned up the entry's child references.
    pub gc_done: bool,
    /// Pinned entries are never eviction victims (serving-time protection
    /// for shared working sets; unpin to make them evictable again).
    pub pinned: bool,
    /// Tenant that computed the object (serving layer). Entries of
    /// over-quota tenants are preferred eviction victims; `None` (the
    /// default for non-serving callers) is never quota-charged.
    pub tenant: Option<u16>,
    /// EWMA of inter-probe gaps on the global virtual clock — the
    /// time-to-next-access estimate of the `DelayedHits` policy. Zero
    /// until the first gap is observed (see `probe_gaps`).
    pub ttna_ewma: f64,
    /// Number of inter-probe gap samples folded into `ttna_ewma`; while
    /// zero the TTNA is unknown and the delayed-hits discount is zero.
    pub probe_gaps: u64,
    /// Virtual-clock tick of the most recent probe (0 = never probed).
    pub last_probe_tick: u64,
    /// Coalesced waiters observed stacked behind misses of this entry —
    /// the aggregate-delay signal: each waiter paid the full recompute
    /// latency on top of the miss itself.
    pub miss_waiters: u64,
}

/// Smoothing factor for the inter-probe-gap EWMA (higher = faster
/// adaptation to the most recent gap).
pub const TTNA_ALPHA: f64 = 0.3;

impl CacheEntry {
    /// Creates a stored (CACHED) entry owned by the object's tier.
    pub fn cached(item: &LItem, object: CachedObject, compute_cost: f64, size: usize) -> Self {
        let height = item.height;
        let is_function = item.opcode.starts_with("func:");
        let backend = object.backend();
        Self {
            key: item.lid,
            object: Some(object),
            backend,
            status: EntryStatus::Cached,
            compute_cost,
            size,
            hits: 0,
            misses: 0,
            jobs: 0,
            last_access: 0,
            height,
            is_function,
            materialize_triggered: false,
            gc_done: false,
            pinned: false,
            tenant: None,
            ttna_ewma: 0.0,
            probe_gaps: 0,
            last_probe_tick: 0,
            miss_waiters: 0,
        }
    }

    /// Rebuilds a CACHED disk-backed entry from a recovered durable
    /// record: the re-interned lineage item supplies the identity, and
    /// the persisted cost/hits keep the entry's proven-reuse standing in
    /// eq. (1) scoring across the restart.
    pub fn recovered(item: &LItem, compute_cost: f64, size: usize, hits: u64) -> Self {
        let mut e = Self::cached(
            item,
            CachedObject::Disk(item.lid.content_hash()),
            compute_cost,
            size,
        );
        e.hits = hits;
        e
    }

    /// Creates a TO-BE-CACHED placeholder with delay factor `needed`.
    pub fn placeholder(item: &LItem, compute_cost: f64, size: usize, needed: u32) -> Self {
        let height = item.height;
        let is_function = item.opcode.starts_with("func:");
        Self {
            key: item.lid,
            object: None,
            backend: BackendId::Local,
            status: EntryStatus::ToBeCached { seen: 1, needed },
            compute_cost,
            size,
            hits: 0,
            misses: 0,
            jobs: 0,
            last_access: 0,
            height,
            is_function,
            materialize_triggered: false,
            gc_done: false,
            pinned: false,
            tenant: None,
            ttna_ewma: 0.0,
            probe_gaps: 0,
            last_probe_tick: 0,
            miss_waiters: 0,
        }
    }

    /// Folds a probe at virtual-clock tick `clock` into the TTNA
    /// estimate: the gap since the previous probe updates the EWMA.
    /// Pure bookkeeping — under `CachePolicy::Paper` the estimate is
    /// never read, so recording it cannot perturb eq. (1) behavior.
    pub fn observe_probe(&mut self, clock: u64) {
        if self.last_probe_tick != 0 && clock > self.last_probe_tick {
            let gap = (clock - self.last_probe_tick) as f64;
            self.ttna_ewma = if self.probe_gaps == 0 {
                gap
            } else {
                TTNA_ALPHA * gap + (1.0 - TTNA_ALPHA) * self.ttna_ewma
            };
            self.probe_gaps += 1;
        }
        self.last_probe_tick = clock;
    }

    /// Estimated ticks until the next access: the inter-probe EWMA, or
    /// infinity while no re-access was ever observed (one probe — or
    /// none — in the entry's whole lifetime gives no evidence it will
    /// come back).
    pub fn estimated_ttna(&self) -> f64 {
        if self.probe_gaps == 0 {
            f64::INFINITY
        } else {
            self.ttna_ewma
        }
    }

    /// Eq. (1) eviction score: `(r_h + r_m + r_j) * c(o) / s(o)` —
    /// smallest score is evicted first (delegates to the shared
    /// [`EvictionPolicy`]).
    pub fn cost_size_score(&self) -> f64 {
        EvictionPolicy::entry_score(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::LineageItem;

    #[test]
    fn backend_tags() {
        assert_eq!(CachedObject::Scalar(1.0).backend(), BackendId::Local);
        assert_eq!(
            CachedObject::Matrix(Arc::new(Matrix::zeros(1, 1))).backend(),
            BackendId::Local
        );
        assert_eq!(CachedObject::Disk(0xfeed).backend(), BackendId::Disk);
        assert_eq!(BackendId::Disk.as_str(), "disk");
    }

    #[test]
    fn entries_carry_their_backend() {
        let e = CacheEntry::cached(&LineageItem::leaf("x"), CachedObject::Scalar(0.0), 1.0, 16);
        assert_eq!(e.backend, BackendId::Local);
        assert_eq!(e.key, LineageItem::leaf("x").lid, "key is the interned id");
        let p = CacheEntry::placeholder(&LineageItem::leaf("y"), 1.0, 16, 2);
        assert_eq!(p.backend, BackendId::Local);
    }

    #[test]
    fn recovered_entries_are_disk_backed_with_persisted_standing() {
        let item = LineageItem::leaf("recov");
        let e = CacheEntry::recovered(&item, 12.0, 640, 5);
        assert_eq!(e.backend, BackendId::Disk);
        assert_eq!(e.hits, 5, "proven-reuse standing survives the restart");
        assert_eq!(e.status, EntryStatus::Cached);
        match e.object {
            Some(CachedObject::Disk(h)) => assert_eq!(h, item.lid.content_hash()),
            other => panic!("expected a content-hash-keyed disk object, got {other:?}"),
        }
    }

    #[test]
    fn function_entries_detected() {
        let f = LineageItem::new("func:l2svm", vec![], vec![]);
        let e = CacheEntry::cached(&f, CachedObject::Scalar(0.0), 1.0, 8);
        assert!(e.is_function);
        let o = LineageItem::new("ba+*", vec![], vec![]);
        let e = CacheEntry::cached(&o, CachedObject::Scalar(0.0), 1.0, 8);
        assert!(!e.is_function);
    }

    #[test]
    fn cost_size_score_orders_by_value_density() {
        let k = LineageItem::leaf("x");
        // Expensive & small beats cheap & large.
        let mut precious = CacheEntry::cached(&k, CachedObject::Scalar(0.0), 1e9, 8);
        let mut bulky = CacheEntry::cached(&k, CachedObject::Scalar(0.0), 1.0, 1 << 30);
        precious.hits = 5;
        bulky.hits = 5;
        assert!(precious.cost_size_score() > bulky.cost_size_score());
    }

    #[test]
    fn references_increase_score() {
        let k = LineageItem::leaf("x");
        let mut a = CacheEntry::cached(&k, CachedObject::Scalar(0.0), 10.0, 100);
        let mut b = CacheEntry::cached(&k, CachedObject::Scalar(0.0), 10.0, 100);
        a.hits = 10;
        b.hits = 1;
        assert!(a.cost_size_score() > b.cost_size_score());
    }
}
