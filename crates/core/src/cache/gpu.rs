//! Unified GPU memory manager: combined reuse and recycling with Live/Free
//! pointer lists (paper §4.2, Figure 8, Algorithm 1).
//!
//! Every device pointer is managed from allocation to deallocation:
//!
//! - **Live list**: pointers referenced by live variables, with reference
//!   counts (multiple variables may share one reused pointer).
//! - **Free list**: a map from allocation size to a pool of free pointers.
//!   Free pointers may still carry a cached lineage result — they are
//!   simultaneously recyclable memory and reusable intermediates.
//! - **Allocation (Algorithm 1)**: recycle an exact-size free pointer
//!   (no `cudaMalloc`, no device synchronization); otherwise `cudaMalloc`;
//!   otherwise free the next-larger pointer; otherwise free pointers until
//!   the malloc succeeds; otherwise free the whole free list; otherwise
//!   report OOM so the cache can evict to host / defragment.
//! - **Eviction ordering (eq. 2)**: `T_a(o) + 1/h(o) + c(o)` — recycle
//!   least-recently-used, tall-lineage, cheap intermediates first.

use crate::backend::EvictionPolicy;
use crate::lineage::LineageId;
use crate::stats::ReuseStats;
use memphis_gpusim::{GpuDevice, GpuError, GpuPtr};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

#[allow(dead_code)] // `ptr` documents the full handle; lookups key on addr
struct LivePtr {
    ptr: GpuPtr,
    refcount: u32,
    cached_key: Option<LineageId>,
}

struct FreePtr {
    ptr: GpuPtr,
    cached_key: Option<LineageId>,
    last_access: u64,
    height: u32,
    cost: f64,
}

struct Inner {
    live: HashMap<u64, LivePtr>,
    free: HashMap<usize, Vec<FreePtr>>,
    clock: u64,
    max_cost: f64,
}

impl Inner {
    /// Eq. (2) score — smaller is recycled/freed first. One shared
    /// scoring function ([`EvictionPolicy::gpu_score`]) parameterized by
    /// this manager's clock and cost normalizer.
    fn score_with(clock: u64, max_cost: f64, f: &FreePtr) -> f64 {
        EvictionPolicy::gpu_score(f.last_access, clock, f.height, f.cost, max_cost)
    }

    /// Removes and returns the min-score pointer from the pool of `size`,
    /// optionally restricted to pointers with no cached key.
    fn pop_best_filtered(&mut self, size: usize, uncached_only: bool) -> Option<FreePtr> {
        let (clock, max_cost) = (self.clock, self.max_cost);
        let pool = self.free.get_mut(&size)?;
        let mut best: Option<(usize, f64)> = None;
        for (i, f) in pool.iter().enumerate() {
            if uncached_only && f.cached_key.is_some() {
                continue;
            }
            let score = Self::score_with(clock, max_cost, f);
            if best.map(|(_, b)| score < b).unwrap_or(true) {
                best = Some((i, score));
            }
        }
        let (i, _) = best?;
        let f = pool.swap_remove(i);
        if pool.is_empty() {
            self.free.remove(&size);
        }
        Some(f)
    }

    /// Removes and returns the min-score pointer from the pool of `size`.
    fn pop_best(&mut self, size: usize) -> Option<FreePtr> {
        self.pop_best_filtered(size, false)
    }

    /// Like [`Inner::pop_best`], restricted to pointers with no cached key.
    fn pop_best_uncached(&mut self, size: usize) -> Option<FreePtr> {
        self.pop_best_filtered(size, true)
    }
}

/// Outcome of a successful allocation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GpuAlloc {
    /// The granted pointer (live, refcount 1).
    pub ptr: GpuPtr,
    /// True when the memory was recycled from the free list (no
    /// `cudaMalloc`, no synchronization barrier).
    pub recycled: bool,
    /// Lineage entries invalidated because their pointers were recycled or
    /// freed to satisfy this request. The cache must drop these entries.
    pub invalidated: Vec<LineageId>,
}

/// The unified GPU memory manager.
pub struct GpuMemoryManager {
    device: Arc<GpuDevice>,
    inner: Mutex<Inner>,
    stats: Arc<ReuseStats>,
}

impl GpuMemoryManager {
    /// Wraps a device.
    pub fn new(device: Arc<GpuDevice>, stats: Arc<ReuseStats>) -> Self {
        Self {
            device,
            inner: Mutex::new(Inner {
                live: HashMap::new(),
                free: HashMap::new(),
                clock: 0,
                max_cost: 0.0,
            }),
            stats,
        }
    }

    /// The wrapped device.
    pub fn device(&self) -> &Arc<GpuDevice> {
        &self.device
    }

    /// Serves an output allocation of `size` bytes per Algorithm 1.
    ///
    /// `height` and `cost` seed the eviction metadata of the new pointer.
    pub fn request(&self, size: usize, height: u32, cost: f64) -> Result<GpuAlloc, GpuError> {
        self.request_with(size, height, cost, false)
    }

    /// Like [`GpuMemoryManager::request`], but when `preserve_cached` is
    /// set the OOM fallback only frees *uncached* free pointers; cached
    /// ones are left for the lineage cache to evict to host memory first
    /// (the device-to-host eviction process of §4.2). Exact-size recycling
    /// still consumes cached pointers — eq. (2) scoring decides which.
    pub fn request_with(
        &self,
        size: usize,
        height: u32,
        cost: f64,
        preserve_cached: bool,
    ) -> Result<GpuAlloc, GpuError> {
        let _ = height; // metadata is attached at release time
        let size = size.max(8);
        let mut invalidated = Vec::new();
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        inner.max_cost = inner.max_cost.max(cost);

        // Step 1: recycle an exact-size free pointer.
        if let Some(f) = inner.pop_best(size) {
            if let Some(k) = f.cached_key {
                invalidated.push(k);
            }
            inner.live.insert(
                f.ptr.addr,
                LivePtr {
                    ptr: f.ptr,
                    refcount: 1,
                    cached_key: None,
                },
            );
            ReuseStats::inc(&self.stats.gpu_recycled);
            return Ok(GpuAlloc {
                ptr: f.ptr,
                recycled: true,
                invalidated,
            });
        }

        // Step 2: plain cudaMalloc.
        loop {
            drop(inner);
            match self.device.alloc(size) {
                Ok(ptr) => {
                    let mut inner = self.inner.lock();
                    inner.live.insert(
                        ptr.addr,
                        LivePtr {
                            ptr,
                            refcount: 1,
                            cached_key: None,
                        },
                    );
                    inner.clock = inner.clock.max(clock);
                    return Ok(GpuAlloc {
                        ptr,
                        recycled: false,
                        invalidated,
                    });
                }
                Err(GpuError::OutOfMemory { .. }) => {
                    // Step 3/4: free the next-larger pointer, else any
                    // pointer (min score first), else give up on this path.
                    inner = self.inner.lock();
                    let eligible = |pool: &Vec<FreePtr>| {
                        !preserve_cached || pool.iter().any(|f| f.cached_key.is_none())
                    };
                    let candidate_size = inner
                        .free
                        .iter()
                        .filter(|(&s, pool)| s > size && eligible(pool))
                        .map(|(&s, _)| s)
                        .min()
                        .or_else(|| {
                            inner
                                .free
                                .iter()
                                .filter(|(_, pool)| eligible(pool))
                                .map(|(&s, _)| s)
                                .max()
                        });
                    match candidate_size {
                        Some(s) => {
                            let popped = if preserve_cached {
                                inner.pop_best_uncached(s)
                            } else {
                                inner.pop_best(s)
                            };
                            if let Some(f) = popped {
                                if let Some(k) = f.cached_key {
                                    invalidated.push(k);
                                }
                                drop(inner);
                                self.device.free(f.ptr).ok();
                                ReuseStats::inc(&self.stats.gpu_freed);
                                inner = self.inner.lock();
                            }
                        }
                        None => {
                            // Step 5 exhausted: no (eligible) free pointers
                            // remain.
                            return Err(GpuError::OutOfMemory {
                                requested: size,
                                largest_free: self.device.largest_free(),
                                total_free: self.device.capacity() - self.device.mem_used(),
                            });
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Allocation bypassing the free-list pools (recycling disabled — the
    /// naive cudaMalloc-per-output baseline of Figure 2(d)). The pointer is
    /// still tracked in the Live list for reference counting.
    pub fn request_no_recycle(&self, size: usize, cost: f64) -> Result<GpuAlloc, GpuError> {
        let size = size.max(8);
        let ptr = self.device.alloc(size)?;
        let mut inner = self.inner.lock();
        inner.clock += 1;
        inner.max_cost = inner.max_cost.max(cost);
        inner.live.insert(
            ptr.addr,
            LivePtr {
                ptr,
                refcount: 1,
                cached_key: None,
            },
        );
        Ok(GpuAlloc {
            ptr,
            recycled: false,
            invalidated: Vec::new(),
        })
    }

    /// Releases a reference and `cudaFree`s the pointer at refcount zero
    /// instead of pooling it (recycling disabled). Returns the invalidated
    /// cache key, if the pointer carried one.
    pub fn release_and_free(&self, ptr: GpuPtr) -> Option<LineageId> {
        let mut inner = self.inner.lock();
        let live = inner.live.get_mut(&ptr.addr)?;
        live.refcount = live.refcount.saturating_sub(1);
        if live.refcount == 0 {
            let live = inner.live.remove(&ptr.addr).expect("present");
            drop(inner);
            self.device.free(ptr).ok();
            ReuseStats::inc(&self.stats.gpu_freed);
            return live.cached_key;
        }
        None
    }

    /// REUSE: re-acquires a cached pointer (Free → Live, or refcount bump
    /// when already live). Returns false if the pointer is no longer
    /// managed (entry should have been invalidated).
    pub fn acquire(&self, ptr: GpuPtr) -> bool {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(live) = inner.live.get_mut(&ptr.addr) {
            live.refcount += 1;
            ReuseStats::inc(&self.stats.gpu_reused);
            return true;
        }
        // Search the free pool of this size.
        if let Some(pool) = inner.free.get_mut(&ptr.size) {
            if let Some(idx) = pool.iter().position(|f| f.ptr.addr == ptr.addr) {
                let f = pool.swap_remove(idx);
                if pool.is_empty() {
                    inner.free.remove(&ptr.size);
                }
                inner.live.insert(
                    ptr.addr,
                    LivePtr {
                        ptr,
                        refcount: 1,
                        cached_key: f.cached_key,
                    },
                );
                inner.clock = clock;
                ReuseStats::inc(&self.stats.gpu_reused);
                return true;
            }
        }
        false
    }

    /// Releases one live reference; at zero the pointer moves to the Free
    /// list (with its cached key, if any, so the cached value remains
    /// reusable until recycled).
    ///
    /// `height`/`cost` refresh the eviction metadata.
    pub fn release(&self, ptr: GpuPtr, height: u32, cost: f64) {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let Some(live) = inner.live.get_mut(&ptr.addr) else {
            return;
        };
        live.refcount = live.refcount.saturating_sub(1);
        if live.refcount == 0 {
            let live = inner.live.remove(&ptr.addr).expect("present");
            inner.max_cost = inner.max_cost.max(cost);
            inner.free.entry(ptr.size).or_default().push(FreePtr {
                ptr,
                cached_key: live.cached_key,
                last_access: clock,
                height,
                cost,
            });
        }
    }

    /// Marks a live pointer as holding the cached result for `key`.
    pub fn mark_cached(&self, ptr: GpuPtr, key: LineageId) {
        let mut inner = self.inner.lock();
        if let Some(live) = inner.live.get_mut(&ptr.addr) {
            live.cached_key = Some(key);
            return;
        }
        if let Some(pool) = inner.free.get_mut(&ptr.size) {
            if let Some(f) = pool.iter_mut().find(|f| f.ptr.addr == ptr.addr) {
                f.cached_key = Some(key);
            }
        }
    }

    /// Forgets the cache association of a pointer (entry removed).
    pub fn unmark_cached(&self, ptr: GpuPtr) {
        let mut inner = self.inner.lock();
        if let Some(live) = inner.live.get_mut(&ptr.addr) {
            live.cached_key = None;
            return;
        }
        if let Some(pool) = inner.free.get_mut(&ptr.size) {
            if let Some(f) = pool.iter_mut().find(|f| f.ptr.addr == ptr.addr) {
                f.cached_key = None;
            }
        }
    }

    /// The `evict(p)` instruction (paper §5.2): frees the lowest-score
    /// `fraction` of free-list bytes with `cudaFree`, returning the lineage
    /// keys whose entries must be dropped.
    pub fn evict_fraction(&self, fraction: f64) -> Vec<LineageId> {
        let fraction = fraction.clamp(0.0, 1.0);
        let total = self.free_bytes();
        let target = (total as f64 * fraction) as usize;
        self.evict_bytes(target).1
    }

    /// Frees the lowest-score free-list pointers until at least `bytes`
    /// are released (or the free list runs dry). Returns the bytes
    /// actually freed and the lineage keys whose entries must be dropped.
    pub fn evict_bytes(&self, bytes: usize) -> (usize, Vec<LineageId>) {
        let mut inner = self.inner.lock();
        let (clock, max_cost) = (inner.clock, inner.max_cost);
        let mut freed = 0usize;
        let mut invalidated = Vec::new();
        let mut to_free = Vec::new();
        while freed < bytes {
            // Global min-score pointer across all pools.
            let mut best: Option<(usize, usize, f64)> = None;
            for (&s, pool) in inner.free.iter() {
                for (i, f) in pool.iter().enumerate() {
                    let score = Inner::score_with(clock, max_cost, f);
                    if best.map(|(_, _, b)| score < b).unwrap_or(true) {
                        best = Some((s, i, score));
                    }
                }
            }
            let Some((s, i, _)) = best else { break };
            let pool = inner.free.get_mut(&s).expect("pool exists");
            let f = pool.swap_remove(i);
            if pool.is_empty() {
                inner.free.remove(&s);
            }
            freed += f.ptr.size;
            if let Some(k) = f.cached_key {
                invalidated.push(k);
            }
            to_free.push(f.ptr);
        }
        drop(inner);
        if !to_free.is_empty() {
            memphis_obs::instant_val(memphis_obs::cat::CACHE, "gpu_evict", "bytes", freed as u64);
        }
        for ptr in to_free {
            self.device.free(ptr).ok();
            ReuseStats::inc(&self.stats.gpu_freed);
        }
        (freed, invalidated)
    }

    /// Pops a cached free pointer for device-to-host eviction (highest
    /// value first — we keep precious results by moving them to the host
    /// rather than discarding). Returns the pointer and its key.
    pub fn pop_cached_for_host_eviction(&self) -> Option<(GpuPtr, LineageId)> {
        let mut inner = self.inner.lock();
        let (clock, max_cost) = (inner.clock, inner.max_cost);
        let mut best: Option<(usize, usize, f64)> = None;
        for (&s, pool) in inner.free.iter() {
            for (i, f) in pool.iter().enumerate() {
                if f.cached_key.is_some() {
                    let score = Inner::score_with(clock, max_cost, f);
                    if best.map(|(_, _, b)| score < b).unwrap_or(true) {
                        best = Some((s, i, score));
                    }
                }
            }
        }
        let (s, i, _) = best?;
        let pool = inner.free.get_mut(&s).expect("pool exists");
        let f = pool.swap_remove(i);
        if pool.is_empty() {
            inner.free.remove(&s);
        }
        Some((f.ptr, f.cached_key.expect("filtered to cached")))
    }

    /// Number of pointers in the Free list.
    pub fn free_pointers(&self) -> usize {
        self.inner.lock().free.values().map(|p| p.len()).sum()
    }

    /// Number of live pointers.
    pub fn live_pointers(&self) -> usize {
        self.inner.lock().live.len()
    }

    /// Total bytes of free-list pointers (allocated but recyclable).
    pub fn free_bytes(&self) -> usize {
        self.inner
            .lock()
            .free
            .values()
            .flat_map(|p| p.iter())
            .map(|f| f.ptr.size)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::LineageItem;
    use memphis_gpusim::GpuConfig;

    fn mgr(capacity: usize) -> GpuMemoryManager {
        GpuMemoryManager::new(
            Arc::new(GpuDevice::new(GpuConfig::zero_cost(capacity))),
            Arc::new(ReuseStats::default()),
        )
    }

    fn key(name: &str) -> LineageId {
        LineageItem::leaf(name).lid
    }

    #[test]
    fn release_then_request_recycles_exact_size() {
        let m = mgr(1 << 16);
        let a = m.request(1024, 2, 1.0).unwrap();
        assert!(!a.recycled);
        m.release(a.ptr, 2, 1.0);
        assert_eq!(m.free_pointers(), 1);
        let b = m.request(1024, 2, 1.0).unwrap();
        assert!(b.recycled, "exact-size request must recycle");
        assert_eq!(b.ptr.addr, a.ptr.addr);
        assert_eq!(m.free_pointers(), 0);
        // No extra device allocation happened.
        assert_eq!(m.device().stats().allocs, 1);
    }

    #[test]
    fn recycling_invalidates_cached_key() {
        let m = mgr(1 << 16);
        let a = m.request(512, 3, 2.0).unwrap();
        m.mark_cached(a.ptr, key("r1"));
        m.release(a.ptr, 3, 2.0);
        let b = m.request(512, 3, 2.0).unwrap();
        assert!(b.recycled);
        assert_eq!(b.invalidated.len(), 1, "cached entry must be invalidated");
    }

    #[test]
    fn acquire_moves_free_to_live_and_refcounts() {
        let m = mgr(1 << 16);
        let a = m.request(256, 2, 1.0).unwrap();
        m.mark_cached(a.ptr, key("x"));
        m.release(a.ptr, 2, 1.0);
        assert!(m.acquire(a.ptr), "reuse from free list");
        assert_eq!(m.live_pointers(), 1);
        assert!(m.acquire(a.ptr), "second variable shares the pointer");
        m.release(a.ptr, 2, 1.0);
        assert_eq!(m.live_pointers(), 1, "refcount keeps it live");
        m.release(a.ptr, 2, 1.0);
        assert_eq!(m.live_pointers(), 0);
        assert_eq!(m.free_pointers(), 1);
    }

    #[test]
    fn acquire_unknown_pointer_fails() {
        let m = mgr(1 << 16);
        assert!(!m.acquire(GpuPtr { addr: 99, size: 64 }));
    }

    #[test]
    fn oom_frees_larger_then_any_pointer() {
        let m = mgr(4096);
        // Fill with two 2048-byte blocks, release one.
        let a = m.request(2048, 2, 1.0).unwrap();
        let b = m.request(2048, 2, 1.0).unwrap();
        m.release(a.ptr, 2, 1.0);
        // Request 1024: no exact match; malloc fails (0 free in arena);
        // the manager must free the 2048 free pointer and retry.
        let c = m.request(1024, 2, 1.0).unwrap();
        assert!(!c.recycled);
        assert_eq!(m.device().stats().frees, 1);
        m.release(b.ptr, 2, 1.0);
        m.release(c.ptr, 2, 1.0);
    }

    #[test]
    fn oom_with_no_free_pointers_errors() {
        let m = mgr(1024);
        let _a = m.request(1024, 1, 1.0).unwrap();
        let err = m.request(64, 1, 1.0).unwrap_err();
        assert!(matches!(err, GpuError::OutOfMemory { .. }));
    }

    #[test]
    fn eq2_recycles_least_valuable_first() {
        let m = mgr(1 << 16);
        // Two same-size pointers: one tall lineage + cheap (low score),
        // one short lineage + expensive (high score).
        let a = m.request(128, 10, 1.0).unwrap(); // tall, cheap → victim
        let b = m.request(128, 1, 100.0).unwrap(); // short, precious
        m.release(a.ptr, 10, 1.0);
        m.release(b.ptr, 1, 100.0);
        let c = m.request(128, 2, 1.0).unwrap();
        assert!(c.recycled);
        assert_eq!(c.ptr.addr, a.ptr.addr, "eq.2 must pick the tall+cheap one");
    }

    #[test]
    fn evict_fraction_frees_by_score() {
        let m = mgr(1 << 16);
        let mut ptrs = Vec::new();
        for i in 0..4 {
            let a = m.request(256, 2, i as f64).unwrap();
            m.mark_cached(a.ptr, key(&format!("k{i}")));
            ptrs.push(a.ptr);
        }
        for p in &ptrs {
            m.release(*p, 2, 1.0);
        }
        assert_eq!(m.free_pointers(), 4);
        let invalidated = m.evict_fraction(0.5);
        assert_eq!(m.free_pointers(), 2);
        assert_eq!(invalidated.len(), 2);
        let invalidated = m.evict_fraction(1.0);
        assert_eq!(m.free_pointers(), 0);
        assert_eq!(invalidated.len(), 2);
    }

    #[test]
    fn pop_cached_for_host_eviction_returns_cached_only() {
        let m = mgr(1 << 16);
        let a = m.request(64, 2, 1.0).unwrap();
        let b = m.request(64, 2, 1.0).unwrap();
        m.mark_cached(b.ptr, key("cached"));
        m.release(a.ptr, 2, 1.0);
        m.release(b.ptr, 2, 1.0);
        let (ptr, _k) = m.pop_cached_for_host_eviction().unwrap();
        assert_eq!(ptr.addr, b.ptr.addr);
        assert!(m.pop_cached_for_host_eviction().is_none());
    }

    #[test]
    fn mini_batch_pattern_allocates_once() {
        // Fixed batch sizes: after the first iteration, every allocation
        // is served by recycling (the paper's mini-batch benefit).
        let m = mgr(1 << 20);
        let sizes = [4096usize, 2048, 4096, 1024];
        for iter in 0..10 {
            let mut held = Vec::new();
            for &s in &sizes {
                let a = m.request(s, 3, 1.0).unwrap();
                if iter > 0 {
                    assert!(a.recycled, "iteration {iter} size {s}");
                }
                held.push(a.ptr);
            }
            for p in held {
                m.release(p, 3, 1.0);
            }
        }
        assert_eq!(m.device().stats().allocs, 4, "one cudaMalloc per size"); // 4096 shared? no: two 4096 live at once → 4 allocs? sizes has 4096 twice concurrently → 2 allocs of 4096 + 2048 + 1024 = 4
    }
}
