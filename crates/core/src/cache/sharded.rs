//! The sharded probe map and in-flight computation placeholders that let
//! many sessions share one lineage cache (paper §2, §4: multi-user
//! serving).
//!
//! The map is hash-partitioned by the interned lineage id's
//! content-derived hash, one mutex per shard, so concurrent sessions
//! probing disjoint lineage ids never contend. A global atomic logical
//! clock preserves the recency ordering that eq. (1)/(2) scoring relies
//! on across shards.
//!
//! Each shard additionally tracks *in-flight* computations: when a
//! session begins computing a missing entry, it parks an [`Inflight`]
//! placeholder in the shard; a second session probing the same lineage id
//! blocks on the placeholder's condvar and receives the first session's
//! result instead of recomputing (a coalesced hit). Placeholders live
//! outside the entry map, so eviction can never select an in-flight
//! computation as a victim.
//!
//! Lock discipline (see DESIGN.md §6):
//! 1. At most one shard lock is held at a time — cross-shard scans
//!    (victim selection, lazy GC, reports) lock shards sequentially.
//! 2. A shard lock may be taken before a backend accounting lock, never
//!    the reverse.
//! 3. Nothing blocks on an [`Inflight`] condvar while holding a shard
//!    lock.

use crate::backend::{EntryMap, EvictionPolicy};
use crate::cache::entry::{CacheEntry, CachedObject};
use crate::lineage::{LItem, LineageId};
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How an in-flight computation ended, as observed by its waiters.
#[derive(Debug, Clone)]
pub enum InflightOutcome {
    /// The owner completed and offered the object to the cache; waiters
    /// consume the object directly (coalesced hit), whether or not the
    /// cache admitted it.
    Done {
        /// The computed object.
        object: CachedObject,
        /// Canonical lineage item for LineageMap compaction.
        canonical: LItem,
    },
    /// The owner abandoned the computation (error or dropped guard);
    /// waiters retry the probe and one of them becomes the new owner.
    Abandoned,
}

enum InflightState {
    /// Owner still computing; `waiters` sessions are blocked.
    Pending {
        /// Number of sessions currently blocked on the condvar.
        waiters: u64,
    },
    Resolved(InflightOutcome),
}

/// A per-key in-flight computation marker: one owner computes, any number
/// of waiters block until the owner resolves it.
pub struct Inflight {
    state: Mutex<InflightState>,
    cv: Condvar,
}

impl Inflight {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(InflightState::Pending { waiters: 0 }),
            cv: Condvar::new(),
        })
    }

    /// True while the owner has neither completed nor abandoned.
    pub fn is_pending(&self) -> bool {
        matches!(*self.state.lock(), InflightState::Pending { .. })
    }

    /// Number of sessions currently blocked on this computation.
    pub fn waiters(&self) -> u64 {
        match *self.state.lock() {
            InflightState::Pending { waiters } => waiters,
            InflightState::Resolved(_) => 0,
        }
    }

    /// Blocks until the owner resolves, returning the outcome.
    pub(crate) fn wait(&self) -> InflightOutcome {
        let mut state = self.state.lock();
        if let InflightState::Pending { waiters } = &mut *state {
            *waiters += 1;
        }
        loop {
            match &*state {
                InflightState::Resolved(outcome) => return outcome.clone(),
                InflightState::Pending { .. } => self.cv.wait(&mut state),
            }
        }
    }

    /// Resolves the computation. Idempotent: the first resolution wins.
    ///
    /// Wakeups are batched: the whole waiter set is woken with one
    /// `notify_all`, and when no session is blocked (the common
    /// uncontended case) the broadcast is skipped entirely. Returns how
    /// many waiters were woken so callers can account the batch.
    pub(crate) fn resolve(&self, outcome: InflightOutcome) -> u64 {
        let mut state = self.state.lock();
        if let InflightState::Pending { waiters } = *state {
            *state = InflightState::Resolved(outcome);
            if waiters > 0 {
                self.cv.notify_all();
            }
            waiters
        } else {
            0
        }
    }

    /// Returns a recycled marker to its pristine pending state. Only
    /// callable with exclusive access (the pool holds the sole `Arc`), so
    /// no waiter can observe the transition.
    pub(crate) fn reset(&mut self) {
        *self.state.get_mut() = InflightState::Pending { waiters: 0 };
    }
}

/// The unified probe map, hash-partitioned into independently locked
/// shards, with one global logical clock for recency scoring.
pub struct ShardedEntryMap {
    shards: Box<[Mutex<EntryMap>]>,
    mask: u64,
    clock: AtomicU64,
    contention: AtomicU64,
    /// TTNA "ghost" table: evicted entries leave their last
    /// time-to-next-access estimate behind, keyed by content hash, so
    /// the `DelayedHits` admission gate can recognize a long-TTNA entry
    /// cycling back under memory pressure. Bounded; only written while
    /// the delayed-hits policy is active.
    ghosts: Mutex<HashMap<u64, f64>>,
}

/// Ghost-table bound: once full the table is cleared wholesale (the
/// estimates are advisory; forgetting them only means admitting).
const GHOST_CAP: usize = 4096;

impl ShardedEntryMap {
    /// Creates a map with `shards` partitions (rounded up to a power of
    /// two, clamped to `1..=1024`).
    pub fn new(shards: usize) -> Self {
        let n = shards.clamp(1, 1024).next_power_of_two();
        let shards: Vec<Mutex<EntryMap>> = (0..n).map(|_| Mutex::new(EntryMap::new())).collect();
        Self {
            shards: shards.into_boxed_slice(),
            mask: (n - 1) as u64,
            clock: AtomicU64::new(0),
            contention: AtomicU64::new(0),
            ghosts: Mutex::new(HashMap::new()),
        }
    }

    /// Records an evicted entry's TTNA estimate in the ghost table.
    pub fn record_ghost(&self, key: LineageId, ttna: f64) {
        let mut g = self.ghosts.lock();
        if g.len() >= GHOST_CAP {
            g.clear();
        }
        g.insert(key.content_hash(), ttna);
    }

    /// Last TTNA estimate an eviction recorded for `key`, if any.
    pub fn ghost_ttna(&self, key: LineageId) -> Option<f64> {
        self.ghosts.lock().get(&key.content_hash()).copied()
    }

    /// Drops `key`'s ghost record (called when the entry is admitted
    /// again, so a later eviction re-records fresh evidence).
    pub fn clear_ghost(&self, key: LineageId) {
        self.ghosts.lock().remove(&key.content_hash());
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key lives in. The id's content hash is precomputed and
    /// deterministic (FNV over the trace), so shard assignment is stable
    /// across runs, threads, and processes — the raw interned index is
    /// allocation-ordered and never used here.
    pub fn shard_index(&self, key: LineageId) -> usize {
        (key.content_hash() & self.mask) as usize
    }

    /// Locks one shard by index, counting contended acquisitions.
    pub fn lock_shard(&self, idx: usize) -> MutexGuard<'_, EntryMap> {
        match self.shards[idx].try_lock() {
            Some(g) => g,
            None => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                self.shards[idx].lock()
            }
        }
    }

    /// Locks the shard owning `key`.
    pub fn lock_of(&self, key: LineageId) -> MutexGuard<'_, EntryMap> {
        self.lock_shard(self.shard_index(key))
    }

    /// Advances and returns the global logical clock.
    pub fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Current logical clock value.
    pub fn clock(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Lock acquisitions that found the shard already held (a coarse
    /// contention gauge for the metrics registry).
    pub fn contended_locks(&self) -> u64 {
        self.contention.load(Ordering::Relaxed)
    }

    /// Total entries across shards (placeholders included).
    pub fn len(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.lock_shard(i).entries.len())
            .sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visits every entry, one shard lock at a time.
    pub fn for_each<F: FnMut(LineageId, &CacheEntry)>(&self, mut f: F) {
        for i in 0..self.shards.len() {
            let shard = self.lock_shard(i);
            for (k, e) in shard.entries.iter() {
                f(*k, e);
            }
        }
    }

    /// Runs `f` on the (mutable) entry for `key` under its shard lock.
    pub fn with_entry<R>(&self, key: LineageId, f: impl FnOnce(Option<&mut CacheEntry>) -> R) -> R {
        let mut shard = self.lock_of(key);
        f(shard.entries.get_mut(&key))
    }

    /// Removes and returns the entry for `key`.
    pub fn remove_entry(&self, key: LineageId) -> Option<CacheEntry> {
        self.lock_of(key).entries.remove(&key)
    }

    /// Drains every entry out of the map (in-flight markers are left in
    /// place; their owners resolve them independently).
    pub fn drain_entries(&self) -> Vec<(LineageId, CacheEntry)> {
        let mut out = Vec::new();
        for i in 0..self.shards.len() {
            out.extend(std::mem::take(&mut self.lock_shard(i).entries));
        }
        out
    }

    /// Selects the minimum eq. (1) score victim among entries matching
    /// `filter`, sampling up to `policy.sample_limit` candidates per
    /// shard. Shards are scanned sequentially (one lock at a time), so a
    /// concurrent insertion may be missed — callers re-validate the
    /// victim under its shard lock before acting on it. The running best
    /// is a `Copy` id: nothing is cloned during the scan.
    pub fn select_victim<F>(&self, policy: &EvictionPolicy, filter: F) -> Option<LineageId>
    where
        F: Fn(LineageId, &CacheEntry) -> bool,
    {
        let mut best: Option<(LineageId, f64)> = None;
        for i in 0..self.shards.len() {
            let shard = self.lock_shard(i);
            for (k, e) in shard
                .entries
                .iter()
                .filter(|(k, e)| !e.pinned && filter(**k, e))
                .take(policy.sample_limit)
            {
                let score = policy.score(e);
                // Score ties break on the content-derived lineage hash,
                // not map iteration order: victim identity (and with it
                // every downstream eviction counter) stays identical run
                // over run.
                let better = match best {
                    None => true,
                    Some((bk, bs)) => {
                        score < bs || (score == bs && k.content_hash() < bk.content_hash())
                    }
                };
                if better {
                    best = Some((*k, score));
                }
            }
        }
        best.map(|(k, _)| k)
    }

    /// The in-flight marker for `key`, if a computation is pending.
    pub fn inflight_of(&self, key: LineageId) -> Option<Arc<Inflight>> {
        self.lock_of(key).inflight.get(&key).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::entry::CacheEntry;
    use crate::lineage::LineageItem;

    fn leaf(name: &str) -> LItem {
        LineageItem::leaf(name)
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedEntryMap::new(1).shard_count(), 1);
        assert_eq!(ShardedEntryMap::new(3).shard_count(), 4);
        assert_eq!(ShardedEntryMap::new(8).shard_count(), 8);
        assert_eq!(ShardedEntryMap::new(0).shard_count(), 1);
    }

    #[test]
    fn shard_assignment_is_deterministic() {
        let m = ShardedEntryMap::new(8);
        let a = leaf("x");
        let b = leaf("x");
        assert_eq!(m.shard_index(a.lid), m.shard_index(b.lid));
    }

    #[test]
    fn clock_is_global_across_shards() {
        let m = ShardedEntryMap::new(4);
        assert_eq!(m.tick(), 1);
        assert_eq!(m.tick(), 2);
        assert_eq!(m.clock(), 2);
    }

    #[test]
    fn entries_distribute_and_drain() {
        let m = ShardedEntryMap::new(4);
        for i in 0..32 {
            let item = leaf(&format!("e{i}"));
            let e = CacheEntry::cached(&item, CachedObject::Scalar(i as f64), 1.0, 16);
            m.lock_of(item.lid).entries.insert(item.lid, e);
        }
        assert_eq!(m.len(), 32);
        let mut seen = 0;
        m.for_each(|_, _| seen += 1);
        assert_eq!(seen, 32);
        assert_eq!(m.drain_entries().len(), 32);
        assert!(m.is_empty());
    }

    #[test]
    fn select_victim_scans_all_shards_and_skips_pinned() {
        let m = ShardedEntryMap::new(8);
        let policy = EvictionPolicy::default();
        for (name, cost, pinned) in [("a", 50.0, false), ("b", 2.0, true), ("c", 9.0, false)] {
            let item = leaf(name);
            let mut e = CacheEntry::cached(&item, CachedObject::Scalar(0.0), cost, 16);
            e.pinned = pinned;
            m.lock_of(item.lid).entries.insert(item.lid, e);
        }
        let victim = m.select_victim(&policy, |_, _| true).expect("victim");
        let cost = m.with_entry(victim, |e| e.unwrap().compute_cost);
        assert_eq!(cost, 9.0, "cheapest unpinned entry wins");
    }

    #[test]
    fn inflight_wait_sees_done_outcome() {
        let f = Inflight::new();
        assert!(f.is_pending());
        let f2 = f.clone();
        let t = std::thread::spawn(move || f2.wait());
        while f.waiters() == 0 {
            std::thread::yield_now();
        }
        let woken = f.resolve(InflightOutcome::Done {
            object: CachedObject::Scalar(7.0),
            canonical: LineageItem::leaf("x"),
        });
        assert_eq!(woken, 1, "one blocked waiter in the batch");
        match t.join().unwrap() {
            InflightOutcome::Done { object, .. } => {
                assert!(matches!(object, CachedObject::Scalar(v) if v == 7.0))
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!f.is_pending());
    }

    #[test]
    fn inflight_resolution_is_idempotent() {
        let f = Inflight::new();
        assert_eq!(
            f.resolve(InflightOutcome::Abandoned),
            0,
            "no waiters, no wakeup"
        );
        assert_eq!(
            f.resolve(InflightOutcome::Done {
                object: CachedObject::Scalar(1.0),
                canonical: LineageItem::leaf("x"),
            }),
            0,
            "second resolution is a no-op"
        );
        assert!(matches!(f.wait(), InflightOutcome::Abandoned));
    }

    #[test]
    fn inflight_reset_restores_pending() {
        let mut f = Inflight::new();
        f.resolve(InflightOutcome::Abandoned);
        assert!(!f.is_pending());
        Arc::get_mut(&mut f).expect("sole owner").reset();
        assert!(f.is_pending());
        assert_eq!(f.waiters(), 0);
    }

    #[test]
    fn contended_locks_counted() {
        let m = Arc::new(ShardedEntryMap::new(1));
        let g = m.lock_shard(0);
        let m2 = m.clone();
        let t = std::thread::spawn(move || {
            let _g = m2.lock_shard(0);
        });
        while m.contended_locks() == 0 {
            std::thread::yield_now();
        }
        drop(g);
        t.join().unwrap();
        assert!(m.contended_locks() >= 1);
    }
}
