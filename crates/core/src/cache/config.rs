//! Cache configuration.

use memphis_sparksim::FaultPlan;
use std::path::PathBuf;

/// Which eviction/admission cost model the cache runs.
///
/// `Paper` is the reproduction's default — eq. (1)/(2) scoring exactly
/// as published, and every gated experiment counter is bit-identical to
/// the committed baselines under it. `DelayedHits` extends eq. (1) with
/// the delayed-hits aggregate-delay term (waiters stacked behind a
/// coalesced miss cost more than the recompute alone), discounted by
/// the entry's estimated time-to-next-access, plus MURS-style
/// admission shedding under memory pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Eq. (1)/(2) exactly as in the paper.
    #[default]
    Paper,
    /// Eq. (1) + aggregate-delay term, TTNA-discounted, with
    /// pressure-gated TTNA admission shedding.
    DelayedHits,
}

/// Configuration of the hierarchical lineage cache.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Driver-local cache budget in bytes (paper: 5 GB default on the
    /// driver; scaled here).
    pub local_budget: usize,
    /// Fraction of Spark storage memory usable for reuse-persisted RDDs
    /// (paper: 80%, rest reserved for broadcasts and compiler checkpoints).
    pub spark_reuse_fraction: f64,
    /// Number of unmaterialized reuses of an RDD entry before an
    /// asynchronous `count()` job materializes it (paper default: 3).
    pub materialize_after_misses: u64,
    /// Default delay factor n for delayed caching (1 = no delay).
    pub default_delay: u32,
    /// Directory for disk-evicted local binaries.
    pub spill_dir: PathBuf,
    /// Promote disk-evicted entries back to memory on reuse.
    pub promote_on_disk_hit: bool,
    /// Spill proven-reusable local entries to disk on eviction (disable to
    /// always drop — recompute-from-lineage replaces disk reads).
    pub spill_to_disk: bool,
    /// Probe-map shards (rounded up to a power of two). More shards
    /// reduce lock contention between concurrent sessions; 1 restores a
    /// single-lock map.
    pub shards: usize,
    /// Durable disk-tier directory surviving restarts. `None` (default)
    /// keeps the classic behavior: a cache-unique subdirectory of
    /// `spill_dir`, removed when the cache is dropped. `Some(dir)` makes
    /// the disk tier a persistent store: segments and manifest live in
    /// `dir`, are *not* removed on drop, and are recovered (manifest
    /// scan + checksum verification + probe-map rebuild) by the next
    /// cache constructed over the same directory.
    pub persist_dir: Option<PathBuf>,
    /// Byte budget for rehydrating recovered entries into the local tier
    /// at startup, hottest (eq. 1 score) first. `None` defaults to half
    /// the local budget; entries beyond the budget stay disk-backed and
    /// materialize lazily on first probe.
    pub rehydrate_budget: Option<usize>,
    /// Roll the active segment file once it exceeds this many bytes.
    pub segment_max_bytes: u64,
    /// Compact the store (rewrite live records, atomic manifest swap)
    /// once at least this many dead bytes accumulate *and* dead bytes
    /// reach half the store.
    pub compact_min_dead_bytes: u64,
    /// Seeded fault plan for the durable disk tier: torn writes, silent
    /// record corruption, partial fsyncs, and the deterministic
    /// kill-at-sync-point switch. Inert by default.
    pub disk_faults: FaultPlan,
    /// Eviction/admission cost model. `Paper` (the default) keeps every
    /// experiment bit-identical to the published eq. (1)/(2) behavior;
    /// `DelayedHits` folds observed coalescing pressure and estimated
    /// time-to-next-access into scoring and admission.
    pub policy: CachePolicy,
}

impl CacheConfig {
    /// A small configuration for unit tests: 1 MB local budget, no delay.
    pub fn test() -> Self {
        Self {
            local_budget: 1 << 20,
            spark_reuse_fraction: 0.8,
            materialize_after_misses: 3,
            default_delay: 1,
            spill_dir: std::env::temp_dir().join("memphis_cache_spill"),
            promote_on_disk_hit: true,
            spill_to_disk: true,
            shards: 8,
            persist_dir: None,
            rehydrate_budget: None,
            segment_max_bytes: 1 << 20,
            compact_min_dead_bytes: 64 << 10,
            disk_faults: FaultPlan::none(),
            policy: CachePolicy::Paper,
        }
    }

    /// The benchmark configuration: mirrors the paper's 5 GB driver cache
    /// at 1/1024 scale (5 MB) — experiments override as needed.
    pub fn benchmark() -> Self {
        Self {
            local_budget: 64 << 20,
            spark_reuse_fraction: 0.8,
            materialize_after_misses: 3,
            default_delay: 1,
            spill_dir: std::env::temp_dir().join("memphis_cache_spill"),
            promote_on_disk_hit: true,
            spill_to_disk: true,
            shards: 16,
            persist_dir: None,
            rehydrate_budget: None,
            segment_max_bytes: 8 << 20,
            compact_min_dead_bytes: 1 << 20,
            disk_faults: FaultPlan::none(),
            policy: CachePolicy::Paper,
        }
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::test()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_parameters() {
        let c = CacheConfig::test();
        assert_eq!(c.spark_reuse_fraction, 0.8);
        assert_eq!(c.materialize_after_misses, 3);
        assert_eq!(c.default_delay, 1);
    }
}
