//! The hierarchical, multi-backend lineage cache (paper §3.3, §4).
//!
//! Probing is unified: one hash map from lineage keys to entries,
//! regardless of where the cached object lives. Admission, eviction, and
//! memory management are backend-local and pluggable: every tier —
//! including the built-in four — is a [`CacheBackend`] registered in a
//! [`BackendRegistry`], and the cache itself holds no backend-concrete
//! state:
//!
//! - **Local**: matrices and scalars against a byte budget, with eq. (1)
//!   cost&size eviction spilling into the disk tier
//!   ([`backends::LocalBackend`]).
//! - **Disk**: spilled binaries, read back and optionally promoted on
//!   hit ([`backends::DiskBackend`]).
//! - **Spark**: RDD handles reused even while unmaterialized; delayed
//!   `persist()`; eq. (1) eviction via `unpersist`; lazy garbage
//!   collection of dangling child RDD/broadcast references; asynchronous
//!   `count()` materialization after `k` unmaterialized reuses
//!   ([`backends::SparkTier`]).
//! - **GPU**: pointers managed by the unified [`gpu::GpuMemoryManager`]
//!   (Live/Free lists, recycling, eq. (2) scoring, eviction injection,
//!   device-to-host eviction) ([`backends::GpuTier`]).
//!
//! The probe map and per-backend accounting lock independently: the map
//! mutex serializes probe/put, while each tier's byte counters sit behind
//! their own locks so stats reads never contend with probes. Lock order
//! is always probe map first, backend second.

pub mod backends;
pub mod config;
pub mod entry;
pub mod gpu;
pub mod spark;

use crate::backend::{
    BackendId, BackendRegistry, BackendSnapshot, CacheBackend, EntryMap, Materialized,
};
use crate::lineage::{LItem, LKey};
use crate::stats::{ReuseStats, ReuseStatsSnapshot};
use backends::{DiskBackend, GpuTier, LocalBackend, SparkTier};
use config::CacheConfig;
use entry::{CacheEntry, CachedObject, EntryStatus};
use gpu::{GpuAlloc, GpuMemoryManager};
use memphis_gpusim::{GpuDevice, GpuError, GpuPtr};
use parking_lot::Mutex;
use spark::SparkBackend;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A successful probe: the reusable object plus the canonical lineage item
/// for LineageMap compaction.
#[derive(Debug, Clone)]
pub struct ProbeHit {
    /// The cached object (cloned handle).
    pub object: CachedObject,
    /// The canonical key stored in the cache (share this in the
    /// LineageMap to increase sub-DAG sharing).
    pub canonical: LItem,
}

static NEXT_CACHE_ID: AtomicU64 = AtomicU64::new(0);

/// The hierarchical lineage cache: a unified probe map plus a registry of
/// pluggable tier backends.
pub struct LineageCache {
    map: Mutex<EntryMap>,
    registry: BackendRegistry,
    config: CacheConfig,
    stats: Arc<ReuseStats>,
}

impl LineageCache {
    /// Creates a cache with the local (driver) and disk tiers registered.
    ///
    /// Disk-evicted binaries go to a cache-unique subdirectory of the
    /// configured spill dir, removed when the disk tier is dropped.
    pub fn new(mut config: CacheConfig) -> Self {
        config.spill_dir = config.spill_dir.join(format!(
            "c{}_{}",
            std::process::id(),
            NEXT_CACHE_ID.fetch_add(1, Ordering::Relaxed)
        ));
        let stats = Arc::new(ReuseStats::default());
        let disk = Arc::new(DiskBackend::new(&config, stats.clone()));
        let local = Arc::new(LocalBackend::new(
            &config,
            stats.clone(),
            Some(disk.clone()),
        ));
        let mut registry = BackendRegistry::new();
        registry.register(local);
        registry.register(disk);
        Self {
            map: Mutex::new(EntryMap::new()),
            registry,
            config,
            stats,
        }
    }

    /// Attaches the simulated Spark cluster as a registered tier.
    pub fn with_spark(mut self, sc: memphis_sparksim::SparkContext) -> Self {
        let b = SparkBackend::new(sc, self.config.spark_reuse_fraction);
        self.registry.register(Arc::new(SparkTier::new(
            b,
            &self.config,
            self.stats.clone(),
        )));
        self
    }

    /// Attaches a Spark tier in deterministic (inline materialization)
    /// mode for tests.
    pub fn with_spark_sync(mut self, sc: memphis_sparksim::SparkContext) -> Self {
        let mut b = SparkBackend::new(sc, self.config.spark_reuse_fraction);
        b.sync_materialize = true;
        self.registry.register(Arc::new(SparkTier::new(
            b,
            &self.config,
            self.stats.clone(),
        )));
        self
    }

    /// Attaches a simulated GPU device as a registered tier.
    pub fn with_gpu(mut self, device: Arc<GpuDevice>) -> Self {
        let mgr = Arc::new(GpuMemoryManager::new(device, self.stats.clone()));
        self.registry
            .register(Arc::new(GpuTier::new(mgr, self.stats.clone())));
        self
    }

    /// Registers an additional (or replacement) tier — external backends
    /// plug in here without any change to the cache itself.
    pub fn with_backend(mut self, backend: Arc<dyn CacheBackend>) -> Self {
        self.registry.register(backend);
        self
    }

    /// Cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Reuse counters.
    pub fn stats(&self) -> ReuseStatsSnapshot {
        self.stats.snapshot()
    }

    /// Shared handle to the stats (for backend managers and experiments).
    pub fn stats_handle(&self) -> &Arc<ReuseStats> {
        &self.stats
    }

    /// The registered tier backends.
    pub fn registry(&self) -> &BackendRegistry {
        &self.registry
    }

    /// The GPU memory manager, if a device is attached.
    pub fn gpu_manager(&self) -> Option<&Arc<GpuMemoryManager>> {
        self.registry
            .downcast::<GpuTier>(BackendId::Gpu)
            .map(|t| t.manager())
    }

    /// The Spark backend, if attached.
    pub fn spark_backend(&self) -> Option<&SparkBackend> {
        self.registry
            .downcast::<SparkTier>(BackendId::Spark)
            .map(|t| t.spark())
    }

    /// Number of entries (placeholders included).
    pub fn len(&self) -> usize {
        self.map.lock().entries.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of local matrices currently cached on the driver.
    pub fn local_used(&self) -> usize {
        self.registry
            .get(BackendId::Local)
            .map(|b| b.used())
            .unwrap_or(0)
    }

    /// Estimated bytes of reuse-persisted RDDs.
    pub fn rdd_est_bytes(&self) -> usize {
        self.registry
            .get(BackendId::Spark)
            .map(|b| b.used())
            .unwrap_or(0)
    }

    /// Per-backend stats reports ([`CacheBackend::snapshot`]), with entry
    /// counts filled from the probe map.
    pub fn backend_snapshots(&self) -> Vec<BackendSnapshot> {
        let mut snaps = self.registry.snapshots();
        let map = self.map.lock();
        for s in &mut snaps {
            s.entries = map.entries.values().filter(|e| e.backend == s.id).count();
        }
        snaps
    }

    /// The unified per-backend stats report, one line per tier.
    pub fn backend_report(&self) -> String {
        self.backend_snapshots()
            .iter()
            .map(|s| format!("  {s}"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Drops every entry and resets accounting (used between experiment
    /// configurations). GPU pointers are unmarked, RDDs unpersisted,
    /// spill files removed.
    pub fn clear(&self) {
        let entries = std::mem::take(&mut self.map.lock().entries);
        for (_, e) in entries {
            if let Some(b) = self.registry.get(e.backend) {
                b.release(&e);
            }
        }
    }

    // ------------------------------------------------------------------
    // REUSE
    // ------------------------------------------------------------------

    /// REUSE: probes the cache for the output identified by `item`.
    /// Returns the cached object (with backend-specific acquisition) or
    /// `None`, in which case the caller must execute the instruction and
    /// `PUT` its result.
    pub fn probe(&self, item: &LItem) -> Option<ProbeHit> {
        let _probe_span = memphis_obs::span(memphis_obs::cat::CACHE, "probe");
        ReuseStats::inc(&self.stats.probes);
        let key = LKey(item.clone());
        let mut map = self.map.lock();
        let clock = map.tick();

        let Some(e) = map.entries.get_mut(&key) else {
            ReuseStats::inc(&self.stats.misses);
            return None;
        };
        e.last_access = clock;
        if e.object.is_none() {
            // TO-BE-CACHED placeholder: not reusable yet.
            ReuseStats::inc(&self.stats.misses);
            return None;
        }
        let canonical = e.key.clone();
        let is_function = e.is_function;
        let backend_id = e.backend;

        let outcome = match self.registry.get(backend_id) {
            Some(b) => b.materialize(&mut map, &self.registry, &key),
            None => Materialized::Stale, // tier was unregistered
        };
        match outcome {
            Materialized::Hit(object) => {
                ReuseStats::inc(&self.stats.hits);
                if is_function {
                    ReuseStats::inc(&self.stats.hits_func);
                }
                Some(ProbeHit { object, canonical })
            }
            Materialized::Stale => {
                if let Some(e) = map.entries.remove(&key) {
                    if let Some(b) = self.registry.get(e.backend) {
                        b.release(&e);
                    }
                }
                ReuseStats::inc(&self.stats.misses);
                None
            }
        }
    }

    /// Updates the `r_j` job counter of an entry (a job consumed it).
    pub fn note_job(&self, item: &LItem) {
        let key = LKey(item.clone());
        if let Some(e) = self.map.lock().entries.get_mut(&key) {
            e.jobs += 1;
        }
    }

    // ------------------------------------------------------------------
    // PUT
    // ------------------------------------------------------------------

    /// PUT: offers the result of an executed instruction to the cache,
    /// routed to the tier owning the object's representation.
    ///
    /// `cost` is the analytical compute cost, `size_hint` the estimated
    /// worst-case size (used for RDDs before materialization), and `delay`
    /// the delayed-caching factor n (1 = cache immediately). Returns true
    /// if the object was stored (vs. deferred).
    pub fn put(
        &self,
        item: &LItem,
        object: CachedObject,
        cost: f64,
        size_hint: usize,
        delay: u32,
    ) -> bool {
        let backend = object.backend();
        self.put_on(item, object, cost, size_hint, delay, backend)
    }

    /// PUT onto an explicit tier (external backends receive objects in
    /// whatever representation they accept).
    pub fn put_on(
        &self,
        item: &LItem,
        object: CachedObject,
        cost: f64,
        size_hint: usize,
        delay: u32,
        backend: BackendId,
    ) -> bool {
        let _put_span = memphis_obs::span_with(memphis_obs::cat::CACHE, "put", || {
            backend.as_str().to_string()
        });
        let key = LKey(item.clone());
        let mut map = self.map.lock();
        let clock = map.tick();

        match map.entries.get_mut(&key) {
            Some(e) if e.object.is_some() => {
                // Already cached (e.g. racing prefetch thread).
                e.last_access = clock;
                false
            }
            Some(e) => {
                // Placeholder: advance, store when the delay is reached.
                let (seen, needed) = match e.status {
                    EntryStatus::ToBeCached { seen, needed } => (seen + 1, needed),
                    EntryStatus::Cached => unreachable!("cached entries have objects"),
                };
                if seen >= needed {
                    let canonical = e.key.clone();
                    // Carry the placeholder's reuse statistics into the
                    // admitted entry so eq. (1) scoring does not restart
                    // from zero for proven repeaters.
                    let (hits, misses, jobs) = (e.hits, e.misses, e.jobs);
                    let stored =
                        self.admit(&mut map, &key, canonical, object, cost, size_hint, backend);
                    if stored {
                        let e = map.entries.get_mut(&key).expect("just admitted");
                        e.hits = hits;
                        e.misses = misses;
                        e.jobs = jobs;
                        ReuseStats::inc(&self.stats.puts);
                    } else {
                        // Rejected by the tier (e.g. oversized): drop the
                        // placeholder so later puts restart cleanly.
                        map.entries.remove(&key);
                    }
                    stored
                } else {
                    e.status = EntryStatus::ToBeCached { seen, needed };
                    e.last_access = clock;
                    ReuseStats::inc(&self.stats.puts_deferred);
                    false
                }
            }
            None => {
                if delay <= 1 {
                    let stored = self.admit(
                        &mut map,
                        &key,
                        item.clone(),
                        object,
                        cost,
                        size_hint,
                        backend,
                    );
                    if stored {
                        ReuseStats::inc(&self.stats.puts);
                    }
                    stored
                } else {
                    let mut ph = CacheEntry::placeholder(item.clone(), cost, size_hint, delay);
                    ph.backend = backend;
                    ph.last_access = clock;
                    map.entries.insert(key, ph);
                    ReuseStats::inc(&self.stats.puts_deferred);
                    false
                }
            }
        }
    }

    /// PUT with the configured default delay factor.
    pub fn put_default(&self, item: &LItem, object: CachedObject, cost: f64, size_hint: usize) {
        self.put(item, object, cost, size_hint, self.config.default_delay);
    }

    /// Stores an object through its tier's admission (MAKE_SPACE +
    /// accounting + side effects). Returns false when the tier rejects it
    /// or is not registered.
    #[allow(clippy::too_many_arguments)]
    fn admit(
        &self,
        map: &mut EntryMap,
        key: &LKey,
        canonical: LItem,
        object: CachedObject,
        cost: f64,
        size_hint: usize,
        backend: BackendId,
    ) -> bool {
        let Some(b) = self.registry.get(backend) else {
            return false;
        };
        let mut e = CacheEntry::cached(canonical, object, cost, size_hint);
        e.backend = backend;
        e.last_access = map.clock;
        if !b.put(map, &self.registry, key, &mut e) {
            return false;
        }
        map.entries.insert(key.clone(), e);
        true
    }

    // ------------------------------------------------------------------
    // GPU integration
    // ------------------------------------------------------------------

    /// Serves a GPU output allocation through the unified memory manager,
    /// dropping any cache entries invalidated by recycling and falling
    /// back to device-to-host eviction of cached pointers on OOM (the
    /// evicted matrix is re-admitted through the local tier).
    ///
    /// # Panics
    /// Panics if no GPU is attached.
    pub fn gpu_request(&self, size: usize, height: u32, cost: f64) -> Result<GpuAlloc, GpuError> {
        let g = self.gpu_manager().expect("GPU backend attached").clone();
        loop {
            match g.request_with(size, height, cost, true) {
                Ok(alloc) => {
                    self.remove_keys(&alloc.invalidated);
                    return Ok(alloc);
                }
                Err(GpuError::OutOfMemory { .. }) => {
                    // Device-to-host eviction: move the least valuable
                    // cached free pointer to driver memory, free it, retry.
                    match g.pop_cached_for_host_eviction() {
                        Some((ptr, key)) => {
                            let host = g.device().copy_to_host(ptr).ok();
                            g.device().free(ptr).ok();
                            ReuseStats::inc(&self.stats.gpu_evicted_to_host);
                            memphis_obs::instant_val(
                                memphis_obs::cat::CACHE,
                                "gpu_evict_to_host",
                                "bytes",
                                ptr.size as u64,
                            );
                            let mut map = self.map.lock();
                            if map.entries.contains_key(&key) {
                                let admitted = match host {
                                    Some(m) => self
                                        .registry
                                        .downcast::<LocalBackend>(BackendId::Local)
                                        .map(|local| {
                                            local.admit_existing(&mut map, &key, Arc::new(m))
                                        })
                                        .unwrap_or(false),
                                    None => false,
                                };
                                if !admitted {
                                    // Pointer already freed: plain removal.
                                    map.entries.remove(&key);
                                }
                            }
                        }
                        None => {
                            // Nothing left to evict: final OOM.
                            return g.request_with(size, height, cost, false);
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Releases a live GPU pointer reference (variable went out of scope).
    pub fn gpu_release(&self, ptr: GpuPtr, height: u32, cost: f64) {
        if let Some(g) = self.gpu_manager() {
            g.release(ptr, height, cost);
        }
    }

    /// Allocation without recycling (naive per-output `cudaMalloc`).
    ///
    /// # Panics
    /// Panics if no GPU is attached.
    pub fn gpu_request_no_recycle(&self, size: usize, cost: f64) -> Result<GpuAlloc, GpuError> {
        let g = self.gpu_manager().expect("GPU backend attached");
        g.request_no_recycle(size, cost)
    }

    /// Release + immediate `cudaFree` (recycling disabled), dropping any
    /// invalidated cache entry.
    pub fn gpu_release_and_free(&self, ptr: GpuPtr) {
        let Some(g) = self.gpu_manager() else { return };
        if let Some(key) = g.release_and_free(ptr) {
            self.remove_keys(&[key]);
        }
    }

    /// The `evict(p)` instruction: frees `fraction` of the GPU free list
    /// and drops the invalidated entries.
    pub fn evict_gpu_fraction(&self, fraction: f64) {
        let Some(g) = self.gpu_manager() else { return };
        let keys = g.evict_fraction(fraction);
        self.remove_keys(&keys);
    }

    /// Removes entries whose GPU pointers were recycled or freed. The
    /// pointers themselves are gone, so GPU-owned entries are dropped
    /// without a release; anything that migrated to another tier in the
    /// meantime is released there.
    fn remove_keys(&self, keys: &[LKey]) {
        if keys.is_empty() {
            return;
        }
        let mut map = self.map.lock();
        for k in keys {
            if let Some(e) = map.entries.remove(k) {
                if e.backend != BackendId::Gpu {
                    if let Some(b) = self.registry.get(e.backend) {
                        b.release(&e);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::LineageItem;
    use memphis_matrix::rand_gen::rand_uniform;
    use memphis_matrix::{BlockedMatrix, Matrix};
    use memphis_sparksim::{SparkConfig, SparkContext};
    use std::sync::Arc as StdArc;

    fn item(name: &str) -> LItem {
        LineageItem::new("op", vec![name.to_string()], vec![LineageItem::leaf("X")])
    }

    fn cache_kb(kb: usize) -> LineageCache {
        let mut cfg = CacheConfig::test();
        cfg.local_budget = kb << 10;
        LineageCache::new(cfg)
    }

    fn mat(m: &Matrix) -> CachedObject {
        CachedObject::Matrix(StdArc::new(m.clone()))
    }

    #[test]
    fn put_probe_roundtrip_local() {
        let c = cache_kb(64);
        let it = item("a");
        assert!(c.probe(&it).is_none());
        let m = rand_uniform(8, 8, 0.0, 1.0, 1);
        c.put(&it, mat(&m), 10.0, m.size_bytes(), 1);
        let hit = c.probe(&it).expect("hit");
        match hit.object {
            CachedObject::Matrix(got) => assert!(got.approx_eq(&m, 0.0)),
            other => panic!("unexpected {other:?}"),
        }
        let s = c.stats();
        assert_eq!(s.probes, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits_local, 1);
    }

    #[test]
    fn probe_hits_share_not_copy() {
        let c = cache_kb(64);
        let it = item("shared");
        let m = StdArc::new(rand_uniform(8, 8, 0.0, 1.0, 1));
        c.put(
            &it,
            CachedObject::Matrix(m.clone()),
            10.0,
            m.size_bytes(),
            1,
        );
        let hit = c.probe(&it).expect("hit");
        match hit.object {
            CachedObject::Matrix(got) => {
                assert!(StdArc::ptr_eq(&got, &m), "hit shares the cached Arc")
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn structurally_equal_items_share_entries() {
        let c = cache_kb(64);
        let a = item("same");
        let b = item("same");
        assert!(!StdArc::ptr_eq(&a, &b));
        c.put(&a, CachedObject::Scalar(5.0), 1.0, 16, 1);
        let hit = c.probe(&b).expect("structural match");
        assert!(
            StdArc::ptr_eq(&hit.canonical, &a),
            "canonical is first trace"
        );
    }

    #[test]
    fn delayed_caching_stores_on_nth_execution() {
        let c = cache_kb(64);
        let it = item("delayed");
        // Execution 1: put defers.
        assert!(!c.put(&it, CachedObject::Scalar(1.0), 1.0, 16, 2));
        assert!(c.probe(&it).is_none(), "placeholder is not reusable");
        // Execution 2: put stores.
        assert!(c.put(&it, CachedObject::Scalar(1.0), 1.0, 16, 2));
        assert!(c.probe(&it).is_some());
        let s = c.stats();
        assert_eq!(s.puts_deferred, 1);
        assert_eq!(s.puts, 1);
    }

    #[test]
    fn delay_three_takes_three_puts() {
        let c = cache_kb(64);
        let it = item("d3");
        assert!(!c.put(&it, CachedObject::Scalar(1.0), 1.0, 16, 3));
        assert!(!c.put(&it, CachedObject::Scalar(1.0), 1.0, 16, 3));
        assert!(c.put(&it, CachedObject::Scalar(1.0), 1.0, 16, 3));
        assert!(c.probe(&it).is_some());
    }

    #[test]
    fn local_eviction_spills_to_disk_and_reloads() {
        // Budget fits one 8 KB matrix, not two.
        let c = cache_kb(12);
        let m1 = rand_uniform(32, 32, 0.0, 1.0, 1); // 8 KB
        let m2 = rand_uniform(32, 32, 0.0, 1.0, 2);
        let i1 = item("m1");
        let i2 = item("m2");
        c.put(&i1, mat(&m1), 1.0, m1.size_bytes(), 1);
        c.probe(&i1).expect("hit"); // proven reusable → spill, not drop
        c.put(&i2, mat(&m2), 100.0, m2.size_bytes(), 1);
        assert_eq!(c.stats().local_spills, 1, "cheaper m1 spilled");
        // m1 still reusable from disk.
        let hit = c.probe(&i1).expect("disk hit");
        match hit.object {
            CachedObject::Matrix(got) => assert!(got.approx_eq(&m1, 0.0)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.stats().hits_disk, 1);
        // Unproven entries drop instead of spilling.
        let m3 = rand_uniform(32, 32, 0.0, 1.0, 3);
        c.put(&item("m3"), mat(&m3), 1.0, m3.size_bytes(), 1);
        let m4 = rand_uniform(32, 32, 0.0, 1.0, 4);
        c.put(&item("m4"), mat(&m4), 200.0, m3.size_bytes(), 1);
        assert!(c.stats().local_drops >= 1, "never-hit victim dropped");
    }

    #[test]
    fn disk_tier_accounts_spilled_bytes() {
        let c = cache_kb(12);
        let m1 = rand_uniform(32, 32, 0.0, 1.0, 1); // 8 KB
        let m2 = rand_uniform(32, 32, 0.0, 1.0, 2);
        let i1 = item("m1");
        c.put(&i1, mat(&m1), 1.0, m1.size_bytes(), 1);
        c.probe(&i1).expect("hit");
        c.put(&item("m2"), mat(&m2), 100.0, m2.size_bytes(), 1);
        let disk_used = c.registry().get(BackendId::Disk).unwrap().used();
        assert_eq!(disk_used, m1.size_bytes(), "spill accounted to disk tier");
        // Promote-on-hit moves the bytes back to the local tier.
        c.probe(&i1).expect("disk hit");
        assert_eq!(c.registry().get(BackendId::Disk).unwrap().used(), 0);
    }

    #[test]
    fn oversized_object_not_cached() {
        let c = cache_kb(1);
        let m = rand_uniform(64, 64, 0.0, 1.0, 3); // 32 KB > 1 KB budget
        let it = item("big");
        c.put(&it, mat(&m), 1.0, m.size_bytes(), 1);
        assert!(c.probe(&it).is_none());
        assert_eq!(c.local_used(), 0);
    }

    #[test]
    fn scalar_entries_are_cheap() {
        let c = cache_kb(1);
        for i in 0..100 {
            c.put(
                &item(&format!("s{i}")),
                CachedObject::Scalar(i as f64),
                1.0,
                16,
                1,
            );
        }
        assert_eq!(c.len(), 100);
    }

    fn spark_cache() -> (LineageCache, SparkContext) {
        let sc = SparkContext::new(SparkConfig::local_test());
        let c = cache_kb(1024).with_spark_sync(sc.clone());
        (c, sc)
    }

    #[test]
    fn rdd_reuse_returns_handle_and_counts_misses() {
        let (c, sc) = spark_cache();
        let m = rand_uniform(16, 4, 0.0, 1.0, 4);
        let b = BlockedMatrix::from_dense(&m, 4).unwrap();
        let src = sc.parallelize_blocked(&b, "X");
        let mapped = sc.map(&src, "id", StdArc::new(|k, m| (*k, m.deep_clone())));
        let it = item("rdd");
        c.put(
            &it,
            CachedObject::Rdd {
                rdd: mapped.clone(),
                rows: 16,
                cols: 4,
            },
            50.0,
            m.size_bytes(),
            1,
        );
        assert!(mapped.persist_level().is_some(), "admission persists");
        // Unmaterialized reuse works (compute sharing).
        for _ in 0..2 {
            let hit = c.probe(&it).expect("rdd hit");
            assert!(matches!(hit.object, CachedObject::Rdd { .. }));
        }
        // Third unmaterialized reuse triggers the count() materialization.
        let hit = c.probe(&it).expect("rdd hit");
        assert!(matches!(hit.object, CachedObject::Rdd { .. }));
        let s = c.stats();
        assert_eq!(s.rdd_materialize_jobs, 1);
        assert!(sc.is_fully_cached(&mapped), "sync materialization ran");
        // Next probe sees it materialized.
        c.probe(&it).expect("hit");
    }

    #[test]
    fn rdd_budget_evicts_worst_entry() {
        let sc = SparkContext::new(SparkConfig::local_test());
        let mut cfg = CacheConfig::test();
        cfg.local_budget = 1 << 20;
        let c = LineageCache::new(cfg).with_spark_sync(sc.clone());
        let budget = c.spark_backend().unwrap().reuse_budget;
        let m = rand_uniform(16, 4, 0.0, 1.0, 5);
        let b = BlockedMatrix::from_dense(&m, 4).unwrap();

        let mk = |name: &str| {
            let src = sc.parallelize_blocked(&b, name);
            sc.map(&src, "id", StdArc::new(|k, m| (*k, m.deep_clone())))
        };
        let r1 = mk("r1");
        let r2 = mk("r2");
        // r1 cheap, fills the whole budget; r2 expensive, forces eviction.
        c.put(
            &item("r1"),
            CachedObject::Rdd {
                rdd: r1.clone(),
                rows: 16,
                cols: 4,
            },
            1.0,
            budget,
            1,
        );
        assert_eq!(c.rdd_est_bytes(), budget);
        c.put(
            &item("r2"),
            CachedObject::Rdd {
                rdd: r2.clone(),
                rows: 16,
                cols: 4,
            },
            100.0,
            budget / 2,
            1,
        );
        let s = c.stats();
        assert_eq!(s.rdd_unpersists, 1);
        assert!(c.probe(&item("r1")).is_none(), "r1 evicted");
        assert!(c.probe(&item("r2")).is_some());
        assert!(r1.persist_level().is_none(), "unpersisted");
    }

    #[test]
    fn materialized_rdd_hit_runs_lazy_gc() {
        let (c, sc) = spark_cache();
        let m = rand_uniform(16, 4, 0.0, 1.0, 6);
        let b = BlockedMatrix::from_dense(&m, 4).unwrap();
        let src = sc.parallelize_blocked(&b, "X");
        let bc = sc.broadcast(Matrix::scalar(2.0));
        let mapped = sc.map_with_broadcast(
            &src,
            "scale",
            &bc,
            StdArc::new(|k, m, s| {
                (
                    *k,
                    memphis_matrix::ops::binary::binary_scalar(
                        m,
                        s.at(0, 0),
                        memphis_matrix::ops::binary::BinaryOp::Mul,
                        false,
                    ),
                )
            }),
        );
        let it = item("gc");
        c.put(
            &it,
            CachedObject::Rdd {
                rdd: mapped.clone(),
                rows: 16,
                cols: 4,
            },
            10.0,
            m.size_bytes(),
            1,
        );
        sc.count(&mapped); // materialize
        assert!(!bc.is_destroyed());
        c.probe(&it).expect("materialized hit");
        assert!(bc.is_destroyed(), "lazy GC destroyed the broadcast");
        assert!(c.stats().gc_broadcasts_destroyed >= 1);
    }

    #[test]
    fn gpu_put_probe_acquires_pointer() {
        let device = StdArc::new(GpuDevice::new(memphis_gpusim::GpuConfig::zero_cost(
            1 << 20,
        )));
        let c = cache_kb(64).with_gpu(device);
        let g = c.gpu_manager().unwrap().clone();
        let alloc = c.gpu_request(1024, 2, 5.0).unwrap();
        let it = item("gpu");
        c.put(
            &it,
            CachedObject::Gpu {
                ptr: alloc.ptr,
                rows: 1,
                cols: 128,
            },
            5.0,
            1024,
            1,
        );
        // Variable releases its reference; pointer goes to the free list
        // but stays reusable.
        c.gpu_release(alloc.ptr, 2, 5.0);
        assert_eq!(g.free_pointers(), 1);
        let hit = c.probe(&it).expect("gpu hit");
        assert!(matches!(hit.object, CachedObject::Gpu { ptr: p, .. } if p == alloc.ptr));
        assert_eq!(g.live_pointers(), 1, "probe re-acquired the pointer");
        assert_eq!(c.stats().hits_gpu, 1);
    }

    #[test]
    fn gpu_recycle_invalidates_entry() {
        let device = StdArc::new(GpuDevice::new(memphis_gpusim::GpuConfig::zero_cost(
            1 << 20,
        )));
        let c = cache_kb(64).with_gpu(device);
        let alloc = c.gpu_request(512, 2, 1.0).unwrap();
        let it = item("victim");
        c.put(
            &it,
            CachedObject::Gpu {
                ptr: alloc.ptr,
                rows: 1,
                cols: 128,
            },
            1.0,
            512,
            1,
        );
        c.gpu_release(alloc.ptr, 2, 1.0);
        // Same-size request recycles the pointer, killing the entry.
        let again = c.gpu_request(512, 2, 1.0).unwrap();
        assert!(again.recycled);
        assert!(c.probe(&it).is_none(), "entry invalidated by recycling");
    }

    #[test]
    fn gpu_oom_evicts_cached_pointer_to_host() {
        let device = StdArc::new(GpuDevice::new(memphis_gpusim::GpuConfig::zero_cost(2048)));
        let c = cache_kb(64).with_gpu(device.clone());
        // Fill the device with one cached 1536-byte result.
        let m = rand_uniform(8, 24, 0.0, 1.0, 7); // 1536 bytes
        let a = c.gpu_request(1536, 2, 9.0).unwrap();
        device.copy_to_device(&m, a.ptr).unwrap();
        let it = item("precious");
        c.put(
            &it,
            CachedObject::Gpu {
                ptr: a.ptr,
                rows: 1,
                cols: 64,
            },
            9.0,
            1536,
            1,
        );
        c.gpu_release(a.ptr, 2, 9.0);
        // A different-size request that cannot fit alongside it.
        let b = c.gpu_request(1024, 2, 1.0).unwrap();
        assert!(!b.recycled);
        // The cached result moved to the host and is still reusable.
        let hit = c.probe(&it).expect("still reusable");
        match hit.object {
            CachedObject::Matrix(got) => assert!(got.approx_eq(&m, 0.0)),
            other => panic!("expected host matrix, got {other:?}"),
        }
        assert_eq!(c.stats().gpu_evicted_to_host, 1);
        assert_eq!(c.local_used(), m.size_bytes(), "re-admitted locally");
    }

    #[test]
    fn evict_instruction_drops_fraction() {
        let device = StdArc::new(GpuDevice::new(memphis_gpusim::GpuConfig::zero_cost(
            1 << 20,
        )));
        let c = cache_kb(64).with_gpu(device);
        let g = c.gpu_manager().unwrap().clone();
        // Allocate all four up front so sequential requests cannot recycle
        // each other's pointers.
        let allocs: Vec<_> = (0..4)
            .map(|i| c.gpu_request(256, 2, i as f64).unwrap())
            .collect();
        for (i, a) in allocs.iter().enumerate() {
            c.put(
                &item(&format!("e{i}")),
                CachedObject::Gpu {
                    ptr: a.ptr,
                    rows: 1,
                    cols: 64,
                },
                i as f64,
                256,
                1,
            );
            c.gpu_release(a.ptr, 2, i as f64);
        }
        assert_eq!(g.free_pointers(), 4);
        c.evict_gpu_fraction(1.0);
        assert_eq!(g.free_pointers(), 0);
        for i in 0..4 {
            assert!(c.probe(&item(&format!("e{i}"))).is_none());
        }
    }

    #[test]
    fn clear_resets_everything() {
        let (c, sc) = spark_cache();
        let m = rand_uniform(16, 4, 0.0, 1.0, 8);
        let b = BlockedMatrix::from_dense(&m, 4).unwrap();
        let src = sc.parallelize_blocked(&b, "X");
        let mapped = sc.map(&src, "id", StdArc::new(|k, m| (*k, m.deep_clone())));
        c.put(
            &item("r"),
            CachedObject::Rdd {
                rdd: mapped.clone(),
                rows: 16,
                cols: 4,
            },
            1.0,
            1024,
            1,
        );
        c.put(&item("m"), mat(&m), 1.0, m.size_bytes(), 1);
        assert_eq!(c.len(), 2);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.local_used(), 0);
        assert_eq!(c.rdd_est_bytes(), 0);
        assert!(mapped.persist_level().is_none());
    }

    #[test]
    fn function_hits_counted_separately() {
        let c = cache_kb(64);
        let f = LineageItem::new("func:l2svm", vec![], vec![LineageItem::leaf("X")]);
        c.put(&f, CachedObject::Scalar(0.95), 100.0, 16, 1);
        c.probe(&f).expect("hit");
        assert_eq!(c.stats().hits_func, 1);
    }

    #[test]
    fn backend_snapshots_cover_registered_tiers() {
        let (c, _sc) = spark_cache();
        let m = rand_uniform(8, 8, 0.0, 1.0, 9);
        c.put(&item("m"), mat(&m), 1.0, m.size_bytes(), 1);
        let snaps = c.backend_snapshots();
        let ids: Vec<_> = snaps.iter().map(|s| s.id).collect();
        assert!(ids.contains(&BackendId::Local));
        assert!(ids.contains(&BackendId::Disk));
        assert!(ids.contains(&BackendId::Spark));
        let local = snaps.iter().find(|s| s.id == BackendId::Local).unwrap();
        assert_eq!(local.entries, 1);
        assert_eq!(local.used, m.size_bytes());
        assert!(!c.backend_report().is_empty());
    }
}
