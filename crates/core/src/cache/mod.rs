//! The hierarchical, multi-backend lineage cache (paper §3.3, §4).
//!
//! Probing is unified: one hash map from lineage keys to entries,
//! regardless of where the cached object lives. Admission, eviction, and
//! memory management are backend-local:
//!
//! - **Driver (local)**: matrices and scalars against a byte budget, with
//!   eq. (1) cost&size eviction to disk-backed binaries.
//! - **Spark**: RDD handles reused even while unmaterialized; delayed
//!   `persist()`; eq. (1) eviction via `unpersist`; lazy garbage
//!   collection of dangling child RDD/broadcast references; asynchronous
//!   `count()` materialization after `k` unmaterialized reuses.
//! - **GPU**: pointers managed by the unified [`gpu::GpuMemoryManager`]
//!   (Live/Free lists, recycling, eq. (2) scoring, eviction injection,
//!   device-to-host eviction).

pub mod config;
pub mod entry;
pub mod gpu;
pub mod spark;

use crate::lineage::{LItem, LKey};
use crate::stats::{ReuseStats, ReuseStatsSnapshot};
use config::CacheConfig;
use entry::{CacheEntry, CachedObject, EntryStatus};
use gpu::{GpuAlloc, GpuMemoryManager};
use memphis_gpusim::{GpuDevice, GpuError, GpuPtr};
use memphis_matrix::io as mio;
use memphis_sparksim::StorageLevel;
use parking_lot::Mutex;
use spark::SparkBackend;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct State {
    entries: HashMap<LKey, CacheEntry>,
    clock: u64,
    /// Bytes of local (driver) matrices currently cached.
    local_used: usize,
    /// Estimated worst-case bytes of reuse-persisted RDDs.
    rdd_est_bytes: usize,
}

/// A successful probe: the reusable object plus the canonical lineage item
/// for LineageMap compaction.
#[derive(Debug, Clone)]
pub struct ProbeHit {
    /// The cached object (cloned handle).
    pub object: CachedObject,
    /// The canonical key stored in the cache (share this in the
    /// LineageMap to increase sub-DAG sharing).
    pub canonical: LItem,
}

static NEXT_CACHE_ID: AtomicU64 = AtomicU64::new(0);

/// The hierarchical lineage cache.
pub struct LineageCache {
    state: Mutex<State>,
    config: CacheConfig,
    stats: Arc<ReuseStats>,
    spark: Option<SparkBackend>,
    gpu: Option<Arc<GpuMemoryManager>>,
    spill_counter: AtomicU64,
}

impl LineageCache {
    /// Creates a cache with only the local (driver) backend attached.
    ///
    /// Disk-evicted binaries go to a cache-unique subdirectory of the
    /// configured spill dir, removed when the cache is dropped.
    pub fn new(mut config: CacheConfig) -> Self {
        config.spill_dir = config.spill_dir.join(format!(
            "c{}_{}",
            std::process::id(),
            NEXT_CACHE_ID.fetch_add(1, Ordering::Relaxed)
        ));
        Self {
            state: Mutex::new(State {
                entries: HashMap::new(),
                clock: 0,
                local_used: 0,
                rdd_est_bytes: 0,
            }),
            config,
            stats: Arc::new(ReuseStats::default()),
            spark: None,
            gpu: None,
            spill_counter: AtomicU64::new(0),
        }
    }

    /// Attaches the simulated Spark cluster.
    pub fn with_spark(mut self, sc: memphis_sparksim::SparkContext) -> Self {
        self.spark = Some(SparkBackend::new(sc, self.config.spark_reuse_fraction));
        self
    }

    /// Attaches a Spark backend in deterministic (inline materialization)
    /// mode for tests.
    pub fn with_spark_sync(mut self, sc: memphis_sparksim::SparkContext) -> Self {
        let mut b = SparkBackend::new(sc, self.config.spark_reuse_fraction);
        b.sync_materialize = true;
        self.spark = Some(b);
        self
    }

    /// Attaches a simulated GPU device.
    pub fn with_gpu(mut self, device: Arc<GpuDevice>) -> Self {
        self.gpu = Some(Arc::new(GpuMemoryManager::new(device, self.stats.clone())));
        self
    }

    /// Cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Reuse counters.
    pub fn stats(&self) -> ReuseStatsSnapshot {
        self.stats.snapshot()
    }

    /// Shared handle to the stats (for backend managers and experiments).
    pub fn stats_handle(&self) -> &Arc<ReuseStats> {
        &self.stats
    }

    /// The GPU memory manager, if a device is attached.
    pub fn gpu_manager(&self) -> Option<&Arc<GpuMemoryManager>> {
        self.gpu.as_ref()
    }

    /// The Spark backend, if attached.
    pub fn spark_backend(&self) -> Option<&SparkBackend> {
        self.spark.as_ref()
    }

    /// Number of entries (placeholders included).
    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of local matrices currently cached on the driver.
    pub fn local_used(&self) -> usize {
        self.state.lock().local_used
    }

    /// Estimated bytes of reuse-persisted RDDs.
    pub fn rdd_est_bytes(&self) -> usize {
        self.state.lock().rdd_est_bytes
    }

    /// Drops every entry and resets accounting (used between experiment
    /// configurations). GPU pointers are unmarked, RDDs unpersisted.
    pub fn clear(&self) {
        let mut state = self.state.lock();
        let entries = std::mem::take(&mut state.entries);
        state.local_used = 0;
        state.rdd_est_bytes = 0;
        drop(state);
        for (_, e) in entries {
            match e.object {
                Some(CachedObject::Rdd { rdd, .. }) => {
                    if let Some(sp) = &self.spark {
                        sp.sc.unpersist(&rdd);
                        sp.sc.cleanup_shuffle(&rdd);
                    }
                }
                Some(CachedObject::Gpu { ptr, .. }) => {
                    if let Some(g) = &self.gpu {
                        g.unmark_cached(ptr);
                    }
                }
                Some(CachedObject::Disk(path)) => {
                    std::fs::remove_file(path).ok();
                }
                _ => {}
            }
        }
    }

    // ------------------------------------------------------------------
    // REUSE
    // ------------------------------------------------------------------

    /// REUSE: probes the cache for the output identified by `item`.
    /// Returns the cached object (with backend-specific acquisition) or
    /// `None`, in which case the caller must execute the instruction and
    /// `PUT` its result.
    pub fn probe(&self, item: &LItem) -> Option<ProbeHit> {
        ReuseStats::inc(&self.stats.probes);
        let key = LKey(item.clone());
        let mut state = self.state.lock();
        state.clock += 1;
        let clock = state.clock;

        let Some(e) = state.entries.get_mut(&key) else {
            ReuseStats::inc(&self.stats.misses);
            return None;
        };
        e.last_access = clock;
        if e.object.is_none() {
            // TO-BE-CACHED placeholder: not reusable yet.
            ReuseStats::inc(&self.stats.misses);
            return None;
        }
        let canonical = e.key.clone();
        let is_function = e.is_function;
        let object = e.object.clone().expect("checked above");

        let hit = match object {
            CachedObject::Matrix(_) | CachedObject::Scalar(_) => {
                e.hits += 1;
                ReuseStats::inc(&self.stats.hits_local);
                Some(object)
            }
            CachedObject::Disk(ref path) => {
                // Disk-evicted binary: read back; optionally promote.
                match mio::read_file(path) {
                    Ok(m) => {
                        e.hits += 1;
                        ReuseStats::inc(&self.stats.hits_disk);
                        if self.config.promote_on_disk_hit {
                            let size = m.size_bytes();
                            let path = path.clone();
                            e.object = Some(CachedObject::Matrix(m.clone()));
                            e.size = size;
                            Self::local_make_space_locked(
                                &mut state,
                                &self.config,
                                &self.stats,
                                &self.spill_counter,
                                size,
                                Some(&key),
                            );
                            state.local_used += size;
                            std::fs::remove_file(path).ok();
                        }
                        Some(CachedObject::Matrix(m))
                    }
                    Err(_) => {
                        // Spill file lost: drop the entry.
                        state.entries.remove(&key);
                        ReuseStats::inc(&self.stats.misses);
                        return None;
                    }
                }
            }
            CachedObject::Rdd { ref rdd, rows, cols } => {
                let rdd = rdd.clone();
                let (rows, cols) = (rows, cols);
                let materialized = self
                    .spark
                    .as_ref()
                    .map(|sp| sp.sc.is_fully_cached(&rdd))
                    .unwrap_or(false);
                if materialized {
                    e.hits += 1;
                    let gc_pending = !e.gc_done;
                    e.gc_done = true;
                    ReuseStats::inc(&self.stats.hits_rdd);
                    if gc_pending {
                        self.run_lazy_gc(&mut state, &rdd);
                    }
                } else {
                    // Reuse of an unmaterialized RDD: compute sharing still
                    // applies, but count the miss toward async
                    // materialization.
                    e.misses += 1;
                    let trigger = !e.materialize_triggered
                        && e.misses >= self.config.materialize_after_misses;
                    if trigger {
                        e.materialize_triggered = true;
                    }
                    ReuseStats::inc(&self.stats.hits_rdd);
                    if trigger {
                        if let Some(sp) = &self.spark {
                            sp.trigger_materialize(&rdd, &self.stats);
                        }
                    }
                }
                Some(CachedObject::Rdd { rdd, rows, cols })
            }
            CachedObject::Gpu { ptr, rows, cols } => {
                let acquired = self
                    .gpu
                    .as_ref()
                    .map(|g| g.acquire(ptr))
                    .unwrap_or(false);
                if acquired {
                    e.hits += 1;
                    ReuseStats::inc(&self.stats.hits_gpu);
                    Some(CachedObject::Gpu { ptr, rows, cols })
                } else {
                    // Pointer no longer managed — stale entry.
                    state.entries.remove(&key);
                    None
                }
            }
        };

        match hit {
            Some(object) => {
                ReuseStats::inc(&self.stats.hits);
                if is_function {
                    ReuseStats::inc(&self.stats.hits_func);
                }
                Some(ProbeHit { object, canonical })
            }
            None => {
                ReuseStats::inc(&self.stats.misses);
                None
            }
        }
    }

    /// Updates the `r_j` job counter of an entry (a job consumed it).
    pub fn note_job(&self, item: &LItem) {
        let key = LKey(item.clone());
        if let Some(e) = self.state.lock().entries.get_mut(&key) {
            e.jobs += 1;
        }
    }

    // ------------------------------------------------------------------
    // PUT
    // ------------------------------------------------------------------

    /// PUT: offers the result of an executed instruction to the cache.
    ///
    /// `cost` is the analytical compute cost, `size_hint` the estimated
    /// worst-case size (used for RDDs before materialization), and `delay`
    /// the delayed-caching factor n (1 = cache immediately). Returns true
    /// if the object was stored (vs. deferred).
    pub fn put(
        &self,
        item: &LItem,
        object: CachedObject,
        cost: f64,
        size_hint: usize,
        delay: u32,
    ) -> bool {
        let key = LKey(item.clone());
        let mut state = self.state.lock();
        state.clock += 1;
        let clock = state.clock;

        match state.entries.get_mut(&key) {
            Some(e) if e.object.is_some() => {
                // Already cached (e.g. racing prefetch thread).
                e.last_access = clock;
                false
            }
            Some(e) => {
                // Placeholder: advance, store when the delay is reached.
                let (seen, needed) = match e.status {
                    EntryStatus::ToBeCached { seen, needed } => (seen + 1, needed),
                    EntryStatus::Cached => unreachable!("cached entries have objects"),
                };
                if seen >= needed {
                    e.status = EntryStatus::Cached;
                    e.last_access = clock;
                    e.compute_cost = cost;
                    let canonical = e.key.clone();
                    // Carry the placeholder's reuse statistics into the
                    // admitted entry so eq. (1) scoring does not restart
                    // from zero for proven repeaters.
                    let (hits, misses, jobs) = (e.hits, e.misses, e.jobs);
                    self.admit(&mut state, key.clone(), canonical, object, cost, size_hint);
                    if let Some(stored) = state.entries.get_mut(&key) {
                        stored.hits = hits;
                        stored.misses = misses;
                        stored.jobs = jobs;
                    }
                    ReuseStats::inc(&self.stats.puts);
                    true
                } else {
                    e.status = EntryStatus::ToBeCached { seen, needed };
                    e.last_access = clock;
                    ReuseStats::inc(&self.stats.puts_deferred);
                    false
                }
            }
            None => {
                if delay <= 1 {
                    self.admit(&mut state, key, item.clone(), object, cost, size_hint);
                    ReuseStats::inc(&self.stats.puts);
                    true
                } else {
                    let mut ph = CacheEntry::placeholder(item.clone(), cost, size_hint, delay);
                    ph.last_access = clock;
                    state.entries.insert(key, ph);
                    ReuseStats::inc(&self.stats.puts_deferred);
                    false
                }
            }
        }
    }

    /// PUT with the configured default delay factor.
    pub fn put_default(&self, item: &LItem, object: CachedObject, cost: f64, size_hint: usize) {
        self.put(item, object, cost, size_hint, self.config.default_delay);
    }

    /// Stores an object, applying backend-specific admission.
    fn admit(
        &self,
        state: &mut State,
        key: LKey,
        canonical: LItem,
        object: CachedObject,
        cost: f64,
        size_hint: usize,
    ) {
        let clock = state.clock;
        let (object, size) = match object {
            CachedObject::Matrix(m) => {
                let size = m.size_bytes();
                if size > self.config.local_budget {
                    return; // larger than the whole budget: skip caching
                }
                Self::local_make_space_locked(
                    state,
                    &self.config,
                    &self.stats,
                    &self.spill_counter,
                    size,
                    None,
                );
                state.local_used += size;
                (CachedObject::Matrix(m), size)
            }
            CachedObject::Scalar(v) => (CachedObject::Scalar(v), 16),
            CachedObject::Rdd { rdd, rows, cols } => {
                if let Some(sp) = &self.spark {
                    // Eq. (1) budget eviction before persisting a new RDD.
                    while state.rdd_est_bytes + size_hint > sp.reuse_budget {
                        if !self.evict_worst_rdd(state) {
                            break;
                        }
                    }
                    rdd.persist(StorageLevel::MemoryAndDisk);
                    state.rdd_est_bytes += size_hint;
                }
                (CachedObject::Rdd { rdd, rows, cols }, size_hint)
            }
            CachedObject::Gpu { ptr, rows, cols } => {
                if let Some(g) = &self.gpu {
                    g.mark_cached(ptr, key.clone());
                }
                (CachedObject::Gpu { ptr, rows, cols }, ptr.size)
            }
            CachedObject::Disk(p) => (CachedObject::Disk(p), size_hint),
        };
        let mut e = CacheEntry::cached(canonical, object, cost, size);
        e.last_access = clock;
        state.entries.insert(key, e);
    }

    /// Candidates examined per eviction: like Spark's sampling-based
    /// entry selection, scanning a bounded sample keeps eviction O(1)
    /// amortized instead of O(entries) per insertion.
    const EVICTION_SAMPLE: usize = 64;

    /// Evicts the lowest-score stored RDD entry (eq. 1). Returns false if
    /// none exist.
    fn evict_worst_rdd(&self, state: &mut State) -> bool {
        let victim = state
            .entries
            .iter()
            .filter(|(_, e)| matches!(e.object, Some(CachedObject::Rdd { .. })))
            .take(Self::EVICTION_SAMPLE)
            .min_by(|(_, a), (_, b)| {
                a.cost_size_score()
                    .partial_cmp(&b.cost_size_score())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(k, _)| k.clone());
        let Some(k) = victim else { return false };
        let e = state.entries.remove(&k).expect("victim exists");
        state.rdd_est_bytes = state.rdd_est_bytes.saturating_sub(e.size);
        if let (Some(sp), Some(CachedObject::Rdd { rdd, .. })) = (&self.spark, &e.object) {
            sp.sc.unpersist(rdd);
            sp.sc.cleanup_shuffle(rdd);
        }
        ReuseStats::inc(&self.stats.rdd_unpersists);
        true
    }

    /// Evicts lowest-score local matrices to disk until `size` extra bytes
    /// fit the local budget. `skip` protects the entry being promoted.
    fn local_make_space_locked(
        state: &mut State,
        config: &CacheConfig,
        stats: &Arc<ReuseStats>,
        spill_counter: &AtomicU64,
        size: usize,
        skip: Option<&LKey>,
    ) {
        while state.local_used + size > config.local_budget {
            let victim = state
                .entries
                .iter()
                .filter(|(k, e)| {
                    matches!(e.object, Some(CachedObject::Matrix(_)))
                        && skip.map(|s| *k != s).unwrap_or(true)
                })
                .take(Self::EVICTION_SAMPLE)
                .min_by(|(_, a), (_, b)| {
                    a.cost_size_score()
                        .partial_cmp(&b.cost_size_score())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(k, _)| k.clone());
            let Some(k) = victim else { break };
            let e = state.entries.get_mut(&k).expect("victim exists");
            let Some(CachedObject::Matrix(m)) = e.object.clone() else {
                unreachable!("filtered to matrices")
            };
            let msize = m.size_bytes();
            // Spill only entries with proven reuse (at least one hit) to
            // disk; unproven entries are dropped — avoiding disk-write
            // storms when a stream of never-reused intermediates thrashes
            // the budget (the robustness concern of §6.2).
            let worth_spilling = config.spill_to_disk && e.hits > 0;
            if worth_spilling {
                std::fs::create_dir_all(&config.spill_dir).ok();
                let path = config.spill_dir.join(format!(
                    "lcache_{}_{}.bin",
                    e.key.hash,
                    spill_counter.fetch_add(1, Ordering::Relaxed)
                ));
                if mio::write_file(&m, &path).is_ok() {
                    e.object = Some(CachedObject::Disk(path));
                    ReuseStats::inc(&stats.local_spills);
                } else {
                    state.entries.remove(&k);
                    ReuseStats::inc(&stats.local_drops);
                }
            } else {
                state.entries.remove(&k);
                ReuseStats::inc(&stats.local_drops);
            }
            state.local_used = state.local_used.saturating_sub(msize);
        }
    }

    // ------------------------------------------------------------------
    // GPU integration
    // ------------------------------------------------------------------

    /// Serves a GPU output allocation through the unified memory manager,
    /// dropping any cache entries invalidated by recycling and falling
    /// back to device-to-host eviction of cached pointers on OOM.
    ///
    /// # Panics
    /// Panics if no GPU is attached.
    pub fn gpu_request(&self, size: usize, height: u32, cost: f64) -> Result<GpuAlloc, GpuError> {
        let g = self.gpu.as_ref().expect("GPU backend attached").clone();
        loop {
            match g.request_with(size, height, cost, true) {
                Ok(alloc) => {
                    self.remove_keys(&alloc.invalidated);
                    return Ok(alloc);
                }
                Err(GpuError::OutOfMemory { .. }) => {
                    // Device-to-host eviction: move the least valuable
                    // cached free pointer to driver memory, free it, retry.
                    match g.pop_cached_for_host_eviction() {
                        Some((ptr, key)) => {
                            let host = g.device().copy_to_host(ptr).ok();
                            g.device().free(ptr).ok();
                            ReuseStats::inc(&self.stats.gpu_evicted_to_host);
                            let mut state = self.state.lock();
                            if let Some(e) = state.entries.get_mut(&key) {
                                match host {
                                    Some(m) => {
                                        let msize = m.size_bytes();
                                        if msize <= self.config.local_budget {
                                            e.object = Some(CachedObject::Matrix(m));
                                            e.size = msize;
                                            Self::local_make_space_locked(
                                                &mut state,
                                                &self.config,
                                                &self.stats,
                                                &self.spill_counter,
                                                msize,
                                                Some(&key),
                                            );
                                            state.local_used += msize;
                                        } else {
                                            state.entries.remove(&key);
                                        }
                                    }
                                    None => {
                                        state.entries.remove(&key);
                                    }
                                }
                            }
                        }
                        None => {
                            // Nothing left to evict: final OOM.
                            return g.request_with(size, height, cost, false);
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Releases a live GPU pointer reference (variable went out of scope).
    pub fn gpu_release(&self, ptr: GpuPtr, height: u32, cost: f64) {
        if let Some(g) = &self.gpu {
            g.release(ptr, height, cost);
        }
    }

    /// Allocation without recycling (naive per-output `cudaMalloc`).
    ///
    /// # Panics
    /// Panics if no GPU is attached.
    pub fn gpu_request_no_recycle(&self, size: usize, cost: f64) -> Result<GpuAlloc, GpuError> {
        let g = self.gpu.as_ref().expect("GPU backend attached");
        g.request_no_recycle(size, cost)
    }

    /// Release + immediate `cudaFree` (recycling disabled), dropping any
    /// invalidated cache entry.
    pub fn gpu_release_and_free(&self, ptr: GpuPtr) {
        if let Some(g) = &self.gpu {
            if let Some(key) = g.release_and_free(ptr) {
                self.remove_keys(&[key]);
            }
        }
    }

    /// The `evict(p)` instruction: frees `fraction` of the GPU free list
    /// and drops the invalidated entries.
    pub fn evict_gpu_fraction(&self, fraction: f64) {
        if let Some(g) = &self.gpu {
            let keys = g.evict_fraction(fraction);
            self.remove_keys(&keys);
        }
    }

    fn remove_keys(&self, keys: &[LKey]) {
        if keys.is_empty() {
            return;
        }
        let mut state = self.state.lock();
        for k in keys {
            if let Some(e) = state.entries.remove(k) {
                if let Some(CachedObject::Matrix(m)) = &e.object {
                    state.local_used = state.local_used.saturating_sub(m.size_bytes());
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Spark lazy GC
    // ------------------------------------------------------------------

    /// Runs lazy garbage collection from a freshly materialized cached RDD
    /// (must be called with the state lock held).
    fn run_lazy_gc(&self, state: &mut State, root: &memphis_sparksim::RddRef) {
        let Some(sp) = &self.spark else { return };
        // Protected sets: RDDs referenced by any entry; broadcasts
        // reachable from unmaterialized RDD entries.
        let mut cached_rdds: HashSet<u64> = HashSet::new();
        let mut protected_bc: HashSet<u64> = HashSet::new();
        for e in state.entries.values() {
            if let Some(CachedObject::Rdd { rdd: r, .. }) = &e.object {
                cached_rdds.insert(r.id().0);
                if !sp.sc.is_fully_cached(r) {
                    protected_bc.extend(SparkBackend::reachable_broadcasts(r));
                }
            }
        }
        sp.lazy_gc(root, &cached_rdds, &protected_bc, &self.stats);
    }
}

impl Drop for LineageCache {
    fn drop(&mut self) {
        // The spill directory is cache-unique (see `new`): safe to remove.
        std::fs::remove_dir_all(&self.config.spill_dir).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::LineageItem;
    use memphis_matrix::rand_gen::rand_uniform;
    use memphis_matrix::{BlockedMatrix, Matrix};
    use memphis_sparksim::{SparkConfig, SparkContext};
    use std::sync::Arc as StdArc;

    fn item(name: &str) -> LItem {
        LineageItem::new("op", vec![name.to_string()], vec![LineageItem::leaf("X")])
    }

    fn cache_kb(kb: usize) -> LineageCache {
        let mut cfg = CacheConfig::test();
        cfg.local_budget = kb << 10;
        LineageCache::new(cfg)
    }

    #[test]
    fn put_probe_roundtrip_local() {
        let c = cache_kb(64);
        let it = item("a");
        assert!(c.probe(&it).is_none());
        let m = rand_uniform(8, 8, 0.0, 1.0, 1);
        c.put(&it, CachedObject::Matrix(m.clone()), 10.0, m.size_bytes(), 1);
        let hit = c.probe(&it).expect("hit");
        match hit.object {
            CachedObject::Matrix(got) => assert!(got.approx_eq(&m, 0.0)),
            other => panic!("unexpected {other:?}"),
        }
        let s = c.stats();
        assert_eq!(s.probes, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits_local, 1);
    }

    #[test]
    fn structurally_equal_items_share_entries() {
        let c = cache_kb(64);
        let a = item("same");
        let b = item("same");
        assert!(!StdArc::ptr_eq(&a, &b));
        c.put(&a, CachedObject::Scalar(5.0), 1.0, 16, 1);
        let hit = c.probe(&b).expect("structural match");
        assert!(StdArc::ptr_eq(&hit.canonical, &a), "canonical is first trace");
    }

    #[test]
    fn delayed_caching_stores_on_nth_execution() {
        let c = cache_kb(64);
        let it = item("delayed");
        // Execution 1: put defers.
        assert!(!c.put(&it, CachedObject::Scalar(1.0), 1.0, 16, 2));
        assert!(c.probe(&it).is_none(), "placeholder is not reusable");
        // Execution 2: put stores.
        assert!(c.put(&it, CachedObject::Scalar(1.0), 1.0, 16, 2));
        assert!(c.probe(&it).is_some());
        let s = c.stats();
        assert_eq!(s.puts_deferred, 1);
        assert_eq!(s.puts, 1);
    }

    #[test]
    fn delay_three_takes_three_puts() {
        let c = cache_kb(64);
        let it = item("d3");
        assert!(!c.put(&it, CachedObject::Scalar(1.0), 1.0, 16, 3));
        assert!(!c.put(&it, CachedObject::Scalar(1.0), 1.0, 16, 3));
        assert!(c.put(&it, CachedObject::Scalar(1.0), 1.0, 16, 3));
        assert!(c.probe(&it).is_some());
    }

    #[test]
    fn local_eviction_spills_to_disk_and_reloads() {
        // Budget fits one 8 KB matrix, not two.
        let c = cache_kb(12);
        let m1 = rand_uniform(32, 32, 0.0, 1.0, 1); // 8 KB
        let m2 = rand_uniform(32, 32, 0.0, 1.0, 2);
        let i1 = item("m1");
        let i2 = item("m2");
        c.put(&i1, CachedObject::Matrix(m1.clone()), 1.0, m1.size_bytes(), 1);
        c.probe(&i1).expect("hit"); // proven reusable → spill, not drop
        c.put(&i2, CachedObject::Matrix(m2.clone()), 100.0, m2.size_bytes(), 1);
        assert_eq!(c.stats().local_spills, 1, "cheaper m1 spilled");
        // m1 still reusable from disk.
        let hit = c.probe(&i1).expect("disk hit");
        match hit.object {
            CachedObject::Matrix(got) => assert!(got.approx_eq(&m1, 0.0)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.stats().hits_disk, 1);
        // Unproven entries drop instead of spilling.
        let m3 = rand_uniform(32, 32, 0.0, 1.0, 3);
        c.put(&item("m3"), CachedObject::Matrix(m3.clone()), 1.0, m3.size_bytes(), 1);
        let m4 = rand_uniform(32, 32, 0.0, 1.0, 4);
        c.put(&item("m4"), CachedObject::Matrix(m4), 200.0, m3.size_bytes(), 1);
        assert!(c.stats().local_drops >= 1, "never-hit victim dropped");
    }

    #[test]
    fn oversized_object_not_cached() {
        let c = cache_kb(1);
        let m = rand_uniform(64, 64, 0.0, 1.0, 3); // 32 KB > 1 KB budget
        let it = item("big");
        c.put(&it, CachedObject::Matrix(m.clone()), 1.0, m.size_bytes(), 1);
        assert!(c.probe(&it).is_none());
        assert_eq!(c.local_used(), 0);
    }

    #[test]
    fn scalar_entries_are_cheap() {
        let c = cache_kb(1);
        for i in 0..100 {
            c.put(&item(&format!("s{i}")), CachedObject::Scalar(i as f64), 1.0, 16, 1);
        }
        assert_eq!(c.len(), 100);
    }

    fn spark_cache() -> (LineageCache, SparkContext) {
        let sc = SparkContext::new(SparkConfig::local_test());
        let c = cache_kb(1024).with_spark_sync(sc.clone());
        (c, sc)
    }

    #[test]
    fn rdd_reuse_returns_handle_and_counts_misses() {
        let (c, sc) = spark_cache();
        let m = rand_uniform(16, 4, 0.0, 1.0, 4);
        let b = BlockedMatrix::from_dense(&m, 4).unwrap();
        let src = sc.parallelize_blocked(&b, "X");
        let mapped = sc.map(&src, "id", StdArc::new(|k, m| (*k, m.deep_clone())));
        let it = item("rdd");
        c.put(&it, CachedObject::Rdd { rdd: mapped.clone(), rows: 16, cols: 4 }, 50.0, m.size_bytes(), 1);
        assert!(mapped.persist_level().is_some(), "admission persists");
        // Unmaterialized reuse works (compute sharing).
        for _ in 0..2 {
            let hit = c.probe(&it).expect("rdd hit");
            assert!(matches!(hit.object, CachedObject::Rdd { .. }));
        }
        // Third unmaterialized reuse triggers the count() materialization.
        let hit = c.probe(&it).expect("rdd hit");
        assert!(matches!(hit.object, CachedObject::Rdd { .. }));
        let s = c.stats();
        assert_eq!(s.rdd_materialize_jobs, 1);
        assert!(sc.is_fully_cached(&mapped), "sync materialization ran");
        // Next probe sees it materialized.
        c.probe(&it).expect("hit");
    }

    #[test]
    fn rdd_budget_evicts_worst_entry() {
        let sc = SparkContext::new(SparkConfig::local_test());
        let mut cfg = CacheConfig::test();
        cfg.local_budget = 1 << 20;
        let c = LineageCache::new(cfg).with_spark_sync(sc.clone());
        let budget = c.spark_backend().unwrap().reuse_budget;
        let m = rand_uniform(16, 4, 0.0, 1.0, 5);
        let b = BlockedMatrix::from_dense(&m, 4).unwrap();

        let mk = |name: &str| {
            let src = sc.parallelize_blocked(&b, name);
            sc.map(&src, "id", StdArc::new(|k, m| (*k, m.deep_clone())))
        };
        let r1 = mk("r1");
        let r2 = mk("r2");
        // r1 cheap, fills the whole budget; r2 expensive, forces eviction.
        c.put(&item("r1"), CachedObject::Rdd { rdd: r1.clone(), rows: 16, cols: 4 }, 1.0, budget, 1);
        assert_eq!(c.rdd_est_bytes(), budget);
        c.put(&item("r2"), CachedObject::Rdd { rdd: r2.clone(), rows: 16, cols: 4 }, 100.0, budget / 2, 1);
        let s = c.stats();
        assert_eq!(s.rdd_unpersists, 1);
        assert!(c.probe(&item("r1")).is_none(), "r1 evicted");
        assert!(c.probe(&item("r2")).is_some());
        assert!(r1.persist_level().is_none(), "unpersisted");
    }

    #[test]
    fn materialized_rdd_hit_runs_lazy_gc() {
        let (c, sc) = spark_cache();
        let m = rand_uniform(16, 4, 0.0, 1.0, 6);
        let b = BlockedMatrix::from_dense(&m, 4).unwrap();
        let src = sc.parallelize_blocked(&b, "X");
        let bc = sc.broadcast(Matrix::scalar(2.0));
        let mapped = sc.map_with_broadcast(
            &src,
            "scale",
            &bc,
            StdArc::new(|k, m, s| {
                (
                    *k,
                    memphis_matrix::ops::binary::binary_scalar(
                        m,
                        s.at(0, 0),
                        memphis_matrix::ops::binary::BinaryOp::Mul,
                        false,
                    ),
                )
            }),
        );
        let it = item("gc");
        c.put(&it, CachedObject::Rdd { rdd: mapped.clone(), rows: 16, cols: 4 }, 10.0, m.size_bytes(), 1);
        sc.count(&mapped); // materialize
        assert!(!bc.is_destroyed());
        c.probe(&it).expect("materialized hit");
        assert!(bc.is_destroyed(), "lazy GC destroyed the broadcast");
        assert!(c.stats().gc_broadcasts_destroyed >= 1);
    }

    #[test]
    fn gpu_put_probe_acquires_pointer() {
        let device = StdArc::new(GpuDevice::new(memphis_gpusim::GpuConfig::zero_cost(1 << 20)));
        let c = cache_kb(64).with_gpu(device);
        let g = c.gpu_manager().unwrap().clone();
        let alloc = c.gpu_request(1024, 2, 5.0).unwrap();
        let it = item("gpu");
        c.put(&it, CachedObject::Gpu { ptr: alloc.ptr, rows: 1, cols: 128 }, 5.0, 1024, 1);
        // Variable releases its reference; pointer goes to the free list
        // but stays reusable.
        c.gpu_release(alloc.ptr, 2, 5.0);
        assert_eq!(g.free_pointers(), 1);
        let hit = c.probe(&it).expect("gpu hit");
        assert!(matches!(hit.object, CachedObject::Gpu { ptr: p, .. } if p == alloc.ptr));
        assert_eq!(g.live_pointers(), 1, "probe re-acquired the pointer");
        assert_eq!(c.stats().hits_gpu, 1);
    }

    #[test]
    fn gpu_recycle_invalidates_entry() {
        let device = StdArc::new(GpuDevice::new(memphis_gpusim::GpuConfig::zero_cost(1 << 20)));
        let c = cache_kb(64).with_gpu(device);
        let alloc = c.gpu_request(512, 2, 1.0).unwrap();
        let it = item("victim");
        c.put(&it, CachedObject::Gpu { ptr: alloc.ptr, rows: 1, cols: 128 }, 1.0, 512, 1);
        c.gpu_release(alloc.ptr, 2, 1.0);
        // Same-size request recycles the pointer, killing the entry.
        let again = c.gpu_request(512, 2, 1.0).unwrap();
        assert!(again.recycled);
        assert!(c.probe(&it).is_none(), "entry invalidated by recycling");
    }

    #[test]
    fn gpu_oom_evicts_cached_pointer_to_host() {
        let device = StdArc::new(GpuDevice::new(memphis_gpusim::GpuConfig::zero_cost(2048)));
        let c = cache_kb(64).with_gpu(device.clone());
        // Fill the device with one cached 1536-byte result.
        let m = rand_uniform(8, 24, 0.0, 1.0, 7); // 1536 bytes
        let a = c.gpu_request(1536, 2, 9.0).unwrap();
        device.copy_to_device(&m, a.ptr).unwrap();
        let it = item("precious");
        c.put(&it, CachedObject::Gpu { ptr: a.ptr, rows: 1, cols: 64 }, 9.0, 1536, 1);
        c.gpu_release(a.ptr, 2, 9.0);
        // A different-size request that cannot fit alongside it.
        let b = c.gpu_request(1024, 2, 1.0).unwrap();
        assert!(!b.recycled);
        // The cached result moved to the host and is still reusable.
        let hit = c.probe(&it).expect("still reusable");
        match hit.object {
            CachedObject::Matrix(got) => assert!(got.approx_eq(&m, 0.0)),
            other => panic!("expected host matrix, got {other:?}"),
        }
        assert_eq!(c.stats().gpu_evicted_to_host, 1);
    }

    #[test]
    fn evict_instruction_drops_fraction() {
        let device = StdArc::new(GpuDevice::new(memphis_gpusim::GpuConfig::zero_cost(1 << 20)));
        let c = cache_kb(64).with_gpu(device);
        let g = c.gpu_manager().unwrap().clone();
        // Allocate all four up front so sequential requests cannot recycle
        // each other's pointers.
        let allocs: Vec<_> = (0..4).map(|i| c.gpu_request(256, 2, i as f64).unwrap()).collect();
        for (i, a) in allocs.iter().enumerate() {
            c.put(&item(&format!("e{i}")), CachedObject::Gpu { ptr: a.ptr, rows: 1, cols: 64 }, i as f64, 256, 1);
            c.gpu_release(a.ptr, 2, i as f64);
        }
        assert_eq!(g.free_pointers(), 4);
        c.evict_gpu_fraction(1.0);
        assert_eq!(g.free_pointers(), 0);
        for i in 0..4 {
            assert!(c.probe(&item(&format!("e{i}"))).is_none());
        }
    }

    #[test]
    fn clear_resets_everything() {
        let (c, sc) = spark_cache();
        let m = rand_uniform(16, 4, 0.0, 1.0, 8);
        let b = BlockedMatrix::from_dense(&m, 4).unwrap();
        let src = sc.parallelize_blocked(&b, "X");
        let mapped = sc.map(&src, "id", StdArc::new(|k, m| (*k, m.deep_clone())));
        c.put(&item("r"), CachedObject::Rdd { rdd: mapped.clone(), rows: 16, cols: 4 }, 1.0, 1024, 1);
        c.put(&item("m"), CachedObject::Matrix(m.clone()), 1.0, m.size_bytes(), 1);
        assert_eq!(c.len(), 2);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.local_used(), 0);
        assert_eq!(c.rdd_est_bytes(), 0);
        assert!(mapped.persist_level().is_none());
    }

    #[test]
    fn function_hits_counted_separately() {
        let c = cache_kb(64);
        let f = LineageItem::new("func:l2svm", vec![], vec![LineageItem::leaf("X")]);
        c.put(&f, CachedObject::Scalar(0.95), 100.0, 16, 1);
        c.probe(&f).expect("hit");
        assert_eq!(c.stats().hits_func, 1);
    }
}
