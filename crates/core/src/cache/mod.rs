//! The hierarchical, multi-backend lineage cache (paper §3.3, §4).
//!
//! Probing is unified: one hash map from lineage keys to entries,
//! regardless of where the cached object lives. Admission, eviction, and
//! memory management are backend-local and pluggable: every tier —
//! including the built-in four — is a [`CacheBackend`] registered in a
//! [`BackendRegistry`], and the cache itself holds no backend-concrete
//! state:
//!
//! - **Local**: matrices and scalars against a byte budget, with eq. (1)
//!   cost&size eviction spilling into the disk tier
//!   ([`backends::LocalBackend`]).
//! - **Disk**: spilled binaries, read back and optionally promoted on
//!   hit ([`backends::DiskBackend`]).
//! - **Spark**: RDD handles reused even while unmaterialized; delayed
//!   `persist()`; eq. (1) eviction via `unpersist`; lazy garbage
//!   collection of dangling child RDD/broadcast references; asynchronous
//!   `count()` materialization after `k` unmaterialized reuses
//!   ([`backends::SparkTier`]).
//! - **GPU**: pointers managed by the unified [`gpu::GpuMemoryManager`]
//!   (Live/Free lists, recycling, eq. (2) scoring, eviction injection,
//!   device-to-host eviction) ([`backends::GpuTier`]).
//!
//! The probe map is sharded ([`sharded::ShardedEntryMap`]) so concurrent
//! sessions probing disjoint lineage ids never contend, and each shard
//! carries in-flight computation markers ([`sharded::Inflight`]): a
//! session that misses claims ownership via [`LineageCache::probe_or_begin`]
//! and later [`LineageCache::complete`]s; any other session probing the
//! same lineage id meanwhile blocks on the marker and consumes the
//! owner's result directly — a *coalesced hit* instead of a duplicate
//! computation. Lock discipline is documented in [`sharded`] and
//! DESIGN.md §6: one shard lock at a time, shard before backend
//! accounting locks, and no condvar wait under a shard lock.

pub mod backends;
pub mod config;
pub mod durable;
pub mod entry;
pub mod gpu;
pub mod sharded;
pub mod spark;

use crate::backend::{BackendId, BackendRegistry, BackendSnapshot, CacheBackend, Materialized};
use crate::lineage::{self, LItem, LineageId};
use crate::pool::Pool;
use crate::stats::{ReuseStats, ReuseStatsSnapshot};
use backends::{DiskBackend, GpuTier, LocalBackend, SparkTier};
use config::{CacheConfig, CachePolicy};
use entry::{CacheEntry, CachedObject, EntryStatus};
use gpu::{GpuAlloc, GpuMemoryManager};
use memphis_gpusim::{GpuDevice, GpuError, GpuPtr};
use sharded::{Inflight, InflightOutcome, ShardedEntryMap};
use spark::SparkBackend;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// A successful probe: the reusable object plus the canonical lineage item
/// for LineageMap compaction.
#[derive(Debug, Clone)]
pub struct ProbeHit {
    /// The cached object (cloned handle).
    pub object: CachedObject,
    /// The canonical key stored in the cache (share this in the
    /// LineageMap to increase sub-DAG sharing).
    pub canonical: LItem,
}

/// Outcome of [`LineageCache::probe_or_begin`].
pub enum Probed {
    /// The object was already cached.
    Hit(ProbeHit),
    /// Another session was computing the same lineage item; this probe
    /// blocked on its in-flight marker and consumed that result.
    Coalesced(ProbeHit),
    /// Nothing cached and nothing in flight: this session owns the
    /// computation. Execute the instruction, then pass the guard to
    /// [`LineageCache::complete`] (dropping it abandons the flight and
    /// wakes waiters to retry).
    Compute(ComputeGuard),
}

/// Ownership of one in-flight computation, returned by
/// [`LineageCache::probe_or_begin`]. Dropping the guard without
/// completing resolves the flight as abandoned so waiters retry instead
/// of blocking forever (the owner may have hit an error path).
pub struct ComputeGuard {
    item: LItem,
    flight: Arc<Inflight>,
    stats: Arc<ReuseStats>,
    armed: bool,
    tenant: Option<u16>,
}

impl ComputeGuard {
    /// The lineage item this guard owns the computation of.
    pub fn item(&self) -> &LItem {
        &self.item
    }

    /// The interned identity this guard owns the computation of.
    pub fn key(&self) -> LineageId {
        self.item.lid
    }

    /// The tenant the completed entry will be charged to (set by
    /// [`LineageCache::probe_or_begin_as`]).
    pub fn tenant(&self) -> Option<u16> {
        self.tenant
    }

    /// Takes the item and flight out, defusing the drop-abandon.
    fn disarm(mut self) -> (LItem, Arc<Inflight>) {
        self.armed = false;
        (self.item.clone(), self.flight.clone())
    }
}

impl Drop for ComputeGuard {
    fn drop(&mut self) {
        if self.armed {
            // Owner errored out (or forgot to complete): wake waiters to
            // retry. The stale marker in the shard is replaced by the
            // next prober.
            ReuseStats::inc(&self.stats.inflight_abandoned);
            if self.flight.resolve(InflightOutcome::Abandoned) > 0 {
                ReuseStats::inc(&self.stats.wakeup_batches);
            } else {
                ReuseStats::inc(&self.stats.wakeup_skips);
            }
        }
    }
}

/// A resident (materialized) entry exported for cluster migration:
/// the interned identity plus the standing needed to re-admit the
/// object on another node ([`LineageCache::export_resident`]).
#[derive(Debug, Clone)]
pub struct ResidentEntry {
    /// Interned lineage identity.
    pub key: LineageId,
    /// Cloned handle to the cached object.
    pub object: CachedObject,
    /// Analytical compute cost `c(o)`.
    pub cost: f64,
    /// Size in bytes `s(o)`.
    pub size: usize,
    /// Reuse hits `r_h` (proven-reuse standing).
    pub hits: u64,
}

/// How an admission attempt ended (see [`LineageCache::admit`]).
enum Admitted {
    /// Stored and inserted into the probe map.
    Stored,
    /// The owning tier rejected the object (e.g. oversized).
    Rejected,
    /// Another session admitted the same lineage item first; this
    /// attempt backed out its accounting.
    Raced,
}

static NEXT_CACHE_ID: AtomicU64 = AtomicU64::new(0);

/// The hierarchical lineage cache: a unified sharded probe map plus a
/// registry of pluggable tier backends. One instance serves any number
/// of concurrent sessions.
pub struct LineageCache {
    map: ShardedEntryMap,
    registry: BackendRegistry,
    config: CacheConfig,
    stats: Arc<ReuseStats>,
    /// Recycled in-flight markers (see [`Pool`]): the steady-state
    /// miss→own→complete cycle reuses markers instead of allocating.
    flight_pool: Pool<Arc<Inflight>>,
    /// Last memory-pressure level reported by an external monitor
    /// (0 = Normal, 1 = Shed, 2 = Suspend). Read by the `DelayedHits`
    /// admission gate; never acted on under `Paper`.
    pressure: AtomicU8,
}

/// Memory-pressure level reported to the cache by an external monitor
/// (the serving layer's `PressureMonitor`). Under the `DelayedHits`
/// policy, `Shed` and above arm MURS-style admission shedding: entries
/// whose estimated time-to-next-access exceeds their expected cache
/// lifetime are rejected at admission. Under `Paper` the level is
/// recorded but never acted on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum MemoryPressure {
    /// Committed bytes within budget; admit normally.
    #[default]
    Normal,
    /// Monitor is shedding load; reject long-TTNA admissions.
    Shed,
    /// Monitor is suspending streams; reject long-TTNA admissions.
    Suspend,
}

/// Expected-lifetime heuristic: each budget slot an entry's size could
/// occupy is worth this many virtual-clock ticks of expected residency.
const LIFETIME_TICKS_PER_SLOT: f64 = 16.0;

/// Point-in-time TTNA/coalescing metadata of one cache entry (see
/// [`LineageCache::entry_reuse_meta`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntryReuseMeta {
    /// EWMA of inter-probe virtual-clock gaps.
    pub ttna_ewma: f64,
    /// Gap samples folded into the EWMA (0 = TTNA unknown).
    pub probe_gaps: u64,
    /// Tick of the most recent probe.
    pub last_probe_tick: u64,
    /// Coalesced waiters observed stacked behind this entry's misses.
    pub miss_waiters: u64,
}

impl LineageCache {
    /// Creates a cache with the local (driver) and disk tiers registered.
    ///
    /// Without `persist_dir`, disk-evicted binaries go to a cache-unique
    /// subdirectory of the configured spill dir, removed when the disk
    /// tier is dropped. With `persist_dir`, the disk tier is a durable
    /// segment store in exactly that directory: committed entries found
    /// there are recovered (manifest scan, checksum verification,
    /// probe-map rebuild, budgeted rehydration into the local tier), and
    /// the directory survives the cache's drop for the next restart.
    pub fn new(mut config: CacheConfig) -> Self {
        match &config.persist_dir {
            Some(dir) => config.spill_dir = dir.clone(),
            None => {
                config.spill_dir = config.spill_dir.join(format!(
                    "c{}_{}",
                    std::process::id(),
                    NEXT_CACHE_ID.fetch_add(1, Ordering::Relaxed)
                ));
            }
        }
        let stats = Arc::new(ReuseStats::default());
        let disk = Arc::new(DiskBackend::new(&config, stats.clone()));
        let local = Arc::new(LocalBackend::new(
            &config,
            stats.clone(),
            Some(disk.clone()),
        ));
        let mut registry = BackendRegistry::new();
        registry.register(local);
        registry.register(disk);
        let cache = Self {
            map: ShardedEntryMap::new(config.shards),
            registry,
            config,
            stats,
            flight_pool: Pool::new(256),
            pressure: AtomicU8::new(0),
        };
        cache.recover_from_disk();
        cache
    }

    /// Reports the current memory-pressure level (typically wired from
    /// the serving layer's pressure monitor once per scheduler tick).
    pub fn set_memory_pressure(&self, level: MemoryPressure) {
        self.pressure.store(level as u8, Ordering::Relaxed);
    }

    /// The last reported memory-pressure level.
    pub fn memory_pressure(&self) -> MemoryPressure {
        match self.pressure.load(Ordering::Relaxed) {
            0 => MemoryPressure::Normal,
            1 => MemoryPressure::Shed,
            _ => MemoryPressure::Suspend,
        }
    }

    /// Expected cache lifetime (in virtual-clock ticks) of an entry of
    /// `size` bytes: the more budget slots its size class has, the
    /// longer an admitted entry can expect to stay resident.
    fn expected_lifetime_ticks(&self, size: usize) -> f64 {
        let slots = (self.config.local_budget / size.max(1)).max(1);
        slots as f64 * LIFETIME_TICKS_PER_SLOT
    }

    /// Rebuilds probe-map entries from the disk tier's recovered records:
    /// each record's embedded lineage log is re-interned and its
    /// `content_hash` cross-checked (a mismatch is a checksum-grade
    /// reject), then the entry joins the map disk-backed with its
    /// persisted cost/hits standing. The hottest entries (eq. 1 score,
    /// content-hash tie-break for determinism) are rehydrated into the
    /// local tier up to the configured budget; the rest materialize
    /// lazily on first probe.
    fn recover_from_disk(&self) {
        let Some(disk) = self.registry.downcast::<DiskBackend>(BackendId::Disk) else {
            return;
        };
        let records = disk.take_recovered();
        if records.is_empty() {
            return;
        }
        let mut candidates: Vec<(LineageId, usize, f64)> = Vec::new();
        for rec in records {
            let item = match lineage::deserialize(&rec.lineage_log) {
                Ok(item) if item.lid.content_hash() == rec.content_hash => item,
                // The record's lineage does not reproduce its identity
                // tag: it cannot be trusted to stand for that lineage.
                _ => {
                    ReuseStats::inc(&self.stats.checksum_rejects);
                    disk.discard(rec.content_hash, rec.matrix_len);
                    continue;
                }
            };
            let entry = CacheEntry::recovered(&item, rec.compute_cost, rec.matrix_len, rec.hits);
            let score = entry.cost_size_score();
            let key = item.lid;
            {
                let mut shard = self.map.lock_of(key);
                if shard.entries.contains_key(&key) {
                    drop(shard);
                    disk.discard(rec.content_hash, rec.matrix_len);
                    continue;
                }
                shard.entries.insert(key, entry);
            }
            ReuseStats::inc(&self.stats.entries_recovered);
            candidates.push((key, rec.matrix_len, score));
        }
        let budget = self
            .config
            .rehydrate_budget
            .unwrap_or(self.config.local_budget / 2)
            .min(self.config.local_budget);
        if budget == 0 {
            return;
        }
        let Some(local) = self.registry.downcast::<LocalBackend>(BackendId::Local) else {
            return;
        };
        candidates.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.content_hash().cmp(&b.0.content_hash()))
        });
        let mut spent = 0usize;
        for (key, size, _) in candidates {
            if spent + size > budget {
                continue; // a smaller, colder entry may still fit
            }
            let Some(m) = disk.read_matrix_raw(key.content_hash()) else {
                continue;
            };
            if local.admit_existing(&self.map, key, Arc::new(m)) {
                disk.discard(key.content_hash(), size);
                ReuseStats::inc(&self.stats.entries_rehydrated);
                spent += size;
            }
        }
    }

    /// A fresh (or recycled) in-flight marker in the pending state.
    fn take_flight(&self) -> Arc<Inflight> {
        self.flight_pool.take().unwrap_or_else(Inflight::new)
    }

    /// Recycles a retired marker if nothing else holds it (waiters still
    /// reading the outcome keep their clones; uniqueness via
    /// `Arc::get_mut` guarantees no one can observe the reset).
    fn recycle_flight(&self, mut flight: Arc<Inflight>) {
        if let Some(inner) = Arc::get_mut(&mut flight) {
            inner.reset();
            if self.flight_pool.put(flight) {
                ReuseStats::inc(&self.stats.inflight_recycled);
            }
        }
    }

    /// Attaches the simulated Spark cluster as a registered tier.
    pub fn with_spark(mut self, sc: memphis_sparksim::SparkContext) -> Self {
        let b = SparkBackend::new(sc, self.config.spark_reuse_fraction);
        self.registry.register(Arc::new(SparkTier::new(
            b,
            &self.config,
            self.stats.clone(),
        )));
        self
    }

    /// Attaches a Spark tier in deterministic (inline materialization)
    /// mode for tests.
    pub fn with_spark_sync(mut self, sc: memphis_sparksim::SparkContext) -> Self {
        let mut b = SparkBackend::new(sc, self.config.spark_reuse_fraction);
        b.sync_materialize = true;
        self.registry.register(Arc::new(SparkTier::new(
            b,
            &self.config,
            self.stats.clone(),
        )));
        self
    }

    /// Attaches a simulated GPU device as a registered tier.
    pub fn with_gpu(mut self, device: Arc<GpuDevice>) -> Self {
        let mgr = Arc::new(GpuMemoryManager::new(device, self.stats.clone()));
        self.registry
            .register(Arc::new(GpuTier::new(mgr, self.stats.clone())));
        self
    }

    /// Registers an additional (or replacement) tier — external backends
    /// plug in here without any change to the cache itself.
    pub fn with_backend(mut self, backend: Arc<dyn CacheBackend>) -> Self {
        self.registry.register(backend);
        self
    }

    /// Cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Reuse counters, with shard-lock contention filled from the map.
    pub fn stats(&self) -> ReuseStatsSnapshot {
        let mut s = self.stats.snapshot();
        s.shard_contention = self.map.contended_locks();
        s
    }

    /// Shared handle to the stats (for backend managers and experiments).
    pub fn stats_handle(&self) -> &Arc<ReuseStats> {
        &self.stats
    }

    /// The registered tier backends.
    pub fn registry(&self) -> &BackendRegistry {
        &self.registry
    }

    /// Number of probe-map shards.
    pub fn shard_count(&self) -> usize {
        self.map.shard_count()
    }

    /// The GPU memory manager, if a device is attached.
    pub fn gpu_manager(&self) -> Option<&Arc<GpuMemoryManager>> {
        self.registry
            .downcast::<GpuTier>(BackendId::Gpu)
            .map(|t| t.manager())
    }

    /// The Spark backend, if attached.
    pub fn spark_backend(&self) -> Option<&SparkBackend> {
        self.registry
            .downcast::<SparkTier>(BackendId::Spark)
            .map(|t| t.spark())
    }

    /// Number of entries (placeholders included).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of local matrices currently cached on the driver.
    pub fn local_used(&self) -> usize {
        self.registry
            .get(BackendId::Local)
            .map(|b| b.used())
            .unwrap_or(0)
    }

    /// Estimated bytes of reuse-persisted RDDs.
    pub fn rdd_est_bytes(&self) -> usize {
        self.registry
            .get(BackendId::Spark)
            .map(|b| b.used())
            .unwrap_or(0)
    }

    /// Per-backend stats reports ([`CacheBackend::snapshot`]), with entry
    /// counts filled from the probe map.
    pub fn backend_snapshots(&self) -> Vec<BackendSnapshot> {
        let mut snaps = self.registry.snapshots();
        let mut counts: HashMap<BackendId, usize> = HashMap::new();
        self.map.for_each(|_, e| {
            *counts.entry(e.backend).or_insert(0) += 1;
        });
        for s in &mut snaps {
            s.entries = counts.get(&s.id).copied().unwrap_or(0);
        }
        snaps
    }

    /// The unified per-backend stats report, one line per tier.
    pub fn backend_report(&self) -> String {
        self.backend_snapshots()
            .iter()
            .map(|s| format!("  {s}"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Drops every entry and resets accounting (used between experiment
    /// configurations). GPU pointers are unmarked, RDDs unpersisted,
    /// spill files removed. In-flight markers are left for their owners
    /// to resolve.
    pub fn clear(&self) {
        for (_, e) in self.map.drain_entries() {
            if let Some(b) = self.registry.get(e.backend) {
                b.release(&e);
            }
        }
    }

    // ------------------------------------------------------------------
    // CLUSTER SUPPORT (control-plane reads/removals)
    // ------------------------------------------------------------------

    /// Control-plane read: clones the resident object for `key` without
    /// touching reuse stats, hit counts, or recency — a migration or
    /// replica copy must not inflate the entry's eq.(1) standing the way
    /// a real probe would. Placeholders and non-resident tiers (disk,
    /// spilled) return `None`.
    pub fn peek(&self, key: LineageId) -> Option<ResidentEntry> {
        self.map.with_entry(key, |e| {
            let e = e?;
            let object = e.object.clone()?;
            if matches!(object, CachedObject::Disk(_)) {
                return None;
            }
            Some(ResidentEntry {
                key,
                object,
                cost: e.compute_cost,
                size: e.size,
                hits: e.hits,
            })
        })
    }

    /// Exports every resident (materialized, in-memory) entry, sorted by
    /// content hash so migration plans built from the export are
    /// deterministic regardless of shard iteration order.
    pub fn export_resident(&self) -> Vec<ResidentEntry> {
        let mut out = Vec::new();
        self.map.for_each(|key, e| {
            if let Some(object) = e.object.clone() {
                if !matches!(object, CachedObject::Disk(_)) {
                    out.push(ResidentEntry {
                        key,
                        object,
                        cost: e.compute_cost,
                        size: e.size,
                        hits: e.hits,
                    });
                }
            }
        });
        out.sort_by_key(|r| r.key.content_hash());
        out
    }

    /// Control-plane removal: drops the entry for `key` (releasing its
    /// backend accounting) without counting an eviction. Used when the
    /// cluster layer migrates a primary away or invalidates a replica.
    /// Returns false when no entry was present.
    pub fn remove(&self, key: LineageId) -> bool {
        match self.map.remove_entry(key) {
            Some(e) => {
                if let Some(b) = self.registry.get(e.backend) {
                    b.release(&e);
                }
                true
            }
            None => false,
        }
    }

    // ------------------------------------------------------------------
    // REUSE
    // ------------------------------------------------------------------

    /// One probe attempt: entry lookup plus backend materialization.
    /// Does not count probes/misses — callers decide how a `None` is
    /// accounted (plain miss, or the start of an in-flight computation).
    ///
    /// The hit path is allocation-free: the key is a `Copy` interned id,
    /// the shard lookup hashes one `u64`, and the canonical item is an
    /// `Arc` clone out of the intern table (refcount bump only).
    fn probe_once(&self, key: LineageId) -> Option<ProbeHit> {
        let clock = self.map.tick();
        let (is_function, backend_id) = {
            let mut shard = self.map.lock_of(key);
            let e = shard.entries.get_mut(&key)?;
            e.last_access = clock;
            // Fold this probe's inter-arrival gap into the TTNA EWMA
            // (pure bookkeeping; only `DelayedHits` ever reads it).
            e.observe_probe(clock);
            // TO-BE-CACHED placeholder: not reusable yet.
            e.object.as_ref()?;
            (e.is_function, e.backend)
        };
        // Materialize with no shard lock held: tiers lock the shards
        // (and their own accounting) themselves.
        let outcome = match self.registry.get(backend_id) {
            Some(b) => b.materialize(&self.map, &self.registry, key),
            None => Materialized::Stale, // tier was unregistered
        };
        match outcome {
            Materialized::Hit(object) => {
                ReuseStats::inc(&self.stats.hits);
                if is_function {
                    ReuseStats::inc(&self.stats.hits_func);
                }
                Some(ProbeHit {
                    object,
                    canonical: lineage::resolve(key),
                })
            }
            Materialized::Stale => {
                if let Some(e) = self.map.remove_entry(key) {
                    if let Some(b) = self.registry.get(e.backend) {
                        b.release(&e);
                    }
                }
                None
            }
        }
    }

    /// REUSE: probes the cache for the output identified by `item`.
    /// Returns the cached object (with backend-specific acquisition) or
    /// `None`, in which case the caller must execute the instruction and
    /// `PUT` its result.
    pub fn probe(&self, item: &LItem) -> Option<ProbeHit> {
        let _probe_span = memphis_obs::span(memphis_obs::cat::CACHE, "probe");
        ReuseStats::inc(&self.stats.probes);
        let hit = self.probe_once(item.lid);
        if hit.is_none() {
            ReuseStats::inc(&self.stats.misses);
        }
        hit
    }

    /// REUSE with computation coalescing: like [`probe`](Self::probe),
    /// but a miss claims ownership of the computation by parking an
    /// in-flight marker in the key's shard. A second session probing the
    /// same lineage item meanwhile blocks on the marker and consumes the
    /// owner's result directly (a coalesced hit) instead of recomputing.
    ///
    /// The owner must pass its [`ComputeGuard`] to
    /// [`complete`](Self::complete) (or drop it to abandon, waking
    /// waiters to retry). Never hold a shard lock while calling this.
    pub fn probe_or_begin(&self, item: &LItem) -> Probed {
        self.probe_or_begin_as(item, None)
    }

    /// [`probe_or_begin`](Self::probe_or_begin) on behalf of a serving
    /// tenant: an entry completed through the returned guard is charged
    /// to `tenant`'s soft cache quota (see
    /// [`set_tenant_quota`](Self::set_tenant_quota)).
    pub fn probe_or_begin_as(&self, item: &LItem, tenant: Option<u16>) -> Probed {
        let _probe_span = memphis_obs::span(memphis_obs::cat::CACHE, "probe");
        ReuseStats::inc(&self.stats.probes);
        let key = item.lid;
        loop {
            if let Some(hit) = self.probe_once(key) {
                return Probed::Hit(hit);
            }
            // Miss: wait on a pending flight, or claim ownership.
            enum Step {
                Retry,
                Wait(Arc<Inflight>),
                Own(Arc<Inflight>),
            }
            // A stale resolved marker displaced under the shard lock is
            // recycled after the lock is released (pool is a leaf lock,
            // but keep the critical section minimal).
            let mut displaced: Option<Arc<Inflight>> = None;
            let step = {
                let mut shard = self.map.lock_of(key);
                if shard
                    .entries
                    .get(&key)
                    .map(|e| e.object.is_some())
                    .unwrap_or(false)
                {
                    // Entry appeared between the probe and this lock.
                    Step::Retry
                } else {
                    match shard.inflight.get(&key) {
                        Some(f) if f.is_pending() => Step::Wait(f.clone()),
                        _ => {
                            // No marker, or a stale resolved marker left
                            // by an abandoning owner: install a fresh
                            // flight and become the owner.
                            let f = self.take_flight();
                            displaced = shard.inflight.insert(key, f.clone());
                            Step::Own(f)
                        }
                    }
                }
            };
            if let Some(stale) = displaced {
                self.recycle_flight(stale);
            }
            match step {
                Step::Retry => continue,
                Step::Own(flight) => {
                    ReuseStats::inc(&self.stats.inflight_begins);
                    ReuseStats::inc(&self.stats.misses);
                    return Probed::Compute(ComputeGuard {
                        item: item.clone(),
                        flight,
                        stats: self.stats.clone(),
                        armed: true,
                        tenant,
                    });
                }
                Step::Wait(flight) => {
                    ReuseStats::inc(&self.stats.inflight_waits);
                    let outcome = {
                        let _wait_span =
                            memphis_obs::span(memphis_obs::cat::CACHE, "inflight_wait");
                        flight.wait()
                    };
                    match outcome {
                        InflightOutcome::Done { object, canonical } => {
                            // GPU pointers must be re-acquired per
                            // consumer; a failure means the pointer was
                            // recycled before we woke — retry the probe.
                            if let CachedObject::Gpu { ptr, .. } = &object {
                                let acquired =
                                    self.gpu_manager().map(|g| g.acquire(*ptr)).unwrap_or(false);
                                if !acquired {
                                    continue;
                                }
                            }
                            self.map.with_entry(key, |e| {
                                if let Some(e) = e {
                                    e.hits += 1;
                                }
                            });
                            ReuseStats::inc(&self.stats.hits);
                            ReuseStats::inc(&self.stats.coalesced_hits);
                            return Probed::Coalesced(ProbeHit { object, canonical });
                        }
                        InflightOutcome::Abandoned => continue,
                    }
                }
            }
        }
    }

    /// Completes an in-flight computation: offers the result to the
    /// cache (like [`put`](Self::put)) and hands the object to every
    /// session blocked on the flight. Returns true if the cache stored
    /// the object (waiters receive it either way).
    pub fn complete(
        &self,
        guard: ComputeGuard,
        object: CachedObject,
        cost: f64,
        size_hint: usize,
        delay: u32,
    ) -> bool {
        self.complete_inner(guard, object, cost, size_hint, delay, false)
    }

    /// Like [`complete`](Self::complete), but the admitted entry is
    /// pinned atomically — it can never be selected as an eviction
    /// victim until [`unpin`](Self::unpin). Pinning after a plain put
    /// would race with eviction; this cannot. Pinned completion ignores
    /// delayed caching (the caller wants the entry resident).
    pub fn complete_pinned(
        &self,
        guard: ComputeGuard,
        object: CachedObject,
        cost: f64,
        size_hint: usize,
    ) -> bool {
        self.complete_inner(guard, object, cost, size_hint, 1, true)
    }

    fn complete_inner(
        &self,
        guard: ComputeGuard,
        object: CachedObject,
        cost: f64,
        size_hint: usize,
        delay: u32,
        pin: bool,
    ) -> bool {
        let backend = object.backend();
        let tenant = guard.tenant;
        let (item, flight) = guard.disarm();
        let key = item.lid;
        let stored = self.put_inner(
            &item,
            object.clone(),
            cost,
            size_hint,
            delay,
            backend,
            pin,
            tenant,
        );
        // Remove our marker (if still ours) under the shard lock; the
        // canonical item comes from the intern table (no lock needed).
        let removed = {
            let mut shard = self.map.lock_of(key);
            if shard
                .inflight
                .get(&key)
                .map(|f| Arc::ptr_eq(f, &flight))
                .unwrap_or(false)
            {
                shard.inflight.remove(&key)
            } else {
                None
            }
        };
        let canonical = lineage::resolve(key);
        let woken = flight.resolve(InflightOutcome::Done { object, canonical });
        if woken > 0 {
            ReuseStats::inc(&self.stats.wakeup_batches);
            // The waiters this miss kept stacked are the entry's
            // aggregate-delay evidence for delayed-hits scoring.
            self.map.with_entry(key, |e| {
                if let Some(e) = e {
                    e.miss_waiters += woken;
                }
            });
        } else {
            ReuseStats::inc(&self.stats.wakeup_skips);
        }
        // Our clone of the flight must drop before the marker can be
        // recycled (the pool requires sole ownership).
        drop(flight);
        if let Some(marker) = removed {
            self.recycle_flight(marker);
        }
        stored
    }

    /// Updates the `r_j` job counter of an entry (a job consumed it).
    pub fn note_job(&self, item: &LItem) {
        self.map.with_entry(item.lid, |e| {
            if let Some(e) = e {
                e.jobs += 1;
            }
        });
    }

    /// Records `n` coalesced waiters observed stacked behind a miss of
    /// `item` — the aggregate-delay evidence of the `DelayedHits`
    /// policy. The concurrent path feeds this automatically from
    /// in-flight wakeups; single-threaded virtual-time harnesses (which
    /// coalesce batched arrivals without ever blocking) call it
    /// directly after completing the miss.
    pub fn note_miss_waiters(&self, item: &LItem, n: u64) {
        if n == 0 {
            return;
        }
        self.map.with_entry(item.lid, |e| {
            if let Some(e) = e {
                e.miss_waiters += n;
            }
        });
    }

    /// Point-in-time TTNA/coalescing metadata of an entry, if cached
    /// (tests and harnesses; not part of the probe hot path).
    pub fn entry_reuse_meta(&self, item: &LItem) -> Option<EntryReuseMeta> {
        self.map.with_entry(item.lid, |e| {
            e.map(|e| EntryReuseMeta {
                ttna_ewma: e.ttna_ewma,
                probe_gaps: e.probe_gaps,
                last_probe_tick: e.last_probe_tick,
                miss_waiters: e.miss_waiters,
            })
        })
    }

    /// Pins an existing entry (never an eviction victim). Returns false
    /// when the item is not cached.
    pub fn pin(&self, item: &LItem) -> bool {
        self.map.with_entry(item.lid, |e| match e {
            Some(e) => {
                e.pinned = true;
                true
            }
            None => false,
        })
    }

    /// Unpins an entry, making it evictable again.
    pub fn unpin(&self, item: &LItem) -> bool {
        self.map.with_entry(item.lid, |e| match e {
            Some(e) => {
                e.pinned = false;
                true
            }
            None => false,
        })
    }

    /// Sessions currently blocked on `item`'s in-flight computation
    /// (0 when nothing is in flight).
    pub fn inflight_waiters(&self, item: &LItem) -> u64 {
        self.map
            .inflight_of(item.lid)
            .map(|f| f.waiters())
            .unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // PUT
    // ------------------------------------------------------------------

    /// PUT: offers the result of an executed instruction to the cache,
    /// routed to the tier owning the object's representation.
    ///
    /// `cost` is the analytical compute cost, `size_hint` the estimated
    /// worst-case size (used for RDDs before materialization), and `delay`
    /// the delayed-caching factor n (1 = cache immediately). Returns true
    /// if the object was stored (vs. deferred).
    pub fn put(
        &self,
        item: &LItem,
        object: CachedObject,
        cost: f64,
        size_hint: usize,
        delay: u32,
    ) -> bool {
        let backend = object.backend();
        self.put_on(item, object, cost, size_hint, delay, backend)
    }

    /// PUT onto an explicit tier (external backends receive objects in
    /// whatever representation they accept).
    pub fn put_on(
        &self,
        item: &LItem,
        object: CachedObject,
        cost: f64,
        size_hint: usize,
        delay: u32,
        backend: BackendId,
    ) -> bool {
        self.put_inner(item, object, cost, size_hint, delay, backend, false, None)
    }

    /// PUT on behalf of a serving tenant: like [`put`](Self::put), but
    /// the stored entry is charged to `tenant`'s soft cache quota.
    pub fn put_as(
        &self,
        item: &LItem,
        object: CachedObject,
        cost: f64,
        size_hint: usize,
        delay: u32,
        tenant: Option<u16>,
    ) -> bool {
        let backend = object.backend();
        self.put_inner(item, object, cost, size_hint, delay, backend, false, tenant)
    }

    /// Configures a tenant's soft cache quota (bytes of driver-local
    /// cache). Over-quota tenants' entries become preferred eq. (1)
    /// eviction victims (counted as `quota_evictions`). No-op without a
    /// local tier.
    pub fn set_tenant_quota(&self, tenant: u16, bytes: usize) {
        if let Some(local) = self.registry.downcast::<LocalBackend>(BackendId::Local) {
            local.set_quota(tenant, bytes);
        }
    }

    /// Driver-local cache bytes currently charged to `tenant`.
    pub fn tenant_local_used(&self, tenant: u16) -> usize {
        self.registry
            .downcast::<LocalBackend>(BackendId::Local)
            .map(|local| local.tenant_used(tenant))
            .unwrap_or(0)
    }

    /// PUT with the configured default delay factor.
    pub fn put_default(&self, item: &LItem, object: CachedObject, cost: f64, size_hint: usize) {
        self.put(item, object, cost, size_hint, self.config.default_delay);
    }

    /// The shared PUT path: decides under the key's shard lock whether
    /// to skip, defer, or store, then admits with no shard lock held.
    #[allow(clippy::too_many_arguments)]
    fn put_inner(
        &self,
        item: &LItem,
        object: CachedObject,
        cost: f64,
        size_hint: usize,
        delay: u32,
        backend: BackendId,
        pin: bool,
        tenant: Option<u16>,
    ) -> bool {
        let _put_span = memphis_obs::span_with(memphis_obs::cat::CACHE, "put", || {
            backend.as_str().to_string()
        });
        let key = item.lid;
        let clock = self.map.tick();
        /// What the shard-lock inspection decided.
        enum Plan {
            /// Entry already stored (e.g. a racing session): nothing to do.
            AlreadyCached,
            /// Placeholder created or advanced; delay not reached yet.
            Deferred,
            /// Admit now; `carry` holds a matured placeholder's reuse
            /// counters (the key itself is the interned id — identical
            /// for every structurally-equal construction).
            Store { carry: Option<(u64, u64, u64)> },
        }
        let plan = {
            let mut shard = self.map.lock_of(key);
            match shard.entries.get_mut(&key) {
                Some(e) if e.object.is_some() => {
                    e.last_access = clock;
                    Plan::AlreadyCached
                }
                Some(e) => {
                    // Placeholder: advance, store when the delay is reached.
                    let (seen, needed) = match e.status {
                        EntryStatus::ToBeCached { seen, needed } => (seen + 1, needed),
                        EntryStatus::Cached => unreachable!("cached entries have objects"),
                    };
                    if seen >= needed {
                        // Carry the placeholder's reuse statistics into
                        // the admitted entry so eq. (1) scoring does not
                        // restart from zero for proven repeaters.
                        Plan::Store {
                            carry: Some((e.hits, e.misses, e.jobs)),
                        }
                    } else {
                        e.status = EntryStatus::ToBeCached { seen, needed };
                        e.last_access = clock;
                        Plan::Deferred
                    }
                }
                None => {
                    if delay <= 1 {
                        Plan::Store { carry: None }
                    } else {
                        let mut ph = CacheEntry::placeholder(item, cost, size_hint, delay);
                        ph.backend = backend;
                        ph.last_access = clock;
                        ph.tenant = tenant;
                        shard.entries.insert(key, ph);
                        Plan::Deferred
                    }
                }
            }
        };
        match plan {
            Plan::AlreadyCached => false,
            Plan::Deferred => {
                ReuseStats::inc(&self.stats.puts_deferred);
                false
            }
            Plan::Store { carry } => {
                // MURS-style admission shedding: under pressure, an
                // entry that a previous eviction proved unlikely to be
                // re-accessed within its expected residency is not
                // worth the evictions its admission would force.
                if self.config.policy == CachePolicy::DelayedHits
                    && self.memory_pressure() >= MemoryPressure::Shed
                {
                    if let Some(ttna) = self.map.ghost_ttna(key) {
                        if ttna > self.expected_lifetime_ticks(size_hint) {
                            ReuseStats::inc(&self.stats.ttna_admission_rejects);
                            let mut shard = self.map.lock_of(key);
                            if shard
                                .entries
                                .get(&key)
                                .map(|e| e.object.is_none())
                                .unwrap_or(false)
                            {
                                shard.entries.remove(&key);
                            }
                            return false;
                        }
                    }
                }
                let admitted =
                    self.admit(item, object, cost, size_hint, backend, clock, pin, tenant);
                match admitted {
                    Admitted::Stored => {
                        if let Some((hits, misses, jobs)) = carry {
                            self.map.with_entry(key, |e| {
                                if let Some(e) = e {
                                    e.hits = hits;
                                    e.misses = misses;
                                    e.jobs = jobs;
                                }
                            });
                        }
                        ReuseStats::inc(&self.stats.puts);
                        true
                    }
                    Admitted::Rejected => {
                        // Rejected by the tier (e.g. oversized): drop a
                        // leftover placeholder so later puts restart
                        // cleanly (but never a racing session's stored
                        // entry).
                        let mut shard = self.map.lock_of(key);
                        if shard
                            .entries
                            .get(&key)
                            .map(|e| e.object.is_none())
                            .unwrap_or(false)
                        {
                            shard.entries.remove(&key);
                        }
                        false
                    }
                    Admitted::Raced => false,
                }
            }
        }
    }

    /// Stores an object through its tier's admission (MAKE_SPACE +
    /// accounting + side effects), then inserts the entry under the shard
    /// lock. If a racing session inserted the same lineage item
    /// meanwhile, the tier accounting is backed out via `release`.
    #[allow(clippy::too_many_arguments)]
    fn admit(
        &self,
        item: &LItem,
        object: CachedObject,
        cost: f64,
        size_hint: usize,
        backend: BackendId,
        clock: u64,
        pin: bool,
        tenant: Option<u16>,
    ) -> Admitted {
        let Some(b) = self.registry.get(backend) else {
            return Admitted::Rejected;
        };
        let key = item.lid;
        let mut e = CacheEntry::cached(item, object, cost, size_hint);
        e.backend = backend;
        e.last_access = clock;
        // Admission is an access: seeding the probe tick lets the first
        // post-admission hit already yield a TTNA gap sample.
        e.last_probe_tick = clock;
        e.pinned = pin;
        e.tenant = tenant;
        // Tier admission (MAKE_SPACE, persist, accounting) runs with no
        // shard lock held — it may evict across shards.
        if !b.put(&self.map, &self.registry, key, &mut e) {
            return Admitted::Rejected;
        }
        let mut shard = self.map.lock_of(key);
        match shard.entries.get(&key) {
            Some(existing) if existing.object.is_some() => {
                // Lost the admission race: another session stored this
                // lineage item between our plan and now. Keep theirs and
                // reverse our tier accounting.
                drop(shard);
                b.release(&e);
                Admitted::Raced
            }
            _ => {
                shard.entries.insert(key, e);
                drop(shard);
                if self.config.policy == CachePolicy::DelayedHits {
                    // Residency restarts the evidence: a later eviction
                    // re-records a fresh TTNA ghost.
                    self.map.clear_ghost(key);
                }
                Admitted::Stored
            }
        }
    }

    // ------------------------------------------------------------------
    // GPU integration
    // ------------------------------------------------------------------

    /// Serves a GPU output allocation through the unified memory manager,
    /// dropping any cache entries invalidated by recycling and falling
    /// back to device-to-host eviction of cached pointers on OOM (the
    /// evicted matrix is re-admitted through the local tier).
    ///
    /// # Panics
    /// Panics if no GPU is attached.
    pub fn gpu_request(&self, size: usize, height: u32, cost: f64) -> Result<GpuAlloc, GpuError> {
        let g = self.gpu_manager().expect("GPU backend attached").clone();
        loop {
            match g.request_with(size, height, cost, true) {
                Ok(alloc) => {
                    self.remove_keys(&alloc.invalidated);
                    return Ok(alloc);
                }
                Err(GpuError::OutOfMemory { .. }) => {
                    // Device-to-host eviction: move the least valuable
                    // cached free pointer to driver memory, free it, retry.
                    match g.pop_cached_for_host_eviction() {
                        Some((ptr, key)) => {
                            let host = g.device().copy_to_host(ptr).ok();
                            g.device().free(ptr).ok();
                            ReuseStats::inc(&self.stats.gpu_evicted_to_host);
                            memphis_obs::instant_val(
                                memphis_obs::cat::CACHE,
                                "gpu_evict_to_host",
                                "bytes",
                                ptr.size as u64,
                            );
                            let admitted = match host {
                                Some(m) => self
                                    .registry
                                    .downcast::<LocalBackend>(BackendId::Local)
                                    .map(|local| local.admit_existing(&self.map, key, Arc::new(m)))
                                    .unwrap_or(false),
                                None => false,
                            };
                            if !admitted {
                                // Pointer already freed: plain removal.
                                self.map.remove_entry(key);
                            }
                        }
                        None => {
                            // Nothing left to evict: final OOM.
                            return g.request_with(size, height, cost, false);
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Releases a live GPU pointer reference (variable went out of scope).
    pub fn gpu_release(&self, ptr: GpuPtr, height: u32, cost: f64) {
        if let Some(g) = self.gpu_manager() {
            g.release(ptr, height, cost);
        }
    }

    /// Allocation without recycling (naive per-output `cudaMalloc`).
    ///
    /// # Panics
    /// Panics if no GPU is attached.
    pub fn gpu_request_no_recycle(&self, size: usize, cost: f64) -> Result<GpuAlloc, GpuError> {
        let g = self.gpu_manager().expect("GPU backend attached");
        g.request_no_recycle(size, cost)
    }

    /// Release + immediate `cudaFree` (recycling disabled), dropping any
    /// invalidated cache entry.
    pub fn gpu_release_and_free(&self, ptr: GpuPtr) {
        let Some(g) = self.gpu_manager() else { return };
        if let Some(key) = g.release_and_free(ptr) {
            self.remove_keys(&[key]);
        }
    }

    /// The `evict(p)` instruction: frees `fraction` of the GPU free list
    /// and drops the invalidated entries.
    pub fn evict_gpu_fraction(&self, fraction: f64) {
        let Some(g) = self.gpu_manager() else { return };
        let keys = g.evict_fraction(fraction);
        self.remove_keys(&keys);
    }

    /// Removes entries whose GPU pointers were recycled or freed. The
    /// pointers themselves are gone, so GPU-owned entries are dropped
    /// without a release; anything that migrated to another tier in the
    /// meantime is released there.
    fn remove_keys(&self, keys: &[LineageId]) {
        for k in keys {
            if let Some(e) = self.map.remove_entry(*k) {
                if e.backend != BackendId::Gpu {
                    if let Some(b) = self.registry.get(e.backend) {
                        b.release(&e);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::LineageItem;
    use memphis_matrix::rand_gen::rand_uniform;
    use memphis_matrix::{BlockedMatrix, Matrix};
    use memphis_sparksim::{SparkConfig, SparkContext};
    use std::sync::Arc as StdArc;

    fn item(name: &str) -> LItem {
        LineageItem::new("op", vec![name.to_string()], vec![LineageItem::leaf("X")])
    }

    fn cache_kb(kb: usize) -> LineageCache {
        let mut cfg = CacheConfig::test();
        cfg.local_budget = kb << 10;
        LineageCache::new(cfg)
    }

    fn mat(m: &Matrix) -> CachedObject {
        CachedObject::Matrix(StdArc::new(m.clone()))
    }

    #[test]
    fn put_probe_roundtrip_local() {
        let c = cache_kb(64);
        let it = item("a");
        assert!(c.probe(&it).is_none());
        let m = rand_uniform(8, 8, 0.0, 1.0, 1);
        c.put(&it, mat(&m), 10.0, m.size_bytes(), 1);
        let hit = c.probe(&it).expect("hit");
        match hit.object {
            CachedObject::Matrix(got) => assert!(got.approx_eq(&m, 0.0)),
            other => panic!("unexpected {other:?}"),
        }
        let s = c.stats();
        assert_eq!(s.probes, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits_local, 1);
    }

    #[test]
    fn probe_hits_share_not_copy() {
        let c = cache_kb(64);
        let it = item("shared");
        let m = StdArc::new(rand_uniform(8, 8, 0.0, 1.0, 1));
        c.put(
            &it,
            CachedObject::Matrix(m.clone()),
            10.0,
            m.size_bytes(),
            1,
        );
        let hit = c.probe(&it).expect("hit");
        match hit.object {
            CachedObject::Matrix(got) => {
                assert!(StdArc::ptr_eq(&got, &m), "hit shares the cached Arc")
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn structurally_equal_items_share_entries() {
        let c = cache_kb(64);
        let a = item("same");
        let b = item("same");
        assert!(!StdArc::ptr_eq(&a, &b));
        c.put(&a, CachedObject::Scalar(5.0), 1.0, 16, 1);
        let hit = c.probe(&b).expect("structural match");
        assert!(
            StdArc::ptr_eq(&hit.canonical, &a),
            "canonical is first trace"
        );
    }

    #[test]
    fn delayed_caching_stores_on_nth_execution() {
        let c = cache_kb(64);
        let it = item("delayed");
        // Execution 1: put defers.
        assert!(!c.put(&it, CachedObject::Scalar(1.0), 1.0, 16, 2));
        assert!(c.probe(&it).is_none(), "placeholder is not reusable");
        // Execution 2: put stores.
        assert!(c.put(&it, CachedObject::Scalar(1.0), 1.0, 16, 2));
        assert!(c.probe(&it).is_some());
        let s = c.stats();
        assert_eq!(s.puts_deferred, 1);
        assert_eq!(s.puts, 1);
    }

    #[test]
    fn delay_three_takes_three_puts() {
        let c = cache_kb(64);
        let it = item("d3");
        assert!(!c.put(&it, CachedObject::Scalar(1.0), 1.0, 16, 3));
        assert!(!c.put(&it, CachedObject::Scalar(1.0), 1.0, 16, 3));
        assert!(c.put(&it, CachedObject::Scalar(1.0), 1.0, 16, 3));
        assert!(c.probe(&it).is_some());
    }

    #[test]
    fn local_eviction_spills_to_disk_and_reloads() {
        // Budget fits one 8 KB matrix, not two.
        let c = cache_kb(12);
        let m1 = rand_uniform(32, 32, 0.0, 1.0, 1); // 8 KB
        let m2 = rand_uniform(32, 32, 0.0, 1.0, 2);
        let i1 = item("m1");
        let i2 = item("m2");
        c.put(&i1, mat(&m1), 1.0, m1.size_bytes(), 1);
        c.probe(&i1).expect("hit"); // proven reusable → spill, not drop
        c.put(&i2, mat(&m2), 100.0, m2.size_bytes(), 1);
        assert_eq!(c.stats().local_spills, 1, "cheaper m1 spilled");
        // m1 still reusable from disk.
        let hit = c.probe(&i1).expect("disk hit");
        match hit.object {
            CachedObject::Matrix(got) => assert!(got.approx_eq(&m1, 0.0)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.stats().hits_disk, 1);
        // Unproven entries drop instead of spilling.
        let m3 = rand_uniform(32, 32, 0.0, 1.0, 3);
        c.put(&item("m3"), mat(&m3), 1.0, m3.size_bytes(), 1);
        let m4 = rand_uniform(32, 32, 0.0, 1.0, 4);
        c.put(&item("m4"), mat(&m4), 200.0, m3.size_bytes(), 1);
        assert!(c.stats().local_drops >= 1, "never-hit victim dropped");
    }

    #[test]
    fn disk_tier_accounts_spilled_bytes() {
        let c = cache_kb(12);
        let m1 = rand_uniform(32, 32, 0.0, 1.0, 1); // 8 KB
        let m2 = rand_uniform(32, 32, 0.0, 1.0, 2);
        let i1 = item("m1");
        c.put(&i1, mat(&m1), 1.0, m1.size_bytes(), 1);
        c.probe(&i1).expect("hit");
        c.put(&item("m2"), mat(&m2), 100.0, m2.size_bytes(), 1);
        let disk_used = c.registry().get(BackendId::Disk).unwrap().used();
        assert_eq!(disk_used, m1.size_bytes(), "spill accounted to disk tier");
        // Promote-on-hit moves the bytes back to the local tier.
        c.probe(&i1).expect("disk hit");
        assert_eq!(c.registry().get(BackendId::Disk).unwrap().used(), 0);
    }

    #[test]
    fn oversized_object_not_cached() {
        let c = cache_kb(1);
        let m = rand_uniform(64, 64, 0.0, 1.0, 3); // 32 KB > 1 KB budget
        let it = item("big");
        c.put(&it, mat(&m), 1.0, m.size_bytes(), 1);
        assert!(c.probe(&it).is_none());
        assert_eq!(c.local_used(), 0);
    }

    #[test]
    fn scalar_entries_are_cheap() {
        let c = cache_kb(1);
        for i in 0..100 {
            c.put(
                &item(&format!("s{i}")),
                CachedObject::Scalar(i as f64),
                1.0,
                16,
                1,
            );
        }
        assert_eq!(c.len(), 100);
    }

    fn spark_cache() -> (LineageCache, SparkContext) {
        let sc = SparkContext::new(SparkConfig::local_test());
        let c = cache_kb(1024).with_spark_sync(sc.clone());
        (c, sc)
    }

    #[test]
    fn rdd_reuse_returns_handle_and_counts_misses() {
        let (c, sc) = spark_cache();
        let m = rand_uniform(16, 4, 0.0, 1.0, 4);
        let b = BlockedMatrix::from_dense(&m, 4).unwrap();
        let src = sc.parallelize_blocked(&b, "X");
        let mapped = sc.map(&src, "id", StdArc::new(|k, m| (*k, m.deep_clone())));
        let it = item("rdd");
        c.put(
            &it,
            CachedObject::Rdd {
                rdd: mapped.clone(),
                rows: 16,
                cols: 4,
            },
            50.0,
            m.size_bytes(),
            1,
        );
        assert!(mapped.persist_level().is_some(), "admission persists");
        // Unmaterialized reuse works (compute sharing).
        for _ in 0..2 {
            let hit = c.probe(&it).expect("rdd hit");
            assert!(matches!(hit.object, CachedObject::Rdd { .. }));
        }
        // Third unmaterialized reuse triggers the count() materialization.
        let hit = c.probe(&it).expect("rdd hit");
        assert!(matches!(hit.object, CachedObject::Rdd { .. }));
        let s = c.stats();
        assert_eq!(s.rdd_materialize_jobs, 1);
        assert!(sc.is_fully_cached(&mapped), "sync materialization ran");
        // Next probe sees it materialized.
        c.probe(&it).expect("hit");
    }

    #[test]
    fn rdd_budget_evicts_worst_entry() {
        let sc = SparkContext::new(SparkConfig::local_test());
        let mut cfg = CacheConfig::test();
        cfg.local_budget = 1 << 20;
        let c = LineageCache::new(cfg).with_spark_sync(sc.clone());
        let budget = c.spark_backend().unwrap().reuse_budget;
        let m = rand_uniform(16, 4, 0.0, 1.0, 5);
        let b = BlockedMatrix::from_dense(&m, 4).unwrap();

        let mk = |name: &str| {
            let src = sc.parallelize_blocked(&b, name);
            sc.map(&src, "id", StdArc::new(|k, m| (*k, m.deep_clone())))
        };
        let r1 = mk("r1");
        let r2 = mk("r2");
        // r1 cheap, fills the whole budget; r2 expensive, forces eviction.
        c.put(
            &item("r1"),
            CachedObject::Rdd {
                rdd: r1.clone(),
                rows: 16,
                cols: 4,
            },
            1.0,
            budget,
            1,
        );
        assert_eq!(c.rdd_est_bytes(), budget);
        c.put(
            &item("r2"),
            CachedObject::Rdd {
                rdd: r2.clone(),
                rows: 16,
                cols: 4,
            },
            100.0,
            budget / 2,
            1,
        );
        let s = c.stats();
        assert_eq!(s.rdd_unpersists, 1);
        assert!(c.probe(&item("r1")).is_none(), "r1 evicted");
        assert!(c.probe(&item("r2")).is_some());
        assert!(r1.persist_level().is_none(), "unpersisted");
    }

    #[test]
    fn materialized_rdd_hit_runs_lazy_gc() {
        let (c, sc) = spark_cache();
        let m = rand_uniform(16, 4, 0.0, 1.0, 6);
        let b = BlockedMatrix::from_dense(&m, 4).unwrap();
        let src = sc.parallelize_blocked(&b, "X");
        let bc = sc.broadcast(Matrix::scalar(2.0));
        let mapped = sc.map_with_broadcast(
            &src,
            "scale",
            &bc,
            StdArc::new(|k, m, s| {
                (
                    *k,
                    memphis_matrix::ops::binary::binary_scalar(
                        m,
                        s.at(0, 0),
                        memphis_matrix::ops::binary::BinaryOp::Mul,
                        false,
                    ),
                )
            }),
        );
        let it = item("gc");
        c.put(
            &it,
            CachedObject::Rdd {
                rdd: mapped.clone(),
                rows: 16,
                cols: 4,
            },
            10.0,
            m.size_bytes(),
            1,
        );
        sc.count(&mapped); // materialize
        assert!(!bc.is_destroyed());
        c.probe(&it).expect("materialized hit");
        assert!(bc.is_destroyed(), "lazy GC destroyed the broadcast");
        assert!(c.stats().gc_broadcasts_destroyed >= 1);
    }

    #[test]
    fn gpu_put_probe_acquires_pointer() {
        let device = StdArc::new(GpuDevice::new(memphis_gpusim::GpuConfig::zero_cost(
            1 << 20,
        )));
        let c = cache_kb(64).with_gpu(device);
        let g = c.gpu_manager().unwrap().clone();
        let alloc = c.gpu_request(1024, 2, 5.0).unwrap();
        let it = item("gpu");
        c.put(
            &it,
            CachedObject::Gpu {
                ptr: alloc.ptr,
                rows: 1,
                cols: 128,
            },
            5.0,
            1024,
            1,
        );
        // Variable releases its reference; pointer goes to the free list
        // but stays reusable.
        c.gpu_release(alloc.ptr, 2, 5.0);
        assert_eq!(g.free_pointers(), 1);
        let hit = c.probe(&it).expect("gpu hit");
        assert!(matches!(hit.object, CachedObject::Gpu { ptr: p, .. } if p == alloc.ptr));
        assert_eq!(g.live_pointers(), 1, "probe re-acquired the pointer");
        assert_eq!(c.stats().hits_gpu, 1);
    }

    #[test]
    fn gpu_recycle_invalidates_entry() {
        let device = StdArc::new(GpuDevice::new(memphis_gpusim::GpuConfig::zero_cost(
            1 << 20,
        )));
        let c = cache_kb(64).with_gpu(device);
        let alloc = c.gpu_request(512, 2, 1.0).unwrap();
        let it = item("victim");
        c.put(
            &it,
            CachedObject::Gpu {
                ptr: alloc.ptr,
                rows: 1,
                cols: 128,
            },
            1.0,
            512,
            1,
        );
        c.gpu_release(alloc.ptr, 2, 1.0);
        // Same-size request recycles the pointer, killing the entry.
        let again = c.gpu_request(512, 2, 1.0).unwrap();
        assert!(again.recycled);
        assert!(c.probe(&it).is_none(), "entry invalidated by recycling");
    }

    #[test]
    fn gpu_oom_evicts_cached_pointer_to_host() {
        let device = StdArc::new(GpuDevice::new(memphis_gpusim::GpuConfig::zero_cost(2048)));
        let c = cache_kb(64).with_gpu(device.clone());
        // Fill the device with one cached 1536-byte result.
        let m = rand_uniform(8, 24, 0.0, 1.0, 7); // 1536 bytes
        let a = c.gpu_request(1536, 2, 9.0).unwrap();
        device.copy_to_device(&m, a.ptr).unwrap();
        let it = item("precious");
        c.put(
            &it,
            CachedObject::Gpu {
                ptr: a.ptr,
                rows: 1,
                cols: 64,
            },
            9.0,
            1536,
            1,
        );
        c.gpu_release(a.ptr, 2, 9.0);
        // A different-size request that cannot fit alongside it.
        let b = c.gpu_request(1024, 2, 1.0).unwrap();
        assert!(!b.recycled);
        // The cached result moved to the host and is still reusable.
        let hit = c.probe(&it).expect("still reusable");
        match hit.object {
            CachedObject::Matrix(got) => assert!(got.approx_eq(&m, 0.0)),
            other => panic!("expected host matrix, got {other:?}"),
        }
        assert_eq!(c.stats().gpu_evicted_to_host, 1);
        assert_eq!(c.local_used(), m.size_bytes(), "re-admitted locally");
    }

    #[test]
    fn evict_instruction_drops_fraction() {
        let device = StdArc::new(GpuDevice::new(memphis_gpusim::GpuConfig::zero_cost(
            1 << 20,
        )));
        let c = cache_kb(64).with_gpu(device);
        let g = c.gpu_manager().unwrap().clone();
        // Allocate all four up front so sequential requests cannot recycle
        // each other's pointers.
        let allocs: Vec<_> = (0..4)
            .map(|i| c.gpu_request(256, 2, i as f64).unwrap())
            .collect();
        for (i, a) in allocs.iter().enumerate() {
            c.put(
                &item(&format!("e{i}")),
                CachedObject::Gpu {
                    ptr: a.ptr,
                    rows: 1,
                    cols: 64,
                },
                i as f64,
                256,
                1,
            );
            c.gpu_release(a.ptr, 2, i as f64);
        }
        assert_eq!(g.free_pointers(), 4);
        c.evict_gpu_fraction(1.0);
        assert_eq!(g.free_pointers(), 0);
        for i in 0..4 {
            assert!(c.probe(&item(&format!("e{i}"))).is_none());
        }
    }

    #[test]
    fn clear_resets_everything() {
        let (c, sc) = spark_cache();
        let m = rand_uniform(16, 4, 0.0, 1.0, 8);
        let b = BlockedMatrix::from_dense(&m, 4).unwrap();
        let src = sc.parallelize_blocked(&b, "X");
        let mapped = sc.map(&src, "id", StdArc::new(|k, m| (*k, m.deep_clone())));
        c.put(
            &item("r"),
            CachedObject::Rdd {
                rdd: mapped.clone(),
                rows: 16,
                cols: 4,
            },
            1.0,
            1024,
            1,
        );
        c.put(&item("m"), mat(&m), 1.0, m.size_bytes(), 1);
        assert_eq!(c.len(), 2);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.local_used(), 0);
        assert_eq!(c.rdd_est_bytes(), 0);
        assert!(mapped.persist_level().is_none());
    }

    #[test]
    fn function_hits_counted_separately() {
        let c = cache_kb(64);
        let f = LineageItem::new("func:l2svm", vec![], vec![LineageItem::leaf("X")]);
        c.put(&f, CachedObject::Scalar(0.95), 100.0, 16, 1);
        c.probe(&f).expect("hit");
        assert_eq!(c.stats().hits_func, 1);
    }

    #[test]
    fn backend_snapshots_cover_registered_tiers() {
        let (c, _sc) = spark_cache();
        let m = rand_uniform(8, 8, 0.0, 1.0, 9);
        c.put(&item("m"), mat(&m), 1.0, m.size_bytes(), 1);
        let snaps = c.backend_snapshots();
        let ids: Vec<_> = snaps.iter().map(|s| s.id).collect();
        assert!(ids.contains(&BackendId::Local));
        assert!(ids.contains(&BackendId::Disk));
        assert!(ids.contains(&BackendId::Spark));
        let local = snaps.iter().find(|s| s.id == BackendId::Local).unwrap();
        assert_eq!(local.entries, 1);
        assert_eq!(local.used, m.size_bytes());
        assert!(!c.backend_report().is_empty());
    }

    // --------------------------------------------------------------
    // Concurrency: in-flight coalescing, pinning
    // --------------------------------------------------------------

    #[test]
    fn probe_or_begin_owner_then_hit() {
        let c = cache_kb(64);
        let it = item("own");
        let guard = match c.probe_or_begin(&it) {
            Probed::Compute(g) => g,
            _ => panic!("empty cache must yield ownership"),
        };
        assert!(c.complete(guard, CachedObject::Scalar(3.0), 1.0, 16, 1));
        match c.probe_or_begin(&it) {
            Probed::Hit(h) => assert!(matches!(h.object, CachedObject::Scalar(v) if v == 3.0)),
            _ => panic!("completed entry must hit"),
        }
        let s = c.stats();
        assert_eq!(s.inflight_begins, 1);
        assert_eq!(s.probes, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.puts, 1);
    }

    #[test]
    fn concurrent_probes_coalesce_on_owner_result() {
        let c = StdArc::new(cache_kb(64));
        let it = item("coalesce");
        let guard = match c.probe_or_begin(&it) {
            Probed::Compute(g) => g,
            _ => panic!("owner"),
        };
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let c = c.clone();
                let it = it.clone();
                std::thread::spawn(move || match c.probe_or_begin(&it) {
                    Probed::Coalesced(h) => {
                        matches!(h.object, CachedObject::Scalar(v) if v == 42.0)
                    }
                    Probed::Hit(_) => true, // raced past completion: also fine
                    Probed::Compute(_) => false,
                })
            })
            .collect();
        // Wait until all three block on the flight, then complete.
        while c.inflight_waiters(&it) < 3 {
            std::thread::yield_now();
        }
        c.complete(guard, CachedObject::Scalar(42.0), 1.0, 16, 1);
        for w in waiters {
            assert!(w.join().unwrap(), "waiter saw the owner's result");
        }
        let s = c.stats();
        assert_eq!(s.coalesced_hits, 3);
        assert_eq!(s.inflight_waits, 3);
        assert_eq!(s.hits + s.misses, s.probes, "coalesced counts as hit");
    }

    #[test]
    fn dropped_guard_abandons_and_waiter_takes_over() {
        let c = StdArc::new(cache_kb(64));
        let it = item("abandon");
        let guard = match c.probe_or_begin(&it) {
            Probed::Compute(g) => g,
            _ => panic!("owner"),
        };
        let c2 = c.clone();
        let it2 = it.clone();
        let waiter = std::thread::spawn(move || match c2.probe_or_begin(&it2) {
            Probed::Compute(g) => {
                c2.complete(g, CachedObject::Scalar(7.0), 1.0, 16, 1);
                true
            }
            _ => false,
        });
        while c.inflight_waiters(&it) < 1 {
            std::thread::yield_now();
        }
        drop(guard); // owner errors out
        assert!(waiter.join().unwrap(), "waiter became the new owner");
        assert!(c.probe(&it).is_some(), "second owner's result cached");
        let s = c.stats();
        assert_eq!(s.inflight_abandoned, 1);
        assert_eq!(s.inflight_begins, 2);
    }

    #[test]
    fn complete_pinned_survives_eviction_pressure() {
        // Budget fits one 8 KB matrix; the pinned one must survive.
        // Spill is off so eviction means gone (not demoted to disk).
        let mut cfg = CacheConfig::test();
        cfg.local_budget = 12 << 10;
        cfg.spill_to_disk = false;
        let c = LineageCache::new(cfg);
        let it = item("pinned");
        let m = rand_uniform(32, 32, 0.0, 1.0, 1); // 8 KB
        let guard = match c.probe_or_begin(&it) {
            Probed::Compute(g) => g,
            _ => panic!("owner"),
        };
        assert!(c.complete_pinned(guard, mat(&m), 1.0, m.size_bytes(),));
        // An expensive newcomer would evict the cheap entry — but it is
        // pinned, so the newcomer is rejected for space instead.
        let m2 = rand_uniform(32, 32, 0.0, 1.0, 2);
        c.put(&item("intruder"), mat(&m2), 1e9, m2.size_bytes(), 1);
        assert!(c.probe(&it).is_some(), "pinned entry survived");
        assert!(c.unpin(&it));
        let m3 = rand_uniform(32, 32, 0.0, 1.0, 3);
        c.put(&item("intruder2"), mat(&m3), 1e9, m3.size_bytes(), 1);
        assert!(c.probe(&it).is_none(), "unpinned entry evictable again");
    }

    #[test]
    fn racing_admission_backs_out_cleanly() {
        // Two "sessions" computing the same item: one completes through
        // its guard, the other plain-puts. Accounting must stay single.
        let c = cache_kb(64);
        let it = item("race");
        let m = rand_uniform(8, 8, 0.0, 1.0, 1);
        let guard = match c.probe_or_begin(&it) {
            Probed::Compute(g) => g,
            _ => panic!("owner"),
        };
        // Racing plain put lands first.
        assert!(c.put(&it, mat(&m), 1.0, m.size_bytes(), 1));
        // Owner's completion sees the entry and does not double-account.
        assert!(!c.complete(guard, mat(&m), 1.0, m.size_bytes(), 1));
        assert_eq!(c.local_used(), m.size_bytes(), "no double accounting");
        assert_eq!(c.len(), 1);
    }

    // --------------------------------------------------------------
    // Tenant quotas (serving layer)
    // --------------------------------------------------------------

    #[test]
    fn tenant_bytes_are_accounted_and_released() {
        let c = cache_kb(64);
        let m = rand_uniform(8, 8, 0.0, 1.0, 1);
        assert!(c.put_as(&item("t0"), mat(&m), 1.0, m.size_bytes(), 1, Some(7)));
        assert_eq!(c.tenant_local_used(7), m.size_bytes());
        assert_eq!(c.tenant_local_used(8), 0);
        c.clear();
        assert_eq!(c.tenant_local_used(7), 0, "clear releases tenant bytes");
    }

    #[test]
    fn guard_completion_charges_its_tenant() {
        let c = cache_kb(64);
        let it = item("guarded");
        let m = rand_uniform(8, 8, 0.0, 1.0, 2);
        let guard = match c.probe_or_begin_as(&it, Some(3)) {
            Probed::Compute(g) => g,
            _ => panic!("owner"),
        };
        assert_eq!(guard.tenant(), Some(3));
        assert!(c.complete(guard, mat(&m), 1.0, m.size_bytes(), 1));
        assert_eq!(c.tenant_local_used(3), m.size_bytes());
    }

    #[test]
    fn over_quota_tenant_evicts_first_despite_higher_score() {
        // Budget fits two 8 KB matrices, not three. Tenant 1 is over its
        // 4 KB quota, so its entry is the victim even though its eq. (1)
        // score is far higher than tenant 2's.
        let mut cfg = CacheConfig::test();
        cfg.local_budget = 20 << 10;
        cfg.spill_to_disk = false;
        let c = LineageCache::new(cfg);
        c.set_tenant_quota(1, 4 << 10);
        let m1 = rand_uniform(32, 32, 0.0, 1.0, 1); // 8 KB
        let m2 = rand_uniform(32, 32, 0.0, 1.0, 2);
        assert!(c.put_as(&item("hog"), mat(&m1), 1e9, m1.size_bytes(), 1, Some(1)));
        assert!(c.put_as(&item("meek"), mat(&m2), 1.0, m2.size_bytes(), 1, Some(2)));
        let m3 = rand_uniform(32, 32, 0.0, 1.0, 3);
        assert!(c.put(&item("newcomer"), mat(&m3), 5.0, m3.size_bytes(), 1));
        assert!(c.probe(&item("hog")).is_none(), "over-quota victim first");
        assert!(c.probe(&item("meek")).is_some(), "in-quota entry survives");
        let s = c.stats();
        assert_eq!(s.quota_evictions, 1);
        assert_eq!(c.tenant_local_used(1), 0);
    }

    #[test]
    fn no_quotas_means_plain_eq1_eviction() {
        let mut cfg = CacheConfig::test();
        cfg.local_budget = 20 << 10;
        cfg.spill_to_disk = false;
        let c = LineageCache::new(cfg);
        let m1 = rand_uniform(32, 32, 0.0, 1.0, 1);
        let m2 = rand_uniform(32, 32, 0.0, 1.0, 2);
        assert!(c.put_as(&item("a"), mat(&m1), 1e9, m1.size_bytes(), 1, Some(1)));
        assert!(c.put_as(&item("b"), mat(&m2), 1.0, m2.size_bytes(), 1, Some(2)));
        let m3 = rand_uniform(32, 32, 0.0, 1.0, 3);
        assert!(c.put(&item("c"), mat(&m3), 5.0, m3.size_bytes(), 1));
        assert!(c.probe(&item("a")).is_some(), "high score survives");
        assert!(
            c.probe(&item("b")).is_none(),
            "lowest eq. (1) score evicted"
        );
        assert_eq!(c.stats().quota_evictions, 0);
    }

    #[test]
    fn within_quota_tenants_fall_back_to_score() {
        // Tenant 1 has a generous quota: no quota pass, normal eviction.
        let mut cfg = CacheConfig::test();
        cfg.local_budget = 20 << 10;
        cfg.spill_to_disk = false;
        let c = LineageCache::new(cfg);
        c.set_tenant_quota(1, 1 << 20);
        let m1 = rand_uniform(32, 32, 0.0, 1.0, 1);
        let m2 = rand_uniform(32, 32, 0.0, 1.0, 2);
        assert!(c.put_as(&item("a"), mat(&m1), 1e9, m1.size_bytes(), 1, Some(1)));
        assert!(c.put_as(&item("b"), mat(&m2), 1.0, m2.size_bytes(), 1, Some(1)));
        let m3 = rand_uniform(32, 32, 0.0, 1.0, 3);
        assert!(c.put(&item("c"), mat(&m3), 5.0, m3.size_bytes(), 1));
        assert!(c.probe(&item("a")).is_some());
        assert_eq!(c.stats().quota_evictions, 0);
    }

    #[test]
    fn quota_eviction_spills_keep_tenant_tag_for_promotion() {
        // A spilled over-quota entry keeps its tenant; promotion back to
        // local recharges the tenant's bytes.
        let mut cfg = CacheConfig::test();
        cfg.local_budget = 20 << 10;
        let c = LineageCache::new(cfg);
        c.set_tenant_quota(1, 4 << 10);
        let m1 = rand_uniform(32, 32, 0.0, 1.0, 1);
        let i1 = item("spillme");
        assert!(c.put_as(&i1, mat(&m1), 1e9, m1.size_bytes(), 1, Some(1)));
        c.probe(&i1).expect("hit"); // proven → spill, not drop
        let m2 = rand_uniform(32, 32, 0.0, 1.0, 2);
        assert!(c.put(&item("b"), mat(&m2), 1.0, m2.size_bytes(), 1));
        let m3 = rand_uniform(32, 32, 0.0, 1.0, 3);
        assert!(c.put(&item("c"), mat(&m3), 5.0, m3.size_bytes(), 1));
        assert_eq!(c.stats().local_spills, 1, "over-quota entry spilled");
        assert_eq!(c.tenant_local_used(1), 0, "spill released local bytes");
        // Disk hit promotes it back (evicting someone to make room) and
        // the tenant is charged again.
        c.probe(&i1).expect("disk hit");
        assert_eq!(c.tenant_local_used(1), m1.size_bytes());
    }
}
