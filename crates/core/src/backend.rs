//! First-class backend layer for the lineage cache (paper §3.3, §4).
//!
//! The cache's probe map is backend-agnostic: every entry carries a
//! [`BackendId`] naming the tier that owns its object. Admission,
//! eviction, and hit-side materialization are delegated through the
//! [`CacheBackend`] trait, and the set of tiers attached to a cache is a
//! [`BackendRegistry`] — the driver-local store, the disk-spill tier,
//! Spark, and the GPU are all plain registry entries, and external crates
//! can register additional tiers without touching the cache itself.
//!
//! Every `MAKE_SPACE` path scores victims through one shared
//! [`EvictionPolicy`]: eq. (1) cost&size scoring for entry-granularity
//! tiers and eq. (2) recency/height/cost scoring for GPU free pointers.

use crate::cache::config::CachePolicy;
use crate::cache::entry::{CacheEntry, CachedObject};
use crate::cache::sharded::{Inflight, ShardedEntryMap};
use crate::lineage::LineageId;
use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifies the cache tier owning an entry's object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendId {
    /// Driver-local in-memory matrices and scalars.
    Local,
    /// Driver-local disk-spill binaries.
    Disk,
    /// Simulated Spark cluster (RDD handles).
    Spark,
    /// Simulated GPU device (managed pointers).
    Gpu,
    /// An externally registered tier.
    Custom(u16),
}

impl BackendId {
    /// Short tag for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            BackendId::Local => "local",
            BackendId::Disk => "disk",
            BackendId::Spark => "spark",
            BackendId::Gpu => "gpu",
            BackendId::Custom(_) => "custom",
        }
    }
}

impl fmt::Display for BackendId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendId::Custom(n) => write!(f, "custom#{n}"),
            other => f.write_str(other.as_str()),
        }
    }
}

/// The unified eviction policy: one scoring function per granularity,
/// instantiated with per-backend parameters (sample bound).
#[derive(Debug, Clone, Copy)]
pub struct EvictionPolicy {
    /// Candidates examined per eviction: like Spark's sampling-based
    /// entry selection, scanning a bounded sample keeps eviction O(1)
    /// amortized instead of O(entries) per insertion.
    pub sample_limit: usize,
    /// Cost model: `Paper` scores by eq. (1) exactly; `DelayedHits`
    /// adds the TTNA-discounted aggregate-delay term.
    pub policy: CachePolicy,
}

impl Default for EvictionPolicy {
    fn default() -> Self {
        Self {
            sample_limit: 64,
            policy: CachePolicy::Paper,
        }
    }
}

impl EvictionPolicy {
    /// Half-life (in virtual-clock ticks) of the TTNA discount: an
    /// entry expected back within `TTNA_HALF_LIFE` ticks keeps more
    /// than half of its aggregate-delay credit; one expected back much
    /// later keeps almost none.
    pub const TTNA_HALF_LIFE: f64 = 64.0;

    /// A policy with the default sample bound and the given cost model.
    pub fn with_policy(policy: CachePolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }
    /// Eq. (1) score `(r_h + r_m + r_j) * c(o) / s(o)` — smallest is
    /// evicted first.
    pub fn cost_size_score(refs: u64, cost: f64, size: usize) -> f64 {
        (refs as f64).max(1.0) * cost / size.max(1) as f64
    }

    /// Eq. (1) applied to an entry's reuse metadata.
    pub fn entry_score(e: &CacheEntry) -> f64 {
        Self::cost_size_score(e.hits + e.misses + e.jobs, e.compute_cost, e.size)
    }

    /// Delayed-hits extension of eq. (1):
    /// `refs.max(1) * (c(o) + aggregate_delay * discount) / s(o)` where
    /// `aggregate_delay = miss_waiters * c(o)` (every coalesced waiter
    /// stacked behind a miss paid the full recompute latency again) and
    /// `discount = H / (H + TTNA)` fades the credit of entries not
    /// expected back soon. An entry with no observed inter-probe gap yet
    /// carries no TTNA evidence, so its delay credit is *not* discounted
    /// (`discount = 1`): a freshly readmitted batch-serving entry keeps
    /// its waiter protection through the window before its next probe
    /// instead of collapsing back to eq. (1) and thrashing. With zero
    /// observed waiters the delay term vanishes and the score is
    /// *exactly* eq. (1) — the `Paper` policy is the zero-pressure fixed
    /// point, not an approximation of it.
    pub fn delayed_hits_score(e: &CacheEntry) -> f64 {
        let refs = ((e.hits + e.misses + e.jobs) as f64).max(1.0);
        let discount = if e.probe_gaps == 0 {
            1.0
        } else {
            Self::TTNA_HALF_LIFE / (Self::TTNA_HALF_LIFE + e.ttna_ewma)
        };
        let aggregate_delay = e.miss_waiters as f64 * e.compute_cost;
        refs * (e.compute_cost + aggregate_delay * discount) / e.size.max(1) as f64
    }

    /// The entry score under this policy's cost model.
    pub fn score(&self, e: &CacheEntry) -> f64 {
        match self.policy {
            CachePolicy::Paper => Self::entry_score(e),
            CachePolicy::DelayedHits => Self::delayed_hits_score(e),
        }
    }

    /// Eq. (2) score `T_a(o) + 1/h(o) + c(o)` (each term normalized) —
    /// smallest is recycled/freed first.
    pub fn gpu_score(last_access: u64, clock: u64, height: u32, cost: f64, max_cost: f64) -> f64 {
        let ta = if clock == 0 {
            0.0
        } else {
            last_access as f64 / clock as f64
        };
        let inv_h = 1.0 / height.max(1) as f64;
        let c = if max_cost > 0.0 { cost / max_cost } else { 0.0 };
        ta + inv_h + c
    }

    /// Selects the minimum-score victim among a bounded sample of
    /// candidates (eq. (1) ordering). Keys are interned ids, so the
    /// winner is returned by value — no per-candidate clone.
    pub fn select_victim<'a, I>(&self, candidates: I) -> Option<LineageId>
    where
        I: Iterator<Item = (&'a LineageId, &'a CacheEntry)>,
    {
        candidates
            .take(self.sample_limit)
            .min_by(|(_, a), (_, b)| {
                self.score(a)
                    .partial_cmp(&self.score(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(k, _)| *k)
    }
}

/// One shard of the unified probe map: lineage keys to entries (any
/// backend) plus the shard's in-flight computation markers. Shards are
/// hash-partitioned and independently locked inside
/// [`ShardedEntryMap`]; the logical clock is global to the sharded map.
#[derive(Default)]
pub struct EntryMap {
    /// All entries, placeholders included.
    pub entries: HashMap<LineageId, CacheEntry>,
    /// In-flight computations keyed by lineage id: a second session
    /// probing one of these blocks on the marker instead of recomputing.
    pub inflight: HashMap<LineageId, Arc<Inflight>>,
}

impl EntryMap {
    /// Creates an empty shard.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Outcome of a hit-side [`CacheBackend::materialize`].
#[derive(Debug)]
pub enum Materialized {
    /// The object is reusable (backend resources acquired as needed).
    Hit(CachedObject),
    /// The entry is no longer usable (lost spill file, stale pointer);
    /// the cache drops it and reports a miss.
    Stale,
}

/// Point-in-time report of one backend, aggregated by the registry into
/// the unified per-backend stats report.
#[derive(Debug, Clone)]
pub struct BackendSnapshot {
    /// The reporting tier.
    pub id: BackendId,
    /// Bytes currently accounted to the tier.
    pub used: usize,
    /// Byte budget (`usize::MAX` = unbounded).
    pub budget: usize,
    /// Entries owned in the probe map (filled by the cache; a backend
    /// alone cannot see the map).
    pub entries: usize,
    /// Backend-specific counters (spills, recycles, jobs, ...).
    pub detail: Vec<(&'static str, u64)>,
}

impl fmt::Display for BackendSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let budget = if self.budget == usize::MAX {
            "inf".to_string()
        } else {
            format!("{}", self.budget)
        };
        write!(
            f,
            "{:<7} used={}/{} entries={}",
            self.id.to_string(),
            self.used,
            budget,
            self.entries
        )?;
        for (k, v) in &self.detail {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

/// One cache tier: admission, hit-side materialization, eviction, and
/// accounting for the entries it owns.
///
/// Methods receive the *sharded* probe map with **no shard lock held**:
/// implementations lock the shards they touch (one at a time — see the
/// lock discipline in [`crate::cache::sharded`]) and may take their own
/// accounting locks under a shard lock, never the reverse order. The
/// registry is passed so tiers can cooperate — e.g. the local tier
/// spills into the disk tier, and the disk tier promotes hot entries
/// back through the local tier. Pinned and in-flight entries are never
/// eviction victims: pinned entries are filtered by victim selection,
/// and in-flight markers live outside the entry map entirely.
pub trait CacheBackend: Send + Sync {
    /// The tier this backend implements.
    fn id(&self) -> BackendId;

    /// MAKE_SPACE + admission of `entry` (not yet inserted in the map).
    /// The backend evicts its own victims as needed, updates accounting,
    /// performs side effects (persist, mark-cached), and may adjust
    /// `entry.size`. Returns false to reject the object entirely.
    fn put(
        &self,
        map: &ShardedEntryMap,
        reg: &BackendRegistry,
        key: LineageId,
        entry: &mut CacheEntry,
    ) -> bool;

    /// Hit-side conversion of the stored object into a reusable one:
    /// disk read (and optional promotion), RDD materialization checks,
    /// GPU pointer acquisition. Updates the entry's reuse counters and
    /// the per-backend hit statistics.
    fn materialize(
        &self,
        map: &ShardedEntryMap,
        reg: &BackendRegistry,
        key: LineageId,
    ) -> Materialized;

    /// Evicts this tier's victims (eq. (1)/(2) order) until at least
    /// `bytes` are freed or no victims remain. `skip` protects the entry
    /// currently being admitted/promoted. Returns bytes freed.
    fn evict_until(
        &self,
        map: &ShardedEntryMap,
        reg: &BackendRegistry,
        bytes: usize,
        skip: Option<LineageId>,
    ) -> usize;

    /// Bytes currently accounted to this tier.
    fn used(&self) -> usize;

    /// Byte budget of this tier (`usize::MAX` = unbounded).
    fn budget(&self) -> usize;

    /// Uniform stats report (the cache fills `entries`).
    fn snapshot(&self) -> BackendSnapshot;

    /// Releases backend resources held by an entry leaving the cache
    /// (unpersist, unmark, spill-file removal) and reverses accounting.
    fn release(&self, entry: &CacheEntry);

    /// Downcast support for backend-concrete accessors.
    fn as_any(&self) -> &dyn Any;
}

/// The ordered set of tiers attached to one cache.
#[derive(Default, Clone)]
pub struct BackendRegistry {
    backends: Vec<Arc<dyn CacheBackend>>,
}

impl BackendRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tier, replacing any previous tier with the same id.
    pub fn register(&mut self, backend: Arc<dyn CacheBackend>) {
        let id = backend.id();
        self.backends.retain(|b| b.id() != id);
        self.backends.push(backend);
    }

    /// Looks a tier up by id.
    pub fn get(&self, id: BackendId) -> Option<&Arc<dyn CacheBackend>> {
        self.backends.iter().find(|b| b.id() == id)
    }

    /// True when a tier with this id is registered.
    pub fn contains(&self, id: BackendId) -> bool {
        self.get(id).is_some()
    }

    /// Iterates the registered tiers in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn CacheBackend>> {
        self.backends.iter()
    }

    /// Downcasts a registered tier to its concrete type.
    pub fn downcast<T: 'static>(&self, id: BackendId) -> Option<&T> {
        self.get(id).and_then(|b| b.as_any().downcast_ref::<T>())
    }

    /// Aggregates every tier's [`CacheBackend::snapshot`] into one
    /// per-backend report (entry counts left at zero; the cache fills
    /// them from the probe map).
    pub fn snapshots(&self) -> Vec<BackendSnapshot> {
        self.backends.iter().map(|b| b.snapshot()).collect()
    }
}

impl fmt::Debug for BackendRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.backends.iter().map(|b| b.id()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::LineageItem;

    #[test]
    fn backend_id_tags_and_display() {
        assert_eq!(BackendId::Local.as_str(), "local");
        assert_eq!(BackendId::Spark.as_str(), "spark");
        assert_eq!(BackendId::Custom(3).to_string(), "custom#3");
        assert_eq!(BackendId::Gpu.to_string(), "gpu");
    }

    #[test]
    fn eq1_orders_by_value_density() {
        // Expensive & small beats cheap & large; references scale up.
        let precious = EvictionPolicy::cost_size_score(5, 1e9, 8);
        let bulky = EvictionPolicy::cost_size_score(5, 1.0, 1 << 30);
        assert!(precious > bulky);
        assert!(
            EvictionPolicy::cost_size_score(10, 10.0, 100)
                > EvictionPolicy::cost_size_score(1, 10.0, 100)
        );
        // Zero references count as one (freshly admitted entries).
        assert_eq!(
            EvictionPolicy::cost_size_score(0, 10.0, 100),
            EvictionPolicy::cost_size_score(1, 10.0, 100)
        );
    }

    #[test]
    fn eq2_prefers_stale_tall_cheap() {
        let stale_tall_cheap = EvictionPolicy::gpu_score(1, 100, 10, 1.0, 100.0);
        let fresh_short_costly = EvictionPolicy::gpu_score(99, 100, 1, 100.0, 100.0);
        assert!(stale_tall_cheap < fresh_short_costly);
        // Degenerate clocks/costs do not divide by zero.
        assert!(EvictionPolicy::gpu_score(0, 0, 0, 0.0, 0.0).is_finite());
    }

    #[test]
    fn select_victim_picks_min_score() {
        let policy = EvictionPolicy::default();
        let mut map = EntryMap::new();
        for (name, cost) in [("a", 50.0), ("b", 2.0), ("c", 9.0)] {
            let item = LineageItem::leaf(name);
            let e = CacheEntry::cached(&item, CachedObject::Scalar(0.0), cost, 16);
            map.entries.insert(item.lid, e);
        }
        let victim = policy.select_victim(map.entries.iter()).expect("victim");
        let e = &map.entries[&victim];
        assert_eq!(e.compute_cost, 2.0, "cheapest entry evicted first");
    }

    #[test]
    fn registry_replaces_same_id_and_downcasts() {
        struct Dummy(u64);
        impl CacheBackend for Dummy {
            fn id(&self) -> BackendId {
                BackendId::Custom(1)
            }
            fn put(
                &self,
                _: &ShardedEntryMap,
                _: &BackendRegistry,
                _: LineageId,
                _: &mut CacheEntry,
            ) -> bool {
                true
            }
            fn materialize(
                &self,
                _: &ShardedEntryMap,
                _: &BackendRegistry,
                _: LineageId,
            ) -> Materialized {
                Materialized::Stale
            }
            fn evict_until(
                &self,
                _: &ShardedEntryMap,
                _: &BackendRegistry,
                _: usize,
                _: Option<LineageId>,
            ) -> usize {
                0
            }
            fn used(&self) -> usize {
                0
            }
            fn budget(&self) -> usize {
                usize::MAX
            }
            fn snapshot(&self) -> BackendSnapshot {
                BackendSnapshot {
                    id: self.id(),
                    used: 0,
                    budget: usize::MAX,
                    entries: 0,
                    detail: vec![],
                }
            }
            fn release(&self, _: &CacheEntry) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let mut reg = BackendRegistry::new();
        reg.register(Arc::new(Dummy(1)));
        reg.register(Arc::new(Dummy(2)));
        assert_eq!(reg.iter().count(), 1, "same id replaced");
        assert_eq!(reg.downcast::<Dummy>(BackendId::Custom(1)).unwrap().0, 2);
        assert!(!reg.contains(BackendId::Gpu));
        assert!(reg.snapshots().len() == 1);
    }
}
