//! Backend-agnostic, fine-grained lineage tracing (paper §3.2).
//!
//! A lineage trace is a DAG of [`LineageItem`]s built incrementally at
//! runtime: one item per executed instruction, holding the opcode, literal
//! data items, and pointers to the input items. Items are immutable and
//! shared (`Arc`), with precomputed hash and height so that probing the
//! lineage cache is cheap; full equality uses the paper's non-recursive,
//! queue-based comparison with sub-DAG memoization and early aborts.
//!
//! # Interned identity
//!
//! Every structurally-unique DAG is additionally assigned a process-global
//! [`LineageId`] at construction time by a sharded intern table keyed on
//! the precomputed FNV hash. The id is a `u32` + the content hash, `Copy`,
//! and compares as a single integer — it is the key type of the entire
//! cache (entry map, in-flight markers, eviction scoring, GPU pointer
//! tags, disk manifest tags), so the steady-state probe→hit path never
//! walks a DAG and never allocates. Structural twins share the id but keep
//! their own `Arc` (the first construction is the canonical trace,
//! retrievable via [`resolve`]); a hash collision between structurally
//! distinct DAGs aborts the process — with a 64-bit FNV over full DAG
//! content this is the same abort-on-collision contract the paper's
//! hash-probing already relied on, now enforced eagerly.
//!
//! The intern table deliberately never shrinks: a `LineageId` must stay
//! resolvable for as long as the process may probe with it. This trades
//! bounded growth (one canonical `Arc` per unique DAG ever traced) for an
//! allocation-free, lock-free-on-probe identity — the same trade
//! SystemDS-style lineage dedup makes.

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Shared handle to a lineage DAG node.
pub type LItem = Arc<LineageItem>;

static NEXT_ITEM_ID: AtomicU64 = AtomicU64::new(1);

/// Compact process-global identity of a structurally-unique lineage DAG.
///
/// Equality is a single `u32` compare; hashing writes the precomputed
/// content-derived FNV hash of the DAG (so `HashMap<LineageId, _>`
/// distributes identically to hashing the DAG itself, and shard
/// assignment / eviction tie-breaks stay deterministic across runs).
/// There is deliberately no `Ord`: the raw id is allocation order, which
/// is racy under concurrent tracing — any ordering must use
/// [`LineageId::content_hash`] instead.
#[derive(Debug, Clone, Copy)]
pub struct LineageId {
    id: u32,
    hash: u64,
}

impl LineageId {
    /// The raw interned index (diagnostics only; allocation order is not
    /// deterministic across runs or threads).
    pub fn raw(self) -> u32 {
        self.id
    }

    /// The content-derived FNV hash of the DAG this id identifies. Stable
    /// across runs; use it for sharding and deterministic tie-breaks.
    pub fn content_hash(self) -> u64 {
        self.hash
    }
}

impl PartialEq for LineageId {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for LineageId {}

impl std::hash::Hash for LineageId {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// One node of a lineage trace: an executed operator with its literal
/// arguments and input lineage.
#[derive(Debug)]
pub struct LineageItem {
    /// Process-unique id (object identity; not part of equality).
    pub id: u64,
    /// Interned structural identity: equal for all structurally-equal
    /// DAGs, distinct otherwise. The cache's key type.
    pub lid: LineageId,
    /// Operator code, e.g. `"ba+*"` (matmul), `"tsmm"`, `"rand"`, or
    /// `"func:linRegDS"` for multi-level (function) reuse entries.
    pub opcode: Arc<str>,
    /// Literal data items: scalar values, dimensions, seeds — everything
    /// that makes the instruction deterministic and unique.
    pub data: Vec<String>,
    /// Input lineage items.
    pub inputs: Vec<LItem>,
    /// Precomputed DAG hash (hash of opcode, data, and input hashes).
    pub hash: u64,
    /// DAG height: leaves have height 1.
    pub height: u32,
}

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

// ---------------------------------------------------------------------
// Intern table
// ---------------------------------------------------------------------

const INTERN_SHARDS: usize = 64;

struct InternTable {
    /// content hash → (interned id, canonical first trace).
    shards: [Mutex<HashMap<u64, (u32, LItem)>>; INTERN_SHARDS],
    next: AtomicU32,
    reused: AtomicU64,
}

fn intern_table() -> &'static InternTable {
    static TABLE: OnceLock<InternTable> = OnceLock::new();
    TABLE.get_or_init(|| InternTable {
        shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        next: AtomicU32::new(0),
        reused: AtomicU64::new(0),
    })
}

/// Global intern-table statistics (informational; reported by the perf
/// harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InternStats {
    /// Structurally-unique DAGs interned so far.
    pub unique: u64,
    /// Constructions that reused an existing id (structural twins).
    pub reused: u64,
}

/// Snapshot of the process-global intern table counters.
pub fn intern_stats() -> InternStats {
    let t = intern_table();
    InternStats {
        unique: t.next.load(Ordering::Relaxed) as u64,
        reused: t.reused.load(Ordering::Relaxed),
    }
}

/// Returns the canonical (first-traced) item for an interned id.
///
/// Lock + `Arc` clone only — no heap allocation; safe on the probe hot
/// path. Panics if the id was never minted by interning (impossible for
/// ids read off a live `LineageItem`).
pub fn resolve(id: LineageId) -> LItem {
    let shard = intern_table().shards[(id.hash as usize) & (INTERN_SHARDS - 1)].lock();
    shard
        .get(&id.hash)
        .map(|(_, canonical)| canonical.clone())
        .expect("LineageId resolves: ids are only minted by the intern table")
}

/// Interns `(opcode, data, inputs)` under the given precomputed hash.
///
/// First construction of a structure becomes the canonical trace and is
/// returned directly; later structural twins get a **fresh** `Arc`
/// carrying the same [`LineageId`] (object identity stays distinct, as
/// the compaction tests require). A hash-equal but structurally-unequal
/// construction is a silent-corruption hazard and aborts the process.
fn intern_node(
    opcode: Arc<str>,
    data: Vec<String>,
    inputs: Vec<LItem>,
    hash: u64,
    height: u32,
) -> LItem {
    let table = intern_table();
    let mut shard = table.shards[(hash as usize) & (INTERN_SHARDS - 1)].lock();
    match shard.get(&hash) {
        Some((id, canonical)) => {
            // Cheap structural verification against the canonical trace:
            // input ids compare by interned identity, which is
            // inductively structural — O(node), not O(DAG).
            assert!(
                canonical.opcode == opcode
                    && canonical.data == data
                    && canonical.inputs.len() == inputs.len()
                    && canonical
                        .inputs
                        .iter()
                        .zip(&inputs)
                        .all(|(a, b)| a.lid == b.lid),
                "lineage hash collision: structurally distinct DAGs share hash {hash:#018x} \
                 (opcode `{}` vs `{}`) — aborting to prevent silent cross-reuse",
                canonical.opcode,
                opcode,
            );
            table.reused.fetch_add(1, Ordering::Relaxed);
            Arc::new(LineageItem {
                id: NEXT_ITEM_ID.fetch_add(1, Ordering::Relaxed),
                lid: LineageId { id: *id, hash },
                opcode,
                data,
                inputs,
                hash,
                height,
            })
        }
        None => {
            let id = table.next.fetch_add(1, Ordering::Relaxed);
            let item = Arc::new(LineageItem {
                id: NEXT_ITEM_ID.fetch_add(1, Ordering::Relaxed),
                lid: LineageId { id, hash },
                opcode,
                data,
                inputs,
                hash,
                height,
            });
            shard.insert(hash, (id, item.clone()));
            item
        }
    }
}

impl LineageItem {
    /// Creates an operator node over `inputs`.
    pub fn new(opcode: &str, data: Vec<String>, inputs: Vec<LItem>) -> LItem {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        fnv(&mut hash, opcode.as_bytes());
        for d in &data {
            fnv(&mut hash, &[0xfe]);
            fnv(&mut hash, d.as_bytes());
        }
        for i in &inputs {
            fnv(&mut hash, &[0xff]);
            fnv(&mut hash, &i.hash.to_le_bytes());
        }
        let height = 1 + inputs.iter().map(|i| i.height).max().unwrap_or(0);
        intern_node(Arc::from(opcode), data, inputs, hash, height)
    }

    /// Creates a leaf node (an input dataset, literal, or seeded random
    /// source). `name` uniquely identifies the data, e.g. a file path or a
    /// content fingerprint.
    pub fn leaf(name: &str) -> LItem {
        Self::new("leaf", vec![name.to_string()], vec![])
    }

    /// Number of reachable nodes (counting shared sub-DAGs once).
    pub fn dag_size(self: &LItem) -> usize {
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([self.clone()]);
        while let Some(item) = queue.pop_front() {
            if seen.insert(item.id) {
                queue.extend(item.inputs.iter().cloned());
            }
        }
        seen.len()
    }
}

/// The paper's queue-based structural equality with memoization and early
/// aborts (hash mismatch, height mismatch, shared sub-DAG object
/// identity). With interning, structurally-equal DAGs share a
/// [`LineageId`], so the common case is a single integer compare; the
/// queue-based walk remains as the definition the intern table is
/// verified against.
pub fn lineage_eq(a: &LItem, b: &LItem) -> bool {
    if a.lid == b.lid {
        return true; // interned identity: structural equality by construction
    }
    let mut queue: VecDeque<(LItem, LItem)> = VecDeque::from([(a.clone(), b.clone())]);
    let mut memo: HashSet<(u64, u64)> = HashSet::new();
    while let Some((x, y)) = queue.pop_front() {
        if Arc::ptr_eq(&x, &y) {
            continue; // shared sub-DAG: object identity short-circuit
        }
        if x.hash != y.hash
            || x.height != y.height
            || x.opcode != y.opcode
            || x.data != y.data
            || x.inputs.len() != y.inputs.len()
        {
            return false;
        }
        if !memo.insert((x.id.min(y.id), x.id.max(y.id))) {
            continue; // pair already verified on another path
        }
        for (xi, yi) in x.inputs.iter().zip(y.inputs.iter()) {
            queue.push_back((xi.clone(), yi.clone()));
        }
    }
    true
}

/// Maps live variable names to their lineage DAGs (the `LineageMap` of
/// paper §3.2), with the compaction optimization of §3.3: on a successful
/// cache probe the variable's trace is replaced by the cached entry's key,
/// increasing shared sub-DAGs.
#[derive(Debug, Default)]
pub struct LineageMap {
    map: HashMap<String, LItem>,
}

impl LineageMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// TRACE: builds the lineage item for an instruction writing `output`,
    /// reading variables `input_vars`, with literal `data` items, and
    /// registers it under the output variable. Returns the new item.
    ///
    /// # Panics
    /// Panics if an input variable has no lineage (engine bug).
    pub fn trace(
        &mut self,
        output: &str,
        opcode: &str,
        data: Vec<String>,
        input_vars: &[&str],
    ) -> LItem {
        let inputs: Vec<LItem> = input_vars
            .iter()
            .map(|v| {
                self.map
                    .get(*v)
                    .unwrap_or_else(|| panic!("no lineage for variable {v}"))
                    .clone()
            })
            .collect();
        let item = LineageItem::new(opcode, data, inputs);
        self.map.insert(output.to_string(), item.clone());
        item
    }

    /// Registers a leaf lineage (input dataset or literal) for a variable.
    pub fn set_leaf(&mut self, var: &str, name: &str) -> LItem {
        let item = LineageItem::leaf(name);
        self.map.insert(var.to_string(), item.clone());
        item
    }

    /// Binds a variable to an existing lineage item (variable assignment
    /// or function-result binding).
    pub fn bind(&mut self, var: &str, item: LItem) {
        self.map.insert(var.to_string(), item);
    }

    /// The lineage of a variable.
    pub fn get(&self, var: &str) -> Option<&LItem> {
        self.map.get(var)
    }

    /// Removes a variable binding (end of scope).
    pub fn remove(&mut self, var: &str) -> Option<LItem> {
        self.map.remove(var)
    }

    /// Compaction (§3.3): after a successful probe of `item` that matched
    /// the cached `canonical` key, rebinds every variable currently mapped
    /// to a structurally-equal trace to the canonical item, increasing
    /// object-identity sharing. Returns how many bindings were compacted.
    ///
    /// Structural equality is an interned-id compare, so compaction is
    /// O(bindings), not O(bindings × DAG).
    pub fn compact(&mut self, item: &LItem, canonical: &LItem) -> usize {
        if Arc::ptr_eq(item, canonical) {
            return 0;
        }
        let mut n = 0;
        for bound in self.map.values_mut() {
            if !Arc::ptr_eq(bound, canonical) && bound.lid == canonical.lid {
                *bound = canonical.clone();
                n += 1;
            }
        }
        n
    }

    /// Number of live bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

// ---------------------------------------------------------------------
// Serialization (paper: SERIALIZE / DESERIALIZE for debugging and
// cross-environment recomputation)
// ---------------------------------------------------------------------

/// Serializes a lineage DAG to a line-oriented log:
/// `(<node>) <opcode> [<data>,*] (<input-node>,*)` — topologically ordered,
/// leaves first. Shared sub-DAGs appear once.
///
/// The output string is preallocated from the DAG's node contents and
/// every field is appended into that one buffer directly — no per-node
/// intermediate strings or joins.
pub fn serialize(root: &LItem) -> String {
    let mut order: Vec<LItem> = Vec::new();
    let mut seen: HashSet<u64> = HashSet::new();
    fn visit(item: &LItem, seen: &mut HashSet<u64>, order: &mut Vec<LItem>) {
        if !seen.insert(item.id) {
            return;
        }
        for i in &item.inputs {
            visit(i, seen, order);
        }
        order.push(item.clone());
    }
    visit(root, &mut seen, &mut order);
    let index: HashMap<u64, usize> = order.iter().enumerate().map(|(i, n)| (n.id, i)).collect();
    // Per line: "(i) opcode [d1,d2] (i1,i2)\n" — opcode + data bytes +
    // up to ~8 digits per reference + fixed punctuation. Escapes can
    // lengthen data slightly; the estimate stays within one growth step.
    let cap: usize = order
        .iter()
        .map(|n| {
            n.opcode.len()
                + n.data.iter().map(|d| d.len() + 1).sum::<usize>()
                + n.inputs.len() * 8
                + 16
        })
        .sum();
    let mut out = String::with_capacity(cap);
    for (i, node) in order.iter().enumerate() {
        write!(out, "({i}) {} [", node.opcode).expect("write to string");
        for (j, d) in node.data.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            for c in d.chars() {
                if c == '\\' || c == ',' {
                    out.push('\\');
                }
                out.push(c);
            }
        }
        out.push_str("] (");
        for (j, input) in node.inputs.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write!(out, "{}", index[&input.id]).expect("write to string");
        }
        out.push_str(")\n");
    }
    out
}

/// Errors from [`deserialize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line did not match the expected grammar.
    Malformed(usize),
    /// An input reference pointed to an undefined or later node.
    BadReference(usize),
    /// The log was empty.
    Empty,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed(l) => write!(f, "malformed lineage log at line {l}"),
            ParseError::BadReference(l) => write!(f, "bad node reference at line {l}"),
            ParseError::Empty => write!(f, "empty lineage log"),
        }
    }
}

impl std::error::Error for ParseError {}

fn split_escaped(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut esc = false;
    for c in s.chars() {
        if esc {
            cur.push(c);
            esc = false;
        } else if c == '\\' {
            esc = true;
        } else if c == ',' {
            out.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Deserializes a log produced by [`serialize`], returning the root item
/// (the last line).
pub fn deserialize(log: &str) -> Result<LItem, ParseError> {
    let mut nodes: Vec<LItem> = Vec::new();
    for (lineno, line) in log.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // Grammar: (i) opcode [data] (inputs)
        let rest = line
            .strip_prefix('(')
            .ok_or(ParseError::Malformed(lineno))?;
        let (_idx, rest) = rest.split_once(") ").ok_or(ParseError::Malformed(lineno))?;
        let (opcode, rest) = rest.split_once(" [").ok_or(ParseError::Malformed(lineno))?;
        let (data_str, rest) = rest
            .rsplit_once("] (")
            .ok_or(ParseError::Malformed(lineno))?;
        let inputs_str = rest
            .strip_suffix(')')
            .ok_or(ParseError::Malformed(lineno))?;
        let data = split_escaped(data_str);
        let mut inputs = Vec::new();
        if !inputs_str.is_empty() {
            for tok in inputs_str.split(',') {
                let i: usize = tok
                    .trim()
                    .parse()
                    .map_err(|_| ParseError::BadReference(lineno))?;
                if i >= nodes.len() {
                    return Err(ParseError::BadReference(lineno));
                }
                inputs.push(nodes[i].clone());
            }
        }
        nodes.push(LineageItem::new(opcode, data, inputs));
    }
    nodes.pop().ok_or(ParseError::Empty)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm(a: &LItem, b: &LItem) -> LItem {
        LineageItem::new("ba+*", vec![], vec![a.clone(), b.clone()])
    }

    #[test]
    fn identical_construction_is_equal() {
        let x = LineageItem::leaf("X.bin");
        let y = LineageItem::leaf("y.bin");
        let a = mm(&x, &y);
        let x2 = LineageItem::leaf("X.bin");
        let y2 = LineageItem::leaf("y.bin");
        let b = mm(&x2, &y2);
        assert_eq!(a.hash, b.hash);
        assert!(lineage_eq(&a, &b));
        assert_eq!(a.lid, b.lid, "structural twins intern to one id");
    }

    #[test]
    fn interned_twins_share_id_but_not_identity() {
        let a = LineageItem::leaf("intern/unique-twin-leaf");
        let b = LineageItem::leaf("intern/unique-twin-leaf");
        assert_eq!(a.lid, b.lid);
        assert!(!Arc::ptr_eq(&a, &b), "twins keep distinct Arcs");
        // The canonical trace is the first construction.
        assert!(Arc::ptr_eq(&resolve(a.lid), &a));
        assert!(Arc::ptr_eq(&resolve(b.lid), &a));
    }

    #[test]
    fn distinct_dags_get_distinct_ids() {
        let a = LineageItem::leaf("intern/distinct-a");
        let b = LineageItem::leaf("intern/distinct-b");
        assert_ne!(a.lid, b.lid);
        let c = LineageItem::new("r'", vec![], vec![a.clone()]);
        assert_ne!(a.lid, c.lid);
        assert_eq!(c.lid.content_hash(), c.hash);
    }

    #[test]
    #[should_panic(expected = "lineage hash collision")]
    fn hash_collision_aborts() {
        let a = LineageItem::leaf("intern/collision-victim");
        // Force a structurally different node carrying the same hash:
        // the intern table must refuse to alias them.
        let _ = intern_node(Arc::from("not-a-leaf"), vec![], vec![], a.hash, 1);
    }

    #[test]
    fn different_opcode_data_or_inputs_differ() {
        let x = LineageItem::leaf("X.bin");
        let y = LineageItem::leaf("y.bin");
        let a = mm(&x, &y);
        let b = LineageItem::new("tsmm", vec![], vec![x.clone(), y.clone()]);
        assert!(!lineage_eq(&a, &b));
        let c = mm(&y, &x); // swapped order
        assert!(!lineage_eq(&a, &c));
        let d = LineageItem::new("ba+*", vec!["k=2".into()], vec![x.clone(), y.clone()]);
        assert!(!lineage_eq(&a, &d));
        let e = LineageItem::leaf("Z.bin");
        assert!(!lineage_eq(&a, &mm(&e, &y)));
    }

    #[test]
    fn height_and_hash_precomputed() {
        let x = LineageItem::leaf("X");
        assert_eq!(x.height, 1);
        let t = LineageItem::new("t", vec![], vec![x.clone()]);
        assert_eq!(t.height, 2);
        let m = mm(&t, &x);
        assert_eq!(m.height, 3);
    }

    #[test]
    fn shared_subdags_compare_in_linear_time() {
        // A deep chain with heavy sharing: naive recursion would be 2^40.
        let mut a = LineageItem::leaf("X");
        let mut b = LineageItem::leaf("X");
        for _ in 0..40 {
            a = mm(&a, &a);
            b = mm(&b, &b);
        }
        assert!(lineage_eq(&a, &b)); // memoization must terminate fast
        assert_eq!(a.dag_size(), 41);
    }

    #[test]
    fn hash_mismatch_aborts_early() {
        let a = LineageItem::leaf("A");
        let b = LineageItem::leaf("B");
        assert_ne!(a.hash, b.hash);
        assert!(!lineage_eq(&a, &b));
    }

    #[test]
    fn trace_builds_from_live_variables() {
        let mut lm = LineageMap::new();
        lm.set_leaf("X", "X.bin");
        lm.set_leaf("y", "y.bin");
        let t = lm.trace("tX", "r'", vec![], &["X"]);
        assert_eq!(t.height, 2);
        let b = lm.trace("b", "ba+*", vec![], &["tX", "y"]);
        assert_eq!(b.inputs.len(), 2);
        assert!(Arc::ptr_eq(&b.inputs[0], lm.get("tX").unwrap()));
        // Rebinding replaces the trace.
        lm.trace("b", "r'", vec![], &["b"]);
        assert_eq!(lm.get("b").unwrap().height, 4);
    }

    #[test]
    #[should_panic(expected = "no lineage for variable")]
    fn trace_missing_input_panics() {
        let mut lm = LineageMap::new();
        lm.trace("out", "op", vec![], &["missing"]);
    }

    #[test]
    fn compaction_rebinds_to_canonical() {
        let mut lm = LineageMap::new();
        lm.set_leaf("X", "X.bin");
        let t1 = lm.trace("a", "r'", vec![], &["X"]);
        // A second, structurally identical trace under another variable.
        lm.set_leaf("X2", "X.bin");
        let t2 = lm.trace("b", "r'", vec![], &["X2"]);
        assert!(lineage_eq(&t1, &t2));
        assert!(!Arc::ptr_eq(&t1, &t2));
        let n = lm.compact(&t2, &t1);
        assert_eq!(n, 1);
        assert!(Arc::ptr_eq(lm.get("b").unwrap(), &t1));
    }

    #[test]
    fn serialize_roundtrip_preserves_equality() {
        let x = LineageItem::leaf("X.bin");
        let t = LineageItem::new("r'", vec![], vec![x.clone()]);
        let m = LineageItem::new("ba+*", vec!["reg=0.1".into()], vec![t.clone(), x.clone()]);
        let log = serialize(&m);
        let back = deserialize(&log).unwrap();
        assert!(lineage_eq(&m, &back));
        assert_eq!(back.height, m.height);
    }

    #[test]
    fn serialize_roundtrip_preserves_content_hash() {
        // The durable disk tier keys records on `content_hash` and
        // re-interns the embedded lineage log at recovery: the hash of
        // the deserialized item must equal the hash the record was
        // written under, or recovered entries could never match a probe.
        let x = LineageItem::leaf("X.bin");
        let t = LineageItem::new("r'", vec![], vec![x.clone()]);
        let m = LineageItem::new("ba+*", vec!["reg=0.1".into()], vec![t, x]);
        let back = deserialize(&serialize(&m)).unwrap();
        assert_eq!(back.lid.content_hash(), m.lid.content_hash());
        assert_eq!(back.lid, m.lid, "re-interning yields the same identity");
    }

    #[test]
    fn serialize_escapes_commas() {
        let leaf = LineageItem::new("rand", vec!["dims=3,4".into(), "p\\q".into()], vec![]);
        let back = deserialize(&serialize(&leaf)).unwrap();
        assert_eq!(back.data, leaf.data);
    }

    #[test]
    fn serialize_preallocates_enough() {
        // The capacity estimate must cover the final length (no repeated
        // growth on long logs); correctness of the format is covered by
        // the roundtrip tests.
        let mut item = LineageItem::leaf("prealloc/leaf-with-a-long-name");
        for i in 0..64 {
            item = LineageItem::new("op", vec![format!("step={i}"), "x,y".into()], vec![item]);
        }
        let log = serialize(&item);
        assert!(log.capacity() >= log.len());
        assert!(deserialize(&log).is_ok());
    }

    #[test]
    fn deserialize_rejects_garbage() {
        assert!(matches!(deserialize(""), Err(ParseError::Empty)));
        assert!(matches!(
            deserialize("(0) op [] (5)"),
            Err(ParseError::BadReference(0))
        ));
        assert!(matches!(
            deserialize("not a line"),
            Err(ParseError::Malformed(0))
        ));
    }

    #[test]
    fn shared_subdag_serialized_once() {
        let x = LineageItem::leaf("X");
        let t = LineageItem::new("r'", vec![], vec![x.clone()]);
        let m = mm(&t, &t);
        let log = serialize(&m);
        assert_eq!(log.lines().count(), 3, "X, t(X), mm — shared t once");
    }

    #[test]
    fn function_level_items_for_multilevel_reuse() {
        let x = LineageItem::leaf("X");
        let y = LineageItem::leaf("y");
        let f1 = LineageItem::new(
            "func:linRegDS",
            vec!["out=0".into()],
            vec![x.clone(), y.clone()],
        );
        let f2 = LineageItem::new("func:linRegDS", vec!["out=0".into()], vec![x, y]);
        assert!(lineage_eq(&f1, &f2));
        assert_eq!(f1.lid, f2.lid);
    }
}
