//! MEMPHIS core: fine-grained lineage tracing and the hierarchical,
//! multi-backend lineage cache (the paper's primary contribution).
//!
//! The crate provides the system-internal API of paper §3.1:
//!
//! | Paper API | Here |
//! |---|---|
//! | `TRACE(inst)` | [`lineage::LineageMap::trace`] |
//! | `SERIALIZE`/`DESERIALIZE` | [`lineage::serialize`] / [`lineage::deserialize`] |
//! | `RECOMPUTE(log)` | [`recompute::recompute`] |
//! | `REUSE(trace)` | [`cache::LineageCache::probe`] |
//! | `PUT(trace, object)` | [`cache::LineageCache::put`] |
//! | `MAKE_SPACE(object)` | internal to the backend managers |
//!
//! The cache is *hierarchical*: probing is unified across backends, while
//! cached objects live backend-local — in-memory matrices and scalars on
//! the driver (with disk eviction), `RddRef` handles pointing into the
//! simulated Spark cluster, and `GpuPtr` handles managed by the unified
//! GPU memory manager with its Live/Free lists, recycling, and eq. (2)
//! eviction scoring.

pub mod backend;
pub mod cache;
pub mod lineage;
pub mod pool;
pub mod recompute;
pub mod stats;

pub use backend::{
    BackendId, BackendRegistry, BackendSnapshot, CacheBackend, EntryMap, EvictionPolicy,
    Materialized,
};
pub use cache::config::{CacheConfig, CachePolicy};
pub use cache::entry::{CacheEntry, CachedObject, EntryStatus};
pub use cache::gpu::GpuMemoryManager;
pub use cache::sharded::{Inflight, InflightOutcome, ShardedEntryMap};
pub use cache::{ComputeGuard, LineageCache, ProbeHit, Probed, ResidentEntry};
pub use cache::{EntryReuseMeta, MemoryPressure};
pub use lineage::{resolve, LItem, LineageId, LineageItem, LineageMap};
pub use pool::{Pool, PoolStats};
pub use stats::{ReuseStats, ReuseStatsSnapshot};
