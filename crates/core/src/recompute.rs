//! RECOMPUTE (paper §3.2): re-executes a serialized lineage log to
//! reproduce the exact intermediate it identifies — for debugging,
//! trace sharing, and cross-environment reproduction.
//!
//! The core is execution-engine agnostic: callers supply a
//! [`LineageExecutor`] that knows how to run one operator. The engine
//! crate provides the full implementation over its instruction set.

use crate::cache::entry::CachedObject;
use crate::lineage::{deserialize, LItem, ParseError};
use std::collections::HashMap;

/// Executes one lineage node given its already-computed inputs.
pub trait LineageExecutor {
    /// Runs the operator identified by `item` over `inputs` (one value per
    /// lineage input, in order) and returns its output.
    fn execute(&mut self, item: &LItem, inputs: &[CachedObject]) -> Result<CachedObject, String>;
}

/// Errors from [`recompute`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecomputeError {
    /// The lineage log could not be parsed.
    Parse(ParseError),
    /// An operator failed to execute.
    Exec {
        /// Opcode of the failing node.
        opcode: String,
        /// Executor-provided message.
        message: String,
    },
}

impl std::fmt::Display for RecomputeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecomputeError::Parse(e) => write!(f, "lineage parse error: {e}"),
            RecomputeError::Exec { opcode, message } => {
                write!(f, "recompute failed at {opcode}: {message}")
            }
        }
    }
}

impl std::error::Error for RecomputeError {}

/// RECOMPUTE: deserializes `log` and evaluates the DAG bottom-up with
/// sub-DAG memoization, returning the root value.
pub fn recompute<E: LineageExecutor>(
    log: &str,
    exec: &mut E,
) -> Result<CachedObject, RecomputeError> {
    let root = deserialize(log).map_err(RecomputeError::Parse)?;
    recompute_item(&root, exec)
}

/// Evaluates an in-memory lineage DAG (used when the trace never left the
/// process).
pub fn recompute_item<E: LineageExecutor>(
    root: &LItem,
    exec: &mut E,
) -> Result<CachedObject, RecomputeError> {
    // Iterative post-order evaluation with memoization on node identity.
    let mut results: HashMap<u64, CachedObject> = HashMap::new();
    let mut stack: Vec<(LItem, bool)> = vec![(root.clone(), false)];
    while let Some((item, expanded)) = stack.pop() {
        if results.contains_key(&item.id) {
            continue;
        }
        if !expanded {
            stack.push((item.clone(), true));
            for i in &item.inputs {
                stack.push((i.clone(), false));
            }
            continue;
        }
        let inputs: Vec<CachedObject> = item
            .inputs
            .iter()
            .map(|i| results.get(&i.id).expect("post-order").clone())
            .collect();
        let value = exec
            .execute(&item, &inputs)
            .map_err(|message| RecomputeError::Exec {
                opcode: item.opcode.to_string(),
                message,
            })?;
        results.insert(item.id, value);
    }
    Ok(results.remove(&root.id).expect("root evaluated"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::{serialize, LineageItem};

    /// A toy executor over scalars: leaves carry their value in data[0],
    /// "add" sums inputs, "mul" multiplies.
    struct ScalarExec {
        calls: usize,
    }

    impl LineageExecutor for ScalarExec {
        fn execute(
            &mut self,
            item: &LItem,
            inputs: &[CachedObject],
        ) -> Result<CachedObject, String> {
            self.calls += 1;
            let vals: Vec<f64> = inputs
                .iter()
                .map(|o| match o {
                    CachedObject::Scalar(v) => Ok(*v),
                    _ => Err("non-scalar input".to_string()),
                })
                .collect::<Result<_, _>>()?;
            match &*item.opcode {
                "leaf" => item.data[0]
                    .parse()
                    .map(CachedObject::Scalar)
                    .map_err(|e| format!("{e}")),
                "add" => Ok(CachedObject::Scalar(vals.iter().sum())),
                "mul" => Ok(CachedObject::Scalar(vals.iter().product())),
                op => Err(format!("unknown op {op}")),
            }
        }
    }

    #[test]
    fn recomputes_serialized_dag() {
        let a = LineageItem::leaf("2");
        let b = LineageItem::leaf("3");
        let sum = LineageItem::new("add", vec![], vec![a.clone(), b.clone()]);
        let prod = LineageItem::new("mul", vec![], vec![sum.clone(), b]);
        let log = serialize(&prod);
        let mut exec = ScalarExec { calls: 0 };
        match recompute(&log, &mut exec).unwrap() {
            CachedObject::Scalar(v) => assert_eq!(v, 15.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shared_subdags_execute_once() {
        let a = LineageItem::leaf("2");
        let sq = LineageItem::new("mul", vec![], vec![a.clone(), a.clone()]);
        let quad = LineageItem::new("mul", vec![], vec![sq.clone(), sq.clone()]);
        let mut exec = ScalarExec { calls: 0 };
        match recompute_item(&quad, &mut exec).unwrap() {
            CachedObject::Scalar(v) => assert_eq!(v, 16.0),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            exec.calls, 3,
            "leaf, square, fourth power — no re-execution"
        );
    }

    #[test]
    fn executor_errors_carry_opcode() {
        let bad = LineageItem::new("nope", vec![], vec![]);
        let mut exec = ScalarExec { calls: 0 };
        let err = recompute_item(&bad, &mut exec).unwrap_err();
        assert!(matches!(err, RecomputeError::Exec { ref opcode, .. } if opcode == "nope"));
    }

    #[test]
    fn parse_errors_propagate() {
        let mut exec = ScalarExec { calls: 0 };
        assert!(matches!(
            recompute("garbage", &mut exec),
            Err(RecomputeError::Parse(_))
        ));
    }
}
