//! Reuse and cache-management counters reported by the experiments.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters for the lineage cache and backend managers.
#[derive(Debug, Default)]
pub struct ReuseStats {
    /// Cache probes (REUSE calls).
    pub probes: AtomicU64,
    /// Probes that returned a reusable object.
    pub hits: AtomicU64,
    /// Hits served by local in-memory matrices/scalars.
    pub hits_local: AtomicU64,
    /// Hits served by RDD handles (compute sharing, possibly
    /// unmaterialized).
    pub hits_rdd: AtomicU64,
    /// Hits served by GPU pointers.
    pub hits_gpu: AtomicU64,
    /// Hits served from disk-evicted binaries.
    pub hits_disk: AtomicU64,
    /// Hits of multi-level (function/block) entries.
    pub hits_func: AtomicU64,
    /// Probes that found nothing reusable.
    pub misses: AtomicU64,
    /// PUT calls that stored an object.
    pub puts: AtomicU64,
    /// PUT calls deferred by delayed caching (placeholder created/advanced).
    pub puts_deferred: AtomicU64,
    /// Probes served by awaiting another session's in-flight computation
    /// instead of recomputing.
    pub coalesced_hits: AtomicU64,
    /// Times a session blocked on an in-flight marker (one wait can end
    /// in a coalesced hit or an abandoned retry).
    pub inflight_waits: AtomicU64,
    /// In-flight computations begun (probe misses that claimed ownership).
    pub inflight_begins: AtomicU64,
    /// In-flight computations abandoned (owner errored or dropped its
    /// guard); waiters retried.
    pub inflight_abandoned: AtomicU64,
    /// In-flight resolutions that woke a non-empty waiter set with one
    /// batched `notify_all` broadcast.
    pub wakeup_batches: AtomicU64,
    /// In-flight resolutions with no blocked waiter: the condvar
    /// broadcast was skipped entirely.
    pub wakeup_skips: AtomicU64,
    /// In-flight markers recycled through the marker pool instead of
    /// freed (and later reused without an allocation).
    pub inflight_recycled: AtomicU64,
    /// Local entries evicted to disk.
    pub local_spills: AtomicU64,
    /// Local entries dropped entirely.
    pub local_drops: AtomicU64,
    /// Evictions whose victim was chosen by the tenant-quota pass (the
    /// owner tenant was over its soft cache quota).
    pub quota_evictions: AtomicU64,
    /// Disk-tier I/O failures (spill writes, materialize reads, dangling
    /// admissions). Each one degrades to a clean drop or miss.
    pub disk_io_errors: AtomicU64,
    /// RDD entries unpersisted by eq. (1) eviction.
    pub rdd_unpersists: AtomicU64,
    /// Asynchronous `count()` materialization jobs triggered.
    pub rdd_materialize_jobs: AtomicU64,
    /// Child RDD references released by lazy garbage collection.
    pub gc_rdds_released: AtomicU64,
    /// Broadcast variables destroyed by lazy garbage collection.
    pub gc_broadcasts_destroyed: AtomicU64,
    /// Broadcast variables unpersisted (executor copies released, driver
    /// value kept for recompute) by lazy GC when fault injection is on.
    pub gc_broadcasts_unpersisted: AtomicU64,
    /// GPU pointers recycled (memory reused without `cudaMalloc`).
    pub gpu_recycled: AtomicU64,
    /// GPU pointers reused (lineage hits on device pointers).
    pub gpu_reused: AtomicU64,
    /// GPU free-list pointers released with `cudaFree`.
    pub gpu_freed: AtomicU64,
    /// GPU cache entries evicted to host memory.
    pub gpu_evicted_to_host: AtomicU64,
    /// Full device defragmentations.
    pub gpu_defrags: AtomicU64,
    /// LineageMap bindings rewritten by compaction.
    pub compactions: AtomicU64,
    /// Segment files with at least one verified record found by disk-tier
    /// recovery at startup.
    pub segments_recovered: AtomicU64,
    /// Durable entries rebuilt into the probe map by recovery (local
    /// rehydrations plus lazily disk-backed entries).
    pub entries_recovered: AtomicU64,
    /// Recovered entries promoted ("rehydrated") into the local tier
    /// within the startup rehydration budget.
    pub entries_rehydrated: AtomicU64,
    /// Durable records rejected by CRC/identity verification (at recovery
    /// or on a later read). Each rejection degrades to a recompute, never
    /// to surfaced corrupt data.
    pub checksum_rejects: AtomicU64,
    /// Atomic manifest swaps completed by disk-tier compaction.
    pub manifest_swaps: AtomicU64,
    /// Admissions rejected by MURS-style shedding: under `Shed`/
    /// `Suspend` memory pressure with the `DelayedHits` policy, entries
    /// whose estimated time-to-next-access exceeds their expected cache
    /// lifetime are not admitted. Always zero under `Paper`.
    pub ttna_admission_rejects: AtomicU64,
    /// Waiter-ticks of stacked miss latency avoided by residency: on
    /// every local hit of an entry with observed coalesced waiters, its
    /// `miss_waiters * compute_cost` is credited here (the aggregate
    /// delay a miss would have re-imposed). Always zero under `Paper`.
    pub delayed_hit_ticks_saved: AtomicU64,
    /// Evictions performed while scoring with the delayed-hits (mean
    /// aggregate delay) extension. Always zero under `Paper`.
    pub mad_evictions: AtomicU64,
}

/// Point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize)]
pub struct ReuseStatsSnapshot {
    /// See [`ReuseStats::probes`].
    pub probes: u64,
    /// See [`ReuseStats::hits`].
    pub hits: u64,
    /// See [`ReuseStats::hits_local`].
    pub hits_local: u64,
    /// See [`ReuseStats::hits_rdd`].
    pub hits_rdd: u64,
    /// See [`ReuseStats::hits_gpu`].
    pub hits_gpu: u64,
    /// See [`ReuseStats::hits_disk`].
    pub hits_disk: u64,
    /// See [`ReuseStats::hits_func`].
    pub hits_func: u64,
    /// See [`ReuseStats::misses`].
    pub misses: u64,
    /// See [`ReuseStats::puts`].
    pub puts: u64,
    /// See [`ReuseStats::puts_deferred`].
    pub puts_deferred: u64,
    /// See [`ReuseStats::coalesced_hits`].
    pub coalesced_hits: u64,
    /// See [`ReuseStats::inflight_waits`].
    pub inflight_waits: u64,
    /// See [`ReuseStats::inflight_begins`].
    pub inflight_begins: u64,
    /// See [`ReuseStats::inflight_abandoned`].
    pub inflight_abandoned: u64,
    /// See [`ReuseStats::wakeup_batches`].
    pub wakeup_batches: u64,
    /// See [`ReuseStats::wakeup_skips`].
    pub wakeup_skips: u64,
    /// See [`ReuseStats::inflight_recycled`].
    pub inflight_recycled: u64,
    /// Shard-lock acquisitions that found the lock held (filled by the
    /// cache from its sharded map, not an atomic of [`ReuseStats`]).
    pub shard_contention: u64,
    /// See [`ReuseStats::local_spills`].
    pub local_spills: u64,
    /// See [`ReuseStats::local_drops`].
    pub local_drops: u64,
    /// See [`ReuseStats::quota_evictions`].
    pub quota_evictions: u64,
    /// See [`ReuseStats::disk_io_errors`].
    pub disk_io_errors: u64,
    /// See [`ReuseStats::rdd_unpersists`].
    pub rdd_unpersists: u64,
    /// See [`ReuseStats::rdd_materialize_jobs`].
    pub rdd_materialize_jobs: u64,
    /// See [`ReuseStats::gc_rdds_released`].
    pub gc_rdds_released: u64,
    /// See [`ReuseStats::gc_broadcasts_destroyed`].
    pub gc_broadcasts_destroyed: u64,
    /// See [`ReuseStats::gc_broadcasts_unpersisted`].
    pub gc_broadcasts_unpersisted: u64,
    /// See [`ReuseStats::gpu_recycled`].
    pub gpu_recycled: u64,
    /// See [`ReuseStats::gpu_reused`].
    pub gpu_reused: u64,
    /// See [`ReuseStats::gpu_freed`].
    pub gpu_freed: u64,
    /// See [`ReuseStats::gpu_evicted_to_host`].
    pub gpu_evicted_to_host: u64,
    /// See [`ReuseStats::gpu_defrags`].
    pub gpu_defrags: u64,
    /// See [`ReuseStats::compactions`].
    pub compactions: u64,
    /// See [`ReuseStats::segments_recovered`].
    pub segments_recovered: u64,
    /// See [`ReuseStats::entries_recovered`].
    pub entries_recovered: u64,
    /// See [`ReuseStats::entries_rehydrated`].
    pub entries_rehydrated: u64,
    /// See [`ReuseStats::checksum_rejects`].
    pub checksum_rejects: u64,
    /// See [`ReuseStats::manifest_swaps`].
    pub manifest_swaps: u64,
    /// See [`ReuseStats::ttna_admission_rejects`].
    pub ttna_admission_rejects: u64,
    /// See [`ReuseStats::delayed_hit_ticks_saved`].
    pub delayed_hit_ticks_saved: u64,
    /// See [`ReuseStats::mad_evictions`].
    pub mad_evictions: u64,
}

impl ReuseStats {
    /// Increments a counter.
    #[inline]
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies all counters.
    pub fn snapshot(&self) -> ReuseStatsSnapshot {
        ReuseStatsSnapshot {
            probes: self.probes.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            hits_local: self.hits_local.load(Ordering::Relaxed),
            hits_rdd: self.hits_rdd.load(Ordering::Relaxed),
            hits_gpu: self.hits_gpu.load(Ordering::Relaxed),
            hits_disk: self.hits_disk.load(Ordering::Relaxed),
            hits_func: self.hits_func.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            puts_deferred: self.puts_deferred.load(Ordering::Relaxed),
            coalesced_hits: self.coalesced_hits.load(Ordering::Relaxed),
            inflight_waits: self.inflight_waits.load(Ordering::Relaxed),
            inflight_begins: self.inflight_begins.load(Ordering::Relaxed),
            inflight_abandoned: self.inflight_abandoned.load(Ordering::Relaxed),
            wakeup_batches: self.wakeup_batches.load(Ordering::Relaxed),
            wakeup_skips: self.wakeup_skips.load(Ordering::Relaxed),
            inflight_recycled: self.inflight_recycled.load(Ordering::Relaxed),
            shard_contention: 0,
            local_spills: self.local_spills.load(Ordering::Relaxed),
            local_drops: self.local_drops.load(Ordering::Relaxed),
            quota_evictions: self.quota_evictions.load(Ordering::Relaxed),
            disk_io_errors: self.disk_io_errors.load(Ordering::Relaxed),
            rdd_unpersists: self.rdd_unpersists.load(Ordering::Relaxed),
            rdd_materialize_jobs: self.rdd_materialize_jobs.load(Ordering::Relaxed),
            gc_rdds_released: self.gc_rdds_released.load(Ordering::Relaxed),
            gc_broadcasts_destroyed: self.gc_broadcasts_destroyed.load(Ordering::Relaxed),
            gc_broadcasts_unpersisted: self.gc_broadcasts_unpersisted.load(Ordering::Relaxed),
            gpu_recycled: self.gpu_recycled.load(Ordering::Relaxed),
            gpu_reused: self.gpu_reused.load(Ordering::Relaxed),
            gpu_freed: self.gpu_freed.load(Ordering::Relaxed),
            gpu_evicted_to_host: self.gpu_evicted_to_host.load(Ordering::Relaxed),
            gpu_defrags: self.gpu_defrags.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            segments_recovered: self.segments_recovered.load(Ordering::Relaxed),
            entries_recovered: self.entries_recovered.load(Ordering::Relaxed),
            entries_rehydrated: self.entries_rehydrated.load(Ordering::Relaxed),
            checksum_rejects: self.checksum_rejects.load(Ordering::Relaxed),
            manifest_swaps: self.manifest_swaps.load(Ordering::Relaxed),
            ttna_admission_rejects: self.ttna_admission_rejects.load(Ordering::Relaxed),
            delayed_hit_ticks_saved: self.delayed_hit_ticks_saved.load(Ordering::Relaxed),
            mad_evictions: self.mad_evictions.load(Ordering::Relaxed),
        }
    }
}

impl memphis_obs::IntoMetrics for ReuseStatsSnapshot {
    fn metrics_section(&self) -> &'static str {
        "reuse"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("probes", self.probes),
            ("hits", self.hits),
            ("hits_local", self.hits_local),
            ("hits_rdd", self.hits_rdd),
            ("hits_gpu", self.hits_gpu),
            ("hits_disk", self.hits_disk),
            ("hits_func", self.hits_func),
            ("misses", self.misses),
            ("puts", self.puts),
            ("puts_deferred", self.puts_deferred),
            ("coalesced_hits", self.coalesced_hits),
            ("inflight_waits", self.inflight_waits),
            ("inflight_begins", self.inflight_begins),
            ("inflight_abandoned", self.inflight_abandoned),
            ("wakeup_batches", self.wakeup_batches),
            ("wakeup_skips", self.wakeup_skips),
            ("inflight_recycled", self.inflight_recycled),
            ("shard_contention", self.shard_contention),
            ("local_spills", self.local_spills),
            ("local_drops", self.local_drops),
            ("quota_evictions", self.quota_evictions),
            ("disk_io_errors", self.disk_io_errors),
            ("rdd_unpersists", self.rdd_unpersists),
            ("rdd_materialize_jobs", self.rdd_materialize_jobs),
            ("gc_rdds_released", self.gc_rdds_released),
            ("gc_broadcasts_destroyed", self.gc_broadcasts_destroyed),
            ("gc_broadcasts_unpersisted", self.gc_broadcasts_unpersisted),
            ("gpu_recycled", self.gpu_recycled),
            ("gpu_reused", self.gpu_reused),
            ("gpu_freed", self.gpu_freed),
            ("gpu_evicted_to_host", self.gpu_evicted_to_host),
            ("gpu_defrags", self.gpu_defrags),
            ("compactions", self.compactions),
            ("segments_recovered", self.segments_recovered),
            ("entries_recovered", self.entries_recovered),
            ("entries_rehydrated", self.entries_rehydrated),
            ("checksum_rejects", self.checksum_rejects),
            ("manifest_swaps", self.manifest_swaps),
            ("ttna_admission_rejects", self.ttna_admission_rejects),
            ("delayed_hit_ticks_saved", self.delayed_hit_ticks_saved),
            ("mad_evictions", self.mad_evictions),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = ReuseStats::default();
        ReuseStats::inc(&s.probes);
        ReuseStats::inc(&s.probes);
        ReuseStats::inc(&s.hits_gpu);
        let snap = s.snapshot();
        assert_eq!(snap.probes, 2);
        assert_eq!(snap.hits_gpu, 1);
        assert_eq!(snap.misses, 0);
    }
}
