//! Bounded free-list object pool — the gpusim arena's recycle-first
//! idiom generalized to heap objects on the cache hot path.
//!
//! The GPU memory manager (`crates/gpusim/src/arena.rs` and the eq. (2)
//! free lists) never returns device memory to the allocator while a
//! same-shaped request may recycle it. [`Pool`] applies the same policy
//! to short-lived heap objects: in-flight coalescing markers are taken
//! from the pool on a miss and returned when the computation completes,
//! so the steady-state miss→own→complete cycle stops allocating once the
//! pool warms up. The pool is bounded — beyond `cap` objects are dropped
//! to the allocator rather than hoarded.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Point-in-time pool counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// `take` calls served from the free list.
    pub reuses: u64,
    /// `take` calls that found the pool empty (caller allocates).
    pub misses: u64,
    /// Objects returned to the free list.
    pub returns: u64,
    /// Returns dropped because the pool was at capacity.
    pub overflow: u64,
}

/// A thread-safe bounded free list of recyclable objects.
///
/// The pool never constructs or resets objects itself — callers construct
/// on a `take` miss and must return objects in a reusable state.
pub struct Pool<T> {
    free: Mutex<Vec<T>>,
    cap: usize,
    reuses: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
    overflow: AtomicU64,
}

impl<T> Pool<T> {
    /// Creates a pool retaining at most `cap` idle objects.
    pub fn new(cap: usize) -> Self {
        Self {
            free: Mutex::new(Vec::new()),
            cap,
            reuses: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            returns: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
        }
    }

    /// Takes a recycled object, or `None` when the pool is empty.
    pub fn take(&self) -> Option<T> {
        let taken = self.free.lock().pop();
        match taken {
            Some(_) => self.reuses.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        taken
    }

    /// Returns an object to the free list. Returns false (dropping the
    /// object) when the pool is at capacity.
    pub fn put(&self, obj: T) -> bool {
        let mut free = self.free.lock();
        if free.len() >= self.cap {
            drop(free);
            self.overflow.fetch_add(1, Ordering::Relaxed);
            false
        } else {
            free.push(obj);
            drop(free);
            self.returns.fetch_add(1, Ordering::Relaxed);
            true
        }
    }

    /// Idle objects currently retained.
    pub fn len(&self) -> usize {
        self.free.lock().len()
    }

    /// True when no idle object is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum idle objects retained.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Copies the pool counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            reuses: self.reuses.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            returns: self.returns.load(Ordering::Relaxed),
            overflow: self.overflow.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_roundtrip() {
        let p: Pool<Box<u64>> = Pool::new(4);
        assert!(p.take().is_none(), "empty pool misses");
        assert!(p.put(Box::new(7)));
        assert_eq!(p.len(), 1);
        assert_eq!(*p.take().expect("recycled"), 7);
        assert!(p.is_empty());
        let s = p.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.returns, 1);
        assert_eq!(s.reuses, 1);
    }

    #[test]
    fn capacity_bounds_retention() {
        let p: Pool<u8> = Pool::new(2);
        assert!(p.put(1));
        assert!(p.put(2));
        assert!(!p.put(3), "at capacity: dropped");
        assert_eq!(p.len(), 2);
        assert_eq!(p.stats().overflow, 1);
        assert_eq!(p.cap(), 2);
    }

    #[test]
    fn concurrent_take_put_is_consistent() {
        let p = std::sync::Arc::new(Pool::<u64>::new(64));
        std::thread::scope(|s| {
            for t in 0..8 {
                let p = p.clone();
                s.spawn(move || {
                    for i in 0..200 {
                        if let Some(v) = p.take() {
                            p.put(v);
                        } else {
                            p.put(t * 1000 + i);
                        }
                    }
                });
            }
        });
        let s = p.stats();
        assert_eq!(s.reuses + s.misses, 8 * 200);
        assert!(p.len() <= 64);
    }
}
