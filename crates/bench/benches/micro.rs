//! Criterion micro-benchmarks of the MEMPHIS primitives: lineage hashing
//! and probing, cache put/probe, the GPU allocator (recycle vs malloc),
//! dense kernels, and the simulated shuffle.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use memphis_core::cache::config::CacheConfig;
use memphis_core::cache::entry::CachedObject;
use memphis_core::cache::gpu::GpuMemoryManager;
use memphis_core::cache::LineageCache;
use memphis_core::lineage::{lineage_eq, LineageItem};
use memphis_core::stats::ReuseStats;
use memphis_gpusim::{GpuConfig, GpuDevice};
use memphis_matrix::ops::matmul::{matmul, tsmm};
use memphis_matrix::rand_gen::rand_uniform;
use std::sync::Arc;

fn bench_lineage(c: &mut Criterion) {
    // A deep trace with sharing, mirroring iterative workloads.
    let build = |tag: &str| {
        let mut cur = LineageItem::leaf(tag);
        for i in 0..64 {
            cur = LineageItem::new("ba+*", vec![format!("i={i}")], vec![cur.clone(), cur]);
        }
        cur
    };
    let a = build("X");
    let b = build("X");
    c.bench_function("lineage/construct_64_deep", |bench| {
        bench.iter(|| build("X"))
    });
    c.bench_function("lineage/eq_shared_subdags", |bench| {
        bench.iter(|| assert!(lineage_eq(&a, &b)))
    });
}

fn bench_cache(c: &mut Criterion) {
    let cache = LineageCache::new(CacheConfig::benchmark());
    // Populate 10K scalar entries.
    let items: Vec<_> = (0..10_000)
        .map(|i| LineageItem::new("op", vec![i.to_string()], vec![LineageItem::leaf("X")]))
        .collect();
    for (i, it) in items.iter().enumerate() {
        cache.put(it, CachedObject::Scalar(i as f64), 1.0, 16, 1);
    }
    c.bench_function("cache/probe_hit_10k_entries", |bench| {
        let mut i = 0usize;
        bench.iter(|| {
            let hit = cache.probe(&items[i % items.len()]);
            i += 1;
            assert!(hit.is_some());
        })
    });
    let miss = LineageItem::new("op", vec!["miss".into()], vec![LineageItem::leaf("Y")]);
    c.bench_function("cache/probe_miss", |bench| {
        bench.iter(|| assert!(cache.probe(&miss).is_none()))
    });
}

fn bench_gpu_allocator(c: &mut Criterion) {
    let stats = Arc::new(ReuseStats::default());
    let mgr = GpuMemoryManager::new(
        Arc::new(GpuDevice::new(GpuConfig::zero_cost(512 << 20))),
        stats,
    );
    c.bench_function("gpu/recycle_exact_size", |bench| {
        // Warm: one pointer in the free pool.
        let a = mgr.request(4096, 2, 1.0).unwrap();
        mgr.release(a.ptr, 2, 1.0);
        bench.iter(|| {
            let a = mgr.request(4096, 2, 1.0).unwrap();
            assert!(a.recycled);
            mgr.release(a.ptr, 2, 1.0);
        })
    });
}

fn bench_kernels(c: &mut Criterion) {
    let a = rand_uniform(128, 128, -1.0, 1.0, 1);
    let b = rand_uniform(128, 128, -1.0, 1.0, 2);
    c.bench_function("kernel/matmul_128", |bench| {
        bench.iter(|| matmul(&a, &b).unwrap())
    });
    let x = rand_uniform(1024, 32, -1.0, 1.0, 3);
    c.bench_function("kernel/tsmm_1024x32", |bench| {
        bench.iter(|| tsmm(&x).unwrap())
    });
}

fn bench_spark(c: &mut Criterion) {
    use memphis_matrix::BlockedMatrix;
    use memphis_sparksim::{SparkConfig, SparkContext};
    let sc = SparkContext::new(SparkConfig::local_test());
    let m = rand_uniform(512, 32, -1.0, 1.0, 4);
    let blocked = BlockedMatrix::from_dense(&m, 64).unwrap();
    c.bench_function("spark/tsmm_job_512x32", |bench| {
        bench.iter_batched(
            || sc.parallelize_blocked(&blocked, "X"),
            |rdd| {
                let partial = sc.map(&rdd, "tsmm", Arc::new(|k, b| (*k, tsmm(b).unwrap())));
                sc.reduce(
                    &partial,
                    Arc::new(|x, y| {
                        memphis_matrix::ops::binary::binary(
                            &x,
                            &y,
                            memphis_matrix::ops::binary::BinaryOp::Add,
                        )
                        .unwrap()
                    }),
                )
                .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_lineage,
    bench_cache,
    bench_gpu_allocator,
    bench_kernels,
    bench_spark
);
criterion_main!(benches);
