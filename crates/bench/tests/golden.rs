//! Golden smoke tests for the experiment binaries: run the exp_fig2 /
//! exp_table2 cores at tiny scale and pin down the counters that make the
//! figures meaningful — reuse hits, evictions, task counts, bytes moved.
//! Wall-clock ratios are the binaries' business; under CI load they are
//! noise, so nothing here asserts on elapsed time.

use memphis_bench::golden::{
    run_fig2c, run_fig2d, run_recovery_gate, run_script_gate, run_table2, Fig2cParams, Fig2dParams,
    RecoveryGateParams, ScriptGateParams, Table2Params,
};

#[test]
fn script_gate_corpus_and_fuzz_slice_are_divergence_free_and_exact() {
    let p = ScriptGateParams::tiny();
    let out = run_script_gate(&p);
    assert!(out.invariants_hold(), "{out:?}");
    assert_eq!(out.programs_fuzzed, p.programs);
    assert_eq!(out.divergences, 0, "{out:?}");

    // The whole outcome is a pure function of (seed, programs, corpus).
    let again = run_script_gate(&p);
    assert_eq!(out.corpus_digest, again.corpus_digest);
    assert_eq!(out.lowered_nodes, again.lowered_nodes);
    assert_eq!(out.corpus_scripts, again.corpus_scripts);
}

#[test]
fn fig2c_lazy_reuse_hits_where_eager_recomputes() {
    let p = Fig2cParams::tiny();
    let out = run_fig2c(&p);

    // The eager loop runs a materialization job plus a consuming job per
    // iteration — exactly double the no-caching loop's task count.
    assert!(out.no_cache_tasks > 0);
    assert_eq!(
        out.eager_tasks,
        2 * out.no_cache_tasks,
        "eager = materialize + consume per iteration"
    );

    // MEMPHIS probes the cache once per derived RDD: the first pass over
    // the distinct scales misses, every recurrence afterwards can hit.
    let r = &out.reuse;
    assert!(r.probes > 0, "reuse cache must be consulted: {r:?}");
    assert!(r.misses >= p.distinct as u64, "first pass misses: {r:?}");
    assert!(r.hits > 0, "recurring scales must hit: {r:?}");
    assert!(r.puts > 0, "misses must populate the cache: {r:?}");
    assert_eq!(r.hits + r.misses, r.probes, "every probe hits or misses");
}

#[test]
fn fig2c_tiny_budget_forces_evictions() {
    // Shrink the cluster storage below the working set: the cache must
    // evict (spill, drop, or unpersist) instead of growing without bound.
    let mut p = Fig2cParams::tiny();
    p.cache_budget = 2 << 10;
    p.spark_storage = 16 << 10;
    let out = run_fig2c(&p);
    let r = &out.reuse;
    let evictions = r.local_spills + r.local_drops + r.rdd_unpersists;
    assert!(
        evictions > 0,
        "a 2 KB budget cannot hold the working set: {r:?}"
    );
    // Eviction costs hits but the loop still recurs enough to land some.
    assert!(r.probes > 0 && r.puts > 0, "{r:?}");
}

#[test]
fn fig2d_counters_show_per_batch_alloc_and_copy() {
    let p = Fig2dParams::tiny();
    let out = run_fig2d(&p);
    let g = &out.gpu;

    // With recycling disabled every batch allocates device outputs and
    // frees them again; nothing may fail and nothing may leak past the
    // explicit removes (the weight/bias uploads may stay resident).
    assert_eq!(g.alloc_failures, 0, "{g:?}");
    assert!(g.allocs >= p.batches as u64, "per-batch allocs: {g:?}");
    assert!(g.frees > 0 && g.frees <= g.allocs, "{g:?}");
    // Affine + ReLU launch at least two kernels per batch.
    assert!(g.kernels >= 2 * p.batches as u64, "{g:?}");
    // The D2H readback synchronizes the stream each batch.
    assert!(g.syncs >= p.batches as u64, "{g:?}");

    // The device counter schedule is deterministic: a second identical
    // run must land on exactly the same counts.
    let again = run_fig2d(&p).gpu;
    assert_eq!(
        (g.allocs, g.frees, g.kernels, g.syncs),
        (again.allocs, again.frees, again.kernels, again.syncs),
        "counters are a pure function of the parameters"
    );
}

#[test]
fn recovery_gate_counters_are_deterministic() {
    let p = RecoveryGateParams::tiny();
    let out = run_recovery_gate(&p);

    // Every surviving record is found again: the stream minus the
    // tombstoned prefix minus the seeded-corruption rejects.
    assert_eq!(
        out.entries_recovered + out.checksum_rejects,
        (p.entries - p.dels) as u64,
        "{out:?}"
    );
    assert!(out.segments_recovered >= 1, "{out:?}");
    assert!(
        out.entries_rehydrated >= 1,
        "rehydration budget used: {out:?}"
    );
    assert_eq!(out.manifest_swaps, 1, "one compaction pass: {out:?}");
    assert!(
        out.checksum_rejects >= 1,
        "a 25% corruption rate over 12 writes must reject something: {out:?}"
    );

    // The counter schedule is a pure function of the parameters.
    let again = run_recovery_gate(&p);
    assert_eq!(
        (
            out.segments_recovered,
            out.entries_recovered,
            out.entries_rehydrated,
            out.checksum_rejects,
            out.manifest_swaps
        ),
        (
            again.segments_recovered,
            again.entries_recovered,
            again.entries_rehydrated,
            again.checksum_rejects,
            again.manifest_swaps
        )
    );
}

#[test]
fn table2_shuffle_moves_every_byte_exactly_once() {
    let p = Table2Params::tiny();
    let out = run_table2(&p);

    // 256x16 blocked at 32 → 8 blocks of 32x16 f64s, all reshuffled;
    // every record ships its BlockId key alongside the payload.
    let record_bytes = (memphis_matrix::Matrix::zeros(32, 16).size_bytes()
        + std::mem::size_of::<memphis_matrix::BlockId>()) as u64;
    assert_eq!(out.shuffle_bytes_written, 8 * record_bytes);
    assert_eq!(
        out.shuffle_bytes_read, out.shuffle_bytes_written,
        "every map output is read exactly once"
    );
    // row % 4 keys the 8 row-blocks onto 4 reduce keys.
    assert_eq!(out.reduced_records, p.reduce_partitions);
    assert!(out.roundtrip_exact, "H2D/D2H must be lossless");
    assert_eq!(out.transfer_bytes, p.gpu_rows * p.gpu_cols * 8);
}
