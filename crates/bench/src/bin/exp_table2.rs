//! Table 2: measured properties of the simulated backends — execution
//! model, memory, and interconnect bandwidths (the paper measures 15 GB/s
//! Spark-aggregate shuffle and 6.1 GB/s pageable host-to-device; our
//! simulator is calibrated at a reduced scale with the same ordering).
//!
//! The probe logic lives in `memphis_bench::golden` so the golden smoke
//! tests can run it at tiny scale.

use memphis_bench::golden::{run_table2, Table2Params};
use memphis_bench::{header, obs_finish, obs_init, obs_record};

fn main() {
    obs_init();
    header(
        "Table 2: backend properties",
        "Spark: lazy, distributed memory, cache API; GPU: async, small \
         memory, no cache API; CPU: eager",
    );
    let out = run_table2(&Table2Params::full());

    let el = out.shuffle_elapsed.as_secs_f64();
    let bytes = out.shuffle_bytes_written + out.shuffle_bytes_read;
    println!(
        "Spark   exec=lazy   shuffle {:>7.2} MB in {el:.3}s -> {:>6.2} GB/s (sim; paper 15 GB/s cluster)",
        bytes as f64 / 1e6,
        bytes as f64 / el / 1e9
    );

    let el = out.h2d_elapsed.as_secs_f64();
    println!(
        "GPU     exec=async  H2D {:>11.2} MB in {el:.3}s -> {:>6.2} GB/s (sim; paper 6.1 GB/s pageable)",
        out.transfer_bytes as f64 / 1e6,
        out.transfer_bytes as f64 / el / 1e9
    );
    let el = out.d2h_elapsed.as_secs_f64();
    println!(
        "GPU     exec=async  D2H {:>11.2} MB in {el:.3}s -> {:>6.2} GB/s (sim)",
        out.transfer_bytes as f64 / 1e6,
        out.transfer_bytes as f64 / el / 1e9
    );
    println!("CPU     exec=eager  memory=host heap, no cache API");
    obs_record(
        "table2",
        [
            ("shuffle_bytes_written", out.shuffle_bytes_written),
            ("shuffle_bytes_read", out.shuffle_bytes_read),
            ("reduced_records", out.reduced_records as u64),
            ("transfer_bytes", out.transfer_bytes as u64),
            ("roundtrip_exact", u64::from(out.roundtrip_exact)),
        ],
    );
    obs_finish();
}
