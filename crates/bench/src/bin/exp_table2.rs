//! Table 2: measured properties of the simulated backends — execution
//! model, memory, and interconnect bandwidths (the paper measures 15 GB/s
//! Spark-aggregate shuffle and 6.1 GB/s pageable host-to-device; our
//! simulator is calibrated at a reduced scale with the same ordering).

use memphis_bench::{bench_gpu, bench_spark, header};
use memphis_gpusim::GpuDevice;
use memphis_matrix::rand_gen::rand_uniform;
use memphis_matrix::BlockedMatrix;
use memphis_sparksim::SparkContext;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    header(
        "Table 2: backend properties",
        "Spark: lazy, distributed memory, cache API; GPU: async, small \
         memory, no cache API; CPU: eager",
    );

    // Spark shuffle bandwidth: one reduceByKey over ~32 MB.
    let sc = SparkContext::new(bench_spark());
    let m = rand_uniform(16_384, 256, -1.0, 1.0, 1); // 32 MB
    let blocked = BlockedMatrix::from_dense(&m, 1024).unwrap();
    let rdd = sc.parallelize_blocked(&blocked, "X");
    let shuffled = sc.reduce_by_key(
        &rdd,
        "rekey",
        Arc::new(|k, m| {
            vec![(
                memphis_matrix::BlockId {
                    row: k.row % 4,
                    col: 0,
                },
                m.deep_clone(),
            )]
        }),
        Arc::new(|a, _| a),
        4,
    );
    let t0 = Instant::now();
    sc.count(&shuffled);
    let el = t0.elapsed().as_secs_f64();
    let stats = sc.stats();
    let bytes = stats.shuffle_bytes_written + stats.shuffle_bytes_read;
    println!(
        "Spark   exec=lazy   shuffle {:>7.2} MB in {el:.3}s -> {:>6.2} GB/s (sim; paper 15 GB/s cluster)",
        bytes as f64 / 1e6,
        bytes as f64 / el / 1e9
    );

    // GPU H2D bandwidth (pageable).
    let gpu = GpuDevice::new(bench_gpu(256 << 20));
    let h = rand_uniform(4096, 512, -1.0, 1.0, 2); // 16 MB
    let t0 = Instant::now();
    let ptr = gpu.upload(&h).unwrap();
    let el = t0.elapsed().as_secs_f64();
    println!(
        "GPU     exec=async  H2D {:>11.2} MB in {el:.3}s -> {:>6.2} GB/s (sim; paper 6.1 GB/s pageable)",
        h.size_bytes() as f64 / 1e6,
        h.size_bytes() as f64 / el / 1e9
    );
    let t0 = Instant::now();
    let _ = gpu.copy_to_host(ptr).unwrap();
    let el = t0.elapsed().as_secs_f64();
    println!(
        "GPU     exec=async  D2H {:>11.2} MB in {el:.3}s -> {:>6.2} GB/s (sim)",
        h.size_bytes() as f64 / 1e6,
        h.size_bytes() as f64 / el / 1e9
    );
    println!("CPU     exec=eager  memory=host heap, no cache API");
}
