//! Ablations of MEMPHIS's §5 design choices, on top of the paper's
//! figures: (1) the delayed-caching factor n, (2) eviction injection
//! between GPU loops with shifting allocation patterns, and (3) the
//! maxParallelize operator ordering versus plain depth-first.

use memphis_bench::{
    bench_cache, bench_gpu, bench_spark, cache_report, header, obs_absorb, obs_finish, obs_init,
};
use memphis_core::cache::config::CacheConfig;
use memphis_engine::compiler::Ordering;
use memphis_engine::interp::run_program;
use memphis_engine::plan::{Block, BlockHints, Dag, OpKind, Operand, Program, ScalarRef};
use memphis_engine::{EngineConfig, ReuseMode};
use memphis_matrix::ops::binary::BinaryOp;
use memphis_workloads::harness::Backends;
use memphis_workloads::pipelines::tlvis;
use std::time::Instant;

fn main() {
    obs_init();
    delayed_caching_ablation();
    eviction_injection_ablation();
    ordering_ablation();
    obs_finish();
}

/// Delay factor n on a stream where only 25% of the RDD-producing
/// instructions ever repeat: n=1 persists everything (cache pollution and
/// eviction churn), larger n defers persistence to proven repeaters.
fn delayed_caching_ablation() {
    header(
        "Ablation: delayed caching (§5.2)",
        "delay n=1 caches eagerly (pollution under low reuse); n=2 defers \
         until the second execution; n=4 for loop-dependent blocks",
    );
    for delay in [1u32, 2, 4] {
        let b = Backends::with_spark(bench_spark());
        let mut cfg = EngineConfig::benchmark().with_reuse(ReuseMode::Memphis);
        cfg.spark_threshold_bytes = 0;
        cfg.blen = 128;
        cfg.async_ops = false;
        cfg.delay_factor = delay;
        let mut cache_cfg: CacheConfig = bench_cache(16 << 20);
        cache_cfg.default_delay = delay;
        let mut ctx = b.make_ctx(cfg, cache_cfg);
        let x = memphis_matrix::rand_gen::rand_uniform(2048, 16, -1.0, 1.0, 3);
        ctx.read("X", x, "abl/X").unwrap();
        let t0 = Instant::now();
        // 200 distinct scales, of which 50 repeat once at the end.
        for i in 0..200usize {
            ctx.binary_const("Y", "X", i as f64 + 1.5, BinaryOp::Mul, false)
                .unwrap();
        }
        for i in 0..50usize {
            ctx.binary_const("Y", "X", i as f64 + 1.5, BinaryOp::Mul, false)
                .unwrap();
        }
        let elapsed = t0.elapsed();
        let sc_stats = b.sc.as_ref().unwrap().stats();
        let r = ctx.cache().stats();
        println!(
            "n={delay}: {:.3}s  rdd-persists(est)={}B  unpersists={} deferred-puts={} reused={}",
            elapsed.as_secs_f64(),
            ctx.cache().rdd_est_bytes(),
            r.rdd_unpersists,
            r.puts_deferred,
            ctx.stats.reused,
        );
        obs_absorb(&sc_stats);
        println!("{}", cache_report(ctx.cache()));
    }
}

/// TLVIS with and without the compiler's `evict(100)` between models.
fn eviction_injection_ablation() {
    header(
        "Ablation: eviction injection (§5.2)",
        "without evict() between models with shifted allocation patterns, \
         the free pools mismatch and allocation falls back to freeing \
         pointers one at a time (Figure 9(b))",
    );
    for evict in [false, true] {
        let b = Backends::with_gpu(bench_gpu(24 << 20)); // tight device
        let mut cfg = EngineConfig::benchmark().with_reuse(ReuseMode::Memphis);
        cfg.gpu_min_cells = 1024;
        let mut ctx = b.make_ctx(cfg, bench_cache(32 << 20));
        let mut p = tlvis::TlvisParams::benchmark(48, 16);
        p.evict_between_models = evict;
        let t0 = Instant::now();
        let check = tlvis::run(&mut ctx, &p).unwrap();
        let elapsed = t0.elapsed();
        let d = b.gpu.as_ref().unwrap().stats();
        let r = ctx.cache().stats();
        println!(
            "evict={evict}: {:.3}s check={check:.4}  cudaMalloc={} cudaFree={} recycled={} d2h-evict={}",
            elapsed.as_secs_f64(),
            d.allocs,
            d.frees,
            r.gpu_recycled,
            r.gpu_evicted_to_host,
        );
        obs_absorb(&d);
        println!("{}", cache_report(ctx.cache()));
    }
}

/// Algorithm 2 ordering vs depth-first on a DAG with two independent
/// Spark jobs and a local tail: maxParallelize triggers the longer job
/// first so the two prefetches overlap.
fn ordering_ablation() {
    header(
        "Ablation: operator ordering (Algorithm 2)",
        "maxParallelize linearizes longer remote chains first, increasing \
         overlap of concurrent Spark jobs vs plain depth-first",
    );
    // b1 = tsmm(exp(X)); b2 = t(X) y; out = solve(b1 + reg, b2)
    let mut dag = Dag::new();
    let e = dag.add(
        OpKind::Unary(memphis_matrix::ops::unary::UnaryOp::Exp),
        vec![Operand::Var("X".into())],
        None,
    );
    let g = dag.add(OpKind::Tsmm, vec![Operand::Node(e)], None);
    let b2 = dag.add(
        OpKind::Xty,
        vec![Operand::Var("X".into()), Operand::Var("y".into())],
        None,
    );
    let a = dag.add(
        OpKind::BinaryScalar {
            op: BinaryOp::Add,
            scalar: ScalarRef::Const(0.1),
            swap: false,
        },
        vec![Operand::Node(g)],
        None,
    );
    dag.add(
        OpKind::Solve,
        vec![Operand::Node(a), Operand::Node(b2)],
        Some("w"),
    );
    let mut program = Program::new();
    program.declare("X", 8192, 32);
    program.declare("y", 8192, 1);
    program.blocks.push(Block::Basic {
        dag,
        hints: BlockHints::default(),
    });

    for (label, ordering) in [
        ("depth-first", Ordering::DepthFirst),
        ("maxParallelize", Ordering::MaxParallelize),
    ] {
        let b = Backends::with_spark(bench_spark());
        let mut cfg = EngineConfig::benchmark().with_reuse(ReuseMode::None);
        cfg.spark_threshold_bytes = 64 << 10;
        cfg.blen = 512;
        cfg.async_ops = true; // actions run as concurrent jobs
        let mut ctx = b.make_ctx(cfg, bench_cache(16 << 20));
        let (x, y) = memphis_workloads::data::regression(8192, 32, 0.1, 5);
        ctx.read("X", x, "ord/X").unwrap();
        ctx.read("y", y, "ord/y").unwrap();
        let t0 = Instant::now();
        for _ in 0..10 {
            run_program(&mut ctx, &program, ordering).unwrap();
            ctx.get_matrix("w").unwrap();
            ctx.cache().clear(); // isolate ordering (no reuse between runs)
        }
        println!("{label:<15} {:.3}s (10 runs)", t0.elapsed().as_secs_f64());
    }
}
