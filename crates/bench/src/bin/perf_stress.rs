//! Perf stress harness (CI `perf` stage): the gate workloads at their
//! committed-baseline scale for the exact-match counter gate, plus a
//! ~10x scaled concurrency/serving stress measured under virtual time.
//!
//! Usage: `perf_stress <out.json> [baseline.json]`
//!
//! The report separates two kinds of numbers:
//!
//! - **Gated counters** (`memphis_bench::gate::GATED`): produced by the
//!   baseline-scale runs, deterministic by construction, compared for
//!   equality against `ci/BENCH_baseline.json`. Any divergence fails
//!   the stage.
//! - **Perf keys** (`perf_*`): throughput (ops/sec, wall clock) and
//!   request latency percentiles (p50/p99 in virtual ticks) of the
//!   scaled stress. Tick-denominated numbers are deterministic;
//!   wall-clock numbers vary with the host and are informational only —
//!   never gated.
//!
//! Latency is virtual: the serving scheduler runs an open-loop trace in
//! discrete ticks, so `finished - arrival` of each completed request is
//! exact run over run and worker count over worker count. The arrival
//! map is regenerated from the same seeded trace generator the
//! scheduler consumed.

use memphis_bench::gate::{compare_gated, percentile, render};
use memphis_bench::golden::{
    run_concurrency_gate, run_serve_gate, serve_gate_spec, ConcGateParams, ServeGateParams,
};
use memphis_serve::{open_loop, Outcome};
use std::collections::HashMap;

/// The scaled stress: ~10x the baseline serving trace, double the
/// rendezvous sessions, 10x the churned eviction set.
fn stress_conc() -> ConcGateParams {
    ConcGateParams {
        items: 256,
        rounds: 32,
        churn: 1280,
        sessions: 16,
    }
}

fn stress_serve() -> ServeGateParams {
    ServeGateParams {
        requests: 960,
        workers: 8,
        ..ServeGateParams::full()
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args.next().unwrap_or_else(|| "BENCH_pr6.json".to_string());
    let baseline_path = args.next();

    // ---- Gate scale: the exact-match counter slice ----
    let o = run_concurrency_gate(&ConcGateParams::full());
    let s = run_serve_gate(&ServeGateParams::full());
    assert!(
        s.invariants_hold(),
        "serve gate invariants failed: {:?}",
        s.counters
    );

    // ---- Stress scale: throughput + latency under virtual time ----
    let cp = stress_conc();
    let oc = run_concurrency_gate(&cp);
    // Probe-loop operations: every round probes every item, plus the
    // churned puts (each a probe-scale cache operation).
    let conc_ops = (cp.items * cp.rounds + cp.churn) as u64;
    let conc_secs = oc.elapsed.as_secs_f64().max(1e-9);

    let sp = stress_serve();
    let arrivals: HashMap<u64, u64> = open_loop(sp.seed, &serve_gate_spec(&sp))
        .into_iter()
        .map(|r| (r.id, r.arrival))
        .collect();
    let rep = run_serve_gate(&sp);
    assert!(
        rep.invariants_hold(),
        "stress serve invariants failed: {:?}",
        rep.counters
    );
    let latencies: Vec<u64> = rep
        .outcomes
        .iter()
        .filter_map(|(id, o)| match o {
            Outcome::Completed { finished, .. } => Some(finished.saturating_sub(arrivals[id])),
            _ => None,
        })
        .collect();
    let serve_secs = rep.elapsed.as_secs_f64().max(1e-9);

    let report = render(&[
        // Gated counters (baseline scale, compared for equality).
        ("hits", o.hits),
        ("recomputes", o.recomputes),
        ("evictions", o.evictions),
        ("coalesced_hits", o.coalesced_hits),
        ("duplicates", o.duplicates),
        ("serve_shed", s.counters.shed),
        ("serve_coalesced", s.counters.coalesced),
        ("serve_quota_evictions", s.counters.quota_evictions),
        ("serve_completed", s.counters.completed),
        ("wall_clock_ms", o.elapsed.as_millis() as u64),
        // Stress perf keys: deterministic in ticks/counters.
        ("perf_conc_items", cp.items as u64),
        ("perf_conc_hits", oc.hits),
        ("perf_conc_duplicates", oc.duplicates),
        ("perf_stress_requests", sp.requests as u64),
        ("perf_stress_completed", rep.counters.completed),
        ("perf_stress_shed", rep.counters.shed),
        ("perf_stress_ticks", rep.ticks),
        (
            "perf_stress_latency_p50_ticks",
            percentile(&latencies, 50.0),
        ),
        (
            "perf_stress_latency_p99_ticks",
            percentile(&latencies, 99.0),
        ),
        // Wall-clock perf keys: informational only, host-dependent.
        (
            "perf_conc_ops_per_sec",
            (conc_ops as f64 / conc_secs) as u64,
        ),
        ("perf_conc_wall_ms", oc.elapsed.as_millis() as u64),
        (
            "perf_serve_req_per_sec",
            (rep.counters.completed as f64 / serve_secs) as u64,
        ),
        ("perf_serve_wall_ms", rep.elapsed.as_millis() as u64),
    ]);
    std::fs::write(&out_path, &report).unwrap_or_else(|e| {
        eprintln!("perf_stress: cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    println!("perf_stress: wrote {out_path}");
    print!("{report}");

    let Some(baseline_path) = baseline_path else {
        return;
    };
    let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("perf_stress: cannot read baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    let diff = compare_gated(&report, &baseline);
    for (key, got) in &diff.matches {
        println!("perf_stress: {key:<16} {got} == baseline");
    }
    for (key, got, want) in &diff.regressions {
        eprintln!("perf_stress: {key:<16} {got} != baseline {want}  REGRESSION");
    }
    for key in &diff.missing {
        eprintln!("perf_stress: {key:<16} missing from report or baseline");
    }
    if !diff.passed() {
        eprintln!("perf_stress: deterministic counters diverged from {baseline_path}");
        std::process::exit(1);
    }
    println!("perf_stress: all deterministic counters match {baseline_path}");
}
