//! Serving-layer experiment: seeded open-loop multi-tenant traffic with
//! a cache-hogging tenant, admission control, pressure-driven load
//! shedding, and transient faults — over one shared lineage cache.
//!
//! Asserts the serving determinism contract: for each seed, the full
//! deterministic counter slice is identical across worker-thread counts
//! (the worker pool computes, the dispatcher decides), no shared item is
//! ever computed twice concurrently, no tenant's executing bytes exceed
//! its hard cap, and every admitted request reaches exactly one terminal
//! outcome. A second scenario raises the fault rate to 30% and checks
//! that interactive requests of well-behaved tenants still complete
//! while the hog pays the quota-eviction bill. Supports the shared
//! `--trace` / `--json` observability flags.

use memphis_bench::golden::{run_serve_gate, serve_gate_spec, ServeGateParams, SERVE_GATE_HOG};
use memphis_bench::{header, obs_absorb, obs_finish, obs_init, obs_record};
use memphis_serve::{open_loop, Outcome, Priority, ServeReport};

fn check_invariants(r: &ServeReport, label: &str) {
    assert!(
        r.counters.duplicates == 0,
        "{label}: duplicate concurrent computes"
    );
    assert!(r.hard_caps_respected(), "{label}: hard cap overshoot");
    assert!(
        r.counters.terminally_complete(),
        "{label}: an admitted request starved (admitted={} != completed+shed+failed={})",
        r.counters.admitted,
        r.counters.completed + r.counters.shed + r.counters.failed
    );
    assert!(r.invariants_hold(), "{label}: serving invariants failed");
}

fn main() {
    obs_init();
    header(
        "Serving layer (admission control, tenant quotas, load shedding)",
        "open-loop multi-tenant traffic through the coalescing cache: \
         deterministic counters across seeds and worker counts, zero \
         duplicate computes, zero hard-cap overshoots",
    );

    for seed in [42u64, 1337] {
        let mut reports = Vec::new();
        for workers in [1usize, 4] {
            let p = ServeGateParams {
                seed,
                workers,
                ..ServeGateParams::full()
            };
            reports.push(run_serve_gate(&p));
        }
        let (one, four) = (&reports[0], &reports[1]);
        assert_eq!(
            one.counters.deterministic_slice(),
            four.counters.deterministic_slice(),
            "seed {seed}: counters must not depend on worker count"
        );
        assert_eq!(
            one.outcomes, four.outcomes,
            "seed {seed}: per-request outcomes must not depend on worker count"
        );
        check_invariants(four, "baseline");
        let c = &four.counters;
        println!(
            "seed={seed:<5} workers=1|4  {:>7.3}s  arrivals={} admitted={} completed={} \
             (late={}) shed={} failed={}",
            four.elapsed.as_secs_f64(),
            c.arrivals,
            c.admitted,
            c.completed,
            c.completed_late,
            c.shed,
            c.failed
        );
        println!(
            "            rejected: tokens={} cap={} queue={}  suspended={} resumed={} \
             retries={}",
            c.rejected_tokens,
            c.rejected_cap,
            c.rejected_queue_full,
            c.suspended,
            c.resumed,
            c.retries
        );
        println!(
            "            cache: hits={} computes={} coalesced={} recomputes={} \
             quota_evicts={} dup={}",
            c.hits, c.computes, c.coalesced, c.recomputes, c.quota_evictions, c.duplicates
        );
        for t in &four.tenants {
            println!(
                "            tenant {}: high_water={}/{} completed={} shed={} failed={} \
                 rejected={}",
                t.tenant, t.high_water, t.cap, t.completed, t.shed, t.failed, t.rejected
            );
        }
        obs_absorb(&four.reuse);
        obs_record(
            "serve",
            [
                ("seed", seed),
                ("admitted", c.admitted),
                ("completed", c.completed),
                ("shed", c.shed),
                ("coalesced", c.coalesced),
                ("quota_evictions", c.quota_evictions),
                ("duplicates", c.duplicates),
            ],
        );
    }

    // Stress scenario: over-quota hog tenant plus a 30% transient-fault
    // rate. Well-behaved tenants' interactive traffic must still land.
    println!();
    for seed in [42u64, 1337] {
        let p = ServeGateParams {
            seed,
            fault_rate: 0.3,
            ..ServeGateParams::full()
        };
        let r = run_serve_gate(&p);
        check_invariants(&r, "stress");
        assert!(
            r.counters.retries > 0,
            "30% faults must force retries (seed {seed})"
        );
        assert!(
            r.counters.quota_evictions > 0,
            "the over-quota hog must pay quota evictions first (seed {seed})"
        );

        // Map request ids back to tenant/priority via the (identical)
        // generated trace, then check the isolation property: on-time
        // interactive requests of well-behaved tenants still complete.
        // A shed is only legal for a request already past its deadline
        // (no longer on time), and it must stay a rare tail — the hog
        // and the fault storm cannot crowd interactive traffic out.
        let trace = open_loop(seed, &serve_gate_spec(&p));
        let mut interactive_admitted = 0u64;
        let mut interactive_completed = 0u64;
        for req in &trace {
            if req.tenant == SERVE_GATE_HOG || req.priority != Priority::Interactive {
                continue;
            }
            let o = r.outcome_of(req.id).expect("every request has an outcome");
            if !o.was_admitted() {
                continue;
            }
            interactive_admitted += 1;
            match o {
                Outcome::Completed { .. } => interactive_completed += 1,
                Outcome::Shed { at } => assert!(
                    at > req.deadline,
                    "seed {seed}: interactive request {} shed while still on time",
                    req.id
                ),
                Outcome::Failed { .. } => {} // genuine fault exhaustion
                _ => unreachable!("admitted outcomes only"),
            }
        }
        assert!(
            interactive_admitted > 0 && interactive_completed * 8 >= interactive_admitted * 7,
            "seed {seed}: non-hog interactive traffic must overwhelmingly complete \
             (admitted={interactive_admitted}, completed={interactive_completed})"
        );
        println!(
            "stress seed={seed:<5} fault_rate=0.30  completed={} shed={} failed={} \
             retries={} quota_evicts={}  interactive(non-hog)={}/{} completed",
            r.counters.completed,
            r.counters.shed,
            r.counters.failed,
            r.counters.retries,
            r.counters.quota_evictions,
            interactive_completed,
            interactive_admitted
        );
        obs_record(
            "serve_stress",
            [
                ("seed", seed),
                ("completed", r.counters.completed),
                ("shed", r.counters.shed),
                ("retries", r.counters.retries),
                ("quota_evictions", r.counters.quota_evictions),
                ("interactive_completed", interactive_completed),
            ],
        );
    }
    obs_finish();
}
