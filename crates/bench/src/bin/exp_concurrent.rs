//! Concurrent multi-session serving experiment: N session threads share
//! one sharded lineage cache and run the paper's pipeline mix
//! (hcv / pnmf / hband / tlvis) with deterministic per-session seeds.
//!
//! Reports the coalescing and contention counters of the serving run and
//! asserts the serving invariants: every rendezvous probe but one
//! coalesces onto the owner's computation, no shared lineage id is ever
//! computed twice concurrently, and pinned entries survive eviction
//! pressure. Supports the shared `--trace` / `--json` observability
//! flags.

use memphis_bench::{header, obs_absorb, obs_finish, obs_init, obs_record};
use memphis_workloads::serve::{run_serve, ServeParams};

fn main() {
    obs_init();
    let sessions = 8;
    header(
        "Concurrent serving (sharded cache + in-flight coalescing)",
        "N sessions over one lineage cache: second probes of an in-flight \
         item block and consume the owner's result instead of recomputing",
    );
    for seed in [42u64, 1337] {
        let p = ServeParams::benchmark(sessions, seed);
        let r = run_serve(&p);
        println!(
            "seed={seed:<5} sessions={sessions}  {:>7.3}s  coalesced(rendezvous)={}  \
             coalesced(total)={}  inflight_waits={}  dup_shared_computes={}  \
             shared_recomputes={}  pinned_survivors={}/{}",
            r.elapsed.as_secs_f64(),
            r.rendezvous_coalesced,
            r.reuse.coalesced_hits,
            r.reuse.inflight_waits,
            r.duplicate_shared_computes,
            r.shared_recomputes,
            r.pinned_survivors,
            p.pinned_items,
        );
        println!(
            "            probes={} hits={} misses={} shard_contention={}",
            r.reuse.probes, r.reuse.hits, r.reuse.misses, r.reuse.shard_contention
        );
        for (kind, check) in &r.checks {
            println!("            session {kind:<6} check={check:.6}");
        }
        assert!(
            r.reuse.coalesced_hits > 0,
            "8 sessions must coalesce at least once"
        );
        assert_eq!(
            r.duplicate_shared_computes, 0,
            "shared lineage ids must never be computed twice concurrently"
        );
        assert!(r.invariants_hold(&p), "serving invariants failed: {r:?}");
        obs_absorb(&r.reuse);
        obs_record(
            "serve",
            [
                ("sessions", sessions as u64),
                ("rendezvous_coalesced", r.rendezvous_coalesced),
                ("duplicate_shared_computes", r.duplicate_shared_computes),
                ("shared_recomputes", r.shared_recomputes),
                ("pinned_survivors", r.pinned_survivors as u64),
            ],
        );
    }
    obs_finish();
}
