//! Figure 2(c) and 2(d): backend challenges.
//!
//! (c) Eager materialization of cached RDDs is roughly an order of
//! magnitude slower than no caching at all, while MEMPHIS's lazy reuse is
//! faster than both — justifying lazy RDD caching (§2.2).
//!
//! (d) On the GPU, per-kernel memory allocation/free and host transfers
//! dwarf the actual compute of a mini-batch affine+ReLU layer — justifying
//! pointer recycling and reuse (§2.3).

use memphis_bench::{bench_cache, bench_gpu, bench_spark, header};
use memphis_engine::{EngineConfig, ReuseMode};
use memphis_matrix::ops::binary::{binary_scalar, BinaryOp};
use memphis_matrix::ops::unary::UnaryOp;
use memphis_matrix::rand_gen::rand_uniform;
use memphis_matrix::BlockedMatrix;
use memphis_sparksim::{SparkContext, StorageLevel};
use memphis_workloads::harness::Backends;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    fig2c();
    fig2d();
}

/// Scaled from the paper's 12K RDDs (4K reusable) to 1.2K (400 reusable).
fn fig2c() {
    header(
        "Figure 2(c) Lazy evaluation challenges",
        "eager materialization of 12K RDDs (4K reusable) ~10x slower than no \
         caching; MEMPHIS lazy reuse ~2x faster than no caching",
    );
    let total = 1200usize;
    let distinct = 400usize; // each derived RDD recurs 3x (4K of 12K in the paper)
    let m = rand_uniform(512, 16, -1.0, 1.0, 1);
    let blocked = BlockedMatrix::from_dense(&m, 64).unwrap();

    // No caching: every iteration derives an RDD and aggregates it (one
    // job per iteration, nothing cached).
    let t0 = Instant::now();
    {
        let sc = SparkContext::new(bench_spark());
        let src = sc.parallelize_blocked(&blocked, "X");
        for i in 0..total {
            let scale = (i % distinct) as f64 / distinct as f64 + 0.5;
            let rdd = sc.map(
                &src,
                "scale",
                Arc::new(move |k, b| (*k, binary_scalar(b, scale, BinaryOp::Mul, false))),
            );
            sc.count(&rdd);
        }
    }
    let no_cache = t0.elapsed();

    // Eager caching: persist + count() after every transformation.
    let t0 = Instant::now();
    {
        let sc = SparkContext::new(bench_spark());
        let src = sc.parallelize_blocked(&blocked, "X");
        for i in 0..total {
            let scale = (i % distinct) as f64 / distinct as f64 + 0.5;
            let rdd = sc.map(
                &src,
                "scale",
                Arc::new(move |k, b| (*k, binary_scalar(b, scale, BinaryOp::Mul, false))),
            );
            rdd.persist(StorageLevel::Memory);
            sc.count(&rdd); // eager materialization job
            sc.count(&rdd); // the consuming job
            sc.unpersist(&rdd);
        }
    }
    let eager = t0.elapsed();

    // MEMPHIS: lazy reuse through the engine (repeated scales hit the
    // cache; no forced materialization).
    let t0 = Instant::now();
    let backend_report;
    {
        let b = Backends::with_spark(bench_spark());
        let mut cfg = EngineConfig::benchmark().with_reuse(ReuseMode::Memphis);
        cfg.spark_threshold_bytes = 0;
        cfg.blen = 64;
        cfg.async_ops = false;
        // Delayed caching n=2 (the §5.2 auto-tuner's choice for partially
        // reusable blocks): never-repeating RDDs are not persisted.
        cfg.delay_factor = 2;
        let mut cache_cfg = bench_cache(32 << 20);
        cache_cfg.default_delay = 2;
        let mut ctx = b.make_ctx(cfg, cache_cfg);
        ctx.read("X", m.clone(), "fig2c/X").unwrap();
        for i in 0..total {
            let scale = (i % distinct) as f64 / distinct as f64 + 0.5;
            ctx.binary_const("Y", "X", scale, BinaryOp::Mul, false)
                .unwrap();
            // Aggregate each derived RDD (the consuming job); repeated
            // scales reuse the cached action result and skip it entirely.
            ctx.agg(
                "s",
                "Y",
                memphis_matrix::ops::agg::AggOp::Sum,
                memphis_engine::ops::AggDir::Full,
            )
            .unwrap();
            ctx.get_scalar("s").unwrap();
        }
        backend_report = ctx.cache().backend_report();
    }
    let memphis = t0.elapsed();

    println!("NoCache    {:>9.3}s  1.00x", no_cache.as_secs_f64());
    println!(
        "Eager      {:>9.3}s  {:.2}x slower than NoCache (paper: ~10x)",
        eager.as_secs_f64(),
        eager.as_secs_f64() / no_cache.as_secs_f64()
    );
    println!(
        "MEMPHIS    {:>9.3}s  {:.2}x faster than NoCache (paper: ~2x)",
        memphis.as_secs_f64(),
        no_cache.as_secs_f64() / memphis.as_secs_f64()
    );
    println!("backends (MEMPHIS):\n{backend_report}");
}

/// The paper forces each kernel to allocate its output, copy to host, and
/// deallocate: alloc/free take 4.6x and copies 9x of compute.
fn fig2d() {
    header(
        "Figure 2(d) GPU overhead breakdown",
        "affine+ReLU mini-batches with per-kernel alloc/copy/free: memory \
         alloc+free ~4.6x and copy ~9x of the compute time",
    );
    // Pageable-memory calibration: the paper measures pageable H2D at
    // 6.1 GB/s against multi-TFLOP device compute; at simulation scale the
    // same ratios need slower per-byte costs and heavier alloc overheads.
    let mut gcfg = bench_gpu(256 << 20);
    gcfg.alloc_overhead = std::time::Duration::from_micros(40);
    gcfg.free_overhead = std::time::Duration::from_micros(18);
    gcfg.h2d_ns_per_byte = 4.7;
    gcfg.d2h_ns_per_byte = 4.7;
    let b = Backends::with_gpu(gcfg);
    let mut cfg = EngineConfig::benchmark().with_reuse(ReuseMode::None);
    cfg.gpu_min_cells = 1;
    cfg.gpu_recycling = false; // force cudaMalloc/cudaFree per output
    let mut ctx = b.make_ctx(cfg, bench_cache(16 << 20));
    let batches = 200usize;
    ctx.read("W", rand_uniform(64, 32, -0.3, 0.3, 2), "fig2d/W")
        .unwrap();
    ctx.read("bv", rand_uniform(1, 32, 0.0, 0.0, 3), "fig2d/b")
        .unwrap();
    for i in 0..batches {
        let batch = rand_uniform(32, 64, 0.0, 1.0, 100 + i as u64);
        ctx.read("B", batch, &format!("batch{i}")).unwrap();
        ctx.affine("H", "B", "W", "bv").unwrap();
        ctx.unary("A", "H", UnaryOp::Relu).unwrap();
        // Force the result to the host (the paper's per-kernel D2H).
        ctx.get_matrix("A").unwrap();
        ctx.remove("A");
        ctx.remove("H");
        ctx.remove("B");
    }
    let d = b.gpu.as_ref().unwrap().stats();
    let compute_s = d.compute_ns as f64 / 1e9;
    let alloc_s = d.alloc_free_wait_ns as f64 / 1e9;
    let copy_s = d.transfer_wait_ns as f64 / 1e9;
    println!("compute     {compute_s:>9.3}s  1.00x");
    println!(
        "alloc+free  {alloc_s:>9.3}s  {:.1}x of compute (paper: 4.6x)",
        alloc_s / compute_s
    );
    println!(
        "copy        {copy_s:>9.3}s  {:.1}x of compute (paper: 9x)",
        copy_s / compute_s
    );
    println!(
        "({} allocs, {} frees, {} kernels, {} syncs)",
        d.allocs, d.frees, d.kernels, d.syncs
    );
    println!("backends:\n{}", ctx.cache().backend_report());
}
