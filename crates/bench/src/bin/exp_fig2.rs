//! Figure 2(c) and 2(d): backend challenges.
//!
//! (c) Eager materialization of cached RDDs is roughly an order of
//! magnitude slower than no caching at all, while MEMPHIS's lazy reuse is
//! faster than both — justifying lazy RDD caching (§2.2).
//!
//! (d) On the GPU, per-kernel memory allocation/free and host transfers
//! dwarf the actual compute of a mini-batch affine+ReLU layer — justifying
//! pointer recycling and reuse (§2.3).
//!
//! The experiment cores live in `memphis_bench::golden` so the golden
//! smoke tests can run them at tiny scale; this binary runs the full
//! scale and prints the paper's ratios.

use memphis_bench::golden::{run_fig2c, run_fig2d, Fig2cParams, Fig2dParams};
use memphis_bench::{header, obs_absorb, obs_finish, obs_init};

fn main() {
    obs_init();
    fig2c();
    fig2d();
    obs_finish();
}

/// Scaled from the paper's 12K RDDs (4K reusable) to 1.2K (400 reusable).
fn fig2c() {
    header(
        "Figure 2(c) Lazy evaluation challenges",
        "eager materialization of 12K RDDs (4K reusable) ~10x slower than no \
         caching; MEMPHIS lazy reuse ~2x faster than no caching",
    );
    let out = run_fig2c(&Fig2cParams::full());
    println!("NoCache    {:>9.3}s  1.00x", out.no_cache.as_secs_f64());
    println!(
        "Eager      {:>9.3}s  {:.2}x slower than NoCache (paper: ~10x)",
        out.eager.as_secs_f64(),
        out.eager.as_secs_f64() / out.no_cache.as_secs_f64()
    );
    println!(
        "MEMPHIS    {:>9.3}s  {:.2}x faster than NoCache (paper: ~2x)",
        out.memphis.as_secs_f64(),
        out.no_cache.as_secs_f64() / out.memphis.as_secs_f64()
    );
    obs_absorb(&out.reuse);
    println!("backends (MEMPHIS):\n{}", out.backend_report);
}

/// The paper forces each kernel to allocate its output, copy to host, and
/// deallocate: alloc/free take 4.6x and copies 9x of compute.
fn fig2d() {
    header(
        "Figure 2(d) GPU overhead breakdown",
        "affine+ReLU mini-batches with per-kernel alloc/copy/free: memory \
         alloc+free ~4.6x and copy ~9x of the compute time",
    );
    let out = run_fig2d(&Fig2dParams::full());
    let d = &out.gpu;
    let compute_s = d.compute_ns as f64 / 1e9;
    let alloc_s = d.alloc_free_wait_ns as f64 / 1e9;
    let copy_s = d.transfer_wait_ns as f64 / 1e9;
    println!("compute     {compute_s:>9.3}s  1.00x");
    println!(
        "alloc+free  {alloc_s:>9.3}s  {:.1}x of compute (paper: 4.6x)",
        alloc_s / compute_s
    );
    println!(
        "copy        {copy_s:>9.3}s  {:.1}x of compute (paper: 9x)",
        copy_s / compute_s
    );
    println!(
        "({} allocs, {} frees, {} kernels, {} syncs)",
        d.allocs, d.frees, d.kernels, d.syncs
    );
    obs_absorb(&out.gpu);
    println!("backends:\n{}", out.backend_report);
}
