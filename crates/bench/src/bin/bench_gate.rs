//! Bench smoke gate: runs the deterministic concurrency workload from
//! `memphis_bench::golden::run_concurrency_gate` and the serving
//! workload from `run_serve_gate`, writes their counters to a JSON
//! report, and (optionally) compares them against a committed baseline,
//! exiting non-zero when any deterministic counter regresses.
//!
//! Usage: `bench_gate <out.json> [baseline.json]`
//!
//! Wall clock is reported but never gated; the gated counters (reuse
//! hits, recomputes, evictions, coalesced hits, duplicates, and the
//! serving shed/coalesced/quota-eviction counts) are exact by
//! construction, so the comparison is equality, not a tolerance band.

use memphis_bench::golden::{
    run_concurrency_gate, run_serve_gate, ConcGateParams, ServeGateParams,
};

/// The gated counters, in report order.
const GATED: [&str; 8] = [
    "hits",
    "recomputes",
    "evictions",
    "coalesced_hits",
    "duplicates",
    "serve_shed",
    "serve_coalesced",
    "serve_quota_evictions",
];

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args.next().unwrap_or_else(|| "BENCH_pr4.json".to_string());
    let baseline_path = args.next();

    let o = run_concurrency_gate(&ConcGateParams::full());
    let s = run_serve_gate(&ServeGateParams::full());
    assert!(
        s.invariants_hold(),
        "serve gate invariants failed: {:?}",
        s.counters
    );
    let report = render(&[
        ("hits", o.hits),
        ("recomputes", o.recomputes),
        ("evictions", o.evictions),
        ("coalesced_hits", o.coalesced_hits),
        ("duplicates", o.duplicates),
        ("serve_shed", s.counters.shed),
        ("serve_coalesced", s.counters.coalesced),
        ("serve_quota_evictions", s.counters.quota_evictions),
        ("serve_completed", s.counters.completed),
        ("wall_clock_ms", o.elapsed.as_millis() as u64),
    ]);
    std::fs::write(&out_path, &report).unwrap_or_else(|e| {
        eprintln!("bench_gate: cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    println!("bench_gate: wrote {out_path}");
    print!("{report}");

    let Some(baseline_path) = baseline_path else {
        return;
    };
    let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("bench_gate: cannot read baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    let current = parse(&report);
    let expected = parse(&baseline);
    let mut failed = false;
    for key in GATED {
        match (expected.get(key), current.get(key)) {
            (Some(want), Some(got)) if want == got => {
                println!("bench_gate: {key:<16} {got} == baseline");
            }
            (Some(want), Some(got)) => {
                eprintln!("bench_gate: {key:<16} {got} != baseline {want}  REGRESSION");
                failed = true;
            }
            _ => {
                eprintln!("bench_gate: {key:<16} missing from report or baseline");
                failed = true;
            }
        }
    }
    if failed {
        eprintln!("bench_gate: deterministic counters diverged from {baseline_path}");
        std::process::exit(1);
    }
    println!("bench_gate: all deterministic counters match {baseline_path}");
}

/// Renders a flat `{"k": v, ...}` JSON object (the vendored serde is
/// serialize-only, so both ends are hand-rolled).
fn render(pairs: &[(&str, u64)]) -> String {
    let body = pairs
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect::<Vec<_>>()
        .join(",\n");
    format!("{{\n{body}\n}}\n")
}

/// Parses a flat string-to-integer JSON object (whitespace-tolerant;
/// ignores anything that is not a `"key": <digits>` pair).
fn parse(s: &str) -> std::collections::HashMap<String, u64> {
    let mut out = std::collections::HashMap::new();
    let mut rest = s;
    while let Some(q0) = rest.find('"') {
        rest = &rest[q0 + 1..];
        let Some(q1) = rest.find('"') else { break };
        let key = rest[..q1].to_string();
        rest = &rest[q1 + 1..];
        let Some(c) = rest.find(':') else { break };
        let after = rest[c + 1..].trim_start();
        let digits: String = after.chars().take_while(|ch| ch.is_ascii_digit()).collect();
        if !digits.is_empty() {
            if let Ok(v) = digits.parse() {
                out.insert(key, v);
            }
        }
        rest = &rest[c + 1..];
    }
    out
}
