//! Bench smoke gate: runs the deterministic concurrency workload from
//! `memphis_bench::golden::run_concurrency_gate` and the serving
//! workload from `run_serve_gate`, writes their counters to a JSON
//! report, and (optionally) compares them against a committed baseline,
//! exiting non-zero when any deterministic counter regresses.
//!
//! Usage: `bench_gate <out.json> [baseline.json]`
//!
//! Wall clock is reported but never gated; the gated counters (see
//! `memphis_bench::gate::GATED`) are exact by construction, so the
//! comparison is equality, not a tolerance band.

use memphis_bench::gate::{
    compare_keys, render, GATED, GATED_CLUSTER, GATED_LATENCY, GATED_RECOVERY, GATED_SCRIPT,
};
use memphis_bench::golden::{
    run_cluster_gate, run_concurrency_gate, run_latency_gate, run_recovery_gate, run_script_gate,
    run_serve_gate, ClusterGateParams, ConcGateParams, LatencyGateParams, RecoveryGateParams,
    ScriptGateParams, ServeGateParams,
};

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args.next().unwrap_or_else(|| "BENCH_pr4.json".to_string());
    let baseline_path = args.next();

    let o = run_concurrency_gate(&ConcGateParams::full());
    let s = run_serve_gate(&ServeGateParams::full());
    let r = run_recovery_gate(&RecoveryGateParams::full());
    let c = run_cluster_gate(&ClusterGateParams::full());
    let l = run_latency_gate(&LatencyGateParams::full());
    let sc = run_script_gate(&ScriptGateParams::full());
    assert!(
        s.invariants_hold(),
        "serve gate invariants failed: {:?}",
        s.counters
    );
    assert!(
        c.invariants_hold(),
        "cluster gate invariants failed: {:?}",
        c.report.stats
    );
    assert!(
        l.invariants_hold(),
        "latency gate invariants failed: p99 paper={} delayed={} digests {:016x}/{:016x}",
        l.p99_paper,
        l.p99_delayed,
        l.paper.digest,
        l.delayed.digest
    );
    assert!(
        sc.invariants_hold(),
        "script gate invariants failed: {sc:?}"
    );
    let report = render(&[
        ("hits", o.hits),
        ("recomputes", o.recomputes),
        ("evictions", o.evictions),
        ("coalesced_hits", o.coalesced_hits),
        ("duplicates", o.duplicates),
        ("serve_shed", s.counters.shed),
        ("serve_coalesced", s.counters.coalesced),
        ("serve_quota_evictions", s.counters.quota_evictions),
        ("serve_completed", s.counters.completed),
        ("segments_recovered", r.segments_recovered),
        ("entries_recovered", r.entries_recovered),
        ("entries_rehydrated", r.entries_rehydrated),
        ("checksum_rejects", r.checksum_rejects),
        ("manifest_swaps", r.manifest_swaps),
        ("remote_hits", c.report.stats.remote_hits),
        ("remote_misses", c.report.stats.remote_misses),
        ("transfer_bytes", c.report.stats.transfer_bytes),
        ("rebalance_moves", c.report.stats.rebalance_moves),
        ("replica_hits", c.report.stats.replica_hits),
        (
            "replica_invalidations",
            c.report.stats.replica_invalidations,
        ),
        ("handoff_hits", c.report.stats.handoff_hits),
        ("remote_coalesced", c.report.stats.remote_coalesced),
        ("cluster_computes", c.report.stats.computes),
        ("latency_served", l.paper.served),
        ("latency_p99_paper", l.p99_paper),
        ("latency_p99_delayed", l.p99_delayed),
        ("latency_mad_evictions", l.delayed.reuse.mad_evictions),
        (
            "latency_ttna_rejects",
            l.delayed.reuse.ttna_admission_rejects,
        ),
        (
            "latency_delay_ticks_saved",
            l.delayed.reuse.delayed_hit_ticks_saved,
        ),
        ("script_programs_fuzzed", sc.programs_fuzzed),
        ("script_divergences", sc.divergences),
        ("script_lowered_nodes", sc.lowered_nodes),
        ("script_corpus_scripts", sc.corpus_scripts),
        ("script_corpus_digest", sc.corpus_digest),
        ("wall_clock_ms", o.elapsed.as_millis() as u64),
    ]);
    std::fs::write(&out_path, &report).unwrap_or_else(|e| {
        eprintln!("bench_gate: cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    println!("bench_gate: wrote {out_path}");
    print!("{report}");

    let Some(baseline_path) = baseline_path else {
        return;
    };
    let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!("bench_gate: cannot read baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    let keys: Vec<&str> = GATED
        .iter()
        .chain(GATED_RECOVERY.iter())
        .chain(GATED_CLUSTER.iter())
        .chain(GATED_LATENCY.iter())
        .chain(GATED_SCRIPT.iter())
        .copied()
        .collect();
    let diff = compare_keys(&report, &baseline, &keys);
    for (key, got) in &diff.matches {
        println!("bench_gate: {key:<16} {got} == baseline");
    }
    for (key, got, want) in &diff.regressions {
        eprintln!("bench_gate: {key:<16} {got} != baseline {want}  REGRESSION");
    }
    for key in &diff.missing {
        eprintln!("bench_gate: {key:<16} missing from report or baseline");
    }
    if !diff.passed() {
        eprintln!("bench_gate: deterministic counters diverged from {baseline_path}");
        std::process::exit(1);
    }
    println!("bench_gate: all deterministic counters match {baseline_path}");
}
