//! Latency experiment: delayed-hits-aware eviction/admission vs the
//! paper's eq. (1) on a skewed multi-tenant trace.
//!
//! Runs the `run_latency` harness (coalesced fan-out batches + steady
//! singles + cold scan pollution + one-shot stream churn) under both
//! cache policies for seeds 42 and 1337 and asserts, per seed:
//!
//! * the served digest is bit-identical between policies — the cost
//!   model changes *when* things recompute, never *what* is served;
//! * p99 per-arrival virtual latency drops strictly under
//!   `DelayedHits` (eq. (1) evicts freshly readmitted batch-serving
//!   entries below disposable stream items, so whole batches pay the
//!   recompute every round; the waiter-boosted score does not);
//! * the three new counters (`mad_evictions`, `ttna_admission_rejects`
//!   during the Shed window, `delayed_hit_ticks_saved`) are live under
//!   `DelayedHits` and exactly zero under `Paper`;
//! * repeated runs are counter-exact (full determinism).
//!
//! Supports the shared `--trace` / `--json` observability flags.

use memphis_bench::gate::percentile;
use memphis_bench::{header, obs_absorb, obs_finish, obs_init, obs_record};
use memphis_core::CachePolicy;
use memphis_workloads::{run_latency, LatencyParams, LatencyReport};

fn print_report(label: &str, r: &LatencyReport, p99: u64) {
    println!(
        "{label:<22} digest={:016x}  served={} coalesced={} p99={p99}  \
         hits={} misses={} mad_evicts={} ttna_rejects={} ticks_saved={}",
        r.digest,
        r.served,
        r.coalesced_arrivals,
        r.reuse.hits,
        r.reuse.misses,
        r.reuse.mad_evictions,
        r.reuse.ttna_admission_rejects,
        r.reuse.delayed_hit_ticks_saved
    );
}

fn main() {
    obs_init();
    header(
        "Latency-aware eviction/admission (delayed hits + TTNA)",
        "same served bytes, lower tail: the delayed-hits score keeps \
         batch-serving entries resident, TTNA admission shedding turns \
         away scan pollution under pressure, and p99 virtual latency \
         drops vs the paper's eq. (1) on a skewed trace",
    );

    for seed in [42u64, 1337] {
        let params = LatencyParams::gate(seed);
        let paper = run_latency(&params, CachePolicy::Paper);
        let delayed = run_latency(&params, CachePolicy::DelayedHits);
        let p99_paper = percentile(&paper.latencies, 99.0);
        let p99_delayed = percentile(&delayed.latencies, 99.0);

        // The policies must serve the exact same byte stream.
        assert_eq!(
            paper.digest, delayed.digest,
            "seed {seed}: the eviction policy changed what was served"
        );
        assert_eq!(paper.served, delayed.served, "seed {seed}: served drifted");
        assert_eq!(
            paper.latencies.len(),
            delayed.latencies.len(),
            "seed {seed}: sample counts drifted"
        );

        // The headline claim: the tail drops.
        assert!(
            p99_delayed < p99_paper,
            "seed {seed}: DelayedHits must cut p99 \
             (paper={p99_paper} delayed={p99_delayed})"
        );

        // The new counters are live under DelayedHits...
        assert!(
            delayed.reuse.mad_evictions > 0,
            "seed {seed}: no delayed-hits evictions recorded"
        );
        assert!(
            delayed.reuse.ttna_admission_rejects > 0,
            "seed {seed}: the Shed window never rejected an admission"
        );
        assert!(
            delayed.reuse.delayed_hit_ticks_saved > 0,
            "seed {seed}: no delayed-hit ticks credited"
        );
        // ...and exactly zero under Paper: the published behavior is
        // bit-identical with the feature compiled in but switched off.
        assert_eq!(paper.reuse.mad_evictions, 0, "seed {seed}");
        assert_eq!(paper.reuse.ttna_admission_rejects, 0, "seed {seed}");
        assert_eq!(paper.reuse.delayed_hit_ticks_saved, 0, "seed {seed}");

        // Full determinism: a repeated run is counter-exact.
        let again = run_latency(&params, CachePolicy::DelayedHits);
        assert_eq!(again.digest, delayed.digest, "seed {seed}: digest drifted");
        assert_eq!(
            again.reuse, delayed.reuse,
            "seed {seed}: counters must be exact across runs"
        );
        assert_eq!(again.latencies, delayed.latencies, "seed {seed}");

        println!("seed={seed}");
        print_report("  paper (eq. 1)", &paper, p99_paper);
        print_report("  delayed-hits", &delayed, p99_delayed);
        println!(
            "  p99 {}x: {} -> {} ticks  (n={} foreground samples)",
            p99_paper / p99_delayed.max(1),
            p99_paper,
            p99_delayed,
            paper.latencies.len()
        );

        obs_absorb(&delayed.reuse);
        obs_record(
            "exp_latency",
            [
                ("seed", seed),
                ("served", paper.served),
                ("p99_paper", p99_paper),
                ("p99_delayed", p99_delayed),
                ("mad_evictions", delayed.reuse.mad_evictions),
                ("ttna_rejects", delayed.reuse.ttna_admission_rejects),
                ("ticks_saved", delayed.reuse.delayed_hit_ticks_saved),
            ],
        );
    }
    obs_finish();
}
