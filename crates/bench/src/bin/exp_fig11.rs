//! Figure 11: lineage tracing and reuse overhead micro-benchmarks.
//!
//! (a) With tiny inputs, tracing adds ~1.3x and probing ~2x overhead; from
//! 8 MB inputs the overheads vanish and reuse wins 1.1x–3x as the fraction
//! of reusable instructions grows from 20% to 80%.
//!
//! (b) Probing overhead grows with instruction count (up to ~15% at 5M
//! instructions) but 20% reuse already amortizes it; an unbounded cache
//! (no eviction) adds nothing over the bounded default.

use memphis_bench::{bench_cache, cache_report, header, obs_finish, obs_init};
use memphis_engine::{EngineConfig, ExecutionContext, ReuseMode};
use memphis_matrix::ops::binary::BinaryOp;
use memphis_matrix::rand_gen::rand_uniform;
use memphis_workloads::harness::Backends;
use std::time::Instant;

/// The L2SVM-core loop: binary matrix-vector instructions over a grid of
/// hyper-parameters with a controlled repeat fraction.
fn l2svm_core(
    ctx: &mut ExecutionContext,
    rows: usize,
    cols: usize,
    iters: usize,
    reuse_pct: usize,
) {
    let x = rand_uniform(rows, cols, -1.0, 1.0, 7);
    ctx.read("X", x, "fig11/X").unwrap();
    // Repeated hyper-parameters arrive with temporal locality (tuning
    // revisits a configuration shortly after first trying it): `reuse_pct`
    // percent of iterations re-run the previous configuration.
    for i in 0..iters {
        let reg = ((i * (100 - reuse_pct)) / 100) as f64 * 1e-4 + 1e-3;
        ctx.literal("reg", reg).unwrap();
        ctx.binary("s1", "X", "reg", BinaryOp::Mul).unwrap();
        ctx.binary("s2", "s1", "reg", BinaryOp::Add).unwrap();
        ctx.binary_const("s3", "s2", 2.0, BinaryOp::Pow, false)
            .unwrap();
        ctx.binary("s4", "s3", "X", BinaryOp::Sub).unwrap();
    }
}

fn run(mode: ReuseMode, rows: usize, cols: usize, iters: usize, reuse_pct: usize) -> f64 {
    let b = Backends::local();
    let mut cache_cfg = bench_cache(64 << 20);
    // This experiment isolates tracing/probing/reuse overheads; evicted
    // entries drop (the paper's buffer pool absorbs spills separately).
    cache_cfg.spill_to_disk = false;
    let mut ctx = b.make_ctx(EngineConfig::benchmark().with_reuse(mode), cache_cfg);
    let t0 = Instant::now();
    l2svm_core(&mut ctx, rows, cols, iters, reuse_pct);
    t0.elapsed().as_secs_f64()
}

fn main() {
    obs_init();
    header(
        "Figure 11(a) tracing/probing overhead vs input size",
        "overheads dominate tiny inputs (Trace 1.3x, Probe 2x); from 8MB \
         inputs reuse wins 1.1x (20%) to 3x (80%)",
    );
    let iters = 400;
    // 800 B .. 800 KB inputs (rows x 8 cols of f64).
    for (label, rows) in [("800B", 12usize), ("80KB", 1250), ("800KB", 12_500)] {
        let base = run(ReuseMode::None, rows, 8, iters, 0);
        let trace = run(ReuseMode::TraceOnly, rows, 8, iters, 0);
        let probe = run(ReuseMode::ProbeOnly, rows, 8, iters, 0);
        print!(
            "input {label:>5}:  Base {base:.3}s  Trace {:.2}x  Probe {:.2}x ",
            trace / base,
            probe / base
        );
        for pct in [20usize, 40, 80] {
            let t = run(ReuseMode::Memphis, rows, 8, iters, pct);
            print!(" reuse{pct}% {:.2}x", base / t);
        }
        println!();
    }

    header(
        "Figure 11(b) overhead vs instruction count",
        "probing overhead grows to ~15% at 5M instructions; 20% reuse \
         amortizes it; 40% reuse ~1.5x; an unbounded cache adds nothing",
    );
    let rows = 1250; // 80 KB inputs, scaled from the paper's 8 MB
    let mut last_report = String::new();
    for iters in [2_000usize, 6_000, 12_000] {
        let base = run(ReuseMode::None, rows, 8, iters, 0);
        let probe = run(ReuseMode::ProbeOnly, rows, 8, iters, 0);
        let r20 = run(ReuseMode::Memphis, rows, 8, iters, 20);
        let r40 = run(ReuseMode::Memphis, rows, 8, iters, 40);
        // 40%INF: same but with an effectively unbounded driver cache.
        let b = Backends::local();
        let mut inf_cfg = bench_cache(usize::MAX / 2);
        inf_cfg.spill_to_disk = false;
        let mut ctx = b.make_ctx(
            EngineConfig::benchmark().with_reuse(ReuseMode::Memphis),
            inf_cfg,
        );
        let t0 = Instant::now();
        l2svm_core(&mut ctx, rows, 8, iters, 40);
        let r40inf = t0.elapsed().as_secs_f64();
        last_report = cache_report(ctx.cache());
        println!(
            "{:>6} instrs: Base {base:.3}s  Probe +{:.0}%  20% {:.2}x  40% {:.2}x  40%INF {:.2}x",
            iters * 4,
            (probe / base - 1.0) * 100.0,
            base / r20,
            base / r40,
            base / r40inf
        );
    }
    println!("backends (40%INF, largest run):\n{last_report}");
    obs_finish();
}
