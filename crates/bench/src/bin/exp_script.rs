//! Script frontend experiment: the DML-like corpus plus the structured
//! differential workload fuzzer.
//!
//! For seeds 42 and 1337:
//!
//! * compiles every committed corpus script, round-trips it through the
//!   pretty-printer (parse → print → parse must lower to the identical
//!   program), and runs the full differential (reuse-on vs reuse-off,
//!   `Paper` vs `DelayedHits`, warm-restart-after-spill), asserting
//!   bit-identical sink digests across all four configurations;
//! * fuzzes 200 generated well-typed programs through the same
//!   differential, asserting zero divergences — any divergence would be
//!   minimized and written to a runnable `.dml` repro under the system
//!   temp directory;
//! * asserts the campaign is counter-exact across repeated runs.
//!
//! Supports the shared `--trace` / `--json` observability flags.

use memphis_bench::golden::{run_script_gate, ScriptGateParams};
use memphis_bench::{header, obs_finish, obs_init, obs_record};
use memphis_workloads::script;

const FUZZ_PROGRAMS: u64 = 200;

fn main() {
    obs_init();
    header(
        "memphis-script: DML corpus + structured differential fuzzer",
        "every script runs reuse-on vs reuse-off, Paper vs DelayedHits, \
         and warm-restart-after-spill; sink digests must be bit-identical \
         in all four configurations, for the committed corpus and for \
         200 generated programs per seed",
    );

    // Corpus: round-trip stability + the differential.
    for (name, src) in script::CORPUS {
        let c = memphis_script::compile(src)
            .unwrap_or_else(|e| panic!("corpus script {name} must compile: {e}"));
        let ast = memphis_script::parse(src)
            .unwrap_or_else(|e| panic!("corpus script {name} must parse: {e}"));
        let printed = memphis_script::print_source(&ast);
        let c2 = memphis_script::compile(&printed)
            .unwrap_or_else(|e| panic!("pretty-printed {name} must re-compile: {e}"));
        assert_eq!(
            memphis_script::canonical_debug(&c.program),
            memphis_script::canonical_debug(&c2.program),
            "{name}: parse -> print -> parse changed the lowered program"
        );
        let digests = script::differential_digests(&c, name)
            .unwrap_or_else(|e| panic!("corpus script {name} must run: {e:?}"));
        assert!(
            script::digests_agree(&digests),
            "corpus script {name} diverged: {digests:?}"
        );
        println!(
            "corpus {name:<10} nodes={:<4} digest={:016x}  (reuse-on/off, delayed-hits, warm-restart agree)",
            c.node_count(),
            digests[0].1
        );
    }

    for seed in [42u64, 1337] {
        let repro_dir = std::env::temp_dir().join(format!("memphis_exp_script_{seed}"));
        let report = script::fuzz_campaign(seed, FUZZ_PROGRAMS, Some(&repro_dir));
        assert_eq!(report.programs, FUZZ_PROGRAMS, "seed {seed}");
        assert_eq!(
            report.divergences,
            0,
            "seed {seed}: divergences found, repros in {}: {:?}",
            repro_dir.display(),
            report.repros
        );

        // Full determinism: a repeated campaign is counter-exact.
        let again = script::fuzz_campaign(seed, FUZZ_PROGRAMS, None);
        assert_eq!(again.programs, report.programs, "seed {seed}");
        assert_eq!(again.divergences, report.divergences, "seed {seed}");
        assert_eq!(
            again.lowered_nodes, report.lowered_nodes,
            "seed {seed}: lowered node count drifted across runs"
        );

        println!(
            "seed={seed:<5} programs={} divergences={} lowered_nodes={}",
            report.programs, report.divergences, report.lowered_nodes
        );
        obs_record(
            "exp_script",
            [
                ("seed", seed),
                ("programs", report.programs),
                ("divergences", report.divergences),
                ("lowered_nodes", report.lowered_nodes),
            ],
        );
    }

    // The gated slice, printed for cross-checking against the committed
    // baseline (ci/BENCH_baseline.json).
    let gate = run_script_gate(&ScriptGateParams::full());
    assert!(gate.invariants_hold(), "{gate:?}");
    println!(
        "gate: programs_fuzzed={} divergences={} lowered_nodes={} corpus_scripts={} corpus_digest={}",
        gate.programs_fuzzed,
        gate.divergences,
        gate.lowered_nodes,
        gate.corpus_scripts,
        gate.corpus_digest
    );
    obs_finish();
}
