//! Table 3: the ML pipeline inventory with measured workload statistics
//! from small verification runs of every pipeline.

use memphis_bench::{bench_cache, bench_gpu, bench_spark, header, obs_finish, obs_init, tier_rows};
use memphis_engine::EngineConfig;
use memphis_workloads::harness::{run_timed, Backends};
use memphis_workloads::pipelines::{clean, en2de, hband, hcv, hdrop, pnmf, tlvis};

fn main() {
    obs_init();
    header(
        "Table 3: ML pipeline use cases",
        "seven pipelines spanning grid search, factorization, model search, \
         cleaning, dropout tuning, inference, and transfer learning",
    );
    println!(
        "{:<7} {:<38} {:<28} verification run",
        "Name", "Use case", "Influential techniques"
    );
    let cfg = EngineConfig::benchmark();
    let rows: Vec<(&str, &str, &str, f64, u64, String)> = vec![
        {
            let b = Backends::with_spark(bench_spark());
            let mut ctx = b.make_ctx(cfg.clone(), bench_cache(32 << 20));
            let p = hcv::HcvParams::small();
            let o = run_timed("HCV", &mut ctx, |c| hcv::run(c, &p)).unwrap();
            (
                "HCV",
                "Grid search / cross validation",
                "async OPs, local & RDD reuse",
                o.elapsed.as_secs_f64(),
                o.engine.reused,
                tier_rows(&o),
            )
        },
        {
            let b = Backends::with_spark(bench_spark());
            let mut ctx = b.make_ctx(cfg.clone(), bench_cache(32 << 20));
            let p = pnmf::PnmfParams::small();
            let o = run_timed("PNMF", &mut ctx, |c| pnmf::run(c, &p)).unwrap();
            (
                "PNMF",
                "Non-negative matrix factorization",
                "checkpoint placement",
                o.elapsed.as_secs_f64(),
                o.engine.reused,
                tier_rows(&o),
            )
        },
        {
            let b = Backends::local();
            let mut ctx = b.make_ctx(cfg.clone(), bench_cache(32 << 20));
            let p = hband::HbandParams::small();
            let o = run_timed("HBAND", &mut ctx, |c| hband::run(c, &p)).unwrap();
            (
                "HBAND",
                "Hyperband model selection",
                "multi-level reuse, delayed caching",
                o.elapsed.as_secs_f64(),
                o.engine.reused,
                tier_rows(&o),
            )
        },
        {
            let b = Backends::local();
            let mut ctx = b.make_ctx(cfg.clone(), bench_cache(32 << 20));
            let p = clean::CleanParams::small();
            let o = run_timed("CLEAN", &mut ctx, |c| clean::run(c, &p)).unwrap();
            (
                "CLEAN",
                "Data cleaning pipelines",
                "many intermediates & evictions",
                o.elapsed.as_secs_f64(),
                o.engine.reused,
                tier_rows(&o),
            )
        },
        {
            let b = Backends::with_gpu(bench_gpu(64 << 20));
            let mut ctx = b.make_ctx(cfg.clone(), bench_cache(32 << 20));
            let p = hdrop::HdropParams::small();
            let o = run_timed("HDROP", &mut ctx, |c| hdrop::run(c, &p)).unwrap();
            (
                "HDROP",
                "Dropout rate tuning",
                "local and GPU ptr. reuse",
                o.elapsed.as_secs_f64(),
                o.engine.reused,
                tier_rows(&o),
            )
        },
        {
            let b = Backends::with_gpu(bench_gpu(64 << 20));
            let mut ctx = b.make_ctx(cfg.clone(), bench_cache(32 << 20));
            let p = en2de::En2deParams::small();
            let o = run_timed("EN2DE", &mut ctx, |c| en2de::run(c, &p)).unwrap();
            (
                "EN2DE",
                "Machine translation inference",
                "recycle & reuse GPU ptrs.",
                o.elapsed.as_secs_f64(),
                o.engine.reused,
                tier_rows(&o),
            )
        },
        {
            let b = Backends::with_gpu(bench_gpu(64 << 20));
            let mut ctx = b.make_ctx(cfg.clone(), bench_cache(32 << 20));
            let p = tlvis::TlvisParams::small();
            let o = run_timed("TLVIS", &mut ctx, |c| tlvis::run(c, &p)).unwrap();
            (
                "TLVIS",
                "Transfer learning feature extraction",
                "evictions & mem. management",
                o.elapsed.as_secs_f64(),
                o.engine.reused,
                tier_rows(&o),
            )
        },
    ];
    for (name, case, tech, secs, reused, _) in &rows {
        println!("{name:<7} {case:<38} {tech:<28} {secs:.3}s, {reused} reused");
    }
    println!("\nper-backend stats (from CacheBackend::snapshot):");
    for (name, _, _, _, _, report) in &rows {
        println!("  {name}:\n{report}");
    }
    obs_finish();
}
