//! Figure 13: end-to-end ML pipelines, part I — HCV (a), PNMF (b),
//! HBAND (c). Reproduces the paper's configuration sweeps at reduced
//! scale and prints measured speedups next to the paper's reported shape.

use memphis_bench::{
    bench_cache, bench_spark, header, obs_backends, obs_finish, obs_init, report, verify_checks,
    ExpConfig,
};
use memphis_engine::EngineConfig;
use memphis_workloads::harness::{run_timed, Backends};
use memphis_workloads::pipelines::{hband, hcv, pnmf};

fn main() {
    obs_init();
    hcv_experiment();
    pnmf_experiment();
    hband_experiment();
    obs_finish();
}

fn engine_cfg() -> EngineConfig {
    let mut cfg = EngineConfig::benchmark();
    cfg.spark_threshold_bytes = 256 << 10; // fold matrices become RDDs
    cfg.blen = 128;
    cfg
}

fn hcv_experiment() {
    header(
        "Figure 13(a) HCV",
        "MPH 9.6x vs Base (reusing t(X)X, t(X)y per fold + concurrent jobs); \
         Base-A ~2x; LIMA local-only; HELIX ~ Base; MPH ~20% over MPH-NA",
    );
    for rows_per_fold in [2048usize, 4096] {
        println!("-- input {} rows/fold x 64 cols --", rows_per_fold);
        let p = hcv::HcvParams::benchmark(rows_per_fold, 64);
        let mut rows = Vec::new();
        for cfg in [
            ExpConfig::Base,
            ExpConfig::BaseAsync,
            ExpConfig::Lima,
            ExpConfig::Helix,
            ExpConfig::MphNoAsync,
            ExpConfig::Mph,
        ] {
            let b = Backends::with_spark(bench_spark());
            let mut ctx = b.make_ctx(cfg.engine(engine_cfg()), bench_cache(32 << 20));
            let mut p = p.clone();
            p.prefetch = matches!(cfg, ExpConfig::BaseAsync | ExpConfig::Mph);
            rows.push(run_timed(cfg.label(), &mut ctx, |c| hcv::run(c, &p)).expect("hcv"));
            obs_backends(&b);
        }
        verify_checks(&rows, 1e-6);
        report(&rows);
    }
}

fn pnmf_experiment() {
    header(
        "Figure 13(b) PNMF",
        "Base/LIMA blow up past ~30 iterations (lazy re-execution of all prior \
         iterations); MPH 7.9x via per-iteration checkpoints",
    );
    for iterations in [4usize, 8, 12] {
        println!("-- {} iterations --", iterations);
        let mut rows = Vec::new();
        for cfg in [ExpConfig::Base, ExpConfig::Lima, ExpConfig::Mph] {
            let b = Backends::with_spark(bench_spark());
            let mut ctx = b.make_ctx(cfg.engine(engine_cfg()), bench_cache(32 << 20));
            let p = pnmf::PnmfParams::benchmark(2048, iterations, matches!(cfg, ExpConfig::Mph));
            rows.push(run_timed(cfg.label(), &mut ctx, |c| pnmf::run(c, &p)).expect("pnmf"));
            obs_backends(&b);
        }
        verify_checks(&rows, 1e-6);
        report(&rows);
    }
}

fn hband_experiment() {
    header(
        "Figure 13(c) HBAND",
        "MPH 2.6x/2.5x vs Base (successive-halving prefix + ensemble XB reuse); \
         40% over HELIX and LIMA",
    );
    for rows in [2048usize, 4096] {
        println!("-- input {} rows x 32 cols --", rows);
        let p = hband::HbandParams::benchmark(rows, 32);
        let mut out = Vec::new();
        for cfg in [
            ExpConfig::Base,
            ExpConfig::Lima,
            ExpConfig::Helix,
            ExpConfig::Mph,
        ] {
            let b = Backends::with_spark(bench_spark());
            let mut ctx = b.make_ctx(cfg.engine(engine_cfg()), bench_cache(32 << 20));
            out.push(run_timed(cfg.label(), &mut ctx, |c| hband::run(c, &p)).expect("hband"));
            obs_backends(&b);
        }
        verify_checks(&out, 1e-6);
        report(&out);
    }
}
