//! Figure 12: cache-size robustness and GPU eviction.
//!
//! (a) Even a small driver cache keeps ~1.2x speedup; larger caches help
//! modestly at larger inputs — the cost&size eviction policy retains the
//! high-value entries.
//!
//! (b) Ensemble CNN scoring with duplicate images: probing overhead stays
//! ~8% at tiny batch sizes and reuse yields 1.3x–4x as the duplicate rate
//! grows, despite heavy pointer recycling.

use memphis_bench::{
    bench_cache, bench_gpu, header, obs_backends, obs_finish, obs_init, report, verify_checks,
};
use memphis_engine::{EngineConfig, ReuseMode};
use memphis_matrix::ops::binary::BinaryOp;
use memphis_matrix::ops::nn::{Conv2dParams, Pool2dParams};
use memphis_matrix::rand_gen::rand_uniform;
use memphis_workloads::data;
use memphis_workloads::harness::{run_timed, Backends};
use std::time::Instant;

fn main() {
    obs_init();
    fig12a();
    fig12b();
    obs_finish();
}

fn fig12a() {
    header(
        "Figure 12(a) driver cache sizes",
        "900MB cache still 1.2x; 5GB vs 30GB differ little (1.4x vs 1.6x at \
         10GB inputs) — eviction keeps high-value entries",
    );
    let iters = 600usize;
    for rows in [2000usize, 8000] {
        let kb = rows * 16 * 8 / 1024;
        print!("input {kb:>5}KB intermediates: ");
        // Base (no reuse).
        let base = {
            let b = Backends::local();
            let mut ctx = b.make_ctx(
                EngineConfig::benchmark().with_reuse(ReuseMode::None),
                bench_cache(1 << 20),
            );
            let t0 = Instant::now();
            workload(&mut ctx, rows, iters);
            t0.elapsed().as_secs_f64()
        };
        print!("Base {base:.3}s ");
        // Three cache budgets, scaled from the paper's 900MB/5GB/30GB.
        for (label, budget) in [
            ("small", 2 << 20),
            ("medium", 12 << 20),
            ("large", 96 << 20),
        ] {
            let b = Backends::local();
            let mut ctx = b.make_ctx(
                EngineConfig::benchmark().with_reuse(ReuseMode::Memphis),
                bench_cache(budget),
            );
            let t0 = Instant::now();
            workload(&mut ctx, rows, iters);
            let t = t0.elapsed().as_secs_f64();
            let spills = ctx.cache().stats().local_spills;
            print!(" {label} {:.2}x({} spills)", base / t, spills);
        }
        println!();
    }
}

/// Repeated matrix-vector pipelines over a Zipf-distributed grid of
/// hyper-parameters: hot configurations repeat often (realistic tuning),
/// so the cost&size policy can retain high-value entries even in a small
/// cache.
fn workload(ctx: &mut memphis_engine::ExecutionContext, rows: usize, iters: usize) {
    let x = rand_uniform(rows, 16, -1.0, 1.0, 9);
    ctx.read("X", x, "fig12a/X").unwrap();
    let picks = data::zipf_tokens(iters, 120, 1.2, 13);
    for pick in picks {
        let reg = pick as f64 * 1e-4 + 1e-3;
        ctx.literal("reg", reg).unwrap();
        ctx.binary("a", "X", "reg", BinaryOp::Mul).unwrap();
        ctx.binary("b", "a", "reg", BinaryOp::Add).unwrap();
    }
}

fn fig12b() {
    header(
        "Figure 12(b) GPU cache eviction (ensemble CNN scoring)",
        "probing ~8% overhead at batch 2; 20/40/80% duplicate inputs yield \
         1.3x/1.6x/4x despite frequent recycling",
    );
    for batch in [4usize, 16] {
        println!("-- batch size {batch} --");
        let mut rows = Vec::new();
        for (label, mode, dup) in [
            ("Base-G", ReuseMode::None, 0.0),
            ("0%", ReuseMode::Memphis, 0.0),
            ("20%", ReuseMode::Memphis, 0.2),
            ("40%", ReuseMode::Memphis, 0.4),
            ("80%", ReuseMode::Memphis, 0.8),
        ] {
            let b = Backends::with_gpu(bench_gpu(192 << 20));
            let mut cfg = EngineConfig::benchmark().with_reuse(mode);
            cfg.gpu_min_cells = 256;
            let mut ctx = b.make_ctx(cfg, bench_cache(32 << 20));
            let out =
                run_timed(label, &mut ctx, |c| ensemble_score(c, 256, batch, dup)).expect("fig12b");
            rows.push(out);
            obs_backends(&b);
        }
        // Checks only comparable at equal duplicate rates.
        verify_checks(&rows[..2], 1e-9);
        report(&rows);
        println!(
            "   (recycled/reused pointers at 80%: see hits column; evictions occur when the device fills)"
        );
    }
}

/// Two CNNs with distinct allocation patterns score the same image stream
/// (the paper's 2-conv and 3-conv ensembles); duplicate images are
/// identified by content fingerprints in the batch lineage.
fn ensemble_score(
    ctx: &mut memphis_engine::ExecutionContext,
    images: usize,
    batch: usize,
    dup_rate: f64,
) -> memphis_engine::context::Result<f64> {
    use rand::{Rng, SeedableRng};
    let side = 8usize;
    let data = data::images(images, 3, side, 0.0, 11);
    // Duplicates at batch granularity (the paper repeats images in the
    // scoring stream): with probability `dup_rate` a batch repeats an
    // earlier one exactly.
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let num_batches = images / batch.max(1);
    let mut batch_starts: Vec<usize> = Vec::with_capacity(num_batches);
    for i in 0..num_batches {
        if i > 0 && rng.gen::<f64>() < dup_rate {
            let j = rng.gen_range(0..batch_starts.len());
            batch_starts.push(batch_starts[j]);
        } else {
            batch_starts.push(i * batch);
        }
    }
    // Model A: 2 conv layers (8, 16 channels); Model B: 3 conv layers.
    ctx.rand("Wa1", 8, 3 * 9, -0.3, 0.3, 21)?;
    ctx.rand("Wa2", 16, 8 * 9, -0.3, 0.3, 22)?;
    ctx.rand("Wb1", 8, 3 * 9, -0.3, 0.3, 23)?;
    ctx.rand("Wb2", 12, 8 * 9, -0.3, 0.3, 24)?;
    ctx.rand("Wb3", 16, 12 * 9, -0.3, 0.3, 25)?;
    let mut checksum = 0.0;
    for &b0 in &batch_starts {
        let rows: Vec<usize> = (b0..(b0 + batch).min(images)).collect();
        let bm = memphis_matrix::ops::reorg::gather_rows(&data, &rows).expect("in bounds");
        // Content-fingerprint lineage: duplicate batches share traces.
        let name = format!("img:{}", bm.fingerprint());
        ctx.read("B", bm, &name)?;
        for (tag, convs) in [("a", vec!["Wa1", "Wa2"]), ("b", vec!["Wb1", "Wb2", "Wb3"])] {
            let mut cur = "B".to_string();
            let mut ch = 3usize;
            let mut s = side;
            for (ci, w) in convs.iter().enumerate() {
                let p = Conv2dParams {
                    in_channels: ch,
                    out_channels: match (tag, ci) {
                        ("a", 0) => 8,
                        ("a", _) => 16,
                        ("b", 0) => 8,
                        ("b", 1) => 12,
                        _ => 16,
                    },
                    height: s,
                    width: s,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                };
                let out = format!("__c{tag}{ci}");
                ctx.conv2d(&out, &cur, w, p)?;
                ctx.unary(
                    &format!("__r{tag}{ci}"),
                    &out,
                    memphis_matrix::ops::unary::UnaryOp::Relu,
                )?;
                cur = format!("__r{tag}{ci}");
                ch = p.out_channels;
                if ci == 0 {
                    let pool = Pool2dParams {
                        channels: ch,
                        height: s,
                        width: s,
                        window: 2,
                        stride: 2,
                    };
                    ctx.max_pool2d(&format!("__p{tag}{ci}"), &cur, pool)?;
                    cur = format!("__p{tag}{ci}");
                    s /= 2;
                }
            }
            ctx.agg(
                &format!("__score{tag}"),
                &cur,
                memphis_matrix::ops::agg::AggOp::Mean,
                memphis_engine::ops::AggDir::Full,
            )?;
            checksum += ctx.get_scalar(&format!("__score{tag}"))?;
        }
        ctx.remove("B");
    }
    Ok(checksum)
}
