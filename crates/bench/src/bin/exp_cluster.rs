//! Cluster experiment: multi-node cache sharding with cross-node reuse,
//! bounded rebalancing, and hot-item replication.
//!
//! Asserts the cluster determinism contract for each seed: the served
//! digest is bit-identical across node counts {1, 2, 4, 8} and across a
//! mid-run join/leave (membership is a placement concern, never a
//! correctness concern); repeated runs produce identical counter
//! snapshots; churn alone never forces a recompute. The skew scenario
//! shows replication flattening a hotspot: with R=2 the hottest node's
//! share of hot-item serves drops strictly below the unreplicated run.
//! Finally the serve-layer dispatcher demonstrates warm cross-trace
//! reuse surviving a join/leave between traces. Supports the shared
//! `--trace` / `--json` observability flags.

use memphis_bench::{header, obs_absorb, obs_finish, obs_init, obs_record};
use memphis_serve::{open_loop, ClusterDispatcher, ClusterServeConfig, StreamSpec};
use memphis_workloads::{run_cluster, ClusterParams, ClusterReport};

/// Hotspot scenario used for the flattening comparison: one very hot
/// item drawing 90% of traffic, replication the only variable. With
/// R=0 every hot read lands on the item's single primary node (max
/// share 1000 by construction); replication must strictly beat that.
fn skew_params(seed: u64, replicas: usize) -> ClusterParams {
    let mut p = ClusterParams::test(4, seed);
    p.hot_items = 1;
    p.hot_frac = 0.9;
    p.requests = 400;
    p.replicas = replicas;
    p
}

fn print_report(label: &str, r: &ClusterReport) {
    let s = &r.stats;
    println!(
        "{label:<24} digest={:016x}  local={} remote={} replica={} handoff={} \
         computes={} recomputes={}",
        r.digest,
        s.local_hits,
        s.remote_hits,
        s.replica_hits,
        s.handoff_hits,
        s.computes,
        r.recomputes
    );
    println!(
        "{:<24} moves={} drops={} replicas(placed/inval/dropped)={}/{}/{} \
         transfer={}B ticks={}",
        "",
        s.rebalance_moves,
        s.rebalance_drops,
        s.replicas_placed,
        s.replica_invalidations,
        s.replicas_dropped,
        s.transfer_bytes,
        s.virtual_ticks
    );
}

fn main() {
    obs_init();
    header(
        "Cluster layer (sharding, cross-node reuse, rebalancing, replication)",
        "HRW-sharded multi-node cache: bit-identical results across node \
         counts and membership churn, zero churn-forced recomputes, \
         replication flattens a skewed hotspot",
    );

    for seed in [42u64, 1337] {
        // --- Node-count invariance: {1, 2, 4, 8} nodes, same trace. ---
        let runs: Vec<(usize, ClusterReport)> = [1usize, 2, 4, 8]
            .iter()
            .map(|&n| (n, run_cluster(&ClusterParams::test(n, seed))))
            .collect();
        let d0 = runs[0].1.digest;
        for (n, r) in &runs {
            assert_eq!(
                r.digest, d0,
                "seed {seed}: digest diverged at {n} nodes — results must \
                 not depend on the node count"
            );
            assert_eq!(
                r.recomputes, 0,
                "seed {seed}: {n} nodes recomputed a cached item"
            );
            assert_eq!(
                r.pending_moves, 0,
                "seed {seed}: {n} nodes left moves queued"
            );
        }
        // Repeated run → identical counter snapshot (full determinism).
        let again = run_cluster(&ClusterParams::test(4, seed));
        assert_eq!(
            again.stats, runs[2].1.stats,
            "seed {seed}: counters must be exact"
        );
        assert_eq!(again.hot_serves, runs[2].1.hot_serves);

        // --- Churn invariance: mid-run join + leave, same digest. ---
        let mut churned = ClusterParams::test(4, seed);
        churned.churn = true;
        let c = run_cluster(&churned);
        assert_eq!(
            c.digest, d0,
            "seed {seed}: a mid-run join/leave changed the served results"
        );
        assert_eq!(
            c.recomputes, 0,
            "seed {seed}: churn alone forced a recompute"
        );
        assert!(
            c.stats.rebalance_moves > 0,
            "seed {seed}: churn moved nothing"
        );

        // --- Gate configuration: every counter class exercised. ---
        let g = run_cluster(&ClusterParams::gate(seed));
        assert!(g.stats.remote_hits > 0, "seed {seed}: no cross-node reuse");
        assert!(
            g.stats.replica_hits > 0,
            "seed {seed}: no replica served a read"
        );
        assert!(
            g.stats.replica_invalidations > 0,
            "seed {seed}: writes never invalidated"
        );
        assert!(
            g.stats.transfer_bytes > 0,
            "seed {seed}: nothing crossed the fabric"
        );
        assert_eq!(
            g.recomputes, 0,
            "seed {seed}: only invalidations may force recomputes"
        );

        println!("seed={seed}");
        for (n, r) in &runs {
            print_report(&format!("  nodes={n}"), r);
        }
        print_report("  nodes=4 churn", &c);
        print_report("  gate (churn+inval)", &g);

        // --- Replication flattens the hotspot. ---
        let norep = run_cluster(&skew_params(seed, 0));
        let rep = run_cluster(&skew_params(seed, 2));
        assert_eq!(
            norep.digest, rep.digest,
            "seed {seed}: replication changed results"
        );
        assert!(
            rep.hot_max_share_x1000 < norep.hot_max_share_x1000,
            "seed {seed}: replication must flatten the hotspot \
             (R=0 max share {}/1000, R=2 max share {}/1000)",
            norep.hot_max_share_x1000,
            rep.hot_max_share_x1000
        );
        println!(
            "  hotspot max share: R=0 {:>4}/1000 -> R=2 {:>4}/1000  \
             (hot serves per node: {:?} -> {:?})",
            norep.hot_max_share_x1000, rep.hot_max_share_x1000, norep.hot_serves, rep.hot_serves
        );

        obs_absorb(&g.stats);
        obs_record(
            "exp_cluster",
            [
                ("seed", seed),
                ("remote_hits", g.stats.remote_hits),
                ("replica_hits", g.stats.replica_hits),
                ("rebalance_moves", g.stats.rebalance_moves),
                ("replica_invalidations", g.stats.replica_invalidations),
                ("hot_share_norep_x1000", norep.hot_max_share_x1000),
                ("hot_share_rep_x1000", rep.hot_max_share_x1000),
            ],
        );
    }

    // --- Serve-layer dispatch: warm reuse survives membership churn. ---
    println!();
    for seed in [42u64, 1337] {
        let mut spec = StreamSpec::test();
        spec.requests = 96;
        spec.pipeline_every = 24;
        let trace = open_loop(seed, &spec);
        let d = ClusterDispatcher::new(ClusterServeConfig::test());
        let cold = d.run(&trace);
        d.cluster().join(4);
        d.cluster().leave(0);
        let warm = d.run(&trace);
        assert_eq!(
            cold.digest, warm.digest,
            "seed {seed}: churn changed dispatch results"
        );
        assert_eq!(
            warm.cluster.computes, cold.cluster.computes,
            "seed {seed}: the warm pass after join/leave must not recompute"
        );
        println!(
            "dispatch seed={seed:<5} requests={} shared={} pipelines={} epochs={}  \
             cold computes={}  warm pass: +0 computes, remote={} replica={} moves={}",
            cold.completed,
            cold.shared,
            cold.pipelines,
            warm.epochs,
            cold.cluster.computes,
            warm.cluster.remote_hits,
            warm.cluster.replica_hits,
            warm.cluster.rebalance_moves
        );
        obs_record(
            "exp_cluster_dispatch",
            [
                ("seed", seed),
                ("completed", cold.completed),
                ("computes", cold.cluster.computes),
                ("remote_hits", warm.cluster.remote_hits),
                ("rebalance_moves", warm.cluster.rebalance_moves),
            ],
        );
    }
    obs_finish();
}
