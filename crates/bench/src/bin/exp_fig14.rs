//! Figure 14: end-to-end ML pipelines, part II — CLEAN (a), HDROP (b),
//! EN2DE (c), TLVIS (d), including the application-specific baselines the
//! paper compares against (CoorDL ≈ local-only IDP reuse, Clipper ≈
//! host-side prediction cache, VISTA ≈ cross-pipeline CSE, PyTorch ≈ GPU
//! recycling allocator without cross-iteration reuse).

use memphis_bench::{
    bench_cache, bench_gpu, header, obs_backends, obs_finish, obs_init, report, verify_checks,
    ExpConfig,
};
use memphis_engine::{EngineConfig, ReuseMode};
use memphis_workloads::harness::{run_timed, Backends};
use memphis_workloads::pipelines::{clean, en2de, hdrop, tlvis};

fn main() {
    obs_init();
    clean_experiment();
    hdrop_experiment();
    en2de_experiment();
    tlvis_experiment();
    obs_finish();
}

fn clean_experiment() {
    header(
        "Figure 14(a) CLEAN",
        "MPH 3.9x/3.5x over Base/LIMA at scale 120 by reusing repeated cleaning \
         primitives across the 12 enumerated pipelines",
    );
    for scale in [4usize, 8] {
        println!("-- scale factor {scale} --");
        let p = clean::CleanParams::benchmark(scale);
        let mut rows = Vec::new();
        for cfg in [ExpConfig::Base, ExpConfig::Lima, ExpConfig::Mph] {
            let b = Backends::local();
            let mut ctx = b.make_ctx(cfg.engine(EngineConfig::benchmark()), bench_cache(64 << 20));
            rows.push(run_timed(cfg.label(), &mut ctx, |c| clean::run(c, &p)).expect("clean"));
        }
        verify_checks(&rows, 1e-6);
        report(&rows);
    }
}

fn hdrop_experiment() {
    header(
        "Figure 14(b) HDROP",
        "MPH 1.7x over Base-G by reusing the batch-wise input data pipeline \
         across epochs and dropout rates; CoorDL (CPU-side IDP reuse only) \
         24% slower than MPH",
    );
    // The paper's Base-G benefits from a device that is faster than the
    // host; our simulated device executes kernels at host speed plus
    // overheads, so the A40's raw-speed advantage cannot reproduce. The
    // reuse comparison therefore runs host-placed (the IDP and training
    // share one backend), with one GPU-placed reference row.
    let p = hdrop::HdropParams::benchmark(2048);
    let mut rows = Vec::new();
    let configs: Vec<(&str, EngineConfig)> = vec![
        ("Base", {
            let mut c = EngineConfig::benchmark().with_reuse(ReuseMode::None);
            c.gpu_min_cells = usize::MAX; // host only
            c
        }),
        ("CoorDL", {
            // IDP reuse on the host only: LIMA semantics.
            let mut c = EngineConfig::benchmark().with_reuse(ReuseMode::Lima);
            c.gpu_min_cells = usize::MAX;
            c
        }),
        ("MPH", {
            let mut c = EngineConfig::benchmark().with_reuse(ReuseMode::Memphis);
            c.gpu_min_cells = usize::MAX;
            c
        }),
        ("Base-G", {
            let mut c = EngineConfig::benchmark().with_reuse(ReuseMode::None);
            c.gpu_min_cells = 2048;
            c
        }),
    ];
    for (label, mut cfg) in configs {
        let b = Backends::with_gpu(bench_gpu(256 << 20));
        // Delayed caching n=2 (the §5.2 auto-tuner's pick for the
        // partially loop-dependent training block): never-repeating
        // training intermediates are not admitted, the repeating IDP is.
        cfg.delay_factor = 2;
        let mut cache_cfg = bench_cache(64 << 20);
        cache_cfg.default_delay = 2;
        let mut ctx = b.make_ctx(cfg, cache_cfg);
        rows.push(run_timed(label, &mut ctx, |c| hdrop::run(c, &p)).expect("hdrop"));
        obs_backends(&b);
    }
    verify_checks(&rows, 1e-6);
    report(&rows);
}

fn en2de_experiment() {
    header(
        "Figure 14(c) EN2DE",
        "MPH 5x over Base-G (host-side prediction reuse eliminates GPU work); \
         MPH-F (fine-grained only) 4x; Clipper ~ MPH; PyTorch 2x over Base-G \
         but 2.4x slower than MPH",
    );
    let tokens = 1200;
    let mut rows = Vec::new();
    // Base-G: no reuse, recycling allocator (PyTorch-like memory behaviour).
    {
        let b = Backends::with_gpu(bench_gpu(128 << 20));
        let mut cfg = EngineConfig::benchmark().with_reuse(ReuseMode::None);
        cfg.gpu_min_cells = 1; // the whole forward pass runs on the device
        let mut ctx = b.make_ctx(cfg, bench_cache(64 << 20));
        let p = en2de::En2deParams::benchmark(tokens, false);
        rows.push(run_timed("Base-G", &mut ctx, |c| en2de::run(c, &p)).expect("en2de"));
    }
    // PyTorch-naive: no reuse, no pointer recycling (cudaMalloc/Free per op).
    {
        let b = Backends::with_gpu(bench_gpu(128 << 20));
        let mut cfg = EngineConfig::benchmark().with_reuse(ReuseMode::None);
        cfg.gpu_min_cells = 1; // the whole forward pass runs on the device
        cfg.gpu_recycling = false;
        let mut ctx = b.make_ctx(cfg, bench_cache(64 << 20));
        let p = en2de::En2deParams::benchmark(tokens, false);
        rows.push(run_timed("PyT-naive", &mut ctx, |c| en2de::run(c, &p)).expect("en2de"));
    }
    // MPH-F: fine-grained only (no prediction-level entries).
    {
        let b = Backends::with_gpu(bench_gpu(128 << 20));
        let mut cfg = EngineConfig::benchmark().with_reuse(ReuseMode::Memphis);
        cfg.gpu_min_cells = 1; // the whole forward pass runs on the device
        let mut ctx = b.make_ctx(cfg, bench_cache(64 << 20));
        let p = en2de::En2deParams::benchmark(tokens, false);
        rows.push(run_timed("MPH-F", &mut ctx, |c| en2de::run(c, &p)).expect("en2de"));
    }
    // Clipper: prediction cache only (function-level reuse, no op reuse).
    {
        let b = Backends::with_gpu(bench_gpu(128 << 20));
        let mut cfg = EngineConfig::benchmark().with_reuse(ReuseMode::Helix);
        cfg.gpu_min_cells = 1; // the whole forward pass runs on the device
        let mut ctx = b.make_ctx(cfg, bench_cache(64 << 20));
        let p = en2de::En2deParams::benchmark(tokens, true);
        rows.push(run_timed("Clipper", &mut ctx, |c| en2de::run(c, &p)).expect("en2de"));
    }
    // MPH: multi-level + fine-grained.
    {
        let b = Backends::with_gpu(bench_gpu(128 << 20));
        let mut cfg = EngineConfig::benchmark().with_reuse(ReuseMode::Memphis);
        cfg.gpu_min_cells = 1; // the whole forward pass runs on the device
        let mut ctx = b.make_ctx(cfg, bench_cache(64 << 20));
        let p = en2de::En2deParams::benchmark(tokens, true);
        rows.push(run_timed("MPH", &mut ctx, |c| en2de::run(c, &p)).expect("en2de"));
        obs_backends(&b);
    }
    verify_checks(&rows, 0.0);
    report(&rows);
}

fn tlvis_experiment() {
    header(
        "Figure 14(d) TLVIS",
        "MPH 2x/3x (CIFAR/ImageNet) by reusing repeated feature extraction; \
         eviction injection between models keeps the allocator healthy; \
         VISTA ~ MPH; PyTorch-Clr 1.5x slower than MPH",
    );
    for (name, side, images) in [("CIFAR-like", 16usize, 96usize), ("ImageNet-like", 32, 48)] {
        println!("-- {name}: {images} images {side}x{side} --");
        let mut rows = Vec::new();
        // Base-G: recycling allocator, no reuse (PyTorch-Clr analogue —
        // the evict between models stands in for empty_cache()).
        for (label, mode) in [
            ("PyT-Clr", ReuseMode::None),
            ("VISTA", ReuseMode::Lima),
            ("MPH", ReuseMode::Memphis),
        ] {
            let b = Backends::with_gpu(bench_gpu(192 << 20));
            let mut cfg = EngineConfig::benchmark().with_reuse(mode);
            cfg.gpu_min_cells = 1024;
            let mut ctx = b.make_ctx(cfg, bench_cache(64 << 20));
            let p = tlvis::TlvisParams::benchmark(images, side);
            rows.push(run_timed(label, &mut ctx, |c| tlvis::run(c, &p)).expect("tlvis"));
            obs_backends(&b);
        }
        verify_checks(&rows, 1e-6);
        report(&rows);
    }
}
