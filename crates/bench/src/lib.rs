//! Shared experiment utilities: configuration scaling, reporting, and the
//! standard MEMPHIS configurations (Base, Base-A, LIMA, HELIX, MPH-NA,
//! MPH) used by the per-figure experiment binaries.

pub mod golden;

use memphis_core::cache::config::CacheConfig;
use memphis_engine::{EngineConfig, ReuseMode};
use memphis_gpusim::GpuConfig;
use memphis_sparksim::SparkConfig;
use memphis_workloads::harness::WorkloadOutcome;

/// Optional scale divisor read from the `MEMPHIS_SCALE` environment
/// variable, for harness authors sizing custom sweeps. The bundled
/// experiment binaries use fixed scaled parameters (documented per
/// binary) and do not consult it.
pub fn scale() -> usize {
    std::env::var("MEMPHIS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// The standard experiment configurations of §6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpConfig {
    /// SystemDS without reuse.
    Base,
    /// Base plus asynchronous operators only.
    BaseAsync,
    /// Fine-grained local-only reuse (LIMA).
    Lima,
    /// Coarse-grained function reuse (HELIX; also emulates Clipper's
    /// prediction cache and VISTA's cross-pipeline CSE).
    Helix,
    /// MEMPHIS without asynchronous operators.
    MphNoAsync,
    /// Full MEMPHIS.
    Mph,
}

impl ExpConfig {
    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            ExpConfig::Base => "Base",
            ExpConfig::BaseAsync => "Base-A",
            ExpConfig::Lima => "LIMA",
            ExpConfig::Helix => "HELIX",
            ExpConfig::MphNoAsync => "MPH-NA",
            ExpConfig::Mph => "MPH",
        }
    }

    /// Engine configuration for this experiment setup.
    pub fn engine(self, mut base: EngineConfig) -> EngineConfig {
        base.reuse = match self {
            ExpConfig::Base | ExpConfig::BaseAsync => ReuseMode::None,
            ExpConfig::Lima => ReuseMode::Lima,
            ExpConfig::Helix => ReuseMode::Helix,
            ExpConfig::MphNoAsync | ExpConfig::Mph => ReuseMode::Memphis,
        };
        base.async_ops = matches!(self, ExpConfig::BaseAsync | ExpConfig::Mph);
        base
    }
}

/// Benchmark-scale backend configurations (small enough for seconds-long
/// runs, structured like the paper's cluster).
pub fn bench_spark() -> SparkConfig {
    let mut c = SparkConfig::benchmark();
    c.storage_capacity = 128 << 20;
    c
}

/// Benchmark GPU device configuration.
pub fn bench_gpu(capacity: usize) -> GpuConfig {
    GpuConfig::calibrated(capacity)
}

/// Benchmark cache configuration.
pub fn bench_cache(local_budget: usize) -> CacheConfig {
    let mut c = CacheConfig::benchmark();
    c.local_budget = local_budget;
    c
}

/// Prints one experiment header.
pub fn header(id: &str, claim: &str) {
    println!("\n=== {id} ===");
    println!("paper: {claim}");
    println!("{:-<78}", "");
}

/// Prints a series of outcomes with speedups relative to the first entry,
/// followed by the unified per-backend stats block of the last (usually
/// MPH) configuration, sourced from `CacheBackend::snapshot`.
pub fn report(rows: &[WorkloadOutcome]) {
    let baseline = rows.first().map(|r| r.elapsed.as_secs_f64()).unwrap_or(1.0);
    for r in rows {
        let speedup = baseline / r.elapsed.as_secs_f64().max(1e-12);
        println!(
            "{:<10} {:>9.3}s  speedup={:>6.2}x  check={:<14.6} reused={:<8} hits(l/r/g/f)={}/{}/{}/{}",
            r.label,
            r.elapsed.as_secs_f64(),
            speedup,
            r.check,
            r.engine.reused,
            r.reuse.hits_local,
            r.reuse.hits_rdd,
            r.reuse.hits_gpu,
            r.reuse.hits_func,
        );
    }
    if let Some(last) = rows.last() {
        if !last.backends.is_empty() {
            println!("backends ({}):", last.label);
            println!("{}", memphis_workloads::harness::backend_rows(last));
        }
    }
}

/// Asserts that all checks in a series agree (result equivalence across
/// configurations), panicking loudly otherwise.
pub fn verify_checks(rows: &[WorkloadOutcome], tol: f64) {
    if let Some(first) = rows.first() {
        for r in rows {
            assert!(
                (r.check - first.check).abs() <= tol * (1.0 + first.check.abs()),
                "result mismatch: {}={} vs {}={}",
                first.label,
                first.check,
                r.label,
                r.check
            );
        }
    }
}
