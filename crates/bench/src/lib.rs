//! Shared experiment utilities: configuration scaling, reporting, and the
//! standard MEMPHIS configurations (Base, Base-A, LIMA, HELIX, MPH-NA,
//! MPH) used by the per-figure experiment binaries.

pub mod gate;
pub mod golden;

use memphis_core::cache::config::CacheConfig;
use memphis_engine::{EngineConfig, ReuseMode};
use memphis_gpusim::GpuConfig;
use memphis_obs::{IntoMetrics, MetricsRegistry};
use memphis_sparksim::SparkConfig;
use memphis_workloads::harness::{Backends, WorkloadOutcome};
use parking_lot::Mutex;
use std::path::PathBuf;

/// Optional scale divisor read from the `MEMPHIS_SCALE` environment
/// variable, for harness authors sizing custom sweeps. The bundled
/// experiment binaries use fixed scaled parameters (documented per
/// binary) and do not consult it.
pub fn scale() -> usize {
    std::env::var("MEMPHIS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

// ----------------------------------------------------------------------
// Observability session: `--trace <path>` / `--json <path>`
// ----------------------------------------------------------------------

struct ObsPaths {
    trace: Option<PathBuf>,
    json: Option<PathBuf>,
}

static OBS_PATHS: Mutex<ObsPaths> = Mutex::new(ObsPaths {
    trace: None,
    json: None,
});
static OBS_REGISTRY: Mutex<MetricsRegistry> = Mutex::new(MetricsRegistry::new());

/// Parses the shared experiment flags (`--trace <path>` captures a
/// Chrome trace-event timeline, `--json <path>` dumps the unified
/// metrics registry) and arms the recorder when a trace was requested.
/// Call once at the top of each `exp_*` main.
pub fn obs_init() {
    let mut args = std::env::args().skip(1);
    let mut paths = OBS_PATHS.lock();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace" => paths.trace = args.next().map(PathBuf::from),
            "--json" => paths.json = args.next().map(PathBuf::from),
            _ => {}
        }
    }
    if paths.trace.is_some() {
        memphis_obs::enable();
    }
}

/// Folds a counter source into the run's unified metrics registry.
pub fn obs_absorb(m: &dyn IntoMetrics) {
    OBS_REGISTRY.lock().absorb(m);
}

/// Folds one outcome (engine + reuse-cache counters and per-tier
/// usage) into the run's registry. Repeated calls overwrite counters
/// in place, so the registry reports the most recent configuration.
pub fn obs_outcome(o: &WorkloadOutcome) {
    let mut reg = OBS_REGISTRY.lock();
    reg.absorb(&o.engine);
    reg.absorb(&o.reuse);
    absorb_backend_snapshots(&mut reg, o);
}

/// Folds the attached backends' scheduler/device statistics into the
/// run's registry.
pub fn obs_backends(b: &Backends) {
    let mut reg = OBS_REGISTRY.lock();
    if let Some(sc) = &b.sc {
        reg.absorb(&sc.stats());
    }
    if let Some(gpu) = &b.gpu {
        reg.absorb(&gpu.stats());
    }
}

/// Records ad-hoc counters under `section` in the session registry
/// (for measurements that have no snapshot struct).
pub fn obs_record<N: Into<String>>(section: &str, pairs: impl IntoIterator<Item = (N, u64)>) {
    OBS_REGISTRY.lock().record_pairs(section, pairs);
}

/// Registry-rendered per-tier block for one outcome; replaces the
/// Display-based `backend_rows` and also folds the outcome into the
/// session registry.
pub fn tier_rows(o: &WorkloadOutcome) -> String {
    obs_outcome(o);
    let mut reg = MetricsRegistry::new();
    absorb_backend_snapshots(&mut reg, o);
    reg.text_report()
}

/// Registry-rendered cache/tier report for a context's lineage cache;
/// also folds the counters into the session registry for `--json`.
pub fn cache_report(cache: &memphis_core::cache::LineageCache) -> String {
    let mut reg = MetricsRegistry::new();
    reg.absorb(&cache.stats());
    absorb_snapshots(&mut reg, &cache.backend_snapshots());
    let mut global = OBS_REGISTRY.lock();
    global.absorb(&cache.stats());
    absorb_snapshots(&mut global, &cache.backend_snapshots());
    reg.text_report()
}

fn absorb_backend_snapshots(reg: &mut MetricsRegistry, o: &WorkloadOutcome) {
    absorb_snapshots(reg, &o.backends);
}

fn absorb_snapshots(reg: &mut MetricsRegistry, snaps: &[memphis_core::BackendSnapshot]) {
    for s in snaps {
        let section = format!("tier.{}", s.id.as_str());
        reg.record_pairs(
            &section,
            [
                ("used_bytes", s.used as u64),
                (
                    "budget_bytes",
                    if s.budget == usize::MAX {
                        0
                    } else {
                        s.budget as u64
                    },
                ),
                ("entries", s.entries as u64),
            ],
        );
        reg.record_pairs(&section, s.detail.iter().copied());
    }
}

/// Writes the artifacts requested by `--trace`/`--json`. Call once at
/// the end of each `exp_*` main.
pub fn obs_finish() {
    let paths = OBS_PATHS.lock();
    let reg = OBS_REGISTRY.lock();
    if let Some(path) = &paths.trace {
        let trace = memphis_obs::drain();
        let metrics = if reg.is_empty() { None } else { Some(&*reg) };
        match memphis_obs::export::write_chrome_trace(path, &trace, metrics) {
            Ok(()) => println!(
                "trace: {} events -> {} (load in Perfetto / chrome://tracing)",
                trace.events.len(),
                path.display()
            ),
            Err(e) => eprintln!("trace: failed to write {}: {e}", path.display()),
        }
    }
    if let Some(path) = &paths.json {
        match std::fs::write(path, reg.to_json()) {
            Ok(()) => println!("metrics: registry JSON -> {}", path.display()),
            Err(e) => eprintln!("metrics: failed to write {}: {e}", path.display()),
        }
    }
}

/// The standard experiment configurations of §6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpConfig {
    /// SystemDS without reuse.
    Base,
    /// Base plus asynchronous operators only.
    BaseAsync,
    /// Fine-grained local-only reuse (LIMA).
    Lima,
    /// Coarse-grained function reuse (HELIX; also emulates Clipper's
    /// prediction cache and VISTA's cross-pipeline CSE).
    Helix,
    /// MEMPHIS without asynchronous operators.
    MphNoAsync,
    /// Full MEMPHIS.
    Mph,
}

impl ExpConfig {
    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            ExpConfig::Base => "Base",
            ExpConfig::BaseAsync => "Base-A",
            ExpConfig::Lima => "LIMA",
            ExpConfig::Helix => "HELIX",
            ExpConfig::MphNoAsync => "MPH-NA",
            ExpConfig::Mph => "MPH",
        }
    }

    /// Engine configuration for this experiment setup.
    pub fn engine(self, mut base: EngineConfig) -> EngineConfig {
        base.reuse = match self {
            ExpConfig::Base | ExpConfig::BaseAsync => ReuseMode::None,
            ExpConfig::Lima => ReuseMode::Lima,
            ExpConfig::Helix => ReuseMode::Helix,
            ExpConfig::MphNoAsync | ExpConfig::Mph => ReuseMode::Memphis,
        };
        base.async_ops = matches!(self, ExpConfig::BaseAsync | ExpConfig::Mph);
        base
    }
}

/// Benchmark-scale backend configurations (small enough for seconds-long
/// runs, structured like the paper's cluster).
pub fn bench_spark() -> SparkConfig {
    let mut c = SparkConfig::benchmark();
    c.storage_capacity = 128 << 20;
    c
}

/// Benchmark GPU device configuration.
pub fn bench_gpu(capacity: usize) -> GpuConfig {
    GpuConfig::calibrated(capacity)
}

/// Benchmark cache configuration.
pub fn bench_cache(local_budget: usize) -> CacheConfig {
    let mut c = CacheConfig::benchmark();
    c.local_budget = local_budget;
    c
}

/// Prints one experiment header.
pub fn header(id: &str, claim: &str) {
    println!("\n=== {id} ===");
    println!("paper: {claim}");
    println!("{:-<78}", "");
}

/// Prints a series of outcomes with speedups relative to the first entry,
/// followed by the unified per-backend stats block of the last (usually
/// MPH) configuration, sourced from `CacheBackend::snapshot`.
pub fn report(rows: &[WorkloadOutcome]) {
    let baseline = rows.first().map(|r| r.elapsed.as_secs_f64()).unwrap_or(1.0);
    for r in rows {
        let speedup = baseline / r.elapsed.as_secs_f64().max(1e-12);
        println!(
            "{:<10} {:>9.3}s  speedup={:>6.2}x  check={:<14.6} reused={:<8} hits(l/r/g/f)={}/{}/{}/{}",
            r.label,
            r.elapsed.as_secs_f64(),
            speedup,
            r.check,
            r.engine.reused,
            r.reuse.hits_local,
            r.reuse.hits_rdd,
            r.reuse.hits_gpu,
            r.reuse.hits_func,
        );
    }
    if let Some(last) = rows.last() {
        // Fold the final (usually MPH) row into the session registry so
        // `--json` reports it, and print the per-tier block from a
        // registry rendering of the same snapshots.
        obs_outcome(last);
        let mut reg = MetricsRegistry::new();
        absorb_backend_snapshots(&mut reg, last);
        if !reg.is_empty() {
            println!("backends ({}):", last.label);
            print!("{}", reg.text_report());
        }
    }
}

/// Asserts that all checks in a series agree (result equivalence across
/// configurations), panicking loudly otherwise.
pub fn verify_checks(rows: &[WorkloadOutcome], tol: f64) {
    if let Some(first) = rows.first() {
        for r in rows {
            assert!(
                (r.check - first.check).abs() <= tol * (1.0 + first.check.abs()),
                "result mismatch: {}={} vs {}={}",
                first.label,
                first.check,
                r.label,
                r.check
            );
        }
    }
}
