//! Parameterized experiment cores shared by the experiment binaries and
//! the golden smoke tests.
//!
//! Each `run_*` function contains the full logic of its figure/table
//! binary, scaled by a params struct: the binaries run `full()` and print
//! wall-clock ratios; the golden tests run `tiny()` in milliseconds and
//! assert on the returned reuse/eviction/backend counters, which are
//! deterministic at any scale (wall clock is not).

use crate::{bench_cache, bench_gpu, bench_spark};
use memphis_core::stats::ReuseStatsSnapshot;
use memphis_engine::{EngineConfig, ReuseMode};
use memphis_gpusim::GpuDevice;
use memphis_matrix::ops::binary::{binary_scalar, BinaryOp};
use memphis_matrix::ops::unary::UnaryOp;
use memphis_matrix::rand_gen::rand_uniform;
use memphis_matrix::BlockedMatrix;
use memphis_sparksim::{SparkContext, StorageLevel};
use memphis_workloads::harness::Backends;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Scale knobs for Figure 2(c): lazy-reuse vs eager caching vs no caching.
#[derive(Debug, Clone, Copy)]
pub struct Fig2cParams {
    /// Derived RDDs in total.
    pub total: usize,
    /// Distinct scale factors (each recurs `total / distinct` times).
    pub distinct: usize,
    /// Source matrix shape.
    pub rows: usize,
    pub cols: usize,
    /// Block length for the engine and the blocked source.
    pub blen: usize,
    /// Local cache budget for the MEMPHIS run.
    pub cache_budget: usize,
    /// Spark storage-memory capacity (bounds the cluster-side reuse
    /// budget; shrink it to force eq. (1) evictions).
    pub spark_storage: usize,
}

impl Fig2cParams {
    /// The binary's scale (paper's 12K RDDs scaled to 1.2K).
    pub fn full() -> Self {
        Self {
            total: 1200,
            distinct: 400,
            rows: 512,
            cols: 16,
            blen: 64,
            cache_budget: 32 << 20,
            spark_storage: 128 << 20,
        }
    }

    /// Milliseconds-long scale for the golden smoke tests: 24 derived
    /// RDDs over 8 distinct scales, each recurring 3x like the paper.
    pub fn tiny() -> Self {
        Self {
            total: 24,
            distinct: 8,
            rows: 64,
            cols: 8,
            blen: 16,
            cache_budget: 4 << 20,
            spark_storage: 16 << 20,
        }
    }
}

/// Everything Figure 2(c) measures, timings and counters both.
#[derive(Debug)]
pub struct Fig2cOutcome {
    pub no_cache: Duration,
    pub eager: Duration,
    pub memphis: Duration,
    /// Tasks launched by the no-caching / eager-caching Spark loops.
    pub no_cache_tasks: u64,
    pub eager_tasks: u64,
    /// Cache counters of the MEMPHIS run (hits/misses/puts/evictions).
    pub reuse: ReuseStatsSnapshot,
    /// Per-backend snapshot block of the MEMPHIS run.
    pub backend_report: String,
}

/// Figure 2(c): eager materialization is ~10x slower than no caching;
/// MEMPHIS's lazy reuse is faster than both (§2.2).
pub fn run_fig2c(p: &Fig2cParams) -> Fig2cOutcome {
    let spark = || {
        let mut c = bench_spark();
        c.storage_capacity = p.spark_storage;
        c
    };
    let m = rand_uniform(p.rows, p.cols, -1.0, 1.0, 1);
    let blocked = BlockedMatrix::from_dense(&m, p.blen).unwrap();
    let distinct = p.distinct.max(1);

    // No caching: every iteration derives an RDD and aggregates it (one
    // job per iteration, nothing cached).
    let t0 = Instant::now();
    let no_cache_tasks;
    {
        let sc = SparkContext::new(spark());
        let src = sc.parallelize_blocked(&blocked, "X");
        for i in 0..p.total {
            let scale = (i % distinct) as f64 / distinct as f64 + 0.5;
            let rdd = sc.map(
                &src,
                "scale",
                Arc::new(move |k, b| (*k, binary_scalar(b, scale, BinaryOp::Mul, false))),
            );
            sc.count(&rdd);
        }
        no_cache_tasks = sc.stats().tasks;
    }
    let no_cache = t0.elapsed();

    // Eager caching: persist + count() after every transformation.
    let t0 = Instant::now();
    let eager_tasks;
    {
        let sc = SparkContext::new(spark());
        let src = sc.parallelize_blocked(&blocked, "X");
        for i in 0..p.total {
            let scale = (i % distinct) as f64 / distinct as f64 + 0.5;
            let rdd = sc.map(
                &src,
                "scale",
                Arc::new(move |k, b| (*k, binary_scalar(b, scale, BinaryOp::Mul, false))),
            );
            rdd.persist(StorageLevel::Memory);
            sc.count(&rdd); // eager materialization job
            sc.count(&rdd); // the consuming job
            sc.unpersist(&rdd);
        }
        eager_tasks = sc.stats().tasks;
    }
    let eager = t0.elapsed();

    // MEMPHIS: lazy reuse through the engine (repeated scales hit the
    // cache; no forced materialization).
    let t0 = Instant::now();
    let reuse;
    let backend_report;
    {
        let b = Backends::with_spark(spark());
        let mut cfg = EngineConfig::benchmark().with_reuse(ReuseMode::Memphis);
        cfg.spark_threshold_bytes = 0;
        cfg.blen = p.blen;
        cfg.async_ops = false;
        // Delayed caching n=2 (the §5.2 auto-tuner's choice for partially
        // reusable blocks): never-repeating RDDs are not persisted.
        cfg.delay_factor = 2;
        let mut cache_cfg = bench_cache(p.cache_budget);
        cache_cfg.default_delay = 2;
        let mut ctx = b.make_ctx(cfg, cache_cfg);
        ctx.read("X", m.clone(), "fig2c/X").unwrap();
        for i in 0..p.total {
            let scale = (i % distinct) as f64 / distinct as f64 + 0.5;
            ctx.binary_const("Y", "X", scale, BinaryOp::Mul, false)
                .unwrap();
            // Aggregate each derived RDD (the consuming job); repeated
            // scales reuse the cached action result and skip it entirely.
            ctx.agg(
                "s",
                "Y",
                memphis_matrix::ops::agg::AggOp::Sum,
                memphis_engine::ops::AggDir::Full,
            )
            .unwrap();
            ctx.get_scalar("s").unwrap();
        }
        reuse = ctx.cache().stats();
        backend_report = ctx.cache().backend_report();
    }
    let memphis = t0.elapsed();

    Fig2cOutcome {
        no_cache,
        eager,
        memphis,
        no_cache_tasks,
        eager_tasks,
        reuse,
        backend_report,
    }
}

/// Scale knobs for Figure 2(d): per-kernel alloc/copy/free overhead.
#[derive(Debug, Clone, Copy)]
pub struct Fig2dParams {
    /// Mini-batches pushed through the affine+ReLU layer.
    pub batches: usize,
    /// Batch shape: `batch_rows x features`, weights `features x hidden`.
    pub batch_rows: usize,
    pub features: usize,
    pub hidden: usize,
}

impl Fig2dParams {
    /// The binary's scale.
    pub fn full() -> Self {
        Self {
            batches: 200,
            batch_rows: 32,
            features: 64,
            hidden: 32,
        }
    }

    /// Golden-test scale.
    pub fn tiny() -> Self {
        Self {
            batches: 6,
            batch_rows: 8,
            features: 16,
            hidden: 8,
        }
    }
}

/// Figure 2(d) measurements: device counters plus the backend report.
#[derive(Debug)]
pub struct Fig2dOutcome {
    pub gpu: memphis_gpusim::GpuStatsSnapshot,
    pub backend_report: String,
}

/// Figure 2(d): with pointer recycling disabled, every mini-batch pays
/// cudaMalloc/cudaFree and a D2H copy, dwarfing the compute (§2.3).
pub fn run_fig2d(p: &Fig2dParams) -> Fig2dOutcome {
    // Pageable-memory calibration: the paper measures pageable H2D at
    // 6.1 GB/s against multi-TFLOP device compute; at simulation scale the
    // same ratios need slower per-byte costs and heavier alloc overheads.
    let mut gcfg = bench_gpu(256 << 20);
    gcfg.alloc_overhead = Duration::from_micros(40);
    gcfg.free_overhead = Duration::from_micros(18);
    gcfg.h2d_ns_per_byte = 4.7;
    gcfg.d2h_ns_per_byte = 4.7;
    let b = Backends::with_gpu(gcfg);
    let mut cfg = EngineConfig::benchmark().with_reuse(ReuseMode::None);
    cfg.gpu_min_cells = 1;
    cfg.gpu_recycling = false; // force cudaMalloc/cudaFree per output
    let mut ctx = b.make_ctx(cfg, bench_cache(16 << 20));
    ctx.read(
        "W",
        rand_uniform(p.features, p.hidden, -0.3, 0.3, 2),
        "fig2d/W",
    )
    .unwrap();
    ctx.read("bv", rand_uniform(1, p.hidden, 0.0, 0.0, 3), "fig2d/b")
        .unwrap();
    for i in 0..p.batches {
        let batch = rand_uniform(p.batch_rows, p.features, 0.0, 1.0, 100 + i as u64);
        ctx.read("B", batch, &format!("batch{i}")).unwrap();
        ctx.affine("H", "B", "W", "bv").unwrap();
        ctx.unary("A", "H", UnaryOp::Relu).unwrap();
        // Force the result to the host (the paper's per-kernel D2H).
        ctx.get_matrix("A").unwrap();
        ctx.remove("A");
        ctx.remove("H");
        ctx.remove("B");
    }
    Fig2dOutcome {
        gpu: b.gpu.as_ref().unwrap().stats(),
        backend_report: ctx.cache().backend_report(),
    }
}

/// Scale knobs for Table 2: backend bandwidth probes.
#[derive(Debug, Clone, Copy)]
pub struct Table2Params {
    /// Shuffled matrix shape and block length.
    pub rows: usize,
    pub cols: usize,
    pub blen: usize,
    /// Reduce-side partitions of the reshuffle.
    pub reduce_partitions: usize,
    /// Host matrix shape for the H2D/D2H probe.
    pub gpu_rows: usize,
    pub gpu_cols: usize,
}

impl Table2Params {
    /// The binary's scale (~32 MB shuffle, 16 MB transfers).
    pub fn full() -> Self {
        Self {
            rows: 16_384,
            cols: 256,
            blen: 1024,
            reduce_partitions: 4,
            gpu_rows: 4096,
            gpu_cols: 512,
        }
    }

    /// Golden-test scale (~32 KB shuffle).
    pub fn tiny() -> Self {
        Self {
            rows: 256,
            cols: 16,
            blen: 32,
            reduce_partitions: 4,
            gpu_rows: 64,
            gpu_cols: 32,
        }
    }
}

/// Table 2 measurements: bytes moved, wall clock, and result counts.
#[derive(Debug)]
pub struct Table2Outcome {
    pub shuffle_elapsed: Duration,
    pub shuffle_bytes_written: u64,
    pub shuffle_bytes_read: u64,
    /// Records surviving the reshuffle (one merged block per reduce key).
    pub reduced_records: usize,
    pub h2d_elapsed: Duration,
    pub d2h_elapsed: Duration,
    /// Bytes of the H2D/D2H probe matrix.
    pub transfer_bytes: usize,
    /// The D2H readback matched the uploaded matrix bit-for-bit.
    pub roundtrip_exact: bool,
}

/// Table 2: shuffle and host-device bandwidth of the simulated backends.
pub fn run_table2(p: &Table2Params) -> Table2Outcome {
    // Spark shuffle bandwidth: one reduceByKey over the blocked matrix.
    let sc = SparkContext::new(bench_spark());
    let m = rand_uniform(p.rows, p.cols, -1.0, 1.0, 1);
    let blocked = BlockedMatrix::from_dense(&m, p.blen).unwrap();
    let rdd = sc.parallelize_blocked(&blocked, "X");
    let parts = p.reduce_partitions;
    let shuffled = sc.reduce_by_key(
        &rdd,
        "rekey",
        Arc::new(move |k, m| {
            vec![(
                memphis_matrix::BlockId {
                    row: k.row % parts,
                    col: 0,
                },
                m.deep_clone(),
            )]
        }),
        Arc::new(|a, _| a),
        parts,
    );
    let t0 = Instant::now();
    let reduced_records = sc.count(&shuffled);
    let shuffle_elapsed = t0.elapsed();
    let stats = sc.stats();

    // GPU H2D/D2H bandwidth (pageable).
    let gpu = GpuDevice::new(bench_gpu(256 << 20));
    let h = rand_uniform(p.gpu_rows, p.gpu_cols, -1.0, 1.0, 2);
    let t0 = Instant::now();
    let ptr = gpu.upload(&h).unwrap();
    let h2d_elapsed = t0.elapsed();
    let t0 = Instant::now();
    let back = gpu.copy_to_host(ptr).unwrap();
    let d2h_elapsed = t0.elapsed();

    Table2Outcome {
        shuffle_elapsed,
        shuffle_bytes_written: stats.shuffle_bytes_written,
        shuffle_bytes_read: stats.shuffle_bytes_read,
        reduced_records,
        h2d_elapsed,
        d2h_elapsed,
        transfer_bytes: h.size_bytes(),
        roundtrip_exact: back.approx_eq(&h, 0.0),
    }
}

// ----------------------------------------------------------------------
// Concurrency smoke gate (PR 4): deterministic serving counters
// ----------------------------------------------------------------------

/// Scale knobs for the concurrency bench gate.
#[derive(Debug, Clone, Copy)]
pub struct ConcGateParams {
    /// Distinct lineage items in the single-threaded reuse loop.
    pub items: usize,
    /// Probe rounds over the item set.
    pub rounds: usize,
    /// Eviction-pressure items (each the size of one 32x32 matrix)
    /// pushed through a budget sized for half of them.
    pub churn: usize,
    /// Sessions in the rendezvous stage.
    pub sessions: usize,
}

impl ConcGateParams {
    /// The committed-baseline scale (fast; the counters are what matter).
    pub fn full() -> Self {
        Self {
            items: 64,
            rounds: 8,
            churn: 128,
            sessions: 8,
        }
    }

    /// Tiny scale for the golden smoke tests.
    pub fn tiny() -> Self {
        Self {
            items: 8,
            rounds: 3,
            churn: 16,
            sessions: 2,
        }
    }
}

/// Deterministic counters of the concurrency gate. Every field except
/// `elapsed` must be bit-identical run over run, thread count over
/// thread count; `ci/bench_gate.sh` fails the build when one regresses
/// against the committed baseline.
#[derive(Debug, Clone)]
pub struct ConcGateOutcome {
    /// Reuse hits of the single-threaded loop (items * (rounds - 1)).
    pub hits: u64,
    /// Recomputations, i.e. misses that led to a compute+complete.
    pub recomputes: u64,
    /// Local-tier evictions (spills + drops) under churn.
    pub evictions: u64,
    /// Coalesced hits of the rendezvous stage (sessions - 1).
    pub coalesced_hits: u64,
    /// Concurrent duplicate computations of a shared id (must be 0).
    pub duplicates: u64,
    /// Wall clock (informational; never gated).
    pub elapsed: Duration,
}

/// Runs the gate workload: a single-threaded probe/complete reuse loop
/// with churn-driven eviction, then a multi-session rendezvous whose
/// coalesced-hit count is exact by construction.
pub fn run_concurrency_gate(p: &ConcGateParams) -> ConcGateOutcome {
    use memphis_core::cache::config::CacheConfig;
    use memphis_core::cache::entry::CachedObject;
    use memphis_core::cache::{LineageCache, Probed};
    use memphis_core::lineage::LineageItem;
    use memphis_matrix::Matrix;

    let t0 = Instant::now();

    // Stage 1: single-threaded reuse loop. Round 0 computes every item;
    // later rounds hit. A generous budget keeps this stage eviction-free
    // so the counts are closed-form.
    let payload = Matrix::zeros(32, 32);
    let psize = payload.size_bytes();
    let mut cfg = CacheConfig::test();
    cfg.spill_to_disk = false;
    cfg.local_budget = psize * (p.items + 2);
    let cache = LineageCache::new(cfg);
    let mut recomputes = 0u64;
    for _round in 0..p.rounds {
        for i in 0..p.items {
            let item = LineageItem::leaf(&format!("gate/item{i}"));
            match cache.probe_or_begin(&item) {
                Probed::Hit(_) | Probed::Coalesced(_) => {}
                Probed::Compute(g) => {
                    recomputes += 1;
                    cache.complete(
                        g,
                        CachedObject::Matrix(Arc::new(payload.clone())),
                        10.0,
                        psize,
                        1,
                    );
                }
            }
        }
    }

    // Stage 2: churn a budget sized for half the churn set, counting
    // local-tier evictions (all drops: spill is disabled).
    let mut cfg = CacheConfig::test();
    cfg.spill_to_disk = false;
    cfg.local_budget = psize * (p.churn / 2);
    let churn_cache = LineageCache::new(cfg);
    for i in 0..p.churn {
        let item = LineageItem::leaf(&format!("gate/churn{i}"));
        churn_cache.put(
            &item,
            CachedObject::Matrix(Arc::new(payload.clone())),
            1.0 + i as f64,
            psize,
            1,
        );
    }
    let churn_stats = churn_cache.stats();
    let evictions = churn_stats.local_spills + churn_stats.local_drops;

    // Stage 3: rendezvous. The owner completes only after all other
    // sessions are parked on the in-flight marker, so the coalesced-hit
    // count is exactly sessions - 1 regardless of scheduling.
    let serve = memphis_workloads::serve::run_serve(&memphis_workloads::serve::ServeParams {
        sessions: p.sessions,
        seed: 42,
        shared_items: 4,
        pinned_items: 1,
        churn_rounds: 0,
        local_budget: 1 << 20,
        shards: 8,
    });

    let stats = cache.stats();
    ConcGateOutcome {
        hits: stats.hits,
        recomputes,
        evictions,
        coalesced_hits: serve.rendezvous_coalesced,
        duplicates: serve.duplicate_shared_computes,
        elapsed: t0.elapsed(),
    }
}

// ----------------------------------------------------------------------
// Serving smoke gate (PR 5): deterministic admission/shed/quota counters
// ----------------------------------------------------------------------

/// Scale knobs for the serving bench gate.
#[derive(Debug, Clone, Copy)]
pub struct ServeGateParams {
    /// Open-loop requests in the trace.
    pub requests: usize,
    /// Worker threads for the parallel execute phase (must not affect
    /// any gated counter).
    pub workers: usize,
    /// Trace/fault seed.
    pub seed: u64,
    /// Local cache budget (also the pressure monitor's budget).
    pub local_budget: usize,
    /// Soft cache quota of the hog tenant.
    pub hog_quota: usize,
    /// Transient-fault rate per attempt.
    pub fault_rate: f64,
}

impl ServeGateParams {
    /// The committed-baseline scale.
    pub fn full() -> Self {
        Self {
            requests: 96,
            workers: 4,
            seed: 42,
            local_budget: 24 << 10,
            hog_quota: 4 << 10,
            fault_rate: 0.1,
        }
    }

    /// Tiny scale for the golden smoke tests.
    pub fn tiny() -> Self {
        Self {
            requests: 24,
            workers: 2,
            seed: 42,
            local_budget: 16 << 10,
            hog_quota: 4 << 10,
            fault_rate: 0.1,
        }
    }
}

/// The hog tenant of the gate's stream (private items, 4x memory, under
/// a soft cache quota).
pub const SERVE_GATE_HOG: u16 = 3;

/// The stream shape the gate runs (exposed so experiments can map
/// request ids back to tenants and priorities).
pub fn serve_gate_spec(p: &ServeGateParams) -> memphis_serve::StreamSpec {
    memphis_serve::StreamSpec {
        requests: p.requests,
        deadline_slack: 3,
        ..memphis_serve::StreamSpec::test()
    }
}

/// Runs the serving gate: a mixed multi-tenant open-loop trace with a
/// cache-hogging tenant under quota, a budget tight enough to evict and
/// pressure the monitor, and a transient-fault rate per attempt. Every
/// counter in the returned report's deterministic slice is exact run
/// over run and worker count over worker count.
pub fn run_serve_gate(p: &ServeGateParams) -> memphis_serve::ServeReport {
    use memphis_core::cache::config::CacheConfig;
    use memphis_core::cache::LineageCache;
    use memphis_serve::{open_loop, Scheduler, ServeConfig};
    use memphis_sparksim::FaultPlan;

    let mut ccfg = CacheConfig::test();
    ccfg.local_budget = p.local_budget;
    ccfg.spill_to_disk = false;
    let cache = Arc::new(LineageCache::new(ccfg));

    let mut cfg = ServeConfig::test();
    cfg.workers = p.workers;
    cfg.slots = 2;
    cfg.tenant_quotas.insert(SERVE_GATE_HOG, p.hog_quota);
    cfg.faults = FaultPlan::seeded(p.seed).with_task_failure_rate(p.fault_rate);

    Scheduler::new(cache, cfg).run(open_loop(p.seed, &serve_gate_spec(p)))
}

// ----------------------------------------------------------------------
// Recovery smoke gate (PR 7): deterministic crash-recovery counters
// ----------------------------------------------------------------------

/// Scale knobs for the durable disk tier's recovery gate.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryGateParams {
    /// Records committed to the durable store before the restart.
    pub entries: usize,
    /// Leading records tombstoned before compaction (dead bytes).
    pub dels: usize,
    /// Seeded per-write silent-corruption rate (checksum rejects).
    pub corrupt_rate: f64,
    /// Fault-plan seed.
    pub seed: u64,
}

impl RecoveryGateParams {
    /// The committed-baseline scale.
    pub fn full() -> Self {
        Self {
            entries: 48,
            dels: 12,
            corrupt_rate: 0.15,
            seed: 42,
        }
    }

    /// Tiny scale for the golden smoke tests.
    pub fn tiny() -> Self {
        Self {
            entries: 12,
            dels: 3,
            corrupt_rate: 0.25,
            seed: 42,
        }
    }
}

/// Deterministic counters of the recovery gate: the store traffic is
/// single-threaded and the corruption plan is seeded, so every field
/// except `elapsed` is a pure function of the parameters.
#[derive(Debug, Clone)]
pub struct RecoveryGateOutcome {
    /// Segments holding at least one verified record at recovery.
    pub segments_recovered: u64,
    /// Probe-map entries rebuilt from the recovered manifest.
    pub entries_recovered: u64,
    /// Recovered entries promoted back into the local tier at startup.
    pub entries_rehydrated: u64,
    /// CRC-rejected records (compaction re-verify + recovery verify).
    pub checksum_rejects: u64,
    /// Atomic manifest swaps performed by compaction.
    pub manifest_swaps: u64,
    /// Wall clock (informational; never gated).
    pub elapsed: Duration,
}

/// Runs the recovery gate: commit a seeded-corruption record stream to a
/// persistent disk tier, tombstone a prefix, compact (atomic manifest
/// swap), then restart a fresh cache over the same directory and report
/// its recovery counters.
pub fn run_recovery_gate(p: &RecoveryGateParams) -> RecoveryGateOutcome {
    use memphis_core::cache::backends::DiskBackend;
    use memphis_core::cache::config::CacheConfig;
    use memphis_core::cache::LineageCache;
    use memphis_core::BackendId;
    use memphis_core::LineageItem;
    use memphis_sparksim::FaultPlan;

    let t0 = Instant::now();
    let dir = std::env::temp_dir().join(format!(
        "memphis_recovery_gate_{}_{}",
        p.entries,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let payload = |i: usize| rand_uniform(24, 24, -1.0, 1.0, p.seed + i as u64);
    let items: Vec<_> = (0..p.entries)
        .map(|i| LineageItem::leaf(&format!("recgate/e{i}")))
        .collect();

    // Phase 1: commit the stream under the seeded corruption plan,
    // tombstone a prefix, and force one compaction pass.
    let (phase1_rejects, manifest_swaps) = {
        let mut cfg = CacheConfig::test();
        cfg.persist_dir = Some(dir.clone());
        cfg.segment_max_bytes = 16 << 10; // several segments
        cfg.disk_faults = FaultPlan::seeded(p.seed).with_disk_corrupt_rate(p.corrupt_rate);
        let cache = LineageCache::new(cfg);
        let disk = cache
            .registry()
            .downcast::<DiskBackend>(BackendId::Disk)
            .expect("disk tier");
        for (i, item) in items.iter().enumerate() {
            let m = payload(i);
            disk.store(&m, item.lid, 10.0 + i as f64, 1 + (i % 3) as u64);
        }
        for (i, item) in items.iter().take(p.dels).enumerate() {
            disk.discard(item.lid.content_hash(), payload(i).size_bytes());
        }
        disk.segment_store().compact_now();
        let s = cache.stats();
        (s.checksum_rejects, s.manifest_swaps)
    };

    // Phase 2: restart over the same directory; the fresh cache recovers
    // the manifest, verifies checksums, and rehydrates the hottest
    // survivors into its local tier.
    let mut cfg = CacheConfig::test();
    cfg.persist_dir = Some(dir.clone());
    cfg.rehydrate_budget = Some(4 * payload(0).size_bytes());
    let cache = LineageCache::new(cfg);
    let s = cache.stats();
    drop(cache);
    let _ = std::fs::remove_dir_all(&dir);

    RecoveryGateOutcome {
        segments_recovered: s.segments_recovered,
        entries_recovered: s.entries_recovered,
        entries_rehydrated: s.entries_rehydrated,
        checksum_rejects: phase1_rejects + s.checksum_rejects,
        manifest_swaps,
        elapsed: t0.elapsed(),
    }
}

// ----------------------------------------------------------------------
// Cluster smoke gate (PR 8): deterministic scale-out counters
// ----------------------------------------------------------------------

/// Scale knobs for the cluster gate — a thin veneer over the workloads
/// cluster harness ([`memphis_workloads::ClusterParams`]) pinning the
/// gated configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClusterGateParams {
    /// Harness seed.
    pub seed: u64,
}

impl ClusterGateParams {
    /// The committed-baseline scale (seed 42, 4 nodes, churn +
    /// replication + invalidations on).
    pub fn full() -> Self {
        Self { seed: 42 }
    }
}

/// Deterministic counters of the cluster gate: the harness is
/// single-threaded and every decision is hashed, so every field except
/// `elapsed` is a pure function of the parameters.
#[derive(Debug, Clone)]
pub struct ClusterGateOutcome {
    /// Full harness report (digest, counters, hotspot shares).
    pub report: memphis_workloads::ClusterReport,
    /// Wall clock (informational; never gated).
    pub elapsed: Duration,
}

impl ClusterGateOutcome {
    /// Structural invariants any healthy gate run satisfies — checked
    /// before the baseline comparison so a broken run fails loudly
    /// rather than just diverging.
    pub fn invariants_hold(&self) -> bool {
        let s = &self.report.stats;
        s.remote_hits > 0
            && s.replica_hits > 0
            && s.rebalance_moves > 0
            && s.replica_invalidations > 0
            && s.transfer_bytes > 0
            && self.report.recomputes == 0
            && self.report.pending_moves == 0
    }
}

/// Runs the gated cluster trace: 4 nodes, skewed hotspot, a mid-run
/// join and leave, hot-item replication, and periodic write
/// invalidations.
pub fn run_cluster_gate(p: &ClusterGateParams) -> ClusterGateOutcome {
    let t0 = Instant::now();
    let report = memphis_workloads::run_cluster(&memphis_workloads::ClusterParams::gate(p.seed));
    ClusterGateOutcome {
        report,
        elapsed: t0.elapsed(),
    }
}

// ----------------------------------------------------------------------
// Latency gate (PR 9): delayed-hits policy vs eq. (1) on a skewed trace
// ----------------------------------------------------------------------

/// Scale knobs for the latency gate — a veneer over the workloads
/// latency harness ([`memphis_workloads::LatencyParams`]) pinning the
/// gated configuration. The gate runs the *same* trace under both
/// [`CachePolicy`](memphis_core::CachePolicy) variants.
#[derive(Debug, Clone, Copy)]
pub struct LatencyGateParams {
    /// Harness seed.
    pub seed: u64,
}

impl LatencyGateParams {
    /// The committed-baseline scale (seed 42).
    pub fn full() -> Self {
        Self { seed: 42 }
    }
}

/// Deterministic outcome of the latency gate: both policy runs plus the
/// nearest-rank p99 of each latency sample. Everything except `elapsed`
/// is a pure function of the seed.
#[derive(Debug, Clone)]
pub struct LatencyGateOutcome {
    /// The trace under eq. (1)/(2) exactly as published.
    pub paper: memphis_workloads::LatencyReport,
    /// The trace under the delayed-hits extension.
    pub delayed: memphis_workloads::LatencyReport,
    /// p99 per-arrival virtual latency under `Paper`, in ticks.
    pub p99_paper: u64,
    /// p99 per-arrival virtual latency under `DelayedHits`, in ticks.
    pub p99_delayed: u64,
    /// Wall clock (informational; never gated).
    pub elapsed: Duration,
}

impl LatencyGateOutcome {
    /// Structural invariants any healthy gate run satisfies — checked
    /// before the baseline comparison so a broken run fails loudly
    /// rather than just diverging.
    pub fn invariants_hold(&self) -> bool {
        self.paper.digest == self.delayed.digest
            && self.paper.served == self.delayed.served
            && self.p99_delayed < self.p99_paper
            && self.delayed.reuse.mad_evictions > 0
            && self.delayed.reuse.ttna_admission_rejects > 0
            && self.delayed.reuse.delayed_hit_ticks_saved > 0
            && self.paper.reuse.mad_evictions == 0
            && self.paper.reuse.ttna_admission_rejects == 0
            && self.paper.reuse.delayed_hit_ticks_saved == 0
    }
}

// ----------------------------------------------------------------------
// Script gate (PR 10): DML corpus + structured differential fuzzing
// ----------------------------------------------------------------------

/// Scale knobs for the script gate — the committed `.dml` corpus plus a
/// seeded slice of the structured differential fuzzer
/// ([`memphis_workloads::script::fuzz_campaign`]).
#[derive(Debug, Clone, Copy)]
pub struct ScriptGateParams {
    /// Fuzzer seed.
    pub seed: u64,
    /// Generated programs to run through the full differential.
    pub programs: u64,
}

impl ScriptGateParams {
    /// The committed-baseline scale (seed 42, 40 programs).
    pub fn full() -> Self {
        Self {
            seed: 42,
            programs: 40,
        }
    }

    /// Milliseconds-scale knobs for the golden smoke tests.
    pub fn tiny() -> Self {
        Self {
            seed: 42,
            programs: 4,
        }
    }
}

/// Deterministic outcome of the script gate. Everything except
/// `elapsed` is a pure function of `(seed, programs)` and the embedded
/// corpus bytes.
#[derive(Debug, Clone)]
pub struct ScriptGateOutcome {
    /// Fuzz programs generated and executed through the differential.
    pub programs_fuzzed: u64,
    /// Programs whose configurations disagreed (must be 0).
    pub divergences: u64,
    /// Lowered DAG nodes across the corpus plus the fuzz slice.
    pub lowered_nodes: u64,
    /// Corpus scripts compiled and run.
    pub corpus_scripts: u64,
    /// FNV fold of every corpus script's reuse-on sink digest, in
    /// corpus order.
    pub corpus_digest: u64,
    /// Wall clock (informational; never gated).
    pub elapsed: Duration,
}

impl ScriptGateOutcome {
    /// Structural invariants any healthy gate run satisfies — checked
    /// before the baseline comparison so a broken run fails loudly
    /// rather than just diverging.
    pub fn invariants_hold(&self) -> bool {
        self.divergences == 0
            && self.programs_fuzzed > 0
            && self.corpus_scripts == memphis_workloads::script::CORPUS.len() as u64
            && self.lowered_nodes > 0
    }
}

/// Compiles and differentially runs every committed corpus script, then
/// fuzzes `programs` generated programs under the same differential
/// (reuse-on/off, `Paper`/`DelayedHits`, warm-restart).
pub fn run_script_gate(p: &ScriptGateParams) -> ScriptGateOutcome {
    use memphis_workloads::script;

    let t0 = Instant::now();
    let mut corpus_digest: u64 = 0xcbf2_9ce4_8422_2325;
    let mut lowered_nodes = 0u64;
    let mut corpus_scripts = 0u64;
    for (name, src) in script::CORPUS {
        let c = memphis_script::compile(src)
            .unwrap_or_else(|e| panic!("corpus script {name} must compile: {e}"));
        lowered_nodes += c.node_count();
        let digests = script::differential_digests(&c, name)
            .unwrap_or_else(|e| panic!("corpus script {name} must run: {e:?}"));
        assert!(
            script::digests_agree(&digests),
            "corpus script {name} diverged: {digests:?}"
        );
        corpus_digest ^= digests[0].1;
        corpus_digest = corpus_digest.wrapping_mul(0x0000_0100_0000_01b3);
        corpus_scripts += 1;
    }

    let fuzz = script::fuzz_campaign(p.seed, p.programs, None);
    ScriptGateOutcome {
        programs_fuzzed: fuzz.programs,
        divergences: fuzz.divergences,
        lowered_nodes: lowered_nodes + fuzz.lowered_nodes,
        corpus_scripts,
        corpus_digest,
        elapsed: t0.elapsed(),
    }
}

/// Runs the gated skewed trace under both cache policies and computes
/// the p99 virtual-latency of each.
pub fn run_latency_gate(p: &LatencyGateParams) -> LatencyGateOutcome {
    let t0 = Instant::now();
    let params = memphis_workloads::LatencyParams::gate(p.seed);
    let paper = memphis_workloads::run_latency(&params, memphis_core::CachePolicy::Paper);
    let delayed = memphis_workloads::run_latency(&params, memphis_core::CachePolicy::DelayedHits);
    let p99_paper = crate::gate::percentile(&paper.latencies, 99.0);
    let p99_delayed = crate::gate::percentile(&delayed.latencies, 99.0);
    LatencyGateOutcome {
        paper,
        delayed,
        p99_paper,
        p99_delayed,
        elapsed: t0.elapsed(),
    }
}
