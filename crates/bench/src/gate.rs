//! Shared gate-report plumbing for the bench binaries (`bench_gate`,
//! `perf_stress`): flat JSON rendering/parsing and the exact-match
//! comparison over the gated counter set.
//!
//! The vendored serde is serialize-only, so both ends of the report are
//! hand-rolled: a flat `{"key": integer, ...}` object is all the gate
//! ever needs. Wall-clock keys ride along in the reports but are never
//! gated — only the counters in [`GATED`] are compared, and the
//! comparison is equality, not a tolerance band, because every gated
//! counter is deterministic by construction.

use std::collections::HashMap;

/// The gated counters, in report order. `ci/bench_gate.sh` and the
/// `perf` stage fail the build when any of these diverges from the
/// committed baseline; all other report keys are informational.
pub const GATED: [&str; 8] = [
    "hits",
    "recomputes",
    "evictions",
    "coalesced_hits",
    "duplicates",
    "serve_shed",
    "serve_coalesced",
    "serve_quota_evictions",
];

/// The durable disk tier's recovery counters, gated by `bench_gate`
/// only (the perf stage keeps gating [`GATED`] alone, so its reports
/// stay schema-compatible with older baselines). Every one of these is
/// deterministic: the recovery gate's fault plan is seeded and its
/// store traffic is single-threaded.
pub const GATED_RECOVERY: [&str; 4] = [
    "segments_recovered",
    "entries_rehydrated",
    "checksum_rejects",
    "manifest_swaps",
];

/// The cluster layer's scale-out counters, gated by `bench_gate` (like
/// [`GATED_RECOVERY`], the perf stage keeps its older schema). The
/// cluster gate harness is single-threaded and every decision is a
/// SplitMix64 hash, so each of these is exact per `(seed, config)`.
pub const GATED_CLUSTER: [&str; 6] = [
    "remote_hits",
    "remote_misses",
    "transfer_bytes",
    "rebalance_moves",
    "replica_hits",
    "replica_invalidations",
];

/// The latency gate's delayed-hits counters, gated by `bench_gate`
/// (the perf stage keeps its older schema). The latency harness is
/// single-threaded with SplitMix64 arrivals, so the p99s, the served
/// count, and every policy counter are exact per seed.
pub const GATED_LATENCY: [&str; 6] = [
    "latency_served",
    "latency_p99_paper",
    "latency_p99_delayed",
    "latency_mad_evictions",
    "latency_ttna_rejects",
    "latency_delay_ticks_saved",
];

/// The script frontend's gate counters (PR 10), gated by `bench_gate`
/// (the perf stage keeps its older schema). The fuzz campaign is
/// SplitMix64-seeded and the corpus is embedded at compile time, so
/// program counts, lowered node totals, and the folded corpus digest
/// are exact per seed.
pub const GATED_SCRIPT: [&str; 5] = [
    "script_programs_fuzzed",
    "script_divergences",
    "script_lowered_nodes",
    "script_corpus_scripts",
    "script_corpus_digest",
];

/// Renders a flat `{"k": v, ...}` JSON object.
pub fn render(pairs: &[(&str, u64)]) -> String {
    let body = pairs
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect::<Vec<_>>()
        .join(",\n");
    format!("{{\n{body}\n}}\n")
}

/// Parses a flat string-to-integer JSON object (whitespace-tolerant;
/// ignores anything that is not a `"key": <digits>` pair).
pub fn parse(s: &str) -> HashMap<String, u64> {
    let mut out = HashMap::new();
    let mut rest = s;
    while let Some(q0) = rest.find('"') {
        rest = &rest[q0 + 1..];
        let Some(q1) = rest.find('"') else { break };
        let key = rest[..q1].to_string();
        rest = &rest[q1 + 1..];
        let Some(c) = rest.find(':') else { break };
        let after = rest[c + 1..].trim_start();
        let digits: String = after.chars().take_while(|ch| ch.is_ascii_digit()).collect();
        if !digits.is_empty() {
            if let Ok(v) = digits.parse() {
                out.insert(key, v);
            }
        }
        rest = &rest[c + 1..];
    }
    out
}

/// Result of one gated comparison.
#[derive(Debug, Default)]
pub struct GateDiff {
    /// `(key, value)` for counters equal to the baseline.
    pub matches: Vec<(String, u64)>,
    /// `(key, got, want)` for diverged counters.
    pub regressions: Vec<(String, u64, u64)>,
    /// Gated keys absent from the report or the baseline.
    pub missing: Vec<String>,
}

impl GateDiff {
    /// True when every gated counter matched.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }
}

/// Diffs only the [`GATED`] counters of a report against a baseline
/// (both flat JSON strings). Extra keys on either side are ignored, so
/// reports may carry informational wall-clock and perf keys beyond the
/// baseline schema.
pub fn compare_gated(report: &str, baseline: &str) -> GateDiff {
    compare_keys(report, baseline, &GATED)
}

/// Diffs an explicit gated key set of a report against a baseline —
/// `bench_gate` passes [`GATED`] plus [`GATED_RECOVERY`], the perf
/// stage only [`GATED`].
pub fn compare_keys(report: &str, baseline: &str, keys: &[&str]) -> GateDiff {
    let current = parse(report);
    let expected = parse(baseline);
    let mut diff = GateDiff::default();
    for &key in keys {
        match (expected.get(key), current.get(key)) {
            (Some(want), Some(got)) if want == got => {
                diff.matches.push((key.to_string(), *got));
            }
            (Some(want), Some(got)) => {
                diff.regressions.push((key.to_string(), *got, *want));
            }
            _ => diff.missing.push(key.to_string()),
        }
    }
    diff
}

/// Nearest-rank percentile of an unsorted sample (p in [0, 100]);
/// 0 for an empty sample.
pub fn percentile(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip() {
        let report = render(&[("hits", 448), ("wall_clock_ms", 12)]);
        let parsed = parse(&report);
        assert_eq!(parsed.get("hits"), Some(&448));
        assert_eq!(parsed.get("wall_clock_ms"), Some(&12));
    }

    #[test]
    fn compare_flags_only_gated_divergence() {
        let base = render(&[
            ("hits", 448),
            ("recomputes", 64),
            ("evictions", 64),
            ("coalesced_hits", 7),
            ("duplicates", 0),
            ("serve_shed", 6),
            ("serve_coalesced", 1),
            ("serve_quota_evictions", 5),
            ("wall_clock_ms", 3),
        ]);
        // Identical gated counters, different wall clock + extra keys.
        let report = render(&[
            ("hits", 448),
            ("recomputes", 64),
            ("evictions", 64),
            ("coalesced_hits", 7),
            ("duplicates", 0),
            ("serve_shed", 6),
            ("serve_coalesced", 1),
            ("serve_quota_evictions", 5),
            ("wall_clock_ms", 9000),
            ("perf_stress_latency_p99_ticks", 42),
        ]);
        let diff = compare_gated(&report, &base);
        assert!(diff.passed(), "{:?}", diff.regressions);
        assert_eq!(diff.matches.len(), GATED.len());

        let bad = report.replace("\"hits\": 448", "\"hits\": 447");
        let diff = compare_gated(&bad, &base);
        assert!(!diff.passed());
        assert_eq!(diff.regressions, vec![("hits".to_string(), 447, 448)]);
    }

    #[test]
    fn compare_reports_missing_keys() {
        let base = render(&[("hits", 1)]);
        let report = render(&[("hits", 1)]);
        let diff = compare_gated(&report, &base);
        assert_eq!(diff.missing.len(), GATED.len() - 1);
        assert!(!diff.passed());
    }

    #[test]
    fn compare_keys_gates_the_recovery_slice() {
        let base = render(&[
            ("segments_recovered", 2),
            ("entries_rehydrated", 3),
            ("checksum_rejects", 1),
            ("manifest_swaps", 1),
        ]);
        let diff = compare_keys(&base, &base, &GATED_RECOVERY);
        assert!(diff.passed());
        assert_eq!(diff.matches.len(), GATED_RECOVERY.len());

        let bad = base.replace("\"checksum_rejects\": 1", "\"checksum_rejects\": 4");
        let diff = compare_keys(&bad, &base, &GATED_RECOVERY);
        assert_eq!(
            diff.regressions,
            vec![("checksum_rejects".to_string(), 4, 1)]
        );
    }

    #[test]
    fn compare_keys_gates_the_cluster_slice() {
        let base = render(&[
            ("remote_hits", 207),
            ("remote_misses", 0),
            ("transfer_bytes", 585728),
            ("rebalance_moves", 15),
            ("replica_hits", 220),
            ("replica_invalidations", 6),
        ]);
        let diff = compare_keys(&base, &base, &GATED_CLUSTER);
        assert!(diff.passed());
        assert_eq!(diff.matches.len(), GATED_CLUSTER.len());

        let bad = base.replace("\"replica_hits\": 220", "\"replica_hits\": 0");
        let diff = compare_keys(&bad, &base, &GATED_CLUSTER);
        assert_eq!(diff.regressions, vec![("replica_hits".to_string(), 0, 220)]);
    }

    #[test]
    fn compare_keys_gates_the_latency_slice() {
        let base = render(&[
            ("latency_served", 18282),
            ("latency_p99_paper", 20),
            ("latency_p99_delayed", 1),
            ("latency_mad_evictions", 1576),
            ("latency_ttna_rejects", 6),
            ("latency_delay_ticks_saved", 233100),
        ]);
        let diff = compare_keys(&base, &base, &GATED_LATENCY);
        assert!(diff.passed());
        assert_eq!(diff.matches.len(), GATED_LATENCY.len());

        let bad = base.replace("\"latency_p99_delayed\": 1", "\"latency_p99_delayed\": 20");
        let diff = compare_keys(&bad, &base, &GATED_LATENCY);
        assert_eq!(
            diff.regressions,
            vec![("latency_p99_delayed".to_string(), 20, 1)]
        );
    }

    #[test]
    fn compare_keys_gates_the_script_slice() {
        let base = render(&[
            ("script_programs_fuzzed", 40),
            ("script_divergences", 0),
            ("script_lowered_nodes", 1200),
            ("script_corpus_scripts", 7),
            ("script_corpus_digest", 12345),
        ]);
        let diff = compare_keys(&base, &base, &GATED_SCRIPT);
        assert!(diff.passed());
        assert_eq!(diff.matches.len(), GATED_SCRIPT.len());

        let bad = base.replace("\"script_divergences\": 0", "\"script_divergences\": 3");
        let diff = compare_keys(&bad, &base, &GATED_SCRIPT);
        assert_eq!(
            diff.regressions,
            vec![("script_divergences".to_string(), 3, 0)]
        );
    }

    #[test]
    fn percentile_nearest_rank() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&s, 50.0), 50);
        assert_eq!(percentile(&s, 99.0), 99);
        assert_eq!(percentile(&s, 100.0), 100);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[], 50.0), 0);
    }
}
