//! The simulated N-node cache cluster.
//!
//! Each node owns a full [`LineageCache`] shard (spill disabled — a
//! node's tier is its memory budget). A shared metadata plane tracks:
//!
//! - **membership** — the live node set, HRW placement domain;
//! - **directory** — where each primary entry *actually* lives (HRW
//!   says where it *should* live; the two differ while rebalancing is
//!   in flight, because moves are budgeted per epoch);
//! - **replicas** — which nodes hold hot-item copies;
//! - **heat** — observed probe frequency, feeding replica selection;
//! - **pending** — the rebalancer's move queue, including entries
//!   *staged* out of a departed node so a leave never loses a proven
//!   entry even when the move budget can't absorb it immediately.
//!
//! All remote interactions charge virtual ticks through
//! [`NetworkModel`], so a run's full counter snapshot is a pure
//! function of `(seed, config, workload)`.
//!
//! The metadata mutex is never held across a node-cache probe or an
//! in-flight wait: routing decisions are planned under the lock, cache
//! operations run outside it, and stale discoveries (an evicted
//! primary, a pruned replica) are written back afterwards. This is
//! what lets a cluster probe park on a remote node's in-flight marker
//! (joining the computation) while other origins keep routing.

use crate::net::NetworkModel;
use crate::placement::{owner_of, rank_order, NodeId};
use crate::stats::{ClusterStats, ClusterStatsSnapshot};
use memphis_core::{
    resolve, BackendSnapshot, CacheConfig, CachedObject, ComputeGuard, LItem, LineageCache,
    LineageId, ProbeHit, Probed, ResidentEntry, ReuseStatsSnapshot,
};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cluster-level configuration. Node caches are sized uniformly.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Seed for HRW weights (and anything else the cluster randomizes).
    pub seed: u64,
    /// Per-node cache budget in bytes.
    pub node_budget: usize,
    /// Probe-map shards per node cache.
    pub shards: usize,
    /// Replica copies R for each hot item (0 disables replication).
    pub replicas: usize,
    /// At most this many items are replicated (top-k by heat).
    pub hot_k: usize,
    /// An item must be probed at least this often to count as hot.
    pub hot_min_probes: u64,
    /// Primary migrations allowed per rebalance epoch.
    pub rebalance_moves: usize,
    /// The fabric cost model.
    pub net: NetworkModel,
}

impl ClusterConfig {
    /// Small deterministic test cluster.
    pub fn test() -> Self {
        Self {
            seed: 42,
            node_budget: 1 << 20,
            shards: 8,
            replicas: 1,
            hot_k: 4,
            hot_min_probes: 3,
            rebalance_moves: 8,
            net: NetworkModel::test(),
        }
    }
}

/// Where a cluster hit was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Locality {
    /// The origin node's own primary copy.
    Local(NodeId),
    /// A replica copy hosted on the given node (possibly the origin).
    Replica(NodeId),
    /// The primary copy on a remote node.
    Remote(NodeId),
    /// An entry staged in the rebalancer's pending queue (its old host
    /// left; its new host hasn't admitted it yet).
    Handoff,
}

impl Locality {
    /// The node that served the hit, when one did.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            Locality::Local(n) | Locality::Replica(n) | Locality::Remote(n) => Some(*n),
            Locality::Handoff => None,
        }
    }
}

/// Result of [`ClusterCache::probe_or_begin_from`].
pub enum ClusterProbed {
    /// Served from somewhere in the cluster.
    Hit {
        /// The cached object and canonical item.
        hit: ProbeHit,
        /// Which copy served it.
        locality: Locality,
    },
    /// Nothing cached and nothing in flight anywhere: the caller owns
    /// the computation and must pass the guard to
    /// [`ClusterCache::complete_from`] (or drop it to abandon).
    Compute(ClusterGuard),
}

/// Ownership of a cluster-wide computation. Wraps the owner node's
/// [`ComputeGuard`] so coalescing happens on the owner's in-flight
/// marker regardless of which origin claimed the work.
pub struct ClusterGuard {
    guard: ComputeGuard,
    cache: Arc<LineageCache>,
    owner: NodeId,
    origin: NodeId,
}

impl ClusterGuard {
    /// The lineage item being computed.
    pub fn item(&self) -> &LItem {
        self.guard.item()
    }

    /// The node that will own the completed entry.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// The node the request originated on.
    pub fn origin(&self) -> NodeId {
        self.origin
    }
}

/// Source of a queued rebalance move.
enum MoveSrc {
    /// Read the entry out of this node's cache at drain time.
    Node(NodeId),
    /// The entry was exported from a departed node and is carried in
    /// the queue itself until a destination admits it.
    Staged(ResidentEntry),
}

struct PendingMove {
    key: LineageId,
    src: MoveSrc,
}

/// Shared metadata plane.
struct Meta {
    /// Live membership, kept sorted.
    members: Vec<NodeId>,
    /// Node id -> its cache shard.
    nodes: BTreeMap<NodeId, Arc<LineageCache>>,
    /// Key -> node actually holding the primary copy.
    directory: HashMap<LineageId, NodeId>,
    /// Key -> nodes holding replica copies (sorted).
    replicas: HashMap<LineageId, Vec<NodeId>>,
    /// Key -> observed probe count.
    heat: HashMap<LineageId, u64>,
    /// Budgeted move queue.
    pending: Vec<PendingMove>,
}

/// Routing plan computed under the metadata lock, acted on outside it.
struct ProbePlan {
    origin_cache: Option<Arc<LineageCache>>,
    origin_replica: bool,
    primary: Option<(NodeId, Arc<LineageCache>)>,
    remote_replicas: Vec<(NodeId, Arc<LineageCache>)>,
    staged: Option<ResidentEntry>,
}

/// The cluster: N node caches plus the metadata plane and counters.
pub struct ClusterCache {
    cfg: ClusterConfig,
    meta: Mutex<Meta>,
    stats: ClusterStats,
    /// Virtual network ticks charged so far.
    clock: AtomicU64,
}

fn make_node_cache(cfg: &ClusterConfig) -> Arc<LineageCache> {
    let mut c = CacheConfig::test();
    c.local_budget = cfg.node_budget;
    c.shards = cfg.shards;
    // A node's tier is its memory: eviction drops, never spills — the
    // cluster layer (staging, replicas) is the durability story here.
    c.spill_to_disk = false;
    Arc::new(LineageCache::new(c))
}

/// Payload bytes a hit ships across the fabric.
fn object_bytes(o: &CachedObject) -> usize {
    match o {
        CachedObject::Matrix(m) => m.size_bytes(),
        CachedObject::Scalar(_) => std::mem::size_of::<f64>(),
        _ => 0,
    }
}

impl ClusterCache {
    /// Builds a cluster over the given node ids (must be non-empty and
    /// distinct).
    pub fn new(cfg: ClusterConfig, node_ids: &[NodeId]) -> Self {
        assert!(!node_ids.is_empty(), "a cluster needs at least one node");
        let mut members: Vec<NodeId> = node_ids.to_vec();
        members.sort_unstable();
        members.dedup();
        assert_eq!(members.len(), node_ids.len(), "node ids must be distinct");
        let nodes = members
            .iter()
            .map(|&n| (n, make_node_cache(&cfg)))
            .collect();
        Self {
            cfg,
            meta: Mutex::new(Meta {
                members,
                nodes,
                directory: HashMap::new(),
                replicas: HashMap::new(),
                heat: HashMap::new(),
                pending: Vec::new(),
            }),
            stats: ClusterStats::default(),
            clock: AtomicU64::new(0),
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Live membership, sorted.
    pub fn members(&self) -> Vec<NodeId> {
        self.meta.lock().members.clone()
    }

    /// A member's cache shard.
    pub fn node_cache(&self, node: NodeId) -> Option<Arc<LineageCache>> {
        self.meta.lock().nodes.get(&node).cloned()
    }

    /// The member currently winning HRW for `item`.
    pub fn owner_of_item(&self, item: &LItem) -> NodeId {
        let m = self.meta.lock();
        owner_of(self.cfg.seed, &m.members, item.lid.content_hash())
            .expect("cluster has at least one member")
    }

    /// Routes an arbitrary hash (e.g. a mixed tenant id) to a member —
    /// the dispatcher's request-to-node mapping.
    pub fn route_hash(&self, hash: u64) -> NodeId {
        let m = self.meta.lock();
        owner_of(self.cfg.seed, &m.members, hash).expect("cluster has at least one member")
    }

    /// Moves still queued in the rebalancer.
    pub fn pending_moves(&self) -> usize {
        self.meta.lock().pending.len()
    }

    /// Replica copies currently recorded for `item`.
    pub fn replica_count(&self, item: &LItem) -> usize {
        self.meta
            .lock()
            .replicas
            .get(&item.lid)
            .map_or(0, |r| r.len())
    }

    /// Counter snapshot with the tick/pending gauges filled in.
    pub fn stats(&self) -> ClusterStatsSnapshot {
        let mut s = self.stats.snapshot();
        s.virtual_ticks = self.clock.load(Ordering::Relaxed);
        s.pending_moves = self.meta.lock().pending.len() as u64;
        s
    }

    /// Per-node reuse counters.
    pub fn node_stats(&self) -> Vec<(NodeId, ReuseStatsSnapshot)> {
        let m = self.meta.lock();
        m.nodes.iter().map(|(&n, c)| (n, c.stats())).collect()
    }

    /// Per-node backend snapshots (entry counts, used bytes, ...).
    pub fn node_backend_snapshots(&self) -> Vec<(NodeId, Vec<BackendSnapshot>)> {
        let m = self.meta.lock();
        m.nodes
            .iter()
            .map(|(&n, c)| (n, c.backend_snapshots()))
            .collect()
    }

    fn pay(&self, ticks: u64) {
        self.clock.fetch_add(ticks, Ordering::Relaxed);
    }

    // ------------------------------------------------------------------
    // PROBE PATH
    // ------------------------------------------------------------------

    fn plan(&self, origin: NodeId, key: LineageId) -> ProbePlan {
        let mut m = self.meta.lock();
        *m.heat.entry(key).or_insert(0) += 1;
        let reps = m.replicas.get(&key).cloned().unwrap_or_default();
        ProbePlan {
            origin_cache: m.nodes.get(&origin).cloned(),
            origin_replica: reps.contains(&origin),
            primary: m
                .directory
                .get(&key)
                .and_then(|&n| m.nodes.get(&n).cloned().map(|c| (n, c))),
            remote_replicas: reps
                .iter()
                .filter(|&&r| r != origin)
                .filter_map(|&r| m.nodes.get(&r).cloned().map(|c| (r, c)))
                .collect(),
            staged: m.pending.iter().find_map(|p| match &p.src {
                MoveSrc::Staged(e) if p.key == key => Some(e.clone()),
                _ => None,
            }),
        }
    }

    /// Drops a replica record discovered stale (the copy was evicted).
    fn prune_replica(&self, key: LineageId, node: NodeId) {
        let mut m = self.meta.lock();
        if let Some(reps) = m.replicas.get_mut(&key) {
            reps.retain(|&r| r != node);
            if reps.is_empty() {
                m.replicas.remove(&key);
            }
        }
    }

    /// Drops a directory record discovered stale.
    fn forget_primary(&self, key: LineageId, node: NodeId) {
        let mut m = self.meta.lock();
        if m.directory.get(&key) == Some(&node) {
            m.directory.remove(&key);
        }
    }

    /// One serving attempt across every copy the metadata knows about.
    /// Read preference order: origin-local replica (free) -> primary at
    /// its directory location -> remote replica -> staged handoff.
    fn try_serve(&self, origin: NodeId, item: &LItem) -> Option<(ProbeHit, Locality)> {
        let key = item.lid;
        let plan = self.plan(origin, key);

        // Cheapest first: a replica on the origin node costs nothing.
        if plan.origin_replica {
            if let Some(cache) = &plan.origin_cache {
                if let Some(hit) = cache.probe(item) {
                    ClusterStats::inc(&self.stats.replica_hits);
                    return Some((hit, Locality::Replica(origin)));
                }
            }
            self.prune_replica(key, origin);
        }

        if let Some((node, cache)) = &plan.primary {
            if *node == origin {
                if let Some(hit) = cache.probe(item) {
                    ClusterStats::inc(&self.stats.local_hits);
                    return Some((hit, Locality::Local(origin)));
                }
                self.forget_primary(key, *node);
            } else {
                let _span = memphis_obs::span(memphis_obs::cat::CLUSTER, "remote_probe");
                self.pay(self.cfg.net.probe_ticks());
                if let Some(hit) = cache.probe(item) {
                    let bytes = object_bytes(&hit.object);
                    ClusterStats::inc(&self.stats.remote_hits);
                    ClusterStats::add(&self.stats.transfer_bytes, bytes as u64);
                    self.pay(self.cfg.net.transfer_ticks(bytes));
                    return Some((hit, Locality::Remote(*node)));
                }
                // Directory pointed at an entry the node since evicted.
                ClusterStats::inc(&self.stats.remote_misses);
                self.forget_primary(key, *node);
            }
        }

        for (node, cache) in &plan.remote_replicas {
            let _span = memphis_obs::span(memphis_obs::cat::CLUSTER, "remote_probe");
            self.pay(self.cfg.net.probe_ticks());
            if let Some(hit) = cache.probe(item) {
                let bytes = object_bytes(&hit.object);
                ClusterStats::inc(&self.stats.replica_hits);
                ClusterStats::inc(&self.stats.remote_hits);
                ClusterStats::add(&self.stats.transfer_bytes, bytes as u64);
                self.pay(self.cfg.net.transfer_ticks(bytes));
                return Some((hit, Locality::Replica(*node)));
            }
            self.prune_replica(key, *node);
        }

        if let Some(entry) = plan.staged {
            let _span = memphis_obs::span(memphis_obs::cat::CLUSTER, "staged_handoff");
            ClusterStats::inc(&self.stats.handoff_hits);
            ClusterStats::add(&self.stats.transfer_bytes, entry.size as u64);
            self.pay(self.cfg.net.transfer_ticks(entry.size));
            return Some((
                ProbeHit {
                    object: entry.object,
                    canonical: resolve(key),
                },
                Locality::Handoff,
            ));
        }
        None
    }

    /// Cluster probe without computation ownership: returns the hit and
    /// where it came from, or `None` (counted as a cluster miss).
    pub fn probe_from(&self, origin: NodeId, item: &LItem) -> Option<(ProbeHit, Locality)> {
        let _span = memphis_obs::span(memphis_obs::cat::CLUSTER, "cluster_probe");
        ClusterStats::inc(&self.stats.probes);
        let served = self.try_serve(origin, item);
        if served.is_none() {
            ClusterStats::inc(&self.stats.misses);
        }
        served
    }

    /// Cluster probe with computation coalescing: a cluster-wide miss
    /// claims (or joins) the computation *on the HRW owner's cache*, so
    /// two origins racing on the same key coalesce on one in-flight
    /// marker instead of computing twice — the single-cache
    /// `probe_or_begin` guarantee, lifted to the cluster.
    pub fn probe_or_begin_from(&self, origin: NodeId, item: &LItem) -> ClusterProbed {
        let _span = memphis_obs::span(memphis_obs::cat::CLUSTER, "cluster_probe");
        ClusterStats::inc(&self.stats.probes);
        if let Some((hit, locality)) = self.try_serve(origin, item) {
            return ClusterProbed::Hit { hit, locality };
        }
        let key = item.lid;
        let (owner, cache) = {
            let m = self.meta.lock();
            let owner = owner_of(self.cfg.seed, &m.members, key.content_hash())
                .expect("cluster has at least one member");
            let cache = m.nodes.get(&owner).cloned().expect("member has a cache");
            (owner, cache)
        };
        if owner != origin {
            // The claim itself is a control round-trip to the owner.
            self.pay(self.cfg.net.probe_ticks());
        }
        let probed = cache.probe_or_begin(item);
        if matches!(probed, Probed::Coalesced(_)) {
            // Joined an in-flight compute on the owner (possibly begun
            // from another origin) instead of duplicating it.
            ClusterStats::inc(&self.stats.remote_coalesced);
        }
        match probed {
            // `Hit` means a concurrent completion raced in between
            // try_serve and the claim: account both like a primary hit.
            Probed::Hit(hit) | Probed::Coalesced(hit) => {
                let bytes = object_bytes(&hit.object);
                let locality = if owner == origin {
                    ClusterStats::inc(&self.stats.local_hits);
                    Locality::Local(owner)
                } else {
                    ClusterStats::inc(&self.stats.remote_hits);
                    ClusterStats::add(&self.stats.transfer_bytes, bytes as u64);
                    self.pay(self.cfg.net.transfer_ticks(bytes));
                    Locality::Remote(owner)
                };
                ClusterProbed::Hit { hit, locality }
            }
            Probed::Compute(guard) => {
                ClusterStats::inc(&self.stats.computes);
                ClusterProbed::Compute(ClusterGuard {
                    guard,
                    cache,
                    owner,
                    origin,
                })
            }
        }
    }

    /// Completes a cluster computation: the result is admitted on the
    /// owner node (waking coalesced waiters cluster-wide), the
    /// directory is updated, and — write coherence — every replica of
    /// the key is invalidated. When the origin is not the owner the
    /// result pays one result-shipping transfer.
    pub fn complete_from(
        &self,
        cg: ClusterGuard,
        object: CachedObject,
        cost: f64,
        size_hint: usize,
    ) -> bool {
        let _span = memphis_obs::span(memphis_obs::cat::CLUSTER, "complete");
        let ClusterGuard {
            guard,
            cache,
            owner,
            origin,
        } = cg;
        let key = guard.key();
        let stale: Vec<Arc<LineageCache>> = {
            let mut m = self.meta.lock();
            // A fresh result supersedes any staged copy of the key.
            m.pending.retain(|p| p.key != key);
            let reps = m.replicas.remove(&key).unwrap_or_default();
            if m.nodes.contains_key(&owner) {
                m.directory.insert(key, owner);
            } else {
                // The owner left while the compute was in flight: stage
                // the result so the next epoch re-homes it. Waiters
                // still get the object through the guard below.
                m.directory.remove(&key);
                m.pending.push(PendingMove {
                    key,
                    src: MoveSrc::Staged(ResidentEntry {
                        key,
                        object: object.clone(),
                        cost,
                        size: size_hint,
                        hits: 0,
                    }),
                });
            }
            reps.iter()
                .filter_map(|r| m.nodes.get(r).cloned())
                .collect()
        };
        for rc in &stale {
            rc.remove(key);
            ClusterStats::inc(&self.stats.replica_invalidations);
        }
        if origin != owner {
            ClusterStats::add(&self.stats.transfer_bytes, size_hint as u64);
            self.pay(self.cfg.net.transfer_ticks(size_hint));
        }
        cache.complete(guard, object, cost, size_hint, 1)
    }

    /// Models an upstream write to `item`: the primary and every
    /// replica copy are dropped cluster-wide (each replica drop counts
    /// as a `replica_invalidation`), forcing the next probe to
    /// recompute. Returns the number of replica copies invalidated.
    pub fn invalidate(&self, item: &LItem) -> u64 {
        let key = item.lid;
        let (targets, replicas_dropped) = {
            let mut m = self.meta.lock();
            m.pending.retain(|p| p.key != key);
            m.heat.remove(&key);
            let mut t = Vec::new();
            if let Some(loc) = m.directory.remove(&key) {
                t.extend(m.nodes.get(&loc).cloned());
            }
            let reps = m.replicas.remove(&key).unwrap_or_default();
            let mut dropped = 0u64;
            for r in &reps {
                if let Some(c) = m.nodes.get(r).cloned() {
                    ClusterStats::inc(&self.stats.replica_invalidations);
                    dropped += 1;
                    t.push(c);
                }
            }
            (t, dropped)
        };
        for c in &targets {
            c.remove(key);
        }
        replicas_dropped
    }

    // ------------------------------------------------------------------
    // MEMBERSHIP & REBALANCING
    // ------------------------------------------------------------------

    /// Drops `node` from `key`'s replica record without touching the
    /// cached copy — used when a replica is promoted to primary.
    fn unrecord_replica(m: &mut Meta, key: LineageId, node: NodeId) {
        if let Some(reps) = m.replicas.get_mut(&key) {
            reps.retain(|&r| r != node);
            if reps.is_empty() {
                m.replicas.remove(&key);
            }
        }
    }

    /// Queues a move for every directory entry no longer sitting on its
    /// HRW winner. Keys already queued are not re-queued; staged
    /// entries keep their payload.
    fn refresh_pending(cfg: &ClusterConfig, m: &mut Meta) {
        let queued: HashSet<LineageId> = m.pending.iter().map(|p| p.key).collect();
        for (&key, &loc) in &m.directory {
            if queued.contains(&key) {
                continue;
            }
            if owner_of(cfg.seed, &m.members, key.content_hash()) != Some(loc) {
                m.pending.push(PendingMove {
                    key,
                    src: MoveSrc::Node(loc),
                });
            }
        }
    }

    /// Adds a node to the membership. Only keys whose HRW winner
    /// changed are queued for movement; nothing moves until the next
    /// [`rebalance_epoch`](Self::rebalance_epoch).
    pub fn join(&self, node: NodeId) {
        let _span = memphis_obs::span(memphis_obs::cat::CLUSTER, "join");
        let cache = make_node_cache(&self.cfg);
        let mut m = self.meta.lock();
        assert!(
            !m.members.contains(&node),
            "node {node} is already a member"
        );
        m.members.push(node);
        m.members.sort_unstable();
        m.nodes.insert(node, cache);
        ClusterStats::inc(&self.stats.node_joins);
        Self::refresh_pending(&self.cfg, &mut m);
    }

    /// Removes a node from the membership. Every primary the node held
    /// is exported and *staged* into the move queue — bounded epochs
    /// then re-home the entries without ever losing one. The node's
    /// replica copies just disappear (their primaries are elsewhere).
    pub fn leave(&self, node: NodeId) {
        let _span = memphis_obs::span(memphis_obs::cat::CLUSTER, "leave");
        let mut m = self.meta.lock();
        assert!(m.members.contains(&node), "node {node} is not a member");
        assert!(m.members.len() > 1, "cannot remove the last member");
        m.members.retain(|&n| n != node);
        let cache = m.nodes.remove(&node).expect("member had a cache");
        ClusterStats::inc(&self.stats.node_leaves);

        for entry in cache.export_resident() {
            if m.directory.get(&entry.key) == Some(&node) {
                m.directory.remove(&entry.key);
                m.pending.retain(|p| p.key != entry.key);
                m.pending.push(PendingMove {
                    key: entry.key,
                    src: MoveSrc::Staged(entry),
                });
            }
        }
        // Directory entries still pointing at the leaver were evicted
        // on the node (nothing to export): drop the stale records.
        m.directory.retain(|_, &mut loc| loc != node);
        // The leaver can no longer host replica copies.
        let mut emptied = Vec::new();
        for (key, reps) in m.replicas.iter_mut() {
            let before = reps.len();
            reps.retain(|&r| r != node);
            for _ in reps.len()..before {
                ClusterStats::inc(&self.stats.replicas_dropped);
            }
            if reps.is_empty() {
                emptied.push(*key);
            }
        }
        for key in emptied {
            m.replicas.remove(&key);
        }
        // Queued moves sourced at the leaver either became staged above
        // or their entry was already gone.
        m.pending
            .retain(|p| !matches!(p.src, MoveSrc::Node(n) if n == node));
        Self::refresh_pending(&self.cfg, &mut m);
    }

    /// One rebalance epoch: drains up to `rebalance_moves` queued moves
    /// in deterministic order (by content hash), each paying a transfer,
    /// then refreshes hot-item replica placement. Returns the number of
    /// primaries moved.
    pub fn rebalance_epoch(&self) -> u64 {
        let _span = memphis_obs::span(memphis_obs::cat::CLUSTER, "rebalance");
        let mut m = self.meta.lock();
        Self::refresh_pending(&self.cfg, &mut m);
        let mut queue = std::mem::take(&mut m.pending);
        queue.sort_by_key(|p| p.key.content_hash());

        let mut moved = 0u64;
        let mut budget = self.cfg.rebalance_moves;
        let mut rest = Vec::new();
        for p in queue {
            if budget == 0 {
                rest.push(p);
                continue;
            }
            let Some(dst) = owner_of(self.cfg.seed, &m.members, p.key.content_hash()) else {
                rest.push(p);
                continue;
            };
            let dst_cache = m.nodes.get(&dst).cloned().expect("member has a cache");
            // The destination may already hold a copy of the key — its
            // replica set often includes the new HRW winner. The move
            // then completes by *promotion*: the resident copy becomes
            // the primary without re-shipping bytes. Without this, the
            // destination's `put` refuses the duplicate, the staged
            // entry is dropped, and the replica is torn down as cooled
            // next epoch — a proven entry lost to churn.
            let promoted = dst_cache.peek(p.key).is_some();
            match p.src {
                MoveSrc::Node(src) => {
                    if src == dst {
                        // Membership churned back (join→leave): the
                        // placement is correct again, nothing moves.
                        continue;
                    }
                    let Some(src_cache) = m.nodes.get(&src).cloned() else {
                        ClusterStats::inc(&self.stats.rebalance_drops);
                        continue;
                    };
                    if promoted {
                        src_cache.remove(p.key);
                        Self::unrecord_replica(&mut m, p.key, dst);
                        m.directory.insert(p.key, dst);
                        ClusterStats::inc(&self.stats.rebalance_moves);
                        moved += 1;
                        budget -= 1;
                        continue;
                    }
                    let Some(entry) = src_cache.peek(p.key) else {
                        // Evicted since it was queued: stale records.
                        if m.directory.get(&p.key) == Some(&src) {
                            m.directory.remove(&p.key);
                        }
                        ClusterStats::inc(&self.stats.rebalance_drops);
                        continue;
                    };
                    if dst_cache.put(
                        &resolve(p.key),
                        entry.object.clone(),
                        entry.cost,
                        entry.size,
                        1,
                    ) {
                        src_cache.remove(p.key);
                        m.directory.insert(p.key, dst);
                        ClusterStats::add(&self.stats.transfer_bytes, entry.size as u64);
                        self.pay(self.cfg.net.transfer_ticks(entry.size));
                        ClusterStats::inc(&self.stats.rebalance_moves);
                        moved += 1;
                        budget -= 1;
                    } else {
                        // Destination refused admission: the entry stays
                        // where it is (directory unchanged) and the move
                        // is abandoned, not retried forever.
                        ClusterStats::inc(&self.stats.rebalance_drops);
                    }
                }
                MoveSrc::Staged(entry) => {
                    if promoted {
                        Self::unrecord_replica(&mut m, p.key, dst);
                        m.directory.insert(p.key, dst);
                        ClusterStats::inc(&self.stats.rebalance_moves);
                        moved += 1;
                        budget -= 1;
                        continue;
                    }
                    if dst_cache.put(
                        &resolve(p.key),
                        entry.object.clone(),
                        entry.cost,
                        entry.size,
                        1,
                    ) {
                        m.directory.insert(p.key, dst);
                        ClusterStats::add(&self.stats.transfer_bytes, entry.size as u64);
                        self.pay(self.cfg.net.transfer_ticks(entry.size));
                        ClusterStats::inc(&self.stats.rebalance_moves);
                        moved += 1;
                        budget -= 1;
                    } else {
                        ClusterStats::inc(&self.stats.rebalance_drops);
                    }
                }
            }
        }
        m.pending = rest;
        self.refresh_replicas(&mut m);
        moved
    }

    /// Re-derives hot-item replica placement from observed heat: the
    /// top-k keys (by probe count, content hash breaking ties) with a
    /// live primary get copies on their next-R HRW rank nodes. Cooled
    /// or misplaced copies are dropped; missing copies are streamed
    /// from the primary.
    fn refresh_replicas(&self, m: &mut Meta) {
        if self.cfg.replicas == 0 || m.members.len() <= 1 {
            let all: Vec<(LineageId, Vec<NodeId>)> = m.replicas.drain().collect();
            for (key, reps) in all {
                for r in reps {
                    if let Some(c) = m.nodes.get(&r) {
                        if c.remove(key) {
                            ClusterStats::inc(&self.stats.replicas_dropped);
                        }
                    }
                }
            }
            return;
        }
        let mut hot: Vec<(u64, u64, LineageId)> = m
            .heat
            .iter()
            .filter(|(k, &c)| c >= self.cfg.hot_min_probes && m.directory.contains_key(k))
            .map(|(k, &c)| (c, k.content_hash(), *k))
            .collect();
        hot.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        hot.truncate(self.cfg.hot_k);
        let hot_keys: HashSet<LineageId> = hot.iter().map(|h| h.2).collect();

        // Cooled off: drop every copy of keys that fell out of the set.
        let cooled: Vec<LineageId> = m
            .replicas
            .keys()
            .filter(|k| !hot_keys.contains(k))
            .copied()
            .collect();
        for key in cooled {
            let reps = m.replicas.remove(&key).unwrap_or_default();
            for r in reps {
                if let Some(c) = m.nodes.get(&r) {
                    if c.remove(key) {
                        ClusterStats::inc(&self.stats.replicas_dropped);
                    }
                }
            }
        }

        for (_, _, key) in hot {
            let primary = m.directory[&key];
            let desired: Vec<NodeId> = rank_order(self.cfg.seed, &m.members, key.content_hash())
                .into_iter()
                .filter(|&n| n != primary)
                .take(self.cfg.replicas)
                .collect();
            let current = m.replicas.get(&key).cloned().unwrap_or_default();
            for &r in current.iter().filter(|r| !desired.contains(r)) {
                if let Some(c) = m.nodes.get(&r) {
                    if c.remove(key) {
                        ClusterStats::inc(&self.stats.replicas_dropped);
                    }
                }
            }
            let Some(primary_cache) = m.nodes.get(&primary) else {
                continue;
            };
            let Some(entry) = primary_cache.peek(key) else {
                // The primary was evicted since the directory was
                // written: drop the stale record (copies follow the
                // cooled-off path next epoch).
                m.directory.remove(&key);
                continue;
            };
            let mut placed = Vec::new();
            for r in desired {
                if current.contains(&r) {
                    placed.push(r);
                    continue;
                }
                let Some(c) = m.nodes.get(&r) else { continue };
                if c.put(
                    &resolve(key),
                    entry.object.clone(),
                    entry.cost,
                    entry.size,
                    1,
                ) {
                    ClusterStats::inc(&self.stats.replicas_placed);
                    ClusterStats::add(&self.stats.transfer_bytes, entry.size as u64);
                    self.pay(self.cfg.net.transfer_ticks(entry.size));
                    placed.push(r);
                }
            }
            placed.sort_unstable();
            if placed.is_empty() {
                m.replicas.remove(&key);
            } else {
                m.replicas.insert(key, placed);
            }
        }
    }

    /// Coherence audit for tests: counts replica records without a
    /// backing copy, records hosted on non-members, copies with a dead
    /// primary, and resident entries no metadata accounts for. A
    /// healthy cluster (where every admission went through the cluster
    /// API) reports zero.
    pub fn orphaned_replicas(&self) -> usize {
        let m = self.meta.lock();
        let staged: HashSet<LineageId> = m
            .pending
            .iter()
            .filter(|p| matches!(p.src, MoveSrc::Staged(_)))
            .map(|p| p.key)
            .collect();
        let mut orphans = 0;
        for (key, reps) in &m.replicas {
            if !m.directory.contains_key(key) {
                orphans += reps.len();
                continue;
            }
            for r in reps {
                match m.nodes.get(r) {
                    None => orphans += 1,
                    Some(c) => {
                        if c.peek(*key).is_none() {
                            orphans += 1;
                        }
                    }
                }
            }
        }
        for (n, cache) in &m.nodes {
            for e in cache.export_resident() {
                let is_primary = m.directory.get(&e.key) == Some(n);
                let is_replica = m.replicas.get(&e.key).is_some_and(|r| r.contains(n));
                if !is_primary && !is_replica && !staged.contains(&e.key) {
                    orphans += 1;
                }
            }
        }
        orphans
    }
}
