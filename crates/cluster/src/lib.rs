//! memphis-cluster: a simulated N-node cache cluster over the MEMPHIS
//! lineage cache.
//!
//! MEMPHIS evicts and reuses against one shared cache budget; the
//! millions-of-users north star needs the lineage cache to span nodes
//! while preserving the paper's reuse semantics. This crate adds the
//! scale-out layer:
//!
//! - **Placement** ([`placement`]): rendezvous (HRW) hashing over
//!   `LineageId::content_hash()`, ties broken by node id — a pure
//!   function of `(seed, members, key)`.
//! - **Cost model** ([`net`]): remote probes and transfers charge
//!   deterministic virtual-time ticks (latency + bandwidth/byte).
//! - **Cluster cache** ([`cluster`]): per-node `LineageCache` shards
//!   behind a metadata plane (directory, replicas, heat, pending
//!   moves); node join/leave with budgeted rebalancing; hot-item
//!   replication with write-invalidation; and a cluster probe path
//!   layered on `probe_or_begin` so remote in-flight computes are
//!   joined, never duplicated.
//! - **Counters** ([`stats`]): `remote_hits`, `remote_misses`,
//!   `transfer_bytes`, `rebalance_moves`, `replica_hits`,
//!   `replica_invalidations`, ... — exported through `IntoMetrics`
//!   into the unified `MetricsRegistry`.

pub mod cluster;
pub mod net;
pub mod placement;
pub mod stats;

pub use cluster::{ClusterCache, ClusterConfig, ClusterGuard, ClusterProbed, Locality};
pub use net::NetworkModel;
pub use placement::{argmax_weight, hrw_weight, owner_of, rank_order, NodeId};
pub use stats::{ClusterStats, ClusterStatsSnapshot};

#[cfg(test)]
mod tests {
    use super::*;
    use memphis_core::{CachedObject, LineageItem};
    use memphis_matrix::Matrix;
    use std::sync::Arc;

    fn item(i: usize) -> memphis_core::LItem {
        LineageItem::leaf(&format!("cluster-unit/item{i}"))
    }

    fn payload(i: usize) -> CachedObject {
        let data: Vec<f64> = (0..64).map(|v| (v + i) as f64).collect();
        CachedObject::Matrix(Arc::new(Matrix::from_vec(8, 8, data).unwrap()))
    }

    fn complete(cluster: &ClusterCache, origin: NodeId, i: usize) {
        match cluster.probe_or_begin_from(origin, &item(i)) {
            ClusterProbed::Compute(g) => {
                let obj = payload(i);
                let bytes = match &obj {
                    CachedObject::Matrix(m) => m.size_bytes(),
                    _ => 0,
                };
                assert!(cluster.complete_from(g, obj, 50.0, bytes));
            }
            ClusterProbed::Hit { .. } => panic!("item {i} unexpectedly cached"),
        }
    }

    #[test]
    fn single_node_cluster_serves_locally() {
        let cluster = ClusterCache::new(ClusterConfig::test(), &[0]);
        complete(&cluster, 0, 1);
        let (_, loc) = cluster.probe_from(0, &item(1)).expect("hit");
        assert_eq!(loc, Locality::Local(0));
        let s = cluster.stats();
        assert_eq!(s.local_hits, 1);
        assert_eq!(s.remote_hits, 0);
        assert_eq!(s.computes, 1);
    }

    #[test]
    fn remote_probe_pays_the_fabric() {
        let cfg = ClusterConfig::test();
        let cluster = ClusterCache::new(cfg.clone(), &[0, 1, 2, 3]);
        // Find an item whose owner is NOT node 0, then read it from 0.
        let i = (0..64)
            .find(|&i| cluster.owner_of_item(&item(i)) != 0)
            .expect("some item lands off node 0");
        let owner = cluster.owner_of_item(&item(i));
        complete(&cluster, owner, i);
        let before = cluster.stats();
        let (_, loc) = cluster.probe_from(0, &item(i)).expect("remote hit");
        assert_eq!(loc, Locality::Remote(owner));
        let after = cluster.stats();
        assert_eq!(after.remote_hits, before.remote_hits + 1);
        assert!(after.transfer_bytes > before.transfer_bytes);
        assert!(after.virtual_ticks > before.virtual_ticks);
    }

    #[test]
    fn computation_begins_on_the_hrw_owner() {
        let cluster = ClusterCache::new(ClusterConfig::test(), &[0, 1]);
        let i = (0..64)
            .find(|&i| cluster.owner_of_item(&item(i)) == 1)
            .expect("some item owned by node 1");
        match cluster.probe_or_begin_from(0, &item(i)) {
            ClusterProbed::Compute(g) => {
                assert_eq!(g.owner(), 1);
                assert_eq!(g.origin(), 0);
                // The owner's cache carries the in-flight marker.
                let owner_cache = cluster.node_cache(1).unwrap();
                assert!(owner_cache.inflight_waiters(&item(i)) == 0);
                drop(g); // abandon
            }
            ClusterProbed::Hit { .. } => panic!("nothing was cached"),
        }
    }

    #[test]
    fn leave_stages_entries_and_epochs_rehome_them() {
        let mut cfg = ClusterConfig::test();
        cfg.rebalance_moves = 2;
        cfg.replicas = 0;
        let cluster = ClusterCache::new(cfg, &[0, 1]);
        for i in 0..12 {
            let origin = cluster.owner_of_item(&item(i));
            complete(&cluster, origin, i);
        }
        cluster.leave(1);
        // Every entry survives the leave (staged or already home).
        for i in 0..12 {
            assert!(
                cluster.probe_from(0, &item(i)).is_some(),
                "item {i} lost on leave"
            );
        }
        // Bounded epochs drain the queue without exceeding the budget.
        let mut guard = 0;
        while cluster.pending_moves() > 0 {
            assert!(cluster.rebalance_epoch() <= 2);
            guard += 1;
            assert!(guard < 64, "rebalance never converged");
        }
        for i in 0..12 {
            let (_, loc) = cluster
                .probe_from(0, &item(i))
                .expect("hit after rebalance");
            assert_eq!(loc, Locality::Local(0), "item {i} should now be local");
        }
        assert_eq!(cluster.stats().computes, 12, "nothing recomputed");
    }

    #[test]
    fn hot_items_gain_replicas_and_writes_invalidate_them() {
        let mut cfg = ClusterConfig::test();
        cfg.replicas = 1;
        cfg.hot_k = 1;
        cfg.hot_min_probes = 3;
        let cluster = ClusterCache::new(cfg, &[0, 1, 2]);
        let owner = cluster.owner_of_item(&item(7));
        complete(&cluster, owner, 7);
        for _ in 0..5 {
            cluster.probe_from(owner, &item(7)).expect("hit");
        }
        cluster.rebalance_epoch();
        assert_eq!(cluster.replica_count(&item(7)), 1, "hot item replicated");
        assert!(cluster.stats().replicas_placed >= 1);
        // A read from the replica host is a free replica hit.
        let holder = cluster
            .members()
            .into_iter()
            .find(|&n| n != owner && cluster.node_cache(n).unwrap().peek(item(7).lid).is_some())
            .expect("replica copy exists");
        let (_, loc) = cluster.probe_from(holder, &item(7)).expect("hit");
        assert_eq!(loc, Locality::Replica(holder));
        assert!(cluster.stats().replica_hits >= 1);
        // A write invalidates every copy.
        cluster.invalidate(&item(7));
        assert_eq!(cluster.replica_count(&item(7)), 0);
        assert!(cluster.stats().replica_invalidations >= 1);
        assert!(cluster.probe_from(owner, &item(7)).is_none());
        assert_eq!(cluster.orphaned_replicas(), 0);
    }
}
