//! Deterministic network cost model.
//!
//! The cluster is simulated, so the "network" is an accounting device:
//! every remote interaction charges a number of *virtual-time ticks*
//! that is a pure function of the model parameters and the payload
//! size. No wall-clock time, no randomness — two runs with the same
//! `(seed, config)` charge identical tick totals, which is what lets
//! the node-count-invariance and churn tests compare whole counter
//! snapshots for equality.

/// Latency/bandwidth parameters for one (homogeneous) cluster fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkModel {
    /// One-way control-message latency in virtual ticks.
    pub latency_ticks: u64,
    /// Payload bytes transferred per virtual tick.
    pub bytes_per_tick: u64,
}

impl NetworkModel {
    /// Small test fabric: 4-tick latency, 1 KiB/tick.
    pub fn test() -> Self {
        Self {
            latency_ticks: 4,
            bytes_per_tick: 1024,
        }
    }

    /// Ticks for a metadata-only remote probe (request + response).
    pub fn probe_ticks(&self) -> u64 {
        2 * self.latency_ticks
    }

    /// Ticks to stream `bytes` of payload: one latency plus the
    /// bandwidth term (ceiling division; a zero-byte transfer still
    /// pays the latency).
    pub fn transfer_ticks(&self, bytes: usize) -> u64 {
        self.latency_ticks + (bytes as u64).div_ceil(self.bytes_per_tick.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cost_is_latency_plus_bandwidth() {
        let net = NetworkModel {
            latency_ticks: 3,
            bytes_per_tick: 100,
        };
        assert_eq!(net.probe_ticks(), 6);
        assert_eq!(net.transfer_ticks(0), 3);
        assert_eq!(net.transfer_ticks(1), 4);
        assert_eq!(net.transfer_ticks(100), 4);
        assert_eq!(net.transfer_ticks(101), 5);
    }

    #[test]
    fn zero_bandwidth_is_clamped_not_divided() {
        let net = NetworkModel {
            latency_ticks: 1,
            bytes_per_tick: 0,
        };
        assert_eq!(net.transfer_ticks(10), 11);
    }
}
