//! Rendezvous (highest-random-weight) placement of lineage items onto
//! cluster nodes.
//!
//! Every `(node, key)` pair gets a pseudo-random weight from a
//! SplitMix64-style mix of the node id, the item's
//! [`content_hash`](memphis_core::LineageId::content_hash), and the
//! cluster seed; the member with the highest weight owns the key.
//! Rendezvous hashing gives HRW's minimal-disruption property for free:
//! when a node joins or leaves, the only keys whose owner changes are
//! the ones the new member now wins (or the departed member used to
//! win) — exactly the set the rebalancer is allowed to move.
//!
//! **Tie-breaking is part of the contract.** Weight ties break toward
//! the *smallest node id*, never toward whichever candidate a map
//! happened to iterate first — placement must be a pure function of
//! `(seed, members, key)` or cross-node determinism (and the
//! node-count-invariance proptests) would silently rot. With distinct
//! node ids the mix is injective, so genuine ties cannot occur in
//! practice; the rule exists so the ordering is *total* and so
//! adversarial or future weight functions cannot reintroduce
//! iteration-order dependence. [`argmax_weight`] is the single place
//! that implements the rule.

use std::cmp::Reverse;

/// Identifies one cache node in the simulated cluster.
pub type NodeId = u16;

/// SplitMix64 finalizer: a bijective avalanche mix.
#[inline]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// HRW weight of `node` for the item with content hash `hash` under
/// cluster `seed`. Pure: no global state, no allocation.
#[inline]
pub fn hrw_weight(seed: u64, node: NodeId, hash: u64) -> u64 {
    // Odd-ize the node id so node 0 still perturbs the seed.
    mix(hash ^ mix(seed ^ (((node as u64) << 1) | 1)))
}

/// The deterministic argmax over `(node, weight)` candidates: highest
/// weight wins, ties break toward the smallest node id. Candidate
/// *order is irrelevant* — this is the property the adversarial-id
/// regression tests pin.
pub fn argmax_weight(candidates: impl IntoIterator<Item = (NodeId, u64)>) -> Option<NodeId> {
    candidates
        .into_iter()
        .max_by_key(|&(id, w)| (w, Reverse(id)))
        .map(|(id, _)| id)
}

/// The member that owns `hash`: HRW argmax over `members`.
pub fn owner_of(seed: u64, members: &[NodeId], hash: u64) -> Option<NodeId> {
    argmax_weight(members.iter().map(|&n| (n, hrw_weight(seed, n, hash))))
}

/// All members ranked by descending HRW weight (ties toward smaller
/// id). Rank 0 is the owner; replicas of a hot item live at ranks
/// `1..=R`.
pub fn rank_order(seed: u64, members: &[NodeId], hash: u64) -> Vec<NodeId> {
    let mut ranked: Vec<(NodeId, u64)> = members
        .iter()
        .map(|&n| (n, hrw_weight(seed, n, hash)))
        .collect();
    ranked.sort_by_key(|&(id, w)| (Reverse(w), id));
    ranked.into_iter().map(|(id, _)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Node ids chosen to stress the tie-break ordering: extremes,
    /// adjacent values, and ids whose low bits collide after shifting.
    const ADVERSARIAL_IDS: [NodeId; 6] = [0, 1, 2, u16::MAX, u16::MAX - 1, 0x8000];

    #[test]
    fn owner_is_independent_of_member_order() {
        let mut members = ADVERSARIAL_IDS.to_vec();
        for key in 0u64..256 {
            let hash = mix(key);
            let baseline = owner_of(42, &members, hash);
            // Rotate and reverse: every ordering must agree.
            for rot in 0..members.len() {
                members.rotate_left(1);
                assert_eq!(owner_of(42, &members, hash), baseline, "rotation {rot}");
            }
            members.reverse();
            assert_eq!(owner_of(42, &members, hash), baseline, "reversed");
        }
    }

    #[test]
    fn ties_break_by_smallest_node_id_not_iteration_order() {
        // Feed argmax precomputed *equal* weights in adversarial orders:
        // the winner must always be the numerically smallest node id.
        let orders: [&[NodeId]; 4] = [
            &[u16::MAX, 0x8000, 7],
            &[7, u16::MAX, 0x8000],
            &[0x8000, 7, u16::MAX],
            &[u16::MAX, 7, 7, 0x8000], // duplicate candidates
        ];
        for ids in orders {
            let tied = ids.iter().map(|&n| (n, 0xDEAD_BEEF_u64));
            assert_eq!(argmax_weight(tied), Some(7), "order {ids:?}");
        }
        // A genuine weight difference still dominates the id rule.
        let mixed = [(3u16, 10u64), (9, 11), (1, 10)];
        assert_eq!(argmax_weight(mixed), Some(9));
        assert_eq!(argmax_weight(std::iter::empty()), None);
    }

    #[test]
    fn join_only_remaps_keys_the_new_member_wins() {
        let before: Vec<NodeId> = vec![0, 1, 2, 3];
        let mut after = before.clone();
        after.push(4);
        for key in 0u64..512 {
            let hash = mix(0x5eed ^ key);
            let old = owner_of(7, &before, hash).unwrap();
            let new = owner_of(7, &after, hash).unwrap();
            if new != old {
                assert_eq!(new, 4, "an owner change on join must move TO the joiner");
            }
        }
    }

    #[test]
    fn leave_only_remaps_keys_the_departed_member_owned() {
        let before: Vec<NodeId> = vec![0, 1, 2, 3];
        let after: Vec<NodeId> = vec![0, 1, 3];
        for key in 0u64..512 {
            let hash = mix(0xFEED ^ key);
            let old = owner_of(7, &before, hash).unwrap();
            let new = owner_of(7, &after, hash).unwrap();
            if old != 2 {
                assert_eq!(new, old, "keys not owned by the leaver must not move");
            }
        }
    }

    #[test]
    fn rank_order_starts_with_owner_and_covers_members() {
        let members = ADVERSARIAL_IDS.to_vec();
        for key in 0u64..64 {
            let hash = mix(key ^ 0xA5A5);
            let ranked = rank_order(9, &members, hash);
            assert_eq!(ranked.len(), members.len());
            assert_eq!(ranked[0], owner_of(9, &members, hash).unwrap());
            let mut sorted = ranked.clone();
            sorted.sort_unstable();
            let mut want = members.clone();
            want.sort_unstable();
            assert_eq!(sorted, want, "rank order must be a permutation");
        }
    }

    #[test]
    fn placement_spreads_keys_across_nodes() {
        let members: Vec<NodeId> = (0..8).collect();
        let mut counts = [0usize; 8];
        for key in 0u64..4096 {
            let n = owner_of(1, &members, mix(key)).unwrap();
            counts[n as usize] += 1;
        }
        for (n, &c) in counts.iter().enumerate() {
            assert!(
                c > 4096 / 8 / 2 && c < 4096 / 8 * 2,
                "node {n} got {c} of 4096 keys — HRW spread is badly skewed"
            );
        }
    }
}
