//! Cluster-level counters: locality of hits, transfer volume, and the
//! rebalance/replication control-plane activity. Mirrors the
//! `ReuseStats` / `ReuseStatsSnapshot` pattern in memphis-core so the
//! snapshot plugs straight into `MetricsRegistry` via `IntoMetrics`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic cluster counters. Counter semantics:
///
/// - `local_hits` — served by the origin node's own primary copy.
/// - `replica_hits` — served by a replica copy (local or remote).
/// - `remote_hits` — served across the fabric (remote primary, remote
///   replica, or remote coalesced join); a remote replica read counts
///   in *both* `replica_hits` and `remote_hits`.
/// - `remote_misses` — a remote primary probe that found the directory
///   pointing at an entry the node had since evicted.
/// - `handoff_hits` — served from an entry staged in the rebalancer's
///   pending queue (its old node left; its new node hasn't admitted it
///   yet).
#[derive(Debug, Default)]
pub struct ClusterStats {
    /// Cluster probes issued (one per `probe_from`/`probe_or_begin_from`).
    pub probes: AtomicU64,
    /// See type-level docs.
    pub local_hits: AtomicU64,
    /// See type-level docs.
    pub remote_hits: AtomicU64,
    /// See type-level docs.
    pub remote_misses: AtomicU64,
    /// See type-level docs.
    pub replica_hits: AtomicU64,
    /// See type-level docs.
    pub handoff_hits: AtomicU64,
    /// Probes that joined an in-flight computation on the owner node
    /// instead of duplicating it (possibly from a different origin).
    pub remote_coalesced: AtomicU64,
    /// Probes that found nothing anywhere and claimed ownership of the
    /// computation.
    pub computes: AtomicU64,
    /// Probes that found nothing and did not begin a computation
    /// (plain `probe_from` misses).
    pub misses: AtomicU64,
    /// Payload bytes that crossed the fabric (hits, migrations,
    /// replica placements, and result shipping).
    pub transfer_bytes: AtomicU64,
    /// Primary entries migrated by rebalance epochs.
    pub rebalance_moves: AtomicU64,
    /// Pending moves dropped because the destination refused admission.
    pub rebalance_drops: AtomicU64,
    /// Replica copies placed on rank-order nodes.
    pub replicas_placed: AtomicU64,
    /// Replica copies invalidated by writes (recompute/complete or an
    /// explicit `invalidate`).
    pub replica_invalidations: AtomicU64,
    /// Replica copies dropped by the control plane (cooled off, host
    /// left, or placement changed) — not write coherence.
    pub replicas_dropped: AtomicU64,
    /// Nodes that joined the membership.
    pub node_joins: AtomicU64,
    /// Nodes that left the membership.
    pub node_leaves: AtomicU64,
}

/// Point-in-time copy of [`ClusterStats`], plus two gauges filled by
/// the cluster (`virtual_ticks`, `pending_moves`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize)]
pub struct ClusterStatsSnapshot {
    /// See [`ClusterStats::probes`].
    pub probes: u64,
    /// See [`ClusterStats::local_hits`].
    pub local_hits: u64,
    /// See [`ClusterStats::remote_hits`].
    pub remote_hits: u64,
    /// See [`ClusterStats::remote_misses`].
    pub remote_misses: u64,
    /// See [`ClusterStats::replica_hits`].
    pub replica_hits: u64,
    /// See [`ClusterStats::handoff_hits`].
    pub handoff_hits: u64,
    /// See [`ClusterStats::remote_coalesced`].
    pub remote_coalesced: u64,
    /// See [`ClusterStats::computes`].
    pub computes: u64,
    /// See [`ClusterStats::misses`].
    pub misses: u64,
    /// See [`ClusterStats::transfer_bytes`].
    pub transfer_bytes: u64,
    /// See [`ClusterStats::rebalance_moves`].
    pub rebalance_moves: u64,
    /// See [`ClusterStats::rebalance_drops`].
    pub rebalance_drops: u64,
    /// See [`ClusterStats::replicas_placed`].
    pub replicas_placed: u64,
    /// See [`ClusterStats::replica_invalidations`].
    pub replica_invalidations: u64,
    /// See [`ClusterStats::replicas_dropped`].
    pub replicas_dropped: u64,
    /// See [`ClusterStats::node_joins`].
    pub node_joins: u64,
    /// See [`ClusterStats::node_leaves`].
    pub node_leaves: u64,
    /// Virtual network ticks charged so far (gauge).
    pub virtual_ticks: u64,
    /// Moves still queued in the rebalancer (gauge).
    pub pending_moves: u64,
}

impl ClusterStats {
    /// Increments a counter.
    #[inline]
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Copies all counters (gauges zeroed; the cluster fills them).
    pub fn snapshot(&self) -> ClusterStatsSnapshot {
        ClusterStatsSnapshot {
            probes: self.probes.load(Ordering::Relaxed),
            local_hits: self.local_hits.load(Ordering::Relaxed),
            remote_hits: self.remote_hits.load(Ordering::Relaxed),
            remote_misses: self.remote_misses.load(Ordering::Relaxed),
            replica_hits: self.replica_hits.load(Ordering::Relaxed),
            handoff_hits: self.handoff_hits.load(Ordering::Relaxed),
            remote_coalesced: self.remote_coalesced.load(Ordering::Relaxed),
            computes: self.computes.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            transfer_bytes: self.transfer_bytes.load(Ordering::Relaxed),
            rebalance_moves: self.rebalance_moves.load(Ordering::Relaxed),
            rebalance_drops: self.rebalance_drops.load(Ordering::Relaxed),
            replicas_placed: self.replicas_placed.load(Ordering::Relaxed),
            replica_invalidations: self.replica_invalidations.load(Ordering::Relaxed),
            replicas_dropped: self.replicas_dropped.load(Ordering::Relaxed),
            node_joins: self.node_joins.load(Ordering::Relaxed),
            node_leaves: self.node_leaves.load(Ordering::Relaxed),
            virtual_ticks: 0,
            pending_moves: 0,
        }
    }
}

impl memphis_obs::IntoMetrics for ClusterStatsSnapshot {
    fn metrics_section(&self) -> &'static str {
        "cluster"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("probes", self.probes),
            ("local_hits", self.local_hits),
            ("remote_hits", self.remote_hits),
            ("remote_misses", self.remote_misses),
            ("replica_hits", self.replica_hits),
            ("handoff_hits", self.handoff_hits),
            ("remote_coalesced", self.remote_coalesced),
            ("computes", self.computes),
            ("misses", self.misses),
            ("transfer_bytes", self.transfer_bytes),
            ("rebalance_moves", self.rebalance_moves),
            ("rebalance_drops", self.rebalance_drops),
            ("replicas_placed", self.replicas_placed),
            ("replica_invalidations", self.replica_invalidations),
            ("replicas_dropped", self.replicas_dropped),
            ("node_joins", self.node_joins),
            ("node_leaves", self.node_leaves),
            ("virtual_ticks", self.virtual_ticks),
            ("pending_moves", self.pending_moves),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = ClusterStats::default();
        ClusterStats::inc(&s.remote_hits);
        ClusterStats::add(&s.transfer_bytes, 2048);
        let snap = s.snapshot();
        assert_eq!(snap.remote_hits, 1);
        assert_eq!(snap.transfer_bytes, 2048);
        assert_eq!(snap.replica_hits, 0);
    }
}
