//! Shuffle manager: stores map-task outputs ("shuffle files") keyed by
//! `(shuffle_id, map_partition)`, serves reduce-side reads, and — like
//! Spark — implicitly retains shuffle files so later jobs can skip
//! recomputing the map side of a wide dependency.

use crate::config::CostModel;
use crate::rdd::{Record, ShuffleId};
use crate::stats::SparkStats;
use memphis_matrix::BlockId;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::block_manager::bytes_of_partition;

struct ShuffleState {
    /// `outputs[map_partition][reduce_partition]` → records.
    outputs: HashMap<usize, Vec<Vec<Record>>>,
    /// Number of map partitions expected.
    num_map_partitions: usize,
    complete: bool,
}

/// Marker error of [`ShuffleManager::try_read`]: the requested shuffle is
/// missing, incomplete, or lost map outputs since it was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchFailed;

/// Cluster-wide shuffle-file store.
pub struct ShuffleManager {
    shuffles: Mutex<HashMap<ShuffleId, ShuffleState>>,
    /// Shuffles currently being produced by some job (for concurrent jobs
    /// sharing a dependency).
    running: Mutex<HashSet<ShuffleId>>,
    running_cv: Condvar,
    stats: Arc<SparkStats>,
    cost: CostModel,
}

impl ShuffleManager {
    /// Creates an empty shuffle manager.
    pub fn new(stats: Arc<SparkStats>, cost: CostModel) -> Self {
        Self {
            shuffles: Mutex::new(HashMap::new()),
            running: Mutex::new(HashSet::new()),
            running_cv: Condvar::new(),
            stats,
            cost,
        }
    }

    /// True when all map outputs of `sid` are available (the stage can be
    /// skipped).
    pub fn is_complete(&self, sid: ShuffleId) -> bool {
        self.shuffles
            .lock()
            .get(&sid)
            .map(|s| s.complete)
            .unwrap_or(false)
    }

    /// Claims the right to produce shuffle `sid`. Returns `true` if this
    /// caller must run the map stage; `false` if another job produced (or
    /// is producing) it — in that case the call blocks until completion.
    pub fn claim_or_wait(&self, sid: ShuffleId) -> bool {
        loop {
            if self.is_complete(sid) {
                return false;
            }
            let mut running = self.running.lock();
            if running.insert(sid) {
                // Re-check: it may have completed between the two locks.
                if self.is_complete(sid) {
                    running.remove(&sid);
                    self.running_cv.notify_all();
                    return false;
                }
                return true;
            }
            // Another job is producing it; wait for a state change.
            self.running_cv.wait(&mut running);
        }
    }

    /// Registers a shuffle production run. Map outputs that survived from
    /// an earlier (partially lost) production are kept: shuffle data is
    /// deterministic, so only *missing* map partitions need recomputation
    /// (Spark's partial stage resubmission).
    pub fn begin(&self, sid: ShuffleId, num_map_partitions: usize) {
        let mut shuffles = self.shuffles.lock();
        shuffles
            .entry(sid)
            .or_insert_with(|| ShuffleState {
                outputs: HashMap::new(),
                num_map_partitions,
                complete: false,
            })
            .num_map_partitions = num_map_partitions;
    }

    /// Map partitions of `sid` whose outputs are currently missing. Empty
    /// when the shuffle is fully produced; all partitions when the state
    /// does not exist (call [`ShuffleManager::begin`] first).
    pub fn missing_map_partitions(&self, sid: ShuffleId) -> Vec<usize> {
        let shuffles = self.shuffles.lock();
        match shuffles.get(&sid) {
            Some(s) => (0..s.num_map_partitions)
                .filter(|p| !s.outputs.contains_key(p))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Writes one map task's bucketed output.
    pub fn write_map_output(
        &self,
        sid: ShuffleId,
        map_partition: usize,
        buckets: Vec<Vec<Record>>,
    ) {
        let bytes: usize = buckets.iter().map(|b| bytes_of_partition(b)).sum();
        SparkStats::add(&self.stats.shuffle_bytes_written, bytes as u64);
        let delay = CostModel::transfer_delay(bytes, self.cost.shuffle_ns_per_byte);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        let mut shuffles = self.shuffles.lock();
        if let Some(state) = shuffles.get_mut(&sid) {
            state.outputs.insert(map_partition, buckets);
        }
    }

    /// Marks shuffle `sid` complete and wakes jobs waiting on it.
    pub fn finish(&self, sid: ShuffleId) {
        {
            let mut shuffles = self.shuffles.lock();
            if let Some(state) = shuffles.get_mut(&sid) {
                debug_assert_eq!(state.outputs.len(), state.num_map_partitions);
                state.complete = true;
            }
        }
        let mut running = self.running.lock();
        running.remove(&sid);
        self.running_cv.notify_all();
    }

    /// Reduce-side read that detects lost map outputs: returns
    /// `Err(FetchFailed)` when the shuffle is missing, incomplete, or has
    /// lost outputs — the scheduler then resubmits the map stage.
    pub fn try_read(
        &self,
        sid: ShuffleId,
        reduce_partition: usize,
    ) -> Result<HashMap<BlockId, Vec<memphis_matrix::Matrix>>, FetchFailed> {
        {
            let shuffles = self.shuffles.lock();
            match shuffles.get(&sid) {
                Some(s) if s.complete && s.outputs.len() == s.num_map_partitions => {}
                _ => {
                    SparkStats::inc(&self.stats.fetch_failures);
                    return Err(FetchFailed);
                }
            }
        }
        Ok(self.read(sid, reduce_partition))
    }

    /// Reduce-side read: gathers bucket `reduce_partition` from every map
    /// output, grouped by key.
    pub fn read(
        &self,
        sid: ShuffleId,
        reduce_partition: usize,
    ) -> HashMap<BlockId, Vec<memphis_matrix::Matrix>> {
        let shuffles = self.shuffles.lock();
        let state = match shuffles.get(&sid) {
            Some(s) => s,
            None => return HashMap::new(),
        };
        let mut grouped: HashMap<BlockId, Vec<memphis_matrix::Matrix>> = HashMap::new();
        let mut bytes = 0usize;
        // Gather in map-partition order so downstream combine folds see a
        // deterministic value order — floating-point results are then
        // bit-identical across runs, thread counts, and fault recovery.
        let mut map_parts: Vec<usize> = state.outputs.keys().copied().collect();
        map_parts.sort_unstable();
        for mp in map_parts {
            let buckets = &state.outputs[&mp];
            if let Some(bucket) = buckets.get(reduce_partition) {
                bytes += bytes_of_partition(bucket);
                for (k, m) in bucket {
                    grouped.entry(*k).or_default().push(m.clone());
                }
            }
        }
        drop(shuffles);
        SparkStats::add(&self.stats.shuffle_bytes_read, bytes as u64);
        let delay = CostModel::transfer_delay(bytes, self.cost.shuffle_ns_per_byte);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        grouped
    }

    /// Drops the shuffle files of `sid` (RDD cleanup).
    pub fn remove(&self, sid: ShuffleId) {
        self.shuffles.lock().remove(&sid);
    }

    /// Fault injection: drops every retained map output whose map
    /// partition matches `lost`, marking the affected shuffles incomplete
    /// so the next read fetch-fails and triggers partial resubmission.
    /// Shuffles currently mid-production are left alone. Returns the
    /// number of outputs dropped.
    pub fn drop_outputs_where(&self, lost: impl Fn(usize) -> bool) -> u64 {
        // Lock order matches `claim_or_wait`: `running` before `shuffles`.
        let running = self.running.lock();
        let mut shuffles = self.shuffles.lock();
        let mut dropped = 0u64;
        for (sid, state) in shuffles.iter_mut() {
            if running.contains(sid) {
                continue;
            }
            let victims: Vec<usize> = state.outputs.keys().copied().filter(|p| lost(*p)).collect();
            for p in victims {
                state.outputs.remove(&p);
                state.complete = false;
                dropped += 1;
            }
        }
        dropped
    }

    /// Abandons a failed production run: removes partial outputs and
    /// releases the claim so waiting jobs can retry.
    pub fn abort(&self, sid: ShuffleId) {
        self.shuffles.lock().remove(&sid);
        let mut running = self.running.lock();
        running.remove(&sid);
        self.running_cv.notify_all();
    }

    /// Number of retained shuffles (for memory-overhead reporting).
    pub fn retained(&self) -> usize {
        self.shuffles.lock().len()
    }

    /// Total bytes retained across all shuffle files.
    pub fn retained_bytes(&self) -> usize {
        let shuffles = self.shuffles.lock();
        shuffles
            .values()
            .flat_map(|s| s.outputs.values())
            .flat_map(|buckets| buckets.iter())
            .map(|b| bytes_of_partition(b))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memphis_matrix::Matrix;

    fn mgr() -> ShuffleManager {
        ShuffleManager::new(Arc::new(SparkStats::default()), CostModel::zero())
    }

    fn rec(row: usize, v: f64) -> Record {
        (BlockId { row, col: 0 }, Matrix::scalar(v))
    }

    #[test]
    fn write_read_groups_by_key() {
        let m = mgr();
        let sid = ShuffleId(1);
        m.begin(sid, 2);
        // Map task 0 emits to both reduce partitions.
        m.write_map_output(sid, 0, vec![vec![rec(0, 1.0)], vec![rec(1, 2.0)]]);
        m.write_map_output(sid, 1, vec![vec![rec(0, 3.0)], vec![]]);
        m.finish(sid);
        assert!(m.is_complete(sid));

        let r0 = m.read(sid, 0);
        assert_eq!(r0[&BlockId { row: 0, col: 0 }].len(), 2);
        let r1 = m.read(sid, 1);
        assert_eq!(r1[&BlockId { row: 1, col: 0 }].len(), 1);
    }

    #[test]
    fn claim_prevents_duplicate_production() {
        let m = mgr();
        let sid = ShuffleId(2);
        assert!(m.claim_or_wait(sid)); // first caller produces
        m.begin(sid, 1);
        m.write_map_output(sid, 0, vec![vec![rec(0, 1.0)]]);
        m.finish(sid);
        assert!(!m.claim_or_wait(sid)); // second caller sees it complete
    }

    #[test]
    fn concurrent_claims_serialize() {
        let m = Arc::new(mgr());
        let sid = ShuffleId(3);
        assert!(m.claim_or_wait(sid));
        let m2 = m.clone();
        let waiter = std::thread::spawn(move || m2.claim_or_wait(sid));
        std::thread::sleep(std::time::Duration::from_millis(20));
        m.begin(sid, 1);
        m.write_map_output(sid, 0, vec![vec![rec(0, 1.0)]]);
        m.finish(sid);
        assert!(!waiter.join().unwrap(), "waiter must not re-produce");
    }

    #[test]
    fn remove_releases_files() {
        let m = mgr();
        let sid = ShuffleId(4);
        m.begin(sid, 1);
        m.write_map_output(sid, 0, vec![vec![rec(0, 1.0)]]);
        m.finish(sid);
        assert_eq!(m.retained(), 1);
        assert!(m.retained_bytes() > 0);
        m.remove(sid);
        assert_eq!(m.retained(), 0);
        assert!(!m.is_complete(sid));
    }
}
