//! A simulated Spark-like distributed backend for the MEMPHIS reproduction.
//!
//! The original MEMPHIS runs on a real Apache Spark cluster. This crate
//! re-implements the Spark semantics the paper's mechanisms depend on,
//! executing for real on a pool of executor worker threads:
//!
//! - **Lazy evaluation**: RDDs are transformation DAG nodes; nothing runs
//!   until an *action* (`collect`, `reduce`, `count`) triggers a job.
//! - **Stage scheduling**: the [`scheduler::DagScheduler`] splits each job
//!   into stages at shuffle boundaries, runs map stages first, and skips
//!   stages whose shuffle files are still available (Spark's implicit
//!   shuffle-file caching).
//! - **Storage management**: [`block_manager::BlockManager`] accounts
//!   cached partitions against a storage budget, evicts LRU partitions,
//!   spills `MemoryAndDisk` partitions to disk, and recomputes lost
//!   partitions from RDD lineage.
//! - **Broadcast variables**: torrent-style chunked transfer, lazily
//!   shipped to each executor on first use, with driver-side retention
//!   until destroyed (the "dangling reference" problem of paper §2.2).
//! - **Cost model**: task-launch overhead and interconnect bandwidths are
//!   injected via [`config::CostModel`] so experiment *shapes* (e.g. the
//!   eager-caching collapse of Figure 2(c)) reproduce on one machine.
//!
//! Records are keyed matrix tiles `(BlockId, Matrix)`, matching SystemDS's
//! binary-block RDDs.

pub mod block_manager;
pub mod broadcast;
pub mod config;
pub mod context;
pub mod fault;
pub mod rdd;
pub mod scheduler;
pub mod shuffle;
pub mod stats;

pub use block_manager::StorageLevel;
pub use broadcast::BroadcastRef;
pub use config::{CostModel, SparkConfig};
pub use context::SparkContext;
pub use fault::{ExecutorKill, FaultPlan, JobError, TaskError};
pub use rdd::{RddRef, Record};
pub use stats::SparkStats;
