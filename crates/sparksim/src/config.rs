//! Cluster configuration and interconnect cost model.

use std::time::Duration;

/// Injected costs that make the single-machine simulation reproduce the
/// *relative* behaviour of a real cluster (Table 2 of the paper: shuffle
/// bandwidth ~15 GB/s cluster-aggregate, task-launch latencies, broadcast
/// chunking).
///
/// All costs are realized as busy-wait delays inside executor tasks, so they
/// overlap with other tasks exactly like real network/scheduler latency.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Fixed scheduling + serialization overhead charged per task.
    pub task_launch: Duration,
    /// Per-byte cost of shuffle writes + reads (models the interconnect).
    pub shuffle_ns_per_byte: f64,
    /// Per-byte cost of collecting results back to the driver.
    pub collect_ns_per_byte: f64,
    /// Per-byte cost of shipping a broadcast chunk to one executor.
    pub broadcast_ns_per_byte: f64,
    /// Fixed cost per broadcast chunk (torrent block registration).
    pub broadcast_chunk_overhead: Duration,
    /// Fixed driver-side cost of launching a job (DAGScheduler overhead).
    pub job_launch: Duration,
}

impl CostModel {
    /// A cost model with every injected delay set to zero — used by unit
    /// tests that only check semantics.
    pub fn zero() -> Self {
        Self {
            task_launch: Duration::ZERO,
            shuffle_ns_per_byte: 0.0,
            collect_ns_per_byte: 0.0,
            broadcast_ns_per_byte: 0.0,
            broadcast_chunk_overhead: Duration::ZERO,
            job_launch: Duration::ZERO,
        }
    }

    /// The default calibration: scaled-down cluster latencies that keep the
    /// paper's cost ratios (job launch >> task launch >> per-byte costs)
    /// while letting experiments finish in seconds.
    pub fn calibrated() -> Self {
        Self {
            task_launch: Duration::from_micros(120),
            shuffle_ns_per_byte: 0.25, // ~4 GB/s simulated interconnect
            collect_ns_per_byte: 0.15, // ~6.7 GB/s driver link
            broadcast_ns_per_byte: 0.15,
            broadcast_chunk_overhead: Duration::from_micros(20),
            job_launch: Duration::from_micros(500),
        }
    }

    /// Delay for moving `bytes` at `ns_per_byte`.
    pub fn transfer_delay(bytes: usize, ns_per_byte: f64) -> Duration {
        Duration::from_nanos((bytes as f64 * ns_per_byte) as u64)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// Static configuration of the simulated cluster.
#[derive(Debug, Clone)]
pub struct SparkConfig {
    /// Number of executor processes.
    pub num_executors: usize,
    /// Worker threads (task slots) per executor.
    pub cores_per_executor: usize,
    /// Total storage-region capacity in bytes across the cluster (the
    /// unified-memory storage fraction of executor heaps).
    pub storage_capacity: usize,
    /// Torrent broadcast chunk size in bytes (Spark default: 4 MB).
    pub broadcast_chunk_size: usize,
    /// Default number of partitions for parallelized data.
    pub default_parallelism: usize,
    /// Directory for spilled partitions; created on demand.
    pub spill_dir: std::path::PathBuf,
    /// Injected interconnect/scheduler costs.
    pub cost: CostModel,
    /// Maximum attempts per task before the job is failed (Spark's
    /// `spark.task.maxFailures`, default 4).
    pub task_max_failures: u64,
    /// Maximum attempts per stage (initial run + fetch-failure
    /// resubmissions) before the job is failed (Spark's
    /// `spark.stage.maxConsecutiveAttempts`, default 4).
    pub stage_max_attempts: u64,
    /// Deterministic fault-injection plan; inert by default.
    pub fault_plan: crate::fault::FaultPlan,
}

impl SparkConfig {
    /// A small local cluster suitable for tests: 2 executors x 2 cores,
    /// 64 MB storage, zero injected cost.
    pub fn local_test() -> Self {
        Self {
            num_executors: 2,
            cores_per_executor: 2,
            storage_capacity: 64 << 20,
            broadcast_chunk_size: 4 << 20,
            default_parallelism: 4,
            spill_dir: std::env::temp_dir().join("memphis_spill"),
            cost: CostModel::zero(),
            task_max_failures: 4,
            stage_max_attempts: 4,
            fault_plan: crate::fault::FaultPlan::none(),
        }
    }

    /// The benchmark cluster: mirrors the paper's 8-node scale-out setup at
    /// reduced scale, with calibrated injected costs.
    pub fn benchmark() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8);
        Self {
            num_executors: 4,
            cores_per_executor: (cores / 4).max(1),
            storage_capacity: 512 << 20,
            broadcast_chunk_size: 4 << 20,
            default_parallelism: cores.max(4),
            spill_dir: std::env::temp_dir().join("memphis_spill"),
            cost: CostModel::calibrated(),
            task_max_failures: 4,
            stage_max_attempts: 4,
            fault_plan: crate::fault::FaultPlan::none(),
        }
    }

    /// Total task slots across the cluster.
    pub fn total_cores(&self) -> usize {
        self.num_executors * self.cores_per_executor
    }
}

impl Default for SparkConfig {
    fn default() -> Self {
        Self::local_test()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_delay_scales_linearly() {
        let d1 = CostModel::transfer_delay(1000, 2.0);
        let d2 = CostModel::transfer_delay(2000, 2.0);
        assert_eq!(d1.as_nanos() * 2, d2.as_nanos());
        assert_eq!(CostModel::transfer_delay(0, 5.0), Duration::ZERO);
    }

    #[test]
    fn zero_model_has_no_costs() {
        let z = CostModel::zero();
        assert_eq!(z.task_launch, Duration::ZERO);
        assert_eq!(z.shuffle_ns_per_byte, 0.0);
    }

    #[test]
    fn total_cores_multiplies() {
        let c = SparkConfig {
            num_executors: 3,
            cores_per_executor: 4,
            ..SparkConfig::local_test()
        };
        assert_eq!(c.total_cores(), 12);
    }
}
