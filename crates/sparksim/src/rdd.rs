//! RDD abstraction: lazily evaluated, partitioned collections of keyed
//! matrix tiles, represented as transformation DAG nodes.

use crate::block_manager::StorageLevel;
use crate::broadcast::BroadcastRef;
use memphis_matrix::{BlockId, Matrix};
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One keyed record: a matrix tile with its block key.
pub type Record = (BlockId, Matrix);

/// Narrow per-record transformation. Must preserve the record key's hash
/// partition (MEMPHIS-generated plans always keep the `BlockId` unchanged).
pub type MapFn = Arc<dyn Fn(&BlockId, &Matrix) -> Record + Send + Sync>;

/// Narrow per-record transformation with access to a broadcast matrix.
pub type MapBcFn = Arc<dyn Fn(&BlockId, &Matrix, &Matrix) -> Record + Send + Sync>;

/// Key-preserving binary transformation applied to co-partitioned records
/// with equal keys.
pub type ZipFn = Arc<dyn Fn(&BlockId, &Matrix, &Matrix) -> Matrix + Send + Sync>;

/// Map-side emit function of a shuffle: produces re-keyed messages.
pub type EmitFn = Arc<dyn Fn(&BlockId, &Matrix) -> Vec<Record> + Send + Sync>;

/// Commutative, associative combiner for shuffle reduce and `reduce` actions.
pub type CombineFn = Arc<dyn Fn(Matrix, Matrix) -> Matrix + Send + Sync>;

/// Unique RDD identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RddId(pub u64);

/// Unique shuffle identifier (one per wide dependency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShuffleId(pub u64);

/// Hash partitioner: stable key → partition mapping shared by every RDD so
/// that equal keys co-locate (enables narrow zip-joins).
pub fn partition_of(key: &BlockId, num_partitions: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % num_partitions.max(1) as u64) as usize
}

/// The transformation that produces an RDD.
pub(crate) enum RddKind {
    /// Driver-side source data, already split into partitions.
    Parallelize {
        /// Hash-partitioned records.
        partitions: Arc<Vec<Vec<Record>>>,
    },
    /// Narrow per-record map.
    Map {
        /// Input RDD.
        parent: RddRef,
        /// Transformation.
        f: MapFn,
    },
    /// Narrow map reading a broadcast variable.
    MapWithBroadcast {
        /// Input RDD.
        parent: RddRef,
        /// Broadcast matrix, lazily shipped to executors.
        bc: BroadcastRef,
        /// Transformation.
        f: MapBcFn,
    },
    /// Narrow binary zip over co-partitioned inputs with equal keys.
    ZipJoin {
        /// Left input.
        left: RddRef,
        /// Right input.
        right: RddRef,
        /// Per-key combine.
        f: ZipFn,
    },
    /// Wide dependency: map-side emit, shuffle, reduce-side combine.
    ReduceByKey {
        /// Input RDD.
        parent: RddRef,
        /// Map-side message generation.
        emit: EmitFn,
        /// Reduce-side combiner.
        combine: CombineFn,
        /// Shuffle identifier (allocated at creation).
        shuffle: ShuffleId,
    },
}

pub(crate) struct RddInner {
    pub(crate) id: RddId,
    pub(crate) kind: RddKind,
    pub(crate) num_partitions: usize,
    /// Requested storage level; `None` until `persist()` is called.
    pub(crate) persist_level: Mutex<Option<StorageLevel>>,
    /// Human-readable operator name for debugging and experiment reports.
    pub(crate) name: String,
}

/// A cheaply clonable handle to an RDD DAG node.
///
/// Dropping the last handle makes the RDD unreachable; the
/// [`crate::context::SparkContext`] provides explicit cleanup of cached
/// partitions and shuffle files.
#[derive(Clone)]
pub struct RddRef(pub(crate) Arc<RddInner>);

static NEXT_RDD_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_SHUFFLE_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_rdd_id() -> RddId {
    RddId(NEXT_RDD_ID.fetch_add(1, Ordering::Relaxed))
}

pub(crate) fn next_shuffle_id() -> ShuffleId {
    ShuffleId(NEXT_SHUFFLE_ID.fetch_add(1, Ordering::Relaxed))
}

impl RddRef {
    /// Unique identifier.
    pub fn id(&self) -> RddId {
        self.0.id
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.0.num_partitions
    }

    /// Operator name assigned at creation.
    pub fn name(&self) -> &str {
        &self.0.name
    }

    /// Direct parent RDDs (lineage edges), used by MEMPHIS's lazy garbage
    /// collection to find child references that can be released.
    pub fn parents(&self) -> Vec<RddRef> {
        match &self.0.kind {
            RddKind::Parallelize { .. } => vec![],
            RddKind::Map { parent, .. } => vec![parent.clone()],
            RddKind::MapWithBroadcast { parent, .. } => vec![parent.clone()],
            RddKind::ZipJoin { left, right, .. } => vec![left.clone(), right.clone()],
            RddKind::ReduceByKey { parent, .. } => vec![parent.clone()],
        }
    }

    /// The broadcast variable read by this node, if any (for lazy GC).
    pub fn broadcast(&self) -> Option<BroadcastRef> {
        match &self.0.kind {
            RddKind::MapWithBroadcast { bc, .. } => Some(bc.clone()),
            _ => None,
        }
    }

    /// Marks this RDD for caching at the given storage level. Lazy, exactly
    /// like Spark's `persist()`: partitions materialize in the block manager
    /// only when a job computes them.
    pub fn persist(&self, level: StorageLevel) {
        *self.0.persist_level.lock() = Some(level);
    }

    /// Clears the persist flag. The context's `unpersist` also drops any
    /// already-cached partitions.
    pub(crate) fn clear_persist(&self) {
        *self.0.persist_level.lock() = None;
    }

    /// Current persist level, if marked.
    pub fn persist_level(&self) -> Option<StorageLevel> {
        *self.0.persist_level.lock()
    }

    /// The shuffle this RDD's wide dependency owns, if any.
    pub fn shuffle_id(&self) -> Option<ShuffleId> {
        match &self.0.kind {
            RddKind::ReduceByKey { shuffle, .. } => Some(*shuffle),
            _ => None,
        }
    }

    /// True when this is a source (`parallelize`) RDD.
    pub fn is_source(&self) -> bool {
        matches!(self.0.kind, RddKind::Parallelize { .. })
    }

    /// Number of strong handles to this RDD node (the driver-side
    /// "dangling reference" count MEMPHIS tracks).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.0)
    }
}

impl std::fmt::Debug for RddRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Rdd#{}({}, {} partitions)",
            self.0.id.0, self.0.name, self.0.num_partitions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioner_is_stable_and_in_range() {
        for n in [1usize, 3, 7, 16] {
            for r in 0..20 {
                for c in 0..5 {
                    let k = BlockId { row: r, col: c };
                    let p = partition_of(&k, n);
                    assert!(p < n);
                    assert_eq!(p, partition_of(&k, n));
                }
            }
        }
    }

    #[test]
    fn ids_are_unique() {
        let a = next_rdd_id();
        let b = next_rdd_id();
        assert_ne!(a, b);
        let s = next_shuffle_id();
        let t = next_shuffle_id();
        assert_ne!(s, t);
    }
}
