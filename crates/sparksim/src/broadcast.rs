//! Torrent-style broadcast variables.
//!
//! Mirrors Spark's `TorrentBroadcast`: the driver serializes the broadcast
//! matrix into fixed-size chunks held in the driver's block manager; each
//! executor lazily pulls the chunks on first use. The driver-side copy
//! stays alive until `destroy()` — the dangling-reference behaviour that
//! MEMPHIS's lazy garbage collection targets (paper §2.2 and §4.1).

use crate::config::CostModel;
use crate::stats::SparkStats;
use memphis_matrix::Matrix;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Unique broadcast identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BroadcastId(pub u64);

static NEXT_BROADCAST_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) struct BroadcastInner {
    pub(crate) id: BroadcastId,
    /// Driver-held value; cleared by `destroy()`.
    pub(crate) value: Mutex<Option<Arc<Matrix>>>,
    /// Executors that already hold all chunks.
    pub(crate) delivered: Mutex<HashSet<usize>>,
    pub(crate) size_bytes: usize,
    pub(crate) num_chunks: usize,
    pub(crate) destroyed: AtomicBool,
}

/// Handle to a broadcast variable.
#[derive(Clone)]
pub struct BroadcastRef(pub(crate) Arc<BroadcastInner>);

impl BroadcastRef {
    /// Registers a new broadcast variable in the driver.
    pub(crate) fn new(value: Matrix, chunk_size: usize) -> Self {
        let size_bytes = value.size_bytes();
        let num_chunks = size_bytes.div_ceil(chunk_size.max(1)).max(1);
        Self(Arc::new(BroadcastInner {
            id: BroadcastId(NEXT_BROADCAST_ID.fetch_add(1, Ordering::Relaxed)),
            value: Mutex::new(Some(Arc::new(value))),
            delivered: Mutex::new(HashSet::new()),
            size_bytes,
            num_chunks,
            destroyed: AtomicBool::new(false),
        }))
    }

    /// Unique identifier.
    pub fn id(&self) -> BroadcastId {
        self.0.id
    }

    /// Serialized size held in the driver until destruction.
    pub fn size_bytes(&self) -> usize {
        self.0.size_bytes
    }

    /// Number of torrent chunks.
    pub fn num_chunks(&self) -> usize {
        self.0.num_chunks
    }

    /// True once `destroy()` released the driver-held data.
    pub fn is_destroyed(&self) -> bool {
        self.0.destroyed.load(Ordering::Acquire)
    }

    /// Number of executors holding the full chunk set.
    pub fn delivered_executors(&self) -> usize {
        self.0.delivered.lock().len()
    }

    /// Fetches the broadcast value on an executor, charging the chunked
    /// transfer cost the first time this executor reads it.
    ///
    /// Returns `None` if the broadcast was destroyed before the read (a
    /// driver bug MEMPHIS's reference tracking prevents).
    pub(crate) fn fetch(
        &self,
        executor_id: usize,
        cost: &CostModel,
        stats: &SparkStats,
    ) -> Option<Arc<Matrix>> {
        let value = self.0.value.lock().clone()?;
        let first_read = self.0.delivered.lock().insert(executor_id);
        if first_read {
            SparkStats::add(&stats.broadcast_chunks_sent, self.0.num_chunks as u64);
            let delay = CostModel::transfer_delay(self.0.size_bytes, cost.broadcast_ns_per_byte)
                + cost.broadcast_chunk_overhead * self.0.num_chunks as u32;
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
        }
        Some(value)
    }

    /// Releases the executor-side copies while keeping the driver value —
    /// Spark's `Broadcast.unpersist()`. The next read on each executor
    /// pulls the chunks (and pays the transfer cost) again, so unlike
    /// [`BroadcastRef::destroy`] this is safe when lineage recomputation
    /// may still reach the broadcast. Returns `true` if any executor
    /// actually held a copy.
    pub fn unpersist(&self) -> bool {
        let mut delivered = self.0.delivered.lock();
        let had_copies = !delivered.is_empty();
        delivered.clear();
        had_copies
    }

    /// Releases the driver-held data and all executor copies — Spark's
    /// `Broadcast.destroy()`. Idempotent.
    pub fn destroy(&self) {
        self.0.destroyed.store(true, Ordering::Release);
        *self.0.value.lock() = None;
        self.0.delivered.lock().clear();
    }

    /// The driver-held value, if not yet destroyed.
    pub fn driver_value(&self) -> Option<Matrix> {
        self.0.value.lock().as_ref().map(|m| (**m).clone())
    }

    /// Bytes currently pinned in the driver by this broadcast.
    pub fn driver_held_bytes(&self) -> usize {
        if self.0.value.lock().is_some() {
            self.0.size_bytes
        } else {
            0
        }
    }
}

impl std::fmt::Debug for BroadcastRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Broadcast#{}({} bytes, {} chunks)",
            self.0.id.0, self.0.size_bytes, self.0.num_chunks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(bytes: usize) -> BroadcastRef {
        // bytes must be a multiple of 8 for a matrix of f64s.
        BroadcastRef::new(Matrix::zeros(1, bytes / 8), 4 << 20)
    }

    #[test]
    fn chunk_count_rounds_up() {
        let b = BroadcastRef::new(Matrix::zeros(1024, 1024), 1 << 20); // 8 MB
        assert_eq!(b.num_chunks(), 8);
        let small = mk(8);
        assert_eq!(small.num_chunks(), 1);
    }

    #[test]
    fn fetch_charges_once_per_executor() {
        let b = mk(1024);
        let cost = CostModel::zero();
        let stats = SparkStats::default();
        assert!(b.fetch(0, &cost, &stats).is_some());
        assert!(b.fetch(0, &cost, &stats).is_some());
        assert!(b.fetch(1, &cost, &stats).is_some());
        assert_eq!(stats.snapshot().broadcast_chunks_sent, 2);
        assert_eq!(b.delivered_executors(), 2);
    }

    #[test]
    fn unpersist_drops_executor_copies_but_stays_readable() {
        let b = mk(1024);
        let cost = CostModel::zero();
        let stats = SparkStats::default();
        assert!(b.fetch(0, &cost, &stats).is_some());
        assert_eq!(b.delivered_executors(), 1);
        assert!(b.unpersist(), "executor 0 held a copy");
        assert!(!b.unpersist(), "already released");
        assert_eq!(b.delivered_executors(), 0);
        assert!(!b.is_destroyed());
        // Re-reading works and pays the transfer again.
        assert!(b.fetch(0, &cost, &stats).is_some());
        assert_eq!(stats.snapshot().broadcast_chunks_sent, 2);
    }

    #[test]
    fn destroy_releases_driver_memory_and_blocks_reads() {
        let b = mk(1024);
        assert_eq!(b.driver_held_bytes(), 1024);
        b.destroy();
        assert_eq!(b.driver_held_bytes(), 0);
        assert!(b.is_destroyed());
        let stats = SparkStats::default();
        assert!(b.fetch(0, &CostModel::zero(), &stats).is_none());
        b.destroy(); // idempotent
    }
}
