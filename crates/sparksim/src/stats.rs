//! Cluster-wide counters used by the MEMPHIS experiments to report reuse
//! effects (jobs avoided, stages skipped, partitions recomputed, ...).

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters maintained by the scheduler, block manager, shuffle
/// manager, and broadcast manager. All counters are monotonically
/// increasing; read them with [`SparkStats::snapshot`].
#[derive(Debug, Default)]
pub struct SparkStats {
    /// Jobs launched by actions.
    pub jobs: AtomicU64,
    /// Jobs currently running (a gauge, not a monotonic counter —
    /// incremented at job start, decremented at job end).
    pub jobs_active: AtomicU64,
    /// High-water mark of concurrently running jobs (how hard
    /// multi-session serving drives the shared cluster).
    pub jobs_peak_concurrent: AtomicU64,
    /// Stages executed (excluding skipped).
    pub stages: AtomicU64,
    /// Stages skipped because shuffle outputs were still available.
    pub skipped_stages: AtomicU64,
    /// Tasks executed.
    pub tasks: AtomicU64,
    /// Bytes written to shuffle files.
    pub shuffle_bytes_written: AtomicU64,
    /// Bytes read from shuffle files.
    pub shuffle_bytes_read: AtomicU64,
    /// Partitions served from the block manager cache.
    pub cache_hits: AtomicU64,
    /// Cached partitions stored.
    pub partitions_cached: AtomicU64,
    /// Cached partitions evicted from memory.
    pub partitions_evicted: AtomicU64,
    /// Partitions spilled to disk.
    pub partitions_spilled: AtomicU64,
    /// Partitions re-read from disk spills.
    pub partitions_read_from_disk: AtomicU64,
    /// Partitions recomputed after loss/eviction.
    pub partitions_recomputed: AtomicU64,
    /// Records processed by narrow transformations (map/zip) — measures
    /// lazy re-execution of long RDD chains.
    pub narrow_records_computed: AtomicU64,
    /// Broadcast-variable chunk transfers to executors.
    pub broadcast_chunks_sent: AtomicU64,
    /// Bytes collected to the driver by actions.
    pub bytes_collected: AtomicU64,
    /// Task attempts that failed (injected faults or panics).
    pub task_failures: AtomicU64,
    /// Task attempts re-launched after a failure (retry or fetch-failure
    /// re-run of a result task).
    pub tasks_retried: AtomicU64,
    /// Shuffle reads that found map outputs missing.
    pub fetch_failures: AtomicU64,
    /// Map stages resubmitted (partially) to regenerate lost map outputs.
    pub stages_resubmitted: AtomicU64,
    /// Executors lost (planned kills and manual `kill_executor` calls).
    pub executors_lost: AtomicU64,
    /// Cached partitions invalidated by faults (executor loss/block drops).
    pub cached_blocks_lost: AtomicU64,
    /// Shuffle map outputs invalidated by faults.
    pub shuffle_outputs_lost: AtomicU64,
}

/// A point-in-time copy of all counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize)]
pub struct StatsSnapshot {
    /// See [`SparkStats::jobs`].
    pub jobs: u64,
    /// See [`SparkStats::jobs_peak_concurrent`].
    pub jobs_peak_concurrent: u64,
    /// See [`SparkStats::stages`].
    pub stages: u64,
    /// See [`SparkStats::skipped_stages`].
    pub skipped_stages: u64,
    /// See [`SparkStats::tasks`].
    pub tasks: u64,
    /// See [`SparkStats::shuffle_bytes_written`].
    pub shuffle_bytes_written: u64,
    /// See [`SparkStats::shuffle_bytes_read`].
    pub shuffle_bytes_read: u64,
    /// See [`SparkStats::cache_hits`].
    pub cache_hits: u64,
    /// See [`SparkStats::partitions_cached`].
    pub partitions_cached: u64,
    /// See [`SparkStats::partitions_evicted`].
    pub partitions_evicted: u64,
    /// See [`SparkStats::partitions_spilled`].
    pub partitions_spilled: u64,
    /// See [`SparkStats::partitions_read_from_disk`].
    pub partitions_read_from_disk: u64,
    /// See [`SparkStats::partitions_recomputed`].
    pub partitions_recomputed: u64,
    /// See [`SparkStats::narrow_records_computed`].
    pub narrow_records_computed: u64,
    /// See [`SparkStats::broadcast_chunks_sent`].
    pub broadcast_chunks_sent: u64,
    /// See [`SparkStats::bytes_collected`].
    pub bytes_collected: u64,
    /// See [`SparkStats::task_failures`].
    pub task_failures: u64,
    /// See [`SparkStats::tasks_retried`].
    pub tasks_retried: u64,
    /// See [`SparkStats::fetch_failures`].
    pub fetch_failures: u64,
    /// See [`SparkStats::stages_resubmitted`].
    pub stages_resubmitted: u64,
    /// See [`SparkStats::executors_lost`].
    pub executors_lost: u64,
    /// See [`SparkStats::cached_blocks_lost`].
    pub cached_blocks_lost: u64,
    /// See [`SparkStats::shuffle_outputs_lost`].
    pub shuffle_outputs_lost: u64,
}

impl SparkStats {
    /// Increments a counter by one.
    #[inline]
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Marks a job as running, updating the concurrency high-water mark.
    /// Pair with [`job_finished`](Self::job_finished) on every exit path.
    pub fn job_started(&self) {
        let active = self.jobs_active.fetch_add(1, Ordering::Relaxed) + 1;
        self.jobs_peak_concurrent
            .fetch_max(active, Ordering::Relaxed);
    }

    /// Marks a running job as finished.
    pub fn job_finished(&self) {
        self.jobs_active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Copies every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            jobs: self.jobs.load(Ordering::Relaxed),
            jobs_peak_concurrent: self.jobs_peak_concurrent.load(Ordering::Relaxed),
            stages: self.stages.load(Ordering::Relaxed),
            skipped_stages: self.skipped_stages.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
            shuffle_bytes_written: self.shuffle_bytes_written.load(Ordering::Relaxed),
            shuffle_bytes_read: self.shuffle_bytes_read.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            partitions_cached: self.partitions_cached.load(Ordering::Relaxed),
            partitions_evicted: self.partitions_evicted.load(Ordering::Relaxed),
            partitions_spilled: self.partitions_spilled.load(Ordering::Relaxed),
            partitions_read_from_disk: self.partitions_read_from_disk.load(Ordering::Relaxed),
            partitions_recomputed: self.partitions_recomputed.load(Ordering::Relaxed),
            narrow_records_computed: self.narrow_records_computed.load(Ordering::Relaxed),
            broadcast_chunks_sent: self.broadcast_chunks_sent.load(Ordering::Relaxed),
            bytes_collected: self.bytes_collected.load(Ordering::Relaxed),
            task_failures: self.task_failures.load(Ordering::Relaxed),
            tasks_retried: self.tasks_retried.load(Ordering::Relaxed),
            fetch_failures: self.fetch_failures.load(Ordering::Relaxed),
            stages_resubmitted: self.stages_resubmitted.load(Ordering::Relaxed),
            executors_lost: self.executors_lost.load(Ordering::Relaxed),
            cached_blocks_lost: self.cached_blocks_lost.load(Ordering::Relaxed),
            shuffle_outputs_lost: self.shuffle_outputs_lost.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// Uniform key/value view of the headline counters — consumed by the
    /// cache's per-backend stats aggregation.
    pub fn pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("jobs", self.jobs),
            ("jobs_peak", self.jobs_peak_concurrent),
            ("stages", self.stages),
            ("skipped", self.skipped_stages),
            ("tasks", self.tasks),
            ("shuffle_w", self.shuffle_bytes_written),
            ("part_cached", self.partitions_cached),
            ("part_evicted", self.partitions_evicted),
            ("retried", self.tasks_retried),
            ("resubmitted", self.stages_resubmitted),
            ("exec_lost", self.executors_lost),
            ("recomputed", self.partitions_recomputed),
        ]
    }

    /// Difference of two snapshots (`self - earlier`), counter-wise.
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            jobs: self.jobs - earlier.jobs,
            // High-water mark, not monotonic per-interval: report the
            // later mark (saturating keeps delta of delta safe).
            jobs_peak_concurrent: self
                .jobs_peak_concurrent
                .saturating_sub(earlier.jobs_peak_concurrent),
            stages: self.stages - earlier.stages,
            skipped_stages: self.skipped_stages - earlier.skipped_stages,
            tasks: self.tasks - earlier.tasks,
            shuffle_bytes_written: self.shuffle_bytes_written - earlier.shuffle_bytes_written,
            shuffle_bytes_read: self.shuffle_bytes_read - earlier.shuffle_bytes_read,
            cache_hits: self.cache_hits - earlier.cache_hits,
            partitions_cached: self.partitions_cached - earlier.partitions_cached,
            partitions_evicted: self.partitions_evicted - earlier.partitions_evicted,
            partitions_spilled: self.partitions_spilled - earlier.partitions_spilled,
            partitions_read_from_disk: self.partitions_read_from_disk
                - earlier.partitions_read_from_disk,
            partitions_recomputed: self.partitions_recomputed - earlier.partitions_recomputed,
            narrow_records_computed: self.narrow_records_computed - earlier.narrow_records_computed,
            broadcast_chunks_sent: self.broadcast_chunks_sent - earlier.broadcast_chunks_sent,
            bytes_collected: self.bytes_collected - earlier.bytes_collected,
            task_failures: self.task_failures - earlier.task_failures,
            tasks_retried: self.tasks_retried - earlier.tasks_retried,
            fetch_failures: self.fetch_failures - earlier.fetch_failures,
            stages_resubmitted: self.stages_resubmitted - earlier.stages_resubmitted,
            executors_lost: self.executors_lost - earlier.executors_lost,
            cached_blocks_lost: self.cached_blocks_lost - earlier.cached_blocks_lost,
            shuffle_outputs_lost: self.shuffle_outputs_lost - earlier.shuffle_outputs_lost,
        }
    }
}

impl memphis_obs::IntoMetrics for StatsSnapshot {
    fn metrics_section(&self) -> &'static str {
        "spark"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("jobs", self.jobs),
            ("jobs_peak_concurrent", self.jobs_peak_concurrent),
            ("stages", self.stages),
            ("skipped_stages", self.skipped_stages),
            ("tasks", self.tasks),
            ("shuffle_bytes_written", self.shuffle_bytes_written),
            ("shuffle_bytes_read", self.shuffle_bytes_read),
            ("cache_hits", self.cache_hits),
            ("partitions_cached", self.partitions_cached),
            ("partitions_evicted", self.partitions_evicted),
            ("partitions_spilled", self.partitions_spilled),
            ("partitions_read_from_disk", self.partitions_read_from_disk),
            ("partitions_recomputed", self.partitions_recomputed),
            ("narrow_records_computed", self.narrow_records_computed),
            ("broadcast_chunks_sent", self.broadcast_chunks_sent),
            ("bytes_collected", self.bytes_collected),
            ("task_failures", self.task_failures),
            ("tasks_retried", self.tasks_retried),
            ("fetch_failures", self.fetch_failures),
            ("stages_resubmitted", self.stages_resubmitted),
            ("executors_lost", self.executors_lost),
            ("cached_blocks_lost", self.cached_blocks_lost),
            ("shuffle_outputs_lost", self.shuffle_outputs_lost),
        ]
    }
}

impl StatsSnapshot {
    /// The recovery-relevant subset as key/value pairs — what the chaos
    /// suite asserts determinism over.
    pub fn recovery_pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("task_failures", self.task_failures),
            ("tasks_retried", self.tasks_retried),
            ("fetch_failures", self.fetch_failures),
            ("stages_resubmitted", self.stages_resubmitted),
            ("executors_lost", self.executors_lost),
            ("cached_blocks_lost", self.cached_blocks_lost),
            ("shuffle_outputs_lost", self.shuffle_outputs_lost),
            ("partitions_recomputed", self.partitions_recomputed),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let s = SparkStats::default();
        SparkStats::inc(&s.jobs);
        SparkStats::add(&s.tasks, 5);
        let a = s.snapshot();
        assert_eq!(a.jobs, 1);
        assert_eq!(a.tasks, 5);
        SparkStats::inc(&s.jobs);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.jobs, 1);
        assert_eq!(d.tasks, 0);
    }
}
