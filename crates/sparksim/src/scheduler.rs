//! Executor pool and DAGScheduler.
//!
//! Jobs are triggered by actions on the driver. The scheduler walks the RDD
//! lineage, produces every ancestor shuffle (map stages) in topological
//! order — skipping shuffles whose files are still retained — and then runs
//! the final result stage. Task sets execute on a fixed pool of executor
//! worker threads, so cluster parallelism is bounded by
//! `num_executors * cores_per_executor` exactly like a real cluster.
//!
//! ## Failure handling
//!
//! Task attempts can fail (injected faults from the configured
//! [`crate::fault::FaultPlan`], or panics in user code) and are retried up
//! to [`crate::config::SparkConfig::task_max_failures`] times; past that
//! the job aborts with a clean [`JobError`], releasing its shuffle claims
//! so concurrent jobs never hang. A reduce task that finds shuffle map
//! outputs missing (executor loss, dropped shuffle files) raises a fetch
//! failure: the scheduler resubmits the *missing map partitions only* of
//! the parent map stage — shuffle output is deterministic, so surviving
//! outputs are reused — bounded by
//! [`crate::config::SparkConfig::stage_max_attempts`]. Lost cached
//! partitions are recomputed from lineage on next access, exactly like an
//! eviction.

use crate::block_manager::StorageLevel;
use crate::fault::{self, JobError, TaskError};
use crate::rdd::{partition_of, RddKind, RddRef, Record, ShuffleId};
use crate::stats::SparkStats;
use crossbeam::channel::{unbounded, Sender};
use crossbeam::sync::WaitGroup;
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

thread_local! {
    static EXECUTOR_ID: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The executor id of the current worker thread, or 0 when called from a
/// driver thread (e.g. unit tests computing partitions directly).
pub fn current_executor() -> usize {
    EXECUTOR_ID.with(|c| {
        let id = c.get();
        if id == usize::MAX {
            0
        } else {
            id
        }
    })
}

type Task = Box<dyn FnOnce() + Send>;

/// Fixed pool of executor worker threads (task slots).
pub struct ExecutorPool {
    sender: Option<Sender<Task>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ExecutorPool {
    /// Spawns `num_executors * cores_per_executor` workers; worker `i`
    /// belongs to executor `i / cores_per_executor`.
    pub fn new(num_executors: usize, cores_per_executor: usize) -> Self {
        let (tx, rx) = unbounded::<Task>();
        let mut handles = Vec::new();
        for worker in 0..num_executors.max(1) * cores_per_executor.max(1) {
            let rx = rx.clone();
            let executor_id = worker / cores_per_executor.max(1);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("executor-{executor_id}-slot-{worker}"))
                    .spawn(move || {
                        EXECUTOR_ID.with(|c| c.set(executor_id));
                        while let Ok(task) = rx.recv() {
                            // A panicking task must not kill the worker:
                            // the slot stays alive and the driver reports
                            // the failure via the missing result.
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                        }
                    })
                    .expect("spawn executor worker"),
            );
        }
        Self {
            sender: Some(tx),
            handles,
        }
    }

    /// Number of task slots.
    pub fn slots(&self) -> usize {
        self.handles.len()
    }

    /// Enqueues a task.
    pub fn submit(&self, task: Task) {
        self.sender
            .as_ref()
            .expect("pool alive")
            .send(task)
            .expect("workers alive");
    }
}

impl Drop for ExecutorPool {
    fn drop(&mut self) {
        self.sender.take();
        // A worker thread may drop the last runtime handle (its task body
        // releases captured Arcs after the job barrier); never self-join.
        let me = std::thread::current().id();
        for h in self.handles.drain(..) {
            if h.thread().id() != me {
                h.join().ok();
            }
        }
    }
}

/// Per-job scheduling state: the job sequence number (run-stable fault
/// coordinate), a deterministic stage-sequence allocator, and an index of
/// every ancestor shuffle so fetch failures can be mapped back to the map
/// stage that must be resubmitted.
struct JobCtx {
    /// Job sequence number within the context (0-based, in action order).
    job: u64,
    /// Next stage sequence number within this job. Allocated for skipped
    /// stages too, so numbering depends only on the lineage — not on which
    /// concurrent job won a shuffle-production claim.
    next_stage: AtomicU64,
    /// Every shuffle reachable from the job's final RDD, including those
    /// behind cached RDDs (recovery may need them after a cache drop).
    shuffles: HashMap<u64, RddRef>,
}

impl JobCtx {
    fn new(job: u64, rdd: &RddRef) -> Self {
        let mut shuffles = HashMap::new();
        let mut visited = HashSet::new();
        index_shuffles(rdd, &mut visited, &mut shuffles);
        Self {
            job,
            next_stage: AtomicU64::new(0),
            shuffles,
        }
    }

    fn alloc_stage(&self) -> u64 {
        self.next_stage.fetch_add(1, Ordering::Relaxed)
    }
}

/// Full-lineage DFS indexing every wide dependency by shuffle id. Unlike
/// the planning walk this does *not* stop at cached RDDs: a fault can drop
/// cached partitions mid-job, and recovery then reaches ancestor shuffles
/// the plan skipped.
fn index_shuffles(rdd: &RddRef, visited: &mut HashSet<u64>, out: &mut HashMap<u64, RddRef>) {
    if !visited.insert(rdd.id().0) {
        return;
    }
    for parent in rdd.parents() {
        index_shuffles(&parent, visited, out);
    }
    if let Some(sid) = rdd.shuffle_id() {
        out.insert(sid.0, rdd.clone());
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Shared cluster runtime: configuration, storage, shuffle service, and the
/// executor pool. [`crate::context::SparkContext`] wraps this in an `Arc`.
pub struct Runtime {
    /// Cluster configuration.
    pub config: crate::config::SparkConfig,
    /// Cluster-wide counters.
    pub stats: Arc<SparkStats>,
    /// Storage region for cached partitions.
    pub block_manager: crate::block_manager::BlockManager,
    /// Shuffle-file store.
    pub shuffle: crate::shuffle::ShuffleManager,
    /// Executor task slots.
    pub pool: ExecutorPool,
}

impl Runtime {
    /// Computes one partition of an RDD, recursively evaluating narrow
    /// parents, reading shuffle files across wide dependencies, and serving
    /// or populating the block-manager cache for persisted RDDs. Fails with
    /// [`TaskError::FetchFailed`] when a shuffle read finds map outputs
    /// missing.
    pub fn compute_partition(
        self: &Arc<Self>,
        rdd: &RddRef,
        p: usize,
    ) -> Result<Arc<Vec<Record>>, TaskError> {
        let persist = rdd.persist_level();
        if persist.is_some() {
            if let Some(cached) = self.block_manager.get(rdd.id(), p) {
                return Ok(cached);
            }
        }
        let records: Vec<Record> = match &rdd.0.kind {
            RddKind::Parallelize { partitions } => partitions[p].clone(),
            RddKind::Map { parent, f } => {
                let input = self.compute_partition(parent, p)?;
                SparkStats::add(&self.stats.narrow_records_computed, input.len() as u64);
                input.iter().map(|(k, m)| f(k, m)).collect()
            }
            RddKind::MapWithBroadcast { parent, bc, f } => {
                // A destroyed broadcast reached from a recompute is the
                // paper's §2.2 dangling reference: fail the task cleanly
                // (bounded retry → job error) instead of killing the worker.
                let value = bc
                    .fetch(current_executor(), &self.config.cost, &self.stats)
                    .ok_or_else(|| {
                        TaskError::Panic(format!("broadcast {:?} destroyed before use", bc.id()))
                    })?;
                let input = self.compute_partition(parent, p)?;
                SparkStats::add(&self.stats.narrow_records_computed, input.len() as u64);
                input.iter().map(|(k, m)| f(k, m, &value)).collect()
            }
            RddKind::ZipJoin { left, right, f } => {
                let l = self.compute_partition(left, p)?;
                let r = self.compute_partition(right, p)?;
                SparkStats::add(&self.stats.narrow_records_computed, l.len() as u64);
                let index: std::collections::HashMap<_, _> =
                    r.iter().map(|(k, m)| (*k, m)).collect();
                l.iter()
                    .filter_map(|(k, lm)| index.get(k).map(|rm| (*k, f(k, lm, rm))))
                    .collect()
            }
            RddKind::ReduceByKey {
                combine, shuffle, ..
            } => {
                let fetch_span = memphis_obs::span_with(memphis_obs::cat::SHUFFLE, "fetch", || {
                    format!("shuffle-{} p{}", shuffle.0, p)
                });
                let grouped = self
                    .shuffle
                    .try_read(*shuffle, p)
                    .map_err(|_| TaskError::FetchFailed { shuffle: *shuffle })?;
                drop(fetch_span);
                let mut out: Vec<Record> = grouped
                    .into_iter()
                    .map(|(k, vals)| {
                        let mut it = vals.into_iter();
                        let first = it.next().expect("non-empty group");
                        (k, it.fold(first, |a, b| combine(a, b)))
                    })
                    .collect();
                out.sort_by_key(|(k, _)| *k);
                out
            }
        };
        let records = Arc::new(records);
        if let Some(level) = persist {
            if self.block_manager.was_evicted(rdd.id(), p) {
                SparkStats::inc(&self.stats.partitions_recomputed);
            }
            self.block_manager.put(
                rdd.id(),
                p,
                records.clone(),
                level,
                fault::name_tag(rdd.name()),
            );
        }
        Ok(records)
    }

    /// Kills executor `executor` *now*: its cached partitions and shuffle
    /// map outputs are invalidated (attributed deterministically by
    /// `partition % num_executors`) and recomputed from lineage on next
    /// access. Worker threads stay alive — the simulation models the data
    /// loss, and a replacement executor re-registering, not the process.
    pub fn kill_executor_now(self: &Arc<Self>, executor: usize) {
        let ne = self.config.num_executors.max(1);
        SparkStats::inc(&self.stats.executors_lost);
        memphis_obs::instant_val(
            memphis_obs::cat::RECOVERY,
            "executor_lost",
            "executor",
            executor as u64,
        );
        let cached = self
            .block_manager
            .drop_where(|_, p| p % ne == executor % ne);
        SparkStats::add(&self.stats.cached_blocks_lost, cached);
        let outputs = self
            .shuffle
            .drop_outputs_where(|mp| mp % ne == executor % ne);
        SparkStats::add(&self.stats.shuffle_outputs_lost, outputs);
    }

    /// Applies the fault plan's job-boundary faults (cached-partition and
    /// shuffle-output drops) for job `job`.
    fn apply_prejob_faults(&self, job: u64) {
        let plan = &self.config.fault_plan;
        if !plan.is_active() {
            return;
        }
        if plan.cached_drop_rate > 0.0 {
            let lost = self
                .block_manager
                .drop_where(|tag, p| plan.should_drop_cached(job, tag, p));
            SparkStats::add(&self.stats.cached_blocks_lost, lost);
        }
        if plan.shuffle_drop_rate > 0.0 {
            let lost = self
                .shuffle
                .drop_outputs_where(|mp| plan.should_drop_shuffle_output(job, mp));
            SparkStats::add(&self.stats.shuffle_outputs_lost, lost);
        }
    }

    /// Launches one round of task attempts on the executor pool and gathers
    /// `(partition, attempt, result)` in submission order. Injected faults
    /// are decided on the driver *at submission* — before any side effect —
    /// so a failed attempt never half-writes shuffle or cache state.
    fn exec_attempts<R, F>(
        self: &Arc<Self>,
        job: u64,
        stage: u64,
        attempts: &[(usize, u64)],
        f: &Arc<F>,
    ) -> Vec<(usize, u64, Result<R, TaskError>)>
    where
        R: Send + 'static,
        F: Fn(usize) -> Result<R, TaskError> + Send + Sync + 'static,
    {
        type Slots<R> = Arc<Mutex<Vec<Option<Result<R, TaskError>>>>>;
        SparkStats::add(&self.stats.tasks, attempts.len() as u64);
        let plan = &self.config.fault_plan;
        let results: Slots<R> = Arc::new(Mutex::new(attempts.iter().map(|_| None).collect()));
        let wg = WaitGroup::new();
        let launch = self.config.cost.task_launch;
        for (i, &(p, attempt)) in attempts.iter().enumerate() {
            if plan.should_fail_task(job, stage, p, attempt) {
                results.lock()[i] = Some(Err(TaskError::Injected {
                    job,
                    stage,
                    partition: p,
                    attempt,
                }));
                continue;
            }
            let f = f.clone();
            let results = results.clone();
            let wg = wg.clone();
            self.pool.submit(Box::new(move || {
                if !launch.is_zero() {
                    std::thread::sleep(launch);
                }
                let task_span = memphis_obs::span_with(memphis_obs::cat::SCHED, "task", || {
                    format!("job-{job} stage-{stage} p{p} attempt-{attempt}")
                })
                .arg("executor", current_executor() as u64);
                let r = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(p))) {
                    Ok(r) => r,
                    Err(payload) => Err(TaskError::Panic(panic_message(payload))),
                };
                drop(task_span);
                results.lock()[i] = Some(r);
                // Release captured handles before the barrier so the
                // driver-side drop order is deterministic.
                drop(f);
                drop(results);
                drop(wg);
            }));
        }
        wg.wait();
        let mut guard = results.lock();
        attempts
            .iter()
            .enumerate()
            .map(|(i, &(p, attempt))| {
                let r = guard[i]
                    .take()
                    .unwrap_or_else(|| Err(TaskError::Panic("executor worker lost".into())));
                (p, attempt, r)
            })
            .collect()
    }

    /// Runs the task set of one stage over `parts` with bounded retries and
    /// fetch-failure-driven map-stage resubmission. Returns results sorted
    /// by partition.
    fn run_stage<R, F>(
        self: &Arc<Self>,
        jctx: &JobCtx,
        stage: u64,
        parts: Vec<usize>,
        f: F,
    ) -> Result<Vec<(usize, R)>, JobError>
    where
        R: Send + 'static,
        F: Fn(usize) -> Result<R, TaskError> + Send + Sync + 'static,
    {
        let _stage_span = memphis_obs::span_with(memphis_obs::cat::SCHED, "stage", || {
            format!("job-{} stage-{}", jctx.job, stage)
        });
        for victim in self.config.fault_plan.kills_at(jctx.job, stage) {
            self.kill_executor_now(victim);
        }
        let f = Arc::new(f);
        let mut done: Vec<(usize, R)> = Vec::with_capacity(parts.len());
        let mut pending: Vec<(usize, u64)> = parts.into_iter().map(|p| (p, 0)).collect();
        let mut stage_attempts = 1u64;
        while !pending.is_empty() {
            let round = self.exec_attempts(jctx.job, stage, &pending, &f);
            pending.clear();
            let mut lost_shuffles: BTreeSet<u64> = BTreeSet::new();
            let mut fetch_retry: Vec<(usize, u64)> = Vec::new();
            for (p, attempt, result) in round {
                match result {
                    Ok(r) => done.push((p, r)),
                    Err(TaskError::FetchFailed { shuffle }) => {
                        memphis_obs::instant_val(
                            memphis_obs::cat::RECOVERY,
                            "fetch_failure",
                            "shuffle",
                            shuffle.0,
                        );
                        lost_shuffles.insert(shuffle.0);
                        fetch_retry.push((p, attempt));
                    }
                    Err(err) => {
                        SparkStats::inc(&self.stats.task_failures);
                        let attempts = attempt + 1;
                        if attempts >= self.config.task_max_failures {
                            return Err(JobError::TaskFailed {
                                stage,
                                partition: p,
                                attempts,
                                last: err.to_string(),
                            });
                        }
                        SparkStats::inc(&self.stats.tasks_retried);
                        memphis_obs::instant(memphis_obs::cat::RECOVERY, "task_retry");
                        pending.push((p, attempt + 1));
                    }
                }
            }
            if !lost_shuffles.is_empty() {
                stage_attempts += 1;
                if stage_attempts > self.config.stage_max_attempts {
                    return Err(JobError::StageExhausted {
                        stage,
                        attempts: stage_attempts,
                    });
                }
                for sid in &lost_shuffles {
                    self.recover_shuffle(jctx, ShuffleId(*sid))?;
                }
                for (p, attempt) in fetch_retry {
                    // A fetch failure is the map stage's fault, not the
                    // task's: re-run with the same attempt number.
                    SparkStats::inc(&self.stats.tasks_retried);
                    pending.push((p, attempt));
                }
            }
        }
        done.sort_by_key(|(p, _)| *p);
        Ok(done)
    }

    /// Produces shuffle `sid` (the caller holds the production claim):
    /// runs map tasks for every *missing* map partition, so a resubmission
    /// after partial loss recomputes only what was lost. On failure the
    /// claim is released (`abort`) so waiting jobs can retry.
    fn produce_shuffle(
        self: &Arc<Self>,
        jctx: &JobCtx,
        node: &RddRef,
        sid: ShuffleId,
        resubmit: bool,
    ) -> Result<(), JobError> {
        let (parent, emit) = match &node.0.kind {
            RddKind::ReduceByKey { parent, emit, .. } => (parent.clone(), emit.clone()),
            _ => unreachable!("map stages only exist for wide dependencies"),
        };
        let num_out = node.num_partitions();
        self.shuffle.begin(sid, parent.num_partitions());
        let missing = self.shuffle.missing_map_partitions(sid);
        if missing.is_empty() {
            self.shuffle.finish(sid);
            return Ok(());
        }
        // A production with surviving outputs is a (partial) resubmission
        // regardless of how it was reached: mid-stage via a fetch failure,
        // or proactively when job planning found the shuffle incomplete
        // after a fault dropped some of its outputs.
        if resubmit || missing.len() < parent.num_partitions() {
            SparkStats::inc(&self.stats.stages_resubmitted);
        } else {
            SparkStats::inc(&self.stats.stages);
        }
        let stage = jctx.alloc_stage();
        let rt = self.clone();
        let result = self.run_stage(jctx, stage, missing, move |p| {
            let records = rt.compute_partition(&parent, p)?;
            let mut buckets: Vec<Vec<Record>> = (0..num_out).map(|_| Vec::new()).collect();
            for (k, m) in records.iter() {
                for (nk, nm) in emit(k, m) {
                    buckets[partition_of(&nk, num_out)].push((nk, nm));
                }
            }
            rt.shuffle.write_map_output(sid, p, buckets);
            Ok(())
        });
        match result {
            Ok(_) => {
                self.shuffle.finish(sid);
                Ok(())
            }
            Err(e) => {
                // Release the claim so concurrent jobs waiting in
                // claim_or_wait can retry instead of hanging forever.
                self.shuffle.abort(sid);
                Err(e)
            }
        }
    }

    /// Regenerates shuffle `sid` after a fetch failure. If a concurrent job
    /// already (re)produced it, the wait inside `claim_or_wait` suffices.
    fn recover_shuffle(self: &Arc<Self>, jctx: &JobCtx, sid: ShuffleId) -> Result<(), JobError> {
        let _recover_span = memphis_obs::span_with(memphis_obs::cat::RECOVERY, "recover", || {
            format!("shuffle-{}", sid.0)
        });
        if !self.shuffle.claim_or_wait(sid) {
            return Ok(());
        }
        let node = jctx
            .shuffles
            .get(&sid.0)
            .cloned()
            .expect("fetch-failed shuffle is in the job's lineage");
        self.produce_shuffle(jctx, &node, sid, true)
    }

    /// Runs a job triggered by an action on `rdd`: produces all missing
    /// ancestor shuffles, then evaluates `result_task` over every partition
    /// of `rdd` on the executor pool. Panics on job failure; fallible
    /// actions use [`Runtime::try_run_job`].
    pub fn run_job<R, F>(self: &Arc<Self>, rdd: &RddRef, result_task: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize, &[Record]) -> R + Send + Sync + 'static,
    {
        match self.try_run_job(rdd, result_task) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`Runtime::run_job`]: task failures are retried up
    /// to `task_max_failures`, lost shuffle outputs trigger partial map
    /// stage resubmission, and anything beyond those bounds surfaces as a
    /// clean [`JobError`] — the cluster stays usable for other jobs.
    pub fn try_run_job<R, F>(
        self: &Arc<Self>,
        rdd: &RddRef,
        result_task: F,
    ) -> Result<Vec<R>, JobError>
    where
        R: Send + 'static,
        F: Fn(usize, &[Record]) -> R + Send + Sync + 'static,
    {
        let job = self.stats.jobs.fetch_add(1, Ordering::Relaxed);
        let _concurrency = ActiveJobGauge::enter(&self.stats);
        let _job_span =
            memphis_obs::span_with(memphis_obs::cat::SCHED, "job", || format!("job-{job}"));
        if !self.config.cost.job_launch.is_zero() {
            std::thread::sleep(self.config.cost.job_launch);
        }
        let jctx = JobCtx::new(job, rdd);
        self.apply_prejob_faults(job);

        // Plan: ancestor shuffle stages in topological order (deepest first).
        let mut shuffle_nodes: Vec<RddRef> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        self.collect_shuffles(rdd, &mut visited, &mut shuffle_nodes);

        for node in shuffle_nodes {
            let sid = node.shuffle_id().expect("shuffle node");
            if !self.shuffle.claim_or_wait(sid) {
                SparkStats::inc(&self.stats.skipped_stages);
                // Keep stage numbering structural: a skipped stage still
                // consumes its sequence number.
                jctx.alloc_stage();
                continue;
            }
            self.produce_shuffle(&jctx, &node, sid, false)?;
        }

        // Final result stage.
        SparkStats::inc(&self.stats.stages);
        let stage = jctx.alloc_stage();
        let rt = self.clone();
        let rdd_for_tasks = rdd.clone();
        let done = self.run_stage(
            &jctx,
            stage,
            (0..rdd.num_partitions()).collect(),
            move |p| {
                let records = rt.compute_partition(&rdd_for_tasks, p)?;
                Ok(result_task(p, &records))
            },
        )?;
        Ok(done.into_iter().map(|(_, r)| r).collect())
    }

    /// Post-order DFS gathering wide-dependency nodes (deepest ancestors
    /// first). Does not descend past a persisted-and-fully-cached RDD: its
    /// partitions are served from the block manager, so ancestor shuffles
    /// are unnecessary (partially cached RDDs still plan ancestors so lost
    /// partitions can recompute).
    fn collect_shuffles(
        self: &Arc<Self>,
        rdd: &RddRef,
        visited: &mut HashSet<u64>,
        out: &mut Vec<RddRef>,
    ) {
        if !visited.insert(rdd.id().0) {
            return;
        }
        if fully_cached(self, rdd) {
            return;
        }
        for parent in rdd.parents() {
            self.collect_shuffles(&parent, visited, out);
        }
        if matches!(rdd.0.kind, RddKind::ReduceByKey { .. }) {
            out.push(rdd.clone());
        }
    }
}

/// RAII gauge for the concurrently-running-jobs high-water mark
/// ([`SparkStats::jobs_peak_concurrent`]): entering counts the job as
/// active, and the drop decrements on every exit path, including job
/// errors.
struct ActiveJobGauge<'a>(&'a SparkStats);

impl<'a> ActiveJobGauge<'a> {
    fn enter(stats: &'a SparkStats) -> Self {
        stats.job_started();
        Self(stats)
    }
}

impl Drop for ActiveJobGauge<'_> {
    fn drop(&mut self) {
        self.0.job_finished();
    }
}

/// Computes whether every partition of a persisted RDD is already resident,
/// letting callers (and MEMPHIS's lazy GC) check materialization.
pub fn fully_cached(rt: &Runtime, rdd: &RddRef) -> bool {
    rdd.persist_level().is_some()
        && (0..rdd.num_partitions()).all(|p| rt.block_manager.contains(rdd.id(), p))
}

/// Convenience used by `StorageLevel` re-export consumers.
pub fn default_storage_level() -> StorageLevel {
    StorageLevel::Memory
}
