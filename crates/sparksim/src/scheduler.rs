//! Executor pool and DAGScheduler.
//!
//! Jobs are triggered by actions on the driver. The scheduler walks the RDD
//! lineage, produces every ancestor shuffle (map stages) in topological
//! order — skipping shuffles whose files are still retained — and then runs
//! the final result stage. Task sets execute on a fixed pool of executor
//! worker threads, so cluster parallelism is bounded by
//! `num_executors * cores_per_executor` exactly like a real cluster.

use crate::block_manager::StorageLevel;
use crate::rdd::{partition_of, RddKind, RddRef, Record, ShuffleId};
use crate::stats::SparkStats;
use crossbeam::channel::{unbounded, Sender};
use crossbeam::sync::WaitGroup;
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::HashSet;
use std::sync::Arc;

thread_local! {
    static EXECUTOR_ID: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The executor id of the current worker thread, or 0 when called from a
/// driver thread (e.g. unit tests computing partitions directly).
pub fn current_executor() -> usize {
    EXECUTOR_ID.with(|c| {
        let id = c.get();
        if id == usize::MAX {
            0
        } else {
            id
        }
    })
}

type Task = Box<dyn FnOnce() + Send>;

/// Fixed pool of executor worker threads (task slots).
pub struct ExecutorPool {
    sender: Option<Sender<Task>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ExecutorPool {
    /// Spawns `num_executors * cores_per_executor` workers; worker `i`
    /// belongs to executor `i / cores_per_executor`.
    pub fn new(num_executors: usize, cores_per_executor: usize) -> Self {
        let (tx, rx) = unbounded::<Task>();
        let mut handles = Vec::new();
        for worker in 0..num_executors.max(1) * cores_per_executor.max(1) {
            let rx = rx.clone();
            let executor_id = worker / cores_per_executor.max(1);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("executor-{executor_id}-slot-{worker}"))
                    .spawn(move || {
                        EXECUTOR_ID.with(|c| c.set(executor_id));
                        while let Ok(task) = rx.recv() {
                            // A panicking task must not kill the worker:
                            // the slot stays alive and the driver reports
                            // the failure via the missing result.
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                        }
                    })
                    .expect("spawn executor worker"),
            );
        }
        Self {
            sender: Some(tx),
            handles,
        }
    }

    /// Number of task slots.
    pub fn slots(&self) -> usize {
        self.handles.len()
    }

    /// Enqueues a task.
    pub fn submit(&self, task: Task) {
        self.sender
            .as_ref()
            .expect("pool alive")
            .send(task)
            .expect("workers alive");
    }
}

impl Drop for ExecutorPool {
    fn drop(&mut self) {
        self.sender.take();
        // A worker thread may drop the last runtime handle (its task body
        // releases captured Arcs after the job barrier); never self-join.
        let me = std::thread::current().id();
        for h in self.handles.drain(..) {
            if h.thread().id() != me {
                h.join().ok();
            }
        }
    }
}

/// Shared cluster runtime: configuration, storage, shuffle service, and the
/// executor pool. [`crate::context::SparkContext`] wraps this in an `Arc`.
pub struct Runtime {
    /// Cluster configuration.
    pub config: crate::config::SparkConfig,
    /// Cluster-wide counters.
    pub stats: Arc<SparkStats>,
    /// Storage region for cached partitions.
    pub block_manager: crate::block_manager::BlockManager,
    /// Shuffle-file store.
    pub shuffle: crate::shuffle::ShuffleManager,
    /// Executor task slots.
    pub pool: ExecutorPool,
}

impl Runtime {
    /// Runs `n` tasks on the executor pool and gathers their results in
    /// task order. Blocks until all complete.
    pub fn run_tasks<R, F>(self: &Arc<Self>, n: usize, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        SparkStats::add(&self.stats.tasks, n as u64);
        let f = Arc::new(f);
        let results: Arc<Mutex<Vec<Option<R>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));
        let wg = WaitGroup::new();
        let launch = self.config.cost.task_launch;
        for p in 0..n {
            let f = f.clone();
            let results = results.clone();
            let wg = wg.clone();
            self.pool.submit(Box::new(move || {
                if !launch.is_zero() {
                    std::thread::sleep(launch);
                }
                let r = f(p);
                results.lock()[p] = Some(r);
                // Release captured handles before the barrier so the
                // driver-side drop order is deterministic.
                drop(f);
                drop(results);
                drop(wg);
            }));
        }
        wg.wait();
        let mut guard = results.lock();
        guard
            .iter_mut()
            .enumerate()
            .map(|(p, r)| {
                r.take()
                    .unwrap_or_else(|| panic!("task for partition {p} panicked on an executor"))
            })
            .collect()
    }

    /// Computes one partition of an RDD, recursively evaluating narrow
    /// parents, reading shuffle files across wide dependencies, and serving
    /// or populating the block-manager cache for persisted RDDs.
    pub fn compute_partition(self: &Arc<Self>, rdd: &RddRef, p: usize) -> Arc<Vec<Record>> {
        let persist = rdd.persist_level();
        if persist.is_some() {
            if let Some(cached) = self.block_manager.get(rdd.id(), p) {
                return cached;
            }
        }
        let records: Vec<Record> = match &rdd.0.kind {
            RddKind::Parallelize { partitions } => partitions[p].clone(),
            RddKind::Map { parent, f } => {
                let input = self.compute_partition(parent, p);
                SparkStats::add(&self.stats.narrow_records_computed, input.len() as u64);
                input.iter().map(|(k, m)| f(k, m)).collect()
            }
            RddKind::MapWithBroadcast { parent, bc, f } => {
                let value = bc
                    .fetch(current_executor(), &self.config.cost, &self.stats)
                    .expect("broadcast destroyed before use");
                let input = self.compute_partition(parent, p);
                SparkStats::add(&self.stats.narrow_records_computed, input.len() as u64);
                input.iter().map(|(k, m)| f(k, m, &value)).collect()
            }
            RddKind::ZipJoin { left, right, f } => {
                let l = self.compute_partition(left, p);
                let r = self.compute_partition(right, p);
                SparkStats::add(&self.stats.narrow_records_computed, l.len() as u64);
                let index: std::collections::HashMap<_, _> =
                    r.iter().map(|(k, m)| (*k, m)).collect();
                l.iter()
                    .filter_map(|(k, lm)| index.get(k).map(|rm| (*k, f(k, lm, rm))))
                    .collect()
            }
            RddKind::ReduceByKey {
                combine, shuffle, ..
            } => {
                let grouped = self.shuffle.read(*shuffle, p);
                let mut out: Vec<Record> = grouped
                    .into_iter()
                    .map(|(k, vals)| {
                        let mut it = vals.into_iter();
                        let first = it.next().expect("non-empty group");
                        (k, it.fold(first, |a, b| combine(a, b)))
                    })
                    .collect();
                out.sort_by_key(|(k, _)| *k);
                out
            }
        };
        let records = Arc::new(records);
        if let Some(level) = persist {
            if self.block_manager.was_evicted(rdd.id(), p) {
                SparkStats::inc(&self.stats.partitions_recomputed);
            }
            self.block_manager.put(rdd.id(), p, records.clone(), level);
        }
        records
    }

    /// Runs a job triggered by an action on `rdd`: produces all missing
    /// ancestor shuffles, then evaluates `result_task` over every partition
    /// of `rdd` on the executor pool.
    pub fn run_job<R, F>(self: &Arc<Self>, rdd: &RddRef, result_task: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize, &[Record]) -> R + Send + Sync + 'static,
    {
        SparkStats::inc(&self.stats.jobs);
        if !self.config.cost.job_launch.is_zero() {
            std::thread::sleep(self.config.cost.job_launch);
        }

        // Plan: ancestor shuffle stages in topological order (deepest first).
        let mut shuffle_nodes: Vec<RddRef> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        self.collect_shuffles(rdd, &mut visited, &mut shuffle_nodes);

        for node in shuffle_nodes {
            let sid = node.shuffle_id().expect("shuffle node");
            if !self.shuffle.claim_or_wait(sid) {
                SparkStats::inc(&self.stats.skipped_stages);
                continue;
            }
            self.run_map_stage(&node, sid);
        }

        // Final result stage.
        SparkStats::inc(&self.stats.stages);
        let rt = self.clone();
        let rdd_for_tasks = rdd.clone();
        self.run_tasks(rdd.num_partitions(), move |p| {
            let records = rt.compute_partition(&rdd_for_tasks, p);
            result_task(p, &records)
        })
    }

    /// Post-order DFS gathering wide-dependency nodes (deepest ancestors
    /// first). Does not descend past a persisted-and-fully-cached RDD: its
    /// partitions are served from the block manager, so ancestor shuffles
    /// are unnecessary (partially cached RDDs still plan ancestors so lost
    /// partitions can recompute).
    fn collect_shuffles(
        self: &Arc<Self>,
        rdd: &RddRef,
        visited: &mut HashSet<u64>,
        out: &mut Vec<RddRef>,
    ) {
        if !visited.insert(rdd.id().0) {
            return;
        }
        if fully_cached(self, rdd) {
            return;
        }
        for parent in rdd.parents() {
            self.collect_shuffles(&parent, visited, out);
        }
        if matches!(rdd.0.kind, RddKind::ReduceByKey { .. }) {
            out.push(rdd.clone());
        }
    }

    fn run_map_stage(self: &Arc<Self>, node: &RddRef, sid: ShuffleId) {
        let (parent, emit) = match &node.0.kind {
            RddKind::ReduceByKey { parent, emit, .. } => (parent.clone(), emit.clone()),
            _ => unreachable!("map stages only exist for wide dependencies"),
        };
        SparkStats::inc(&self.stats.stages);
        let num_out = node.num_partitions();
        self.shuffle.begin(sid, parent.num_partitions());
        let rt = self.clone();
        let shuffle_parent = parent.clone();
        let stage = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.run_tasks(parent.num_partitions(), move |p| {
                let records = rt.compute_partition(&shuffle_parent, p);
                let mut buckets: Vec<Vec<Record>> = (0..num_out).map(|_| Vec::new()).collect();
                for (k, m) in records.iter() {
                    for (nk, nm) in emit(k, m) {
                        buckets[partition_of(&nk, num_out)].push((nk, nm));
                    }
                }
                rt.shuffle.write_map_output(sid, p, buckets);
            });
        }));
        if let Err(panic) = stage {
            // Release the claim so concurrent jobs waiting in
            // claim_or_wait can retry instead of hanging forever.
            self.shuffle.abort(sid);
            std::panic::resume_unwind(panic);
        }
        self.shuffle.finish(sid);
    }
}

/// Computes whether every partition of a persisted RDD is already resident,
/// letting callers (and MEMPHIS's lazy GC) check materialization.
pub fn fully_cached(rt: &Runtime, rdd: &RddRef) -> bool {
    rdd.persist_level().is_some()
        && (0..rdd.num_partitions()).all(|p| rt.block_manager.contains(rdd.id(), p))
}

/// Convenience used by `StorageLevel` re-export consumers.
pub fn default_storage_level() -> StorageLevel {
    StorageLevel::Memory
}
