//! The BlockManager: cluster storage-region accounting for cached RDD
//! partitions, with LRU eviction, disk spilling, and lost-partition
//! tracking for lineage recomputation.

use crate::rdd::{RddId, Record};
use crate::stats::SparkStats;
use memphis_matrix::{io as mio, BlockId};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;

/// Spark storage levels supported by the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageLevel {
    /// Deserialized in storage memory only; evicted partitions are dropped
    /// and recomputed from lineage.
    Memory,
    /// In memory, spilled to local disk under memory pressure.
    MemoryAndDisk,
    /// Directly on disk.
    Disk,
}

/// Approximate size in bytes of one cached partition.
pub fn bytes_of_partition(records: &[Record]) -> usize {
    records
        .iter()
        .map(|(_, m)| m.size_bytes() + std::mem::size_of::<BlockId>())
        .sum()
}

enum Residence {
    InMemory(Arc<Vec<Record>>),
    OnDisk(PathBuf),
}

struct CachedPartition {
    residence: Residence,
    level: StorageLevel,
    size: usize,
    last_access: u64,
    /// Run-stable fault tag (hash of the owning RDD's name) used by the
    /// deterministic fault plan to pick drop victims; see [`crate::fault`].
    tag: u64,
}

struct Inner {
    entries: HashMap<(RddId, usize), CachedPartition>,
    mem_used: usize,
    clock: u64,
    /// Keys whose memory copy was dropped at least once (for recompute
    /// statistics and eviction-robustness tests).
    evicted_ever: HashSet<(RddId, usize)>,
}

/// Storage-region manager shared by all executors of the simulated cluster.
pub struct BlockManager {
    inner: Mutex<Inner>,
    capacity: usize,
    spill_dir: PathBuf,
    stats: Arc<SparkStats>,
}

/// Materialization summary for one RDD — the simulation's
/// `getRDDStorageInfo`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RddStorageInfo {
    /// Partitions currently cached (memory or disk).
    pub cached_partitions: usize,
    /// Bytes held in storage memory.
    pub mem_bytes: usize,
    /// Bytes held on disk.
    pub disk_bytes: usize,
}

static NEXT_BM_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl BlockManager {
    /// Creates a block manager with `capacity` bytes of storage memory.
    /// Spill files go to an instance-unique subdirectory, removed on drop.
    pub fn new(capacity: usize, spill_dir: PathBuf, stats: Arc<SparkStats>) -> Self {
        let spill_dir = spill_dir.join(format!(
            "bm{}_{}",
            std::process::id(),
            NEXT_BM_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        Self {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                mem_used: 0,
                clock: 0,
                evicted_ever: HashSet::new(),
            }),
            capacity,
            spill_dir,
            stats,
        }
    }

    /// Storage memory currently used by cached partitions.
    pub fn mem_used(&self) -> usize {
        self.inner.lock().mem_used
    }

    /// Total storage capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fetches a cached partition, reading it back from disk if spilled.
    pub fn get(&self, rdd: RddId, partition: usize) -> Option<Arc<Vec<Record>>> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let entry = inner.entries.get_mut(&(rdd, partition))?;
        entry.last_access = clock;
        match &entry.residence {
            Residence::InMemory(data) => {
                SparkStats::inc(&self.stats.cache_hits);
                Some(data.clone())
            }
            Residence::OnDisk(path) => {
                let path = path.clone();
                drop(inner);
                let data = Arc::new(read_partition(&path).ok()?);
                SparkStats::inc(&self.stats.cache_hits);
                SparkStats::inc(&self.stats.partitions_read_from_disk);
                Some(data)
            }
        }
    }

    /// True if the partition is resident (memory or disk).
    pub fn contains(&self, rdd: RddId, partition: usize) -> bool {
        self.inner.lock().entries.contains_key(&(rdd, partition))
    }

    /// True if this partition was evicted from memory at least once.
    pub fn was_evicted(&self, rdd: RddId, partition: usize) -> bool {
        self.inner.lock().evicted_ever.contains(&(rdd, partition))
    }

    /// Stores a computed partition at the requested storage level, evicting
    /// LRU partitions of *other* RDDs if the storage region is full.
    ///
    /// Follows Spark semantics: if memory cannot be freed, a `Memory`-level
    /// partition is silently not cached, while `MemoryAndDisk` and `Disk`
    /// partitions go to disk.
    pub fn put(
        &self,
        rdd: RddId,
        partition: usize,
        data: Arc<Vec<Record>>,
        level: StorageLevel,
        tag: u64,
    ) {
        let size = bytes_of_partition(&data);
        let key = (rdd, partition);
        if level == StorageLevel::Disk {
            if let Ok(path) = self.write_spill(key, &data) {
                let mut inner = self.inner.lock();
                inner.clock += 1;
                let clock = inner.clock;
                inner.entries.insert(
                    key,
                    CachedPartition {
                        residence: Residence::OnDisk(path),
                        level,
                        size,
                        last_access: clock,
                        tag,
                    },
                );
                SparkStats::inc(&self.stats.partitions_cached);
            }
            return;
        }

        let fits = self.ensure_space(size, rdd);
        let mut inner = self.inner.lock();
        if inner.entries.contains_key(&key) {
            return; // racing task already cached it
        }
        if fits && inner.mem_used + size <= self.capacity {
            inner.clock += 1;
            let clock = inner.clock;
            inner.mem_used += size;
            inner.entries.insert(
                key,
                CachedPartition {
                    residence: Residence::InMemory(data),
                    level,
                    size,
                    last_access: clock,
                    tag,
                },
            );
            SparkStats::inc(&self.stats.partitions_cached);
        } else if level == StorageLevel::MemoryAndDisk {
            drop(inner);
            if let Ok(path) = self.write_spill(key, &data) {
                let mut inner = self.inner.lock();
                inner.clock += 1;
                let clock = inner.clock;
                inner.entries.insert(
                    key,
                    CachedPartition {
                        residence: Residence::OnDisk(path),
                        level,
                        size,
                        last_access: clock,
                        tag,
                    },
                );
                SparkStats::inc(&self.stats.partitions_cached);
                SparkStats::inc(&self.stats.partitions_spilled);
            }
        }
        // Memory-only and no space: silently skip caching (Spark behaviour).
    }

    /// Evicts LRU partitions of other RDDs until `size` bytes fit in the
    /// storage region. Returns false if not enough space could be freed.
    fn ensure_space(&self, size: usize, incoming: RddId) -> bool {
        if size > self.capacity {
            return false;
        }
        loop {
            let victim = {
                let inner = self.inner.lock();
                if inner.mem_used + size <= self.capacity {
                    return true;
                }
                // LRU over in-memory partitions, skipping the incoming RDD
                // (Spark never evicts blocks of the RDD being written).
                let victim_key = inner
                    .entries
                    .iter()
                    .filter(|((rid, _), e)| {
                        *rid != incoming && matches!(e.residence, Residence::InMemory(_))
                    })
                    .min_by_key(|(_, e)| e.last_access)
                    .map(|(k, _)| *k);
                match victim_key {
                    None => return false,
                    Some(k) => {
                        let entry = inner.entries.get(&k).expect("victim exists");
                        let spill = entry.level == StorageLevel::MemoryAndDisk;
                        let data = match &entry.residence {
                            Residence::InMemory(d) => d.clone(),
                            Residence::OnDisk(_) => unreachable!("filtered to in-memory"),
                        };
                        (k, spill, data, entry.size)
                    }
                }
            };
            let (key, spill, data, vsize) = victim;
            if spill {
                if let Ok(path) = self.write_spill(key, &data) {
                    let mut inner = self.inner.lock();
                    if let Some(e) = inner.entries.get_mut(&key) {
                        e.residence = Residence::OnDisk(path);
                        inner.mem_used = inner.mem_used.saturating_sub(vsize);
                        inner.evicted_ever.insert(key);
                    }
                    SparkStats::inc(&self.stats.partitions_spilled);
                    SparkStats::inc(&self.stats.partitions_evicted);
                } else {
                    // Spill failed: drop the partition instead.
                    let mut inner = self.inner.lock();
                    inner.entries.remove(&key);
                    inner.mem_used = inner.mem_used.saturating_sub(vsize);
                    inner.evicted_ever.insert(key);
                    SparkStats::inc(&self.stats.partitions_evicted);
                }
            } else {
                let mut inner = self.inner.lock();
                inner.entries.remove(&key);
                inner.mem_used = inner.mem_used.saturating_sub(vsize);
                inner.evicted_ever.insert(key);
                SparkStats::inc(&self.stats.partitions_evicted);
            }
        }
    }

    /// Removes every cached partition of `rdd` (the `unpersist` path) and
    /// deletes its spill files.
    pub fn remove_rdd(&self, rdd: RddId) {
        let removed: Vec<(usize, Option<PathBuf>, usize, bool)> = {
            let mut inner = self.inner.lock();
            let keys: Vec<(RddId, usize)> = inner
                .entries
                .keys()
                .filter(|(rid, _)| *rid == rdd)
                .copied()
                .collect();
            keys.into_iter()
                .map(|k| {
                    let e = inner.entries.remove(&k).expect("key listed");
                    let (path, in_mem) = match e.residence {
                        Residence::InMemory(_) => (None, true),
                        Residence::OnDisk(p) => (Some(p), false),
                    };
                    if in_mem {
                        inner.mem_used = inner.mem_used.saturating_sub(e.size);
                    }
                    (k.1, path, e.size, in_mem)
                })
                .collect()
        };
        for (_, path, _, _) in &removed {
            if let Some(p) = path {
                std::fs::remove_file(p).ok();
            }
        }
    }

    /// Drops one partition as if an executor was lost — used by failure
    /// injection tests to exercise lineage recomputation.
    pub fn drop_partition(&self, rdd: RddId, partition: usize) {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.entries.remove(&(rdd, partition)) {
            if let Residence::InMemory(_) = e.residence {
                inner.mem_used = inner.mem_used.saturating_sub(e.size);
            } else if let Residence::OnDisk(p) = e.residence {
                std::fs::remove_file(p).ok();
            }
            inner.evicted_ever.insert((rdd, partition));
        }
    }

    /// Fault injection: drops every cached partition (memory *and* disk)
    /// whose `(tag, partition)` matches `lost`, recording the loss so the
    /// next access recomputes from lineage. Returns the number dropped.
    pub fn drop_where(&self, lost: impl Fn(u64, usize) -> bool) -> u64 {
        let mut spills: Vec<PathBuf> = Vec::new();
        let dropped = {
            let mut inner = self.inner.lock();
            let victims: Vec<(RddId, usize)> = inner
                .entries
                .iter()
                .filter(|((_, p), e)| lost(e.tag, *p))
                .map(|(k, _)| *k)
                .collect();
            for key in &victims {
                let e = inner.entries.remove(key).expect("victim listed");
                match e.residence {
                    Residence::InMemory(_) => {
                        inner.mem_used = inner.mem_used.saturating_sub(e.size);
                    }
                    Residence::OnDisk(p) => spills.push(p),
                }
                inner.evicted_ever.insert(*key);
            }
            victims.len() as u64
        };
        for p in spills {
            std::fs::remove_file(p).ok();
        }
        dropped
    }

    /// Materialization summary for an RDD (`getRDDStorageInfo`).
    pub fn storage_info(&self, rdd: RddId) -> RddStorageInfo {
        let inner = self.inner.lock();
        let mut info = RddStorageInfo::default();
        for ((rid, _), e) in inner.entries.iter() {
            if *rid == rdd {
                info.cached_partitions += 1;
                match e.residence {
                    Residence::InMemory(_) => info.mem_bytes += e.size,
                    Residence::OnDisk(_) => info.disk_bytes += e.size,
                }
            }
        }
        info
    }

    fn write_spill(&self, key: (RddId, usize), data: &[Record]) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.spill_dir)?;
        let path = self
            .spill_dir
            .join(format!("rdd_{}_p{}.bin", key.0 .0, key.1));
        write_partition(&path, data)?;
        Ok(path)
    }
}

impl Drop for BlockManager {
    fn drop(&mut self) {
        // The spill directory is instance-unique (see `new`).
        std::fs::remove_dir_all(&self.spill_dir).ok();
    }
}

/// Serializes a partition to a spill file: `count | (row, col, matrix)*`.
pub fn write_partition(path: &PathBuf, records: &[Record]) -> std::io::Result<()> {
    let mut buf: Vec<u8> = Vec::new();
    buf.extend_from_slice(&(records.len() as u64).to_le_bytes());
    for (id, m) in records {
        buf.extend_from_slice(&(id.row as u64).to_le_bytes());
        buf.extend_from_slice(&(id.col as u64).to_le_bytes());
        let mb = mio::to_bytes(m);
        buf.extend_from_slice(&(mb.len() as u64).to_le_bytes());
        buf.extend_from_slice(&mb);
    }
    std::fs::write(path, buf)
}

/// Reads a partition written by [`write_partition`].
pub fn read_partition(path: &PathBuf) -> std::io::Result<Vec<Record>> {
    let bytes = std::fs::read(path)?;
    let corrupt = || std::io::Error::new(std::io::ErrorKind::InvalidData, "corrupt spill file");
    let mut pos = 0usize;
    let read_u64 = |pos: &mut usize| -> std::io::Result<u64> {
        let end = *pos + 8;
        let slice = bytes.get(*pos..end).ok_or_else(corrupt)?;
        *pos = end;
        Ok(u64::from_le_bytes(slice.try_into().unwrap()))
    };
    let count = read_u64(&mut pos)? as usize;
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        let row = read_u64(&mut pos)? as usize;
        let col = read_u64(&mut pos)? as usize;
        let len = read_u64(&mut pos)? as usize;
        let end = pos + len;
        let slice = bytes.get(pos..end).ok_or_else(corrupt)?;
        pos = end;
        let m = mio::from_bytes(bytes::Bytes::copy_from_slice(slice))
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        records.push((BlockId { row, col }, m));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memphis_matrix::rand_gen::rand_uniform;

    fn rec(row: usize, cells: usize, seed: u64) -> Record {
        (
            BlockId { row, col: 0 },
            rand_uniform(1, cells, 0.0, 1.0, seed),
        )
    }

    fn bm(capacity: usize) -> BlockManager {
        BlockManager::new(
            capacity,
            std::env::temp_dir().join("memphis_bm_test"),
            Arc::new(SparkStats::default()),
        )
    }

    #[test]
    fn put_get_roundtrip() {
        let m = bm(1 << 20);
        let data = Arc::new(vec![rec(0, 100, 1)]);
        m.put(RddId(1), 0, data.clone(), StorageLevel::Memory, 0);
        let got = m.get(RddId(1), 0).unwrap();
        assert_eq!(got.len(), 1);
        assert!(got[0].1.approx_eq(&data[0].1, 0.0));
        assert!(m.get(RddId(1), 1).is_none());
        assert!(m.get(RddId(2), 0).is_none());
    }

    #[test]
    fn lru_eviction_drops_memory_only() {
        // Capacity fits two ~800B partitions, not three.
        let m = bm(1800);
        for p in 0..3u64 {
            m.put(
                RddId(p),
                0,
                Arc::new(vec![rec(0, 100, p)]),
                StorageLevel::Memory,
                0,
            );
        }
        // First partition was LRU → evicted and dropped.
        assert!(m.get(RddId(0), 0).is_none());
        assert!(m.was_evicted(RddId(0), 0));
        assert!(m.get(RddId(2), 0).is_some());
    }

    #[test]
    fn memory_and_disk_spills_instead_of_dropping() {
        let m = bm(1800);
        m.put(
            RddId(10),
            0,
            Arc::new(vec![rec(0, 100, 1)]),
            StorageLevel::MemoryAndDisk,
            0,
        );
        for p in 0..2u64 {
            m.put(
                RddId(20 + p),
                0,
                Arc::new(vec![rec(0, 100, p)]),
                StorageLevel::Memory,
                0,
            );
        }
        // Spilled but still readable.
        let got = m.get(RddId(10), 0);
        assert!(got.is_some(), "spilled partition must be readable");
        assert!(m.was_evicted(RddId(10), 0));
    }

    #[test]
    fn disk_level_bypasses_memory() {
        let m = bm(1 << 20);
        m.put(
            RddId(5),
            0,
            Arc::new(vec![rec(0, 50, 3)]),
            StorageLevel::Disk,
            0,
        );
        assert_eq!(m.mem_used(), 0);
        assert!(m.get(RddId(5), 0).is_some());
    }

    #[test]
    fn remove_rdd_frees_memory() {
        let m = bm(1 << 20);
        m.put(
            RddId(7),
            0,
            Arc::new(vec![rec(0, 64, 1)]),
            StorageLevel::Memory,
            0,
        );
        m.put(
            RddId(7),
            1,
            Arc::new(vec![rec(1, 64, 2)]),
            StorageLevel::Memory,
            0,
        );
        assert!(m.mem_used() > 0);
        m.remove_rdd(RddId(7));
        assert_eq!(m.mem_used(), 0);
        assert!(m.get(RddId(7), 0).is_none());
    }

    #[test]
    fn oversized_partition_not_cached_in_memory() {
        let m = bm(100);
        m.put(
            RddId(9),
            0,
            Arc::new(vec![rec(0, 1000, 1)]),
            StorageLevel::Memory,
            0,
        );
        assert!(m.get(RddId(9), 0).is_none());
        // MemoryAndDisk still lands on disk.
        m.put(
            RddId(9),
            1,
            Arc::new(vec![rec(1, 1000, 2)]),
            StorageLevel::MemoryAndDisk,
            0,
        );
        assert!(m.get(RddId(9), 1).is_some());
    }

    #[test]
    fn storage_info_reports_residence() {
        let m = bm(1 << 20);
        m.put(
            RddId(3),
            0,
            Arc::new(vec![rec(0, 64, 1)]),
            StorageLevel::Memory,
            0,
        );
        m.put(
            RddId(3),
            1,
            Arc::new(vec![rec(1, 64, 2)]),
            StorageLevel::Disk,
            0,
        );
        let info = m.storage_info(RddId(3));
        assert_eq!(info.cached_partitions, 2);
        assert!(info.mem_bytes > 0);
        assert!(info.disk_bytes > 0);
    }

    #[test]
    fn drop_partition_simulates_loss() {
        let m = bm(1 << 20);
        m.put(
            RddId(4),
            0,
            Arc::new(vec![rec(0, 64, 1)]),
            StorageLevel::Memory,
            0,
        );
        m.drop_partition(RddId(4), 0);
        assert!(m.get(RddId(4), 0).is_none());
        assert!(m.was_evicted(RddId(4), 0));
        assert_eq!(m.mem_used(), 0);
    }

    #[test]
    fn partition_file_roundtrip() {
        let dir = std::env::temp_dir().join("memphis_bm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("part.bin");
        let recs = vec![rec(0, 10, 1), rec(1, 20, 2)];
        write_partition(&path, &recs).unwrap();
        let back = read_partition(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].0, recs[0].0);
        assert!(back[1].1.approx_eq(&recs[1].1, 0.0));
        std::fs::remove_file(&path).ok();
    }
}
